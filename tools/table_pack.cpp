// table_pack: convert tables to the compressed extent format (and back).
//
//   table_pack pack <input.bin> <output.ext>
//       Convert a WriteBinary table file into an extent file.
//   table_pack gen --rows N [--skew Z] [--seed S] [--batch B] <output.ext>
//       Stream-generate a TPCD-Skew table straight into an extent file,
//       batch by batch, so arbitrarily large tables pack in bounded memory.
//   table_pack verify <file.ext>
//       Open the file, decode every extent (checksum + bounds validation),
//       and print a per-encoding summary. Exits nonzero on any corruption.
//   table_pack unpack <input.ext> <output.bin>
//       Materialize an extent file back into a WriteBinary table file.
//   table_pack shard <input.ext> <outdir> --shards N
//       Split a packed table into N row-range shard slabs (boundaries on
//       the extent grid) plus <outdir>/MANIFEST, the layout aqpp-shardd
//       and aqpp-coordd consume (docs/sharding.md).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "storage/column_source.h"
#include "storage/extent_file.h"
#include "storage/io.h"
#include "shard/partition.h"
#include "storage/table.h"
#include "workload/tpcd_skew.h"

namespace aqpp {
namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s pack <input.bin> <output.ext>\n"
      "       %s gen --rows N [--skew Z] [--seed S] [--batch B] <output.ext>\n"
      "       %s verify <file.ext>\n"
      "       %s unpack <input.ext> <output.bin>\n"
      "       %s shard <input.ext> <outdir> --shards N\n",
      argv0, argv0, argv0, argv0, argv0);
  return 2;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

int RunPack(const std::string& in, const std::string& out) {
  Timer timer;
  auto table = ReadBinary(in);
  if (!table.ok()) return Fail(table.status());
  Status st = WriteExtentFile(**table, out);
  if (!st.ok()) return Fail(st);
  std::fprintf(stderr, "packed %zu rows x %zu cols in %.2fs -> %s\n",
               (*table)->num_rows(), (*table)->num_columns(),
               timer.ElapsedSeconds(), out.c_str());
  return 0;
}

int RunUnpack(const std::string& in, const std::string& out) {
  Timer timer;
  auto reader = ExtentFileReader::Open(in);
  if (!reader.ok()) return Fail(reader.status());
  auto table = (*reader)->ReadTable();
  if (!table.ok()) return Fail(table.status());
  Status st = WriteBinary(**table, out);
  if (!st.ok()) return Fail(st);
  std::fprintf(stderr, "unpacked %zu rows in %.2fs -> %s\n",
               (*table)->num_rows(), timer.ElapsedSeconds(), out.c_str());
  return 0;
}

// Streams TPCD-Skew into an extent file one generated batch at a time. The
// first batch's (alphabetically finalized) dictionaries become the file's;
// later batches are remapped onto them, which is exact for this generator
// because every value of the two low-cardinality string columns appears in
// any non-trivial batch.
int RunGen(size_t rows, double skew, uint64_t seed, size_t batch_rows,
           const std::string& out) {
  Timer timer;
  Schema schema = TpcdSkewSchema();
  auto writer = ExtentFileWriter::Create(out, schema);
  if (!writer.ok()) return Fail(writer.status());

  std::vector<std::vector<std::string>> final_dicts(schema.num_columns());
  bool dicts_set = false;
  size_t done = 0;
  size_t batch_index = 0;
  while (done < rows) {
    TpcdSkewOptions opt;
    opt.rows = std::min(batch_rows, rows - done);
    opt.skew = skew;
    opt.seed = seed + batch_index;
    auto batch = GenerateTpcdSkew(opt);
    if (!batch.ok()) return Fail(batch.status());
    Table& t = **batch;
    if (!dicts_set) {
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        if (schema.column(c).type != DataType::kString) continue;
        final_dicts[c] = t.column(c).dictionary();
        Status st = (*writer)->SetDictionary(c, final_dicts[c]);
        if (!st.ok()) return Fail(st);
      }
      dicts_set = true;
    } else {
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        if (schema.column(c).type != DataType::kString) continue;
        const std::vector<std::string>& batch_dict = t.column(c).dictionary();
        if (batch_dict == final_dicts[c]) continue;
        std::vector<int64_t> remap(batch_dict.size());
        for (size_t code = 0; code < batch_dict.size(); ++code) {
          int64_t mapped = -1;
          for (size_t k = 0; k < final_dicts[c].size(); ++k) {
            if (final_dicts[c][k] == batch_dict[code]) {
              mapped = static_cast<int64_t>(k);
              break;
            }
          }
          if (mapped < 0) {
            return Fail(Status::FailedPrecondition(
                "batch introduced dictionary value '" + batch_dict[code] +
                "' absent from the first batch; lower --batch granularity"));
          }
          remap[code] = mapped;
        }
        for (int64_t& v : t.mutable_column(c).MutableInt64Data()) {
          v = remap[static_cast<size_t>(v)];
        }
      }
    }
    Status st = (*writer)->Append(t);
    if (!st.ok()) return Fail(st);
    done += opt.rows;
    ++batch_index;
    std::fprintf(stderr, "\r%zu / %zu rows", done, rows);
  }
  Status st = (*writer)->Finish();
  if (!st.ok()) return Fail(st);
  std::fprintf(stderr, "\rgenerated %zu rows in %.2fs -> %s\n", rows,
               timer.ElapsedSeconds(), out.c_str());
  return 0;
}

int RunVerify(const std::string& path) {
  auto reader_or = ExtentFileReader::Open(path);
  if (!reader_or.ok()) return Fail(reader_or.status());
  ExtentFileReader& reader = **reader_or;
  const Schema& schema = reader.schema();
  std::map<std::string, size_t> encoding_counts;
  uint64_t encoded_bytes = 0;
  for (size_t e = 0; e < reader.num_extents(); ++e) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      const ExtentBlobInfo& b = reader.blob(e, c);
      encoding_counts[ExtentEncodingName(b.encoding)]++;
      encoded_bytes += b.encoded_bytes;
      // Pin decodes the blob, which re-verifies the checksum and every
      // structural bound. This is the whole point of `verify`.
      auto pin = reader.Pin(e, c);
      if (!pin.ok()) {
        std::fprintf(stderr, "extent %zu column %zu (%s): ", e, c,
                     schema.column(c).name.c_str());
        return Fail(pin.status());
      }
    }
    reader.ReleaseBefore(e);  // keep verification memory bounded
  }
  std::printf("%s: OK\n", path.c_str());
  std::printf("  rows:    %" PRIu64 "\n", reader.num_rows());
  std::printf("  extents: %zu x %zu columns\n", reader.num_extents(),
              schema.num_columns());
  std::printf("  payload: %.1f MiB encoded (%.2f bytes/value)\n",
              static_cast<double>(encoded_bytes) / (1024.0 * 1024.0),
              reader.num_rows() == 0
                  ? 0.0
                  : static_cast<double>(encoded_bytes) /
                        (static_cast<double>(reader.num_rows()) *
                         static_cast<double>(schema.num_columns())));
  for (const auto& [name, count] : encoding_counts) {
    std::printf("  encoding %-12s %zu blobs\n", name.c_str(), count);
  }
  return 0;
}

int RunShard(const std::string& in, const std::string& dir,
             size_t num_shards) {
  Timer timer;
  auto reader = ExtentFileReader::Open(in);
  if (!reader.ok()) return Fail(reader.status());
  auto table = (*reader)->ReadTable();
  if (!table.ok()) return Fail(table.status());
  auto plan = shard::MakeShardPlan((*table)->num_rows(), num_shards);
  if (!plan.ok()) return Fail(plan.status());
  auto slabs = shard::PackShardSlabs(**table, *plan, dir);
  if (!slabs.ok()) return Fail(slabs.status());
  for (const shard::ShardSlabInfo& s : *slabs) {
    std::fprintf(stderr, "  shard %u: rows [%" PRIu64 ", %" PRIu64 ") -> %s\n",
                 s.shard_index, s.row_begin, s.row_begin + s.rows,
                 s.path.c_str());
  }
  std::fprintf(stderr, "sharded %zu rows into %zu slabs in %.2fs -> %s\n",
               (*table)->num_rows(), slabs->size(), timer.ElapsedSeconds(),
               dir.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string cmd = argv[1];
  if (cmd == "pack" && argc == 4) return RunPack(argv[2], argv[3]);
  if (cmd == "shard" && argc == 6 && std::string(argv[4]) == "--shards") {
    return RunShard(argv[2], argv[3],
                    static_cast<size_t>(std::atoll(argv[5])));
  }
  if (cmd == "unpack" && argc == 4) return RunUnpack(argv[2], argv[3]);
  if (cmd == "verify" && argc == 3) return RunVerify(argv[2]);
  if (cmd == "gen") {
    size_t rows = 0;
    double skew = 1.0;
    uint64_t seed = 7;
    size_t batch = 4 * kExtentRows;
    std::string out;
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--rows" && i + 1 < argc) {
        rows = static_cast<size_t>(std::atoll(argv[++i]));
      } else if (arg == "--skew" && i + 1 < argc) {
        skew = std::atof(argv[++i]);
      } else if (arg == "--seed" && i + 1 < argc) {
        seed = static_cast<uint64_t>(std::atoll(argv[++i]));
      } else if (arg == "--batch" && i + 1 < argc) {
        batch = static_cast<size_t>(std::atoll(argv[++i]));
      } else if (arg[0] != '-' && out.empty()) {
        out = arg;
      } else {
        return Usage(argv[0]);
      }
    }
    if (rows == 0 || batch == 0 || out.empty()) return Usage(argv[0]);
    return RunGen(rows, skew, seed, batch, out);
  }
  return Usage(argv[0]);
}

}  // namespace
}  // namespace aqpp

int main(int argc, char** argv) { return aqpp::Run(argc, argv); }
