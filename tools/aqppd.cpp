// aqppd — the AQP++ query daemon.
//
//   aqppd --table t.bin [--state DIR | --measure COL --dims C1,C2]
//         [--host 127.0.0.1] [--port 7878] [--rate 0.02] [--k 50000]
//         [--workers 4] [--queue 64] [--per-session 16]
//         [--timeout-ms 0] [--cache 1024]
//         [--ingest] [--absorb-rows 4096] [--absorb-ms 250]
//         [--slow-ms 500] [--metrics] [--no-obs]
//
// --ingest enables the streaming-ingest subsystem (docs/ingest.md): the
// INGEST verb appends row batches into an exact in-memory delta, and a
// background absorber folds the delta into the cube/reservoir/synopsis
// every --absorb-rows rows or --absorb-ms milliseconds.
//
// Loads the table, prepares (or warm-starts) the engine, and serves the
// line protocol (docs/service.md) until SIGINT/SIGTERM. Clients: `aqppcli
// connect --port 7878 ["SQL"]` or anything that can speak
// newline-delimited key=value over TCP (nc works fine). Live metrics are
// served over the METRICS verb; --metrics additionally dumps the Prometheus
// exposition (and the slow-query log) to stdout at shutdown.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "core/engine.h"
#include "core/ingest.h"
#include "service/server.h"
#include "service/service.h"
#include "storage/io.h"

namespace {

using namespace aqpp;

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

struct Args {
  std::map<std::string, std::string> flags;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      std::string key = a.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.flags[key] = argv[++i];
      } else {
        args.flags[key] = "true";
      }
    }
  }
  return args;
}

std::string FlagOr(const Args& args, const std::string& key,
                   const std::string& fallback) {
  auto it = args.flags.find(key);
  return it == args.flags.end() ? fallback : it->second;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  aqppd --table t.bin [--state DIR | --measure COL "
               "--dims C1,C2]\n"
               "        [--host 127.0.0.1] [--port 7878] [--rate 0.02] "
               "[--k 50000]\n"
               "        [--workers 4] [--queue 64] [--per-session 16]\n"
               "        [--timeout-ms 0] [--cache 1024]\n"
               "        [--ingest] [--absorb-rows 4096] [--absorb-ms 250]\n"
               "        [--slow-ms 500] [--metrics] [--no-obs]\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  std::string table_path = FlagOr(args, "table", "");
  if (table_path.empty()) return Usage();

  auto table = ReadBinary(table_path);
  if (!table.ok()) return Fail(table.status());
  std::printf("loaded %zu rows from %s\n", (*table)->num_rows(),
              table_path.c_str());

  Catalog catalog;
  AQPP_CHECK_OK(catalog.Register("t", *table));
  std::string stem = table_path;
  size_t slash = stem.find_last_of('/');
  if (slash != std::string::npos) stem = stem.substr(slash + 1);
  size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos) stem = stem.substr(0, dot);
  if (stem != "t" && !stem.empty()) (void)catalog.Register(stem, *table);

  EngineOptions eopts;
  eopts.sample_rate = std::atof(FlagOr(args, "rate", "0.02").c_str());
  eopts.cube_budget =
      static_cast<size_t>(std::atoll(FlagOr(args, "k", "50000").c_str()));
  auto engine = AqppEngine::Create(*table, eopts);
  if (!engine.ok()) return Fail(engine.status());

  std::string state = FlagOr(args, "state", "");
  std::string measure = FlagOr(args, "measure", "");
  std::string dims = FlagOr(args, "dims", "");
  Timer prep_timer;
  if (!state.empty()) {
    Status st = (*engine)->LoadState(state);
    if (!st.ok()) return Fail(st);
    std::printf("warm-started from %s in %s\n", state.c_str(),
                FormatDuration(prep_timer.ElapsedSeconds()).c_str());
  } else if (!measure.empty() && !dims.empty()) {
    QueryTemplate tmpl;
    tmpl.func = AggregateFunction::kSum;
    auto agg_idx = (*table)->GetColumnIndex(measure);
    if (!agg_idx.ok()) return Fail(agg_idx.status());
    tmpl.agg_column = *agg_idx;
    for (const auto& name : SplitString(dims, ',')) {
      auto idx = (*table)->GetColumnIndex(std::string(TrimWhitespace(name)));
      if (!idx.ok()) return Fail(idx.status());
      tmpl.condition_columns.push_back(*idx);
    }
    Status st = (*engine)->Prepare(tmpl);
    if (!st.ok()) return Fail(st);
    std::printf("prepared %s in %s\n",
                tmpl.ToString((*table)->schema()).c_str(),
                FormatDuration(prep_timer.ElapsedSeconds()).c_str());
  } else {
    std::printf("no --state/--measure+--dims: serving plain AQP\n");
  }

  ServiceOptions sopts;
  sopts.admission.num_workers = static_cast<size_t>(
      std::atoll(FlagOr(args, "workers", "4").c_str()));
  sopts.admission.max_queue_depth = static_cast<size_t>(
      std::atoll(FlagOr(args, "queue", "64").c_str()));
  sopts.admission.max_per_session = static_cast<size_t>(
      std::atoll(FlagOr(args, "per-session", "16").c_str()));
  sopts.cache.capacity = static_cast<size_t>(
      std::atoll(FlagOr(args, "cache", "1024").c_str()));
  long long timeout_ms = std::atoll(FlagOr(args, "timeout-ms", "0").c_str());
  sopts.default_timeout_seconds =
      timeout_ms <= 0 ? 0 : static_cast<double>(timeout_ms) / 1000.0;
  long long slow_ms = std::atoll(FlagOr(args, "slow-ms", "500").c_str());
  sopts.slow_query_threshold_seconds =
      slow_ms <= 0 ? 0 : static_cast<double>(slow_ms) / 1000.0;
  if (FlagOr(args, "no-obs", "") == "true") obs::SetEnabled(false);
  bool dump_metrics = FlagOr(args, "metrics", "") == "true";
  QueryService service(EngineRef(engine->get()), sopts);

  std::unique_ptr<IngestManager> ingest;
  if (FlagOr(args, "ingest", "") == "true") {
    IngestOptions iopts;
    iopts.absorb_threshold_rows = static_cast<size_t>(
        std::atoll(FlagOr(args, "absorb-rows", "4096").c_str()));
    long long absorb_ms =
        std::atoll(FlagOr(args, "absorb-ms", "250").c_str());
    iopts.absorb_interval_seconds =
        absorb_ms <= 0 ? 0.25 : static_cast<double>(absorb_ms) / 1000.0;
    ingest = std::make_unique<IngestManager>(engine->get(), iopts);
    service.AttachIngest(ingest.get());
    if (Status st = ingest->Start(); !st.ok()) return Fail(st);
    std::printf("ingest enabled (absorb at %zu rows / %lld ms)\n",
                iopts.absorb_threshold_rows, absorb_ms);
  }

  ServerOptions server_opts;
  server_opts.host = FlagOr(args, "host", "127.0.0.1");
  server_opts.port = static_cast<int>(
      std::atoll(FlagOr(args, "port", "7878").c_str()));
  ServiceServer server(&service, &catalog, server_opts);
  Status st = server.Start();
  if (!st.ok()) return Fail(st);
  std::printf("aqppd listening on %s:%d (workers=%zu queue=%zu cache=%zu)\n",
              server_opts.host.c_str(), server.port(),
              sopts.admission.num_workers, sopts.admission.max_queue_depth,
              sopts.cache.capacity);
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("shutting down\n");
  server.Stop();
  service.Stop();
  if (ingest != nullptr) {
    ingest->Stop();
    IngestSnapshot snap = ingest->snapshot();
    std::printf("ingested %llu batches / %llu rows (%llu absorbed, "
                "%zu still in delta)\n",
                static_cast<unsigned long long>(snap.batches_committed),
                static_cast<unsigned long long>(snap.rows_committed),
                static_cast<unsigned long long>(snap.rows_absorbed),
                snap.delta_rows);
  }
  ServiceStats stats = service.stats();
  std::printf("served %llu queries (%llu cache hits, %llu rejected, "
              "%llu timed out, %llu slow)\n",
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.timed_out),
              static_cast<unsigned long long>(stats.slow_queries));
  if (dump_metrics) {
    std::printf("--- metrics ---\n%s",
                obs::Registry::Global().RenderPrometheus().c_str());
    std::string slow = service.slow_query_log().Render();
    if (!slow.empty()) {
      std::printf("--- slow queries (threshold %lld ms) ---\n%s",
                  static_cast<long long>(slow_ms), slow.c_str());
    }
  }
  return 0;
}
