// aqppcli — command-line front end for the AQP++ library.
//
//   aqppcli gen     --dataset tpcd|bigbench|tlctrip --rows N --out t.bin
//                   [--skew z] [--csv]
//   aqppcli info    --table t.bin
//   aqppcli prepare --table t.bin --measure COL --dims C1,C2[,...]
//                   [--k 50000] [--rate 0.02] --state DIR
//   aqppcli query   --table t.bin --state DIR "SELECT ..." [--exact]
//                   [--explain]
//   aqppcli connect [--host 127.0.0.1] [--port 7878] [--online]
//                   ["SELECT ..."]
//   aqppcli ingest  --table rows.bin [--host 127.0.0.1] [--port 7878]
//                   [--batch 1024]
//
// `prepare` persists the sample + BP-Cube; `query` warm-starts from that
// state and answers in sample time, printing the exact answer too when
// --exact is given. `connect` talks to a running aqppd: with a SQL
// argument it runs one query (retrying through backpressure) and exits —
// with --online it streams the progressive PROGRESS rounds first; without
// one it reads protocol lines from stdin (bare SQL is wrapped in QUERY) —
// an interactive session against the shared service. `ingest` streams the
// rows of a binary table file into a running daemon in INGEST batches
// (the daemon must run with --ingest and a schema-identical base table).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/engine.h"
#include "exec/executor.h"
#include "service/client.h"
#include "sql/binder.h"
#include "storage/io.h"
#include "workload/bigbench.h"
#include "workload/tlctrip.h"
#include "workload/tpcd_skew.h"

namespace {

using namespace aqpp;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;
};

// Valueless flags: the token after them is a positional (the SQL), not the
// flag's value — `connect --online "SELECT ..."` must not eat the query.
bool IsBooleanFlag(const std::string& key) {
  return key == "online" || key == "exact" || key == "explain" ||
         key == "csv";
}

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      std::string key = a.substr(2);
      if (!IsBooleanFlag(key) && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.flags[key] = argv[++i];
      } else {
        args.flags[key] = "true";
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

std::string FlagOr(const Args& args, const std::string& key,
                   const std::string& fallback) {
  auto it = args.flags.find(key);
  return it == args.flags.end() ? fallback : it->second;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  aqppcli gen --dataset tpcd|bigbench|tlctrip --rows N "
               "--out t.bin [--skew z] [--csv]\n"
               "  aqppcli info --table t.bin\n"
               "  aqppcli prepare --table t.bin --measure COL --dims C1,C2 "
               "[--k 50000] [--rate 0.02] --state DIR\n"
               "  aqppcli query --table t.bin --state DIR \"SELECT ...\" "
               "[--exact] [--explain]\n"
               "  aqppcli connect [--host 127.0.0.1] [--port 7878] "
               "[--online] [\"SELECT ...\"]\n"
               "  aqppcli ingest --table rows.bin [--host 127.0.0.1] "
               "[--port 7878] [--batch 1024]\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int RunGen(const Args& args) {
  std::string dataset = FlagOr(args, "dataset", "tpcd");
  size_t rows = static_cast<size_t>(
      std::atoll(FlagOr(args, "rows", "1000000").c_str()));
  std::string out = FlagOr(args, "out", "");
  if (out.empty()) return Usage();

  Timer timer;
  Result<std::shared_ptr<Table>> table = Status::InvalidArgument(
      "unknown dataset '" + dataset + "' (tpcd | bigbench | tlctrip)");
  if (dataset == "tpcd") {
    double skew = std::atof(FlagOr(args, "skew", "1.0").c_str());
    table = GenerateTpcdSkew({.rows = rows, .skew = skew});
  } else if (dataset == "bigbench") {
    table = GenerateBigBench({.rows = rows});
  } else if (dataset == "tlctrip") {
    table = GenerateTlcTrip({.rows = rows});
  }
  if (!table.ok()) return Fail(table.status());

  Status st = FlagOr(args, "csv", "") == "true"
                  ? WriteCsv(**table, out)
                  : WriteBinary(**table, out);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %zu rows (%s) to %s in %s\n", (*table)->num_rows(),
              (*table)->schema().ToString().c_str(), out.c_str(),
              FormatDuration(timer.ElapsedSeconds()).c_str());
  return 0;
}

int RunInfo(const Args& args) {
  std::string path = FlagOr(args, "table", "");
  if (path.empty()) return Usage();
  auto table = ReadBinary(path);
  if (!table.ok()) return Fail(table.status());
  std::printf("%s\nrows: %zu\nmemory: %s\n",
              (*table)->schema().ToString().c_str(), (*table)->num_rows(),
              FormatBytes(static_cast<double>((*table)->MemoryUsage()))
                  .c_str());
  for (size_t c = 0; c < (*table)->num_columns(); ++c) {
    const Column& col = (*table)->column(c);
    if (col.type() == DataType::kDouble) continue;
    std::printf("  %-20s [%lld, %lld]\n",
                (*table)->schema().column(c).name.c_str(),
                static_cast<long long>(col.MinInt64().value_or(0)),
                static_cast<long long>(col.MaxInt64().value_or(0)));
  }
  return 0;
}

int RunPrepare(const Args& args) {
  std::string table_path = FlagOr(args, "table", "");
  std::string measure = FlagOr(args, "measure", "");
  std::string dims = FlagOr(args, "dims", "");
  std::string state = FlagOr(args, "state", "");
  if (table_path.empty() || measure.empty() || dims.empty() || state.empty()) {
    return Usage();
  }
  auto table = ReadBinary(table_path);
  if (!table.ok()) return Fail(table.status());

  EngineOptions opts;
  opts.sample_rate = std::atof(FlagOr(args, "rate", "0.02").c_str());
  opts.cube_budget = static_cast<size_t>(
      std::atoll(FlagOr(args, "k", "50000").c_str()));
  auto engine = AqppEngine::Create(*table, opts);
  if (!engine.ok()) return Fail(engine.status());

  QueryTemplate tmpl;
  tmpl.func = AggregateFunction::kSum;
  auto agg_idx = (*table)->GetColumnIndex(measure);
  if (!agg_idx.ok()) return Fail(agg_idx.status());
  tmpl.agg_column = *agg_idx;
  for (const auto& name : SplitString(dims, ',')) {
    auto idx = (*table)->GetColumnIndex(std::string(TrimWhitespace(name)));
    if (!idx.ok()) return Fail(idx.status());
    tmpl.condition_columns.push_back(*idx);
  }

  Timer timer;
  Status st = (*engine)->Prepare(tmpl);
  if (!st.ok()) return Fail(st);
  st = (*engine)->SaveState(state);
  if (!st.ok()) return Fail(st);
  const auto& stats = (*engine)->prepare_stats();
  std::printf("prepared in %s: sample %zu rows (%s), cube %zu cells (%s), "
              "state saved to %s\n",
              FormatDuration(timer.ElapsedSeconds()).c_str(),
              (*engine)->sample().size(),
              FormatBytes(static_cast<double>(stats.sample_bytes)).c_str(),
              stats.cube_cells,
              FormatBytes(static_cast<double>(stats.cube_bytes)).c_str(),
              state.c_str());
  return 0;
}

int RunQuery(const Args& args) {
  std::string table_path = FlagOr(args, "table", "");
  std::string state = FlagOr(args, "state", "");
  if (table_path.empty() || args.positional.empty()) return Usage();
  std::string sql = args.positional[0];

  auto table = ReadBinary(table_path);
  if (!table.ok()) return Fail(table.status());
  Catalog catalog;
  // Register under a generic name and the file stem so either works in SQL.
  AQPP_CHECK_OK(catalog.Register("t", *table));
  std::string stem = table_path;
  size_t slash = stem.find_last_of('/');
  if (slash != std::string::npos) stem = stem.substr(slash + 1);
  size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos) stem = stem.substr(0, dot);
  if (stem != "t" && !stem.empty()) (void)catalog.Register(stem, *table);

  auto bound = ParseAndBind(sql, catalog);
  if (!bound.ok()) return Fail(bound.status());

  EngineOptions opts;
  opts.sample_rate = std::atof(FlagOr(args, "rate", "0.02").c_str());
  auto engine = AqppEngine::Create(*table, opts);
  if (!engine.ok()) return Fail(engine.status());
  if (!state.empty()) {
    Status st = (*engine)->LoadState(state);
    if (!st.ok()) return Fail(st);
  }

  if (FlagOr(args, "explain", "") == "true") {
    auto plan = (*engine)->Explain(bound->query);
    if (!plan.ok()) return Fail(plan.status());
    std::printf("%s", plan->c_str());
    return 0;
  }

  Timer timer;
  auto result = (*engine)->Execute(bound->query);
  if (!result.ok()) return Fail(result.status());
  std::printf("AQP++: %s  (%s%s)\n", result->ci.ToString().c_str(),
              FormatDuration(timer.ElapsedSeconds()).c_str(),
              result->used_pre ? ", via BP-Cube" : ", plain sample");

  if (FlagOr(args, "exact", "") == "true") {
    Timer exact_timer;
    ExactExecutor exact(table->get());
    auto truth = exact.Execute(bound->query);
    if (!truth.ok()) return Fail(truth.status());
    std::printf("exact: %.10g  (%s, full scan)\n", *truth,
                FormatDuration(exact_timer.ElapsedSeconds()).c_str());
  }
  return 0;
}

void PrintReply(const QueryReply& reply) {
  std::printf("%.10g ± %.10g  [%.10g, %.10g] @%.0f%%%s%s%s  "
              "(queue %.1f ms, exec %.1f ms)\n",
              reply.estimate, reply.half_width, reply.lo, reply.hi,
              reply.level * 100, reply.used_pre ? ", via BP-Cube" : "",
              reply.cache_hit ? ", cached" : "",
              reply.partial ? ", PARTIAL (deadline)" : "", reply.queue_ms,
              reply.exec_ms);
}

int RunConnect(const Args& args) {
  std::string host = FlagOr(args, "host", "127.0.0.1");
  int port = std::atoi(FlagOr(args, "port", "7878").c_str());
  auto client = ServiceClient::Connect(host, port);
  if (!client.ok()) return Fail(client.status());

  auto session = client->Hello("aqppcli");
  if (!session.ok()) return Fail(session.status());

  if (!args.positional.empty()) {
    if (FlagOr(args, "online", "") == "true") {
      // Streamed: print every PROGRESS round, then the final answer.
      if (Status st = client->SetMode("online"); !st.ok()) return Fail(st);
      auto reply = client->QueryOnline(
          args.positional[0], [](const ProgressLine& p) {
            std::printf("round %llu: %.10g ± %.10g  (%llu rows)\n",
                        static_cast<unsigned long long>(p.round), p.estimate,
                        p.half_width,
                        static_cast<unsigned long long>(p.rows_used));
            return true;
          });
      if (!reply.ok()) return Fail(reply.status());
      PrintReply(*reply);
      return 0;
    }
    // One-shot: run the query (riding out backpressure) and exit.
    auto reply = client->QueryWithRetry(args.positional[0]);
    if (!reply.ok()) return Fail(reply.status());
    PrintReply(*reply);
    return 0;
  }

  std::printf("connected to %s:%d (session %llu); SQL or "
              "PING/SET/STATS/QUIT\n",
              host.c_str(), port,
              static_cast<unsigned long long>(*session));
  std::string line;
  while (std::getline(std::cin, line)) {
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty()) continue;
    std::string verb = ToLowerAscii(
        trimmed.substr(0, trimmed.find(' ')));
    bool is_protocol = verb == "ping" || verb == "set" || verb == "stats" ||
                       verb == "quit" || verb == "hello" || verb == "query";
    std::string request =
        is_protocol ? std::string(trimmed) : "QUERY " + std::string(trimmed);
    auto response = client->Call(request);
    if (!response.ok()) return Fail(response.status());
    std::printf("%s\n", FormatResponse(*response).c_str());
    if (verb == "quit") break;
  }
  return 0;
}

int RunIngest(const Args& args) {
  std::string table_path = FlagOr(args, "table", "");
  if (table_path.empty()) return Usage();
  std::string host = FlagOr(args, "host", "127.0.0.1");
  int port = std::atoi(FlagOr(args, "port", "7878").c_str());
  size_t batch_rows = static_cast<size_t>(
      std::atoll(FlagOr(args, "batch", "1024").c_str()));
  if (batch_rows == 0) batch_rows = 1024;

  auto table = ReadBinary(table_path);
  if (!table.ok()) return Fail(table.status());
  auto client = ServiceClient::Connect(host, port);
  if (!client.ok()) return Fail(client.status());
  auto session = client->Hello("aqppcli-ingest");
  if (!session.ok()) return Fail(session.status());

  Timer timer;
  const size_t n = (*table)->num_rows();
  uint64_t sent = 0;
  IngestReply last;
  for (size_t begin = 0; begin < n; begin += batch_rows) {
    const size_t end = std::min(n, begin + batch_rows);
    std::vector<size_t> rows;
    rows.reserve(end - begin);
    for (size_t r = begin; r < end; ++r) rows.push_back(r);
    auto batch = TakeRows(**table, rows);
    if (!batch.ok()) return Fail(batch.status());
    auto ack = client->Ingest(**batch);
    if (!ack.ok()) return Fail(ack.status());
    sent += ack->appended;
    last = *ack;
  }
  const double elapsed = timer.ElapsedSeconds();
  std::printf("ingested %llu rows in %s (%.0f rows/s); generation %llu, "
              "delta %llu, total %llu\n",
              static_cast<unsigned long long>(sent),
              FormatDuration(elapsed).c_str(),
              elapsed > 0 ? static_cast<double>(sent) / elapsed : 0.0,
              static_cast<unsigned long long>(last.generation),
              static_cast<unsigned long long>(last.delta_rows),
              static_cast<unsigned long long>(last.total_rows));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.command == "gen") return RunGen(args);
  if (args.command == "info") return RunInfo(args);
  if (args.command == "prepare") return RunPrepare(args);
  if (args.command == "query") return RunQuery(args);
  if (args.command == "connect") return RunConnect(args);
  if (args.command == "ingest") return RunIngest(args);
  return Usage();
}
