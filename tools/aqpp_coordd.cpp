// aqpp-coordd — the scatter-gather coordinator daemon and its merge gate.
//
// Serve mode:
//   aqpp-coordd --workers h:p[/h:p...],h:p,... --schema slab.ext
//               [--host 127.0.0.1] [--port 7979] [--mode sample|exact|engine]
//               [--timeout 2.0] [--seed 42] [--cache 1024]
//
//   `--workers` lists one comma-separated entry per shard; replicas of the
//   same shard are '/'-separated within the entry. `--schema` points at any
//   shard slab: its schema + string dictionaries (which table_pack shard
//   copies in full to every slab) bind incoming SQL; its rows are not read.
//
// Gate mode (CI):
//   aqpp-coordd --workers ... --gate --ref full.ext --measure COL
//               --dims C1,C2 [--mode exact] [--expect-degraded]
//
//   Runs a fixed query battery and enforces the merge contracts:
//     * exact mode: every merged answer is bit-identical (memcmp of the
//       doubles) to a single-table ExactExecutor run over --ref;
//     * determinism: two cache-bypassing scatters fingerprint identically;
//     * --expect-degraded (run after killing a worker): every answer is
//       flagged degraded, covers fewer shards than the topology, and is
//       never cached.
//   Exits nonzero on the first violated invariant.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <csignal>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "exec/executor.h"
#include "service/result_cache.h"
#include "shard/coordinator.h"
#include "shard/coordinator_server.h"
#include "storage/extent_file.h"

namespace {

using namespace aqpp;

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: aqpp-coordd --workers h:p[/h:p...],h:p,... \\\n"
      "         ( --schema slab.ext [--host H] [--port P] "
      "[--mode sample|exact|engine]\n"
      "           [--timeout SEC] [--seed S] [--cache N]\n"
      "         | --gate --ref full.ext --measure COL --dims C1,C2\n"
      "           [--mode exact] [--expect-degraded] )\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<std::vector<std::vector<shard::ReplicaEndpoint>>> ParseWorkers(
    const std::string& spec) {
  std::vector<std::vector<shard::ReplicaEndpoint>> shards;
  for (const std::string& entry : SplitString(spec, ',')) {
    std::vector<shard::ReplicaEndpoint> replicas;
    for (const std::string& hp : SplitString(entry, '/')) {
      size_t colon = hp.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == hp.size()) {
        return Status::InvalidArgument("bad endpoint '" + hp +
                                       "' (want host:port)");
      }
      shard::ReplicaEndpoint ep;
      ep.host = hp.substr(0, colon);
      ep.port = static_cast<int>(std::atoll(hp.c_str() + colon + 1));
      replicas.push_back(std::move(ep));
    }
    if (replicas.empty()) {
      return Status::InvalidArgument("empty shard entry in --workers");
    }
    shards.push_back(std::move(replicas));
  }
  if (shards.empty()) {
    return Status::InvalidArgument("--workers listed no shards");
  }
  return shards;
}

Result<shard::MergeMode> ParseMode(const std::string& mode) {
  if (mode == "sample") return shard::MergeMode::kSample;
  if (mode == "exact") return shard::MergeMode::kExact;
  if (mode == "engine") return shard::MergeMode::kEngine;
  return Status::InvalidArgument("unknown --mode '" + mode + "'");
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// The gate battery: full-table aggregates plus half- and quarter-domain
// range restrictions on the first one or two template dimensions.
std::vector<RangeQuery> GateBattery(size_t agg_column,
                                    const std::vector<size_t>& dims,
                                    const Table& ref) {
  std::vector<RangeQuery> battery;
  auto scalar = [&](AggregateFunction func) {
    RangeQuery q;
    q.func = func;
    q.agg_column = agg_column;
    return q;
  };
  battery.push_back(scalar(AggregateFunction::kCount));
  battery.push_back(scalar(AggregateFunction::kSum));
  battery.push_back(scalar(AggregateFunction::kAvg));
  battery.push_back(scalar(AggregateFunction::kVar));
  if (!dims.empty()) {
    const Column& col = ref.column(dims[0]);
    auto lo = col.MinInt64();
    auto hi = col.MaxInt64();
    if (lo.ok() && hi.ok() && *lo < *hi) {
      int64_t mid = *lo + (*hi - *lo) / 2;
      RangeQuery q = scalar(AggregateFunction::kSum);
      q.predicate.Add({dims[0], *lo, mid});
      battery.push_back(q);
      q = scalar(AggregateFunction::kCount);
      q.predicate.Add({dims[0], mid, *hi});
      battery.push_back(q);
      if (dims.size() > 1) {
        const Column& col2 = ref.column(dims[1]);
        auto lo2 = col2.MinInt64();
        auto hi2 = col2.MaxInt64();
        if (lo2.ok() && hi2.ok() && *lo2 < *hi2) {
          q = scalar(AggregateFunction::kAvg);
          q.predicate.Add({dims[0], *lo, mid});
          q.predicate.Add({dims[1], *lo2 + (*hi2 - *lo2) / 4, *hi2});
          battery.push_back(q);
        }
      }
    }
  }
  return battery;
}

int RunGate(shard::ShardCoordinator& coordinator,
            const std::map<std::string, std::string>& flags) {
  const std::string ref_path = FlagOr(flags, "ref", "");
  const std::string measure = FlagOr(flags, "measure", "");
  const std::string dims_flag = FlagOr(flags, "dims", "");
  if (ref_path.empty() || measure.empty() || dims_flag.empty()) {
    return Usage();
  }
  const bool expect_degraded = FlagOr(flags, "expect-degraded", "") == "true";

  auto reader = ExtentFileReader::Open(ref_path);
  if (!reader.ok()) return Fail(reader.status());
  auto ref = (*reader)->ReadTable();
  if (!ref.ok()) return Fail(ref.status());
  auto agg = (*ref)->GetColumnIndex(measure);
  if (!agg.ok()) return Fail(agg.status());
  std::vector<size_t> dims;
  for (const auto& name : SplitString(dims_flag, ',')) {
    auto idx = (*ref)->GetColumnIndex(std::string(TrimWhitespace(name)));
    if (!idx.ok()) return Fail(idx.status());
    dims.push_back(*idx);
  }

  if (coordinator.total_rows() != (*ref)->num_rows() && !expect_degraded) {
    return Fail(Status::FailedPrecondition(StrFormat(
        "topology covers %llu rows but --ref holds %zu",
        static_cast<unsigned long long>(coordinator.total_rows()),
        (*ref)->num_rows())));
  }

  ExactExecutor exact(ref->get());
  std::vector<RangeQuery> battery = GateBattery(*agg, dims, **ref);
  int failures = 0;
  uint64_t fingerprint[2] = {0, 0};
  for (size_t qi = 0; qi < battery.size(); ++qi) {
    const RangeQuery& query = battery[qi];
    const std::string label = query.ToString((*ref)->schema());

    if (expect_degraded) {
      for (int round = 0; round < 2; ++round) {
        auto answer = coordinator.Query(query);
        if (!answer.ok()) {
          std::fprintf(stderr, "FAIL [%s]: degraded query errored: %s\n",
                       label.c_str(), answer.status().ToString().c_str());
          ++failures;
          break;
        }
        if (!answer->merged.degraded ||
            answer->merged.shards_answered >= answer->merged.shards_total) {
          std::fprintf(stderr,
                       "FAIL [%s]: expected a degraded partial answer, got "
                       "degraded=%d shards=%u/%u\n",
                       label.c_str(), answer->merged.degraded ? 1 : 0,
                       answer->merged.shards_answered,
                       answer->merged.shards_total);
          ++failures;
        }
        if (answer->cache_hit) {
          std::fprintf(stderr,
                       "FAIL [%s]: degraded answer was served from cache\n",
                       label.c_str());
          ++failures;
        }
        if (answer->merged.ci.half_width < 0) {
          std::fprintf(stderr, "FAIL [%s]: negative half width\n",
                       label.c_str());
          ++failures;
        }
      }
      continue;
    }

    // Bit-identity leg: merged exact answer == single-table executor.
    auto truth = exact.Execute(query);
    if (!truth.ok()) return Fail(truth.status());
    auto answer = coordinator.Query(query);
    if (!answer.ok()) {
      std::fprintf(stderr, "FAIL [%s]: %s\n", label.c_str(),
                   answer.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (!SameBits(answer->merged.ci.estimate, *truth)) {
      std::fprintf(stderr,
                   "FAIL [%s]: merged %.17g != single-engine %.17g\n",
                   label.c_str(), answer->merged.ci.estimate, *truth);
      ++failures;
    }
    if (answer->merged.degraded) {
      std::fprintf(stderr, "FAIL [%s]: unexpected degraded answer\n",
                   label.c_str());
      ++failures;
    }
    // Determinism leg: two cache-bypassing scatters, merged independently,
    // must fingerprint identically.
    for (int round = 0; round < 2; ++round) {
      auto partials = coordinator.Scatter(query, answer->seed);
      shard::MergeOptions merge;
      merge.mode = coordinator.options().mode;
      merge.total_rows = coordinator.total_rows();
      auto merged = shard::MergePartials(query, partials, merge);
      if (!merged.ok()) {
        std::fprintf(stderr, "FAIL [%s]: re-scatter errored: %s\n",
                     label.c_str(), merged.status().ToString().c_str());
        ++failures;
        continue;
      }
      std::string row =
          StrFormat("%zu %.17g %.17g %d", qi, merged->ci.estimate,
                    merged->ci.half_width, merged->degraded ? 1 : 0);
      fingerprint[round] ^= Fnv1a64(row);
    }
    std::printf("ok [%s] estimate=%.17g\n", label.c_str(),
                answer->merged.ci.estimate);
  }
  if (!expect_degraded && fingerprint[0] != fingerprint[1]) {
    std::fprintf(stderr,
                 "FAIL: scatter fingerprints differ across rounds "
                 "(%llx vs %llx)\n",
                 static_cast<unsigned long long>(fingerprint[0]),
                 static_cast<unsigned long long>(fingerprint[1]));
    ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr, "GATE FAILED: %d violation(s)\n", failures);
    return 1;
  }
  std::printf("GATE OK: %zu queries, fingerprint %llx\n", battery.size(),
              static_cast<unsigned long long>(fingerprint[0]));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      std::string key = a.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags[key] = argv[++i];
      } else {
        flags[key] = "true";
      }
    }
  }
  const std::string workers = FlagOr(flags, "workers", "");
  if (workers.empty()) return Usage();
  auto endpoints = ParseWorkers(workers);
  if (!endpoints.ok()) return Fail(endpoints.status());

  shard::CoordinatorOptions copts;
  auto mode = ParseMode(FlagOr(
      flags, "mode", FlagOr(flags, "gate", "") == "true" ? "exact" : "sample"));
  if (!mode.ok()) return Fail(mode.status());
  copts.mode = *mode;
  copts.shard_timeout_seconds = std::atof(FlagOr(flags, "timeout", "2.0").c_str());
  copts.seed =
      static_cast<uint64_t>(std::atoll(FlagOr(flags, "seed", "42").c_str()));
  copts.cache_capacity =
      static_cast<size_t>(std::atoll(FlagOr(flags, "cache", "1024").c_str()));

  shard::ShardCoordinator coordinator(*endpoints, copts);
  if (Status st = coordinator.Connect(); !st.ok()) return Fail(st);
  std::fprintf(stderr, "connected: %zu shards, %llu rows\n",
               coordinator.num_shards(),
               static_cast<unsigned long long>(coordinator.total_rows()));

  if (FlagOr(flags, "gate", "") == "true") {
    return RunGate(coordinator, flags);
  }

  const std::string schema_path = FlagOr(flags, "schema", "");
  if (schema_path.empty()) return Usage();
  auto reader = ExtentFileReader::Open(schema_path);
  if (!reader.ok()) return Fail(reader.status());
  auto schema_table = (*reader)->ReadTable();
  if (!schema_table.ok()) return Fail(schema_table.status());
  Catalog catalog;
  AQPP_CHECK_OK(catalog.Register("t", *schema_table));

  shard::CoordinatorServerOptions sopts;
  sopts.host = FlagOr(flags, "host", "127.0.0.1");
  sopts.port =
      static_cast<int>(std::atoll(FlagOr(flags, "port", "7979").c_str()));
  shard::CoordinatorServer server(&coordinator, &catalog, sopts);
  if (Status st = server.Start(); !st.ok()) return Fail(st);
  std::printf("listening on %s:%d\n", sopts.host.c_str(), server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "coordinator shutting down\n");
  server.Stop();
  return 0;
}
