// aqpp-shardd — one shard worker daemon.
//
//   aqpp-shardd --dir DIR --shard I --measure COL --dims C1,C2
//               [--host 127.0.0.1] [--port 0] [--sample 4096] [--k 1024]
//               [--seed 42] [--level 0.95]
//
// Loads shard I's slab from DIR/MANIFEST (written by `table_pack shard`),
// builds the shard's BP-Cube + reservoir in one streaming pass, and serves
// the shard verbs (SHARDINFO / PARTIAL, docs/sharding.md) until
// SIGINT/SIGTERM. With --port 0 the kernel picks a free port; the chosen
// port is printed as `listening on HOST:PORT` so launch scripts can scrape
// it.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "shard/partition.h"
#include "shard/worker.h"
#include "shard/worker_server.h"
#include "storage/extent_file.h"

namespace {

using namespace aqpp;

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Usage() {
  std::fprintf(stderr,
               "usage: aqpp-shardd --dir DIR --shard I --measure COL "
               "--dims C1,C2\n"
               "                   [--host 127.0.0.1] [--port 0] "
               "[--sample 4096]\n"
               "                   [--k 1024] [--seed 42] [--level 0.95]\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      std::string key = a.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags[key] = argv[++i];
      } else {
        flags[key] = "true";
      }
    }
  }
  const std::string dir = FlagOr(flags, "dir", "");
  const std::string shard_flag = FlagOr(flags, "shard", "");
  const std::string measure = FlagOr(flags, "measure", "");
  const std::string dims = FlagOr(flags, "dims", "");
  if (dir.empty() || shard_flag.empty() || measure.empty() || dims.empty()) {
    return Usage();
  }
  const uint32_t shard_index =
      static_cast<uint32_t>(std::atoll(shard_flag.c_str()));

  auto manifest = shard::ReadShardManifest(dir);
  if (!manifest.ok()) return Fail(manifest.status());
  if (shard_index >= manifest->size()) {
    return Fail(Status::InvalidArgument(
        StrFormat("shard %u not in manifest (%zu shards)", shard_index,
                  manifest->size())));
  }
  const shard::ShardSlabInfo& info = (*manifest)[shard_index];
  const std::string slab_path = dir + "/" + info.path;

  // Resolve template column names against the slab's schema.
  QueryTemplate tmpl;
  tmpl.func = AggregateFunction::kSum;
  {
    auto reader = ExtentFileReader::Open(slab_path);
    if (!reader.ok()) return Fail(reader.status());
    const Schema& schema = (*reader)->schema();
    auto index_of = [&schema](const std::string& name) -> Result<size_t> {
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        if (schema.column(c).name == name) return c;
      }
      return Status::NotFound("no column named '" + name + "'");
    };
    auto agg = index_of(measure);
    if (!agg.ok()) return Fail(agg.status());
    tmpl.agg_column = *agg;
    for (const auto& name : SplitString(dims, ',')) {
      auto idx = index_of(std::string(TrimWhitespace(name)));
      if (!idx.ok()) return Fail(idx.status());
      tmpl.condition_columns.push_back(*idx);
    }
  }

  shard::ShardWorkerOptions wopts;
  wopts.sample_size =
      static_cast<size_t>(std::atoll(FlagOr(flags, "sample", "4096").c_str()));
  wopts.cube_budget =
      static_cast<size_t>(std::atoll(FlagOr(flags, "k", "1024").c_str()));
  wopts.base_seed =
      static_cast<uint64_t>(std::atoll(FlagOr(flags, "seed", "42").c_str()));
  wopts.confidence_level = std::atof(FlagOr(flags, "level", "0.95").c_str());

  Timer build_timer;
  auto worker = shard::ShardWorker::BuildFromSlab(
      slab_path, tmpl, shard_index, info.num_shards, info.row_begin, wopts);
  if (!worker.ok()) return Fail(worker.status());
  std::fprintf(stderr,
               "shard %u/%u: %llu rows [%llu, %llu), %llu sample rows, "
               "built in %.2fs\n",
               shard_index, info.num_shards,
               static_cast<unsigned long long>((*worker)->rows()),
               static_cast<unsigned long long>(info.row_begin),
               static_cast<unsigned long long>(info.row_begin + info.rows),
               static_cast<unsigned long long>((*worker)->sample_rows()),
               build_timer.ElapsedSeconds());

  shard::WorkerServerOptions sopts;
  sopts.host = FlagOr(flags, "host", "127.0.0.1");
  sopts.port = static_cast<int>(std::atoll(FlagOr(flags, "port", "0").c_str()));
  shard::WorkerServer server(worker->get(), sopts);
  if (Status st = server.Start(); !st.ok()) return Fail(st);
  std::printf("listening on %s:%d\n", sopts.host.c_str(), server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "shard %u shutting down\n", shard_index);
  server.Stop();
  return 0;
}
