#include "baseline/apa_plus.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/timer.h"
#include "cube/partition.h"
#include "linalg/matrix.h"
#include "sampling/samplers.h"
#include "stats/descriptive.h"

namespace aqpp {

Result<std::unique_ptr<ApaPlusEngine>> ApaPlusEngine::Create(
    std::shared_ptr<Table> table, ApaPlusOptions options) {
  if (table == nullptr || table->num_rows() == 0) {
    return Status::InvalidArgument("table must be non-empty");
  }
  return std::unique_ptr<ApaPlusEngine>(
      new ApaPlusEngine(std::move(table), options));
}

Status ApaPlusEngine::Prepare(const QueryTemplate& tmpl) {
  template_ = tmpl;
  AQPP_ASSIGN_OR_RETURN(sample_, CreateUniformSample(
                                     *table_, options_.sample_rate, rng_));
  prepared_ = true;

  const Column& measure = table_->column(tmpl.agg_column);
  total_sum_ = 0;
  for (size_t r = 0; r < table_->num_rows(); ++r) {
    total_sum_ += measure.GetDouble(r);
  }
  total_count_ = static_cast<double>(table_->num_rows());

  facts_.clear();
  for (size_t c : tmpl.condition_columns) {
    FactTable fact;
    fact.column = c;
    AQPP_ASSIGN_OR_RETURN(fact.values, DistinctSorted(*table_, c));
    fact.prefix_sum.assign(fact.values.size(), 0.0);
    fact.prefix_count.assign(fact.values.size(), 0.0);
    const auto& data = table_->column(c).Int64Data();
    for (size_t r = 0; r < table_->num_rows(); ++r) {
      size_t idx = static_cast<size_t>(
          std::lower_bound(fact.values.begin(), fact.values.end(), data[r]) -
          fact.values.begin());
      fact.prefix_sum[idx] += measure.GetDouble(r);
      fact.prefix_count[idx] += 1.0;
    }
    for (size_t i = 1; i < fact.values.size(); ++i) {
      fact.prefix_sum[i] += fact.prefix_sum[i - 1];
      fact.prefix_count[i] += fact.prefix_count[i - 1];
    }
    facts_.push_back(std::move(fact));
  }
  return Status::OK();
}

Result<ApaPlusEngine::Marginal> ApaPlusEngine::LookupFact(size_t column,
                                                          int64_t lo,
                                                          int64_t hi) const {
  for (const auto& fact : facts_) {
    if (fact.column != column) continue;
    auto prefix_at = [&](int64_t v, const std::vector<double>& arr) {
      // Sum over values <= v.
      auto it = std::upper_bound(fact.values.begin(), fact.values.end(), v);
      if (it == fact.values.begin()) return 0.0;
      return arr[static_cast<size_t>(it - fact.values.begin()) - 1];
    };
    Marginal m;
    m.sum = prefix_at(hi, fact.prefix_sum) - prefix_at(lo - 1, fact.prefix_sum);
    m.count =
        prefix_at(hi, fact.prefix_count) - prefix_at(lo - 1, fact.prefix_count);
    return m;
  }
  return Status::NotFound("no 1-D facts for the requested column");
}

size_t ApaPlusEngine::FactBytes() const {
  size_t bytes = 0;
  for (const auto& f : facts_) {
    bytes += f.values.capacity() * sizeof(int64_t) +
             (f.prefix_sum.capacity() + f.prefix_count.capacity()) *
                 sizeof(double);
  }
  return bytes;
}

Result<ApproximateResult> ApaPlusEngine::Execute(const RangeQuery& query) {
  if (!prepared_) return Status::FailedPrecondition("call Prepare() first");
  if (query.func != AggregateFunction::kSum &&
      query.func != AggregateFunction::kCount) {
    return Status::Unimplemented("APA+ baseline supports SUM/COUNT");
  }
  Timer timer;
  const size_t n = sample_.size();
  const Table& rows = *sample_.rows;
  const Column& measure = rows.column(query.agg_column);

  // Per-dimension range of the query (intersected per column).
  struct DimRange {
    size_t column;
    int64_t lo, hi;
  };
  std::vector<DimRange> ranges;
  for (size_t c : template_.condition_columns) {
    int64_t lo = std::numeric_limits<int64_t>::min();
    int64_t hi = std::numeric_limits<int64_t>::max();
    for (const auto& cond : query.predicate.conditions()) {
      if (cond.column == c) {
        lo = std::max(lo, cond.lo);
        hi = std::min(hi, cond.hi);
      }
    }
    ranges.push_back({c, lo, hi});
  }

  // Constraint rows: for each dimension, SUM and COUNT of the 1-D slice;
  // plus the two table totals.
  const size_t m = 2 * ranges.size() + 2;
  Matrix constraints(m, n);
  std::vector<double> targets(m);
  std::vector<std::vector<uint8_t>> dim_mask(ranges.size(),
                                             std::vector<uint8_t>(n, 0));
  for (size_t i = 0; i < ranges.size(); ++i) {
    const auto& data = rows.column(ranges[i].column).Int64Data();
    for (size_t j = 0; j < n; ++j) {
      dim_mask[i][j] = static_cast<uint8_t>(data[j] >= ranges[i].lo &&
                                            data[j] <= ranges[i].hi);
    }
    AQPP_ASSIGN_OR_RETURN(auto fact,
                          LookupFact(ranges[i].column, ranges[i].lo,
                                     ranges[i].hi));
    for (size_t j = 0; j < n; ++j) {
      double a = measure.GetDouble(j);
      constraints(2 * i, j) = dim_mask[i][j] ? a : 0.0;
      constraints(2 * i + 1, j) = dim_mask[i][j] ? 1.0 : 0.0;
    }
    targets[2 * i] = fact.sum;
    targets[2 * i + 1] = fact.count;
  }
  for (size_t j = 0; j < n; ++j) {
    constraints(m - 2, j) = measure.GetDouble(j);
    constraints(m - 1, j) = 1.0;
  }
  targets[m - 2] = total_sum_;
  targets[m - 1] = total_count_;

  // Full-query mask on the sample.
  AQPP_ASSIGN_OR_RETURN(auto q_mask, query.predicate.EvaluateMask(rows));

  auto estimate_with = [&](const std::vector<double>& weights,
                           const std::vector<size_t>* resample) -> double {
    // Calibrate weights against the facts, then estimate the query.
    // When `resample` is set, constraints/estimates use the resampled rows.
    std::vector<double> w0(n), est_weights;
    if (resample == nullptr) {
      w0 = weights;
    } else {
      // Bootstrap: rebuild the weight vector over resampled rows by index.
      w0.assign(n, 0.0);
      for (size_t idx : *resample) w0[idx] += weights[idx] > 0 ? weights[idx] : 0.0;
      // Rescale so the total weight is preserved in expectation.
      double orig = 0, cur = 0;
      for (size_t j = 0; j < n; ++j) {
        orig += weights[j];
        cur += w0[j];
      }
      if (cur > 0) {
        for (double& w : w0) w *= orig / cur;
      }
    }
    auto calibrated = EqualityConstrainedProjection(w0, constraints, targets);
    const std::vector<double>& w =
        calibrated.ok() ? calibrated.value() : w0;
    double est = 0;
    for (size_t j = 0; j < n; ++j) {
      if (!q_mask[j]) continue;
      double y = query.func == AggregateFunction::kSum ? measure.GetDouble(j)
                                                       : 1.0;
      est += w[j] * y;
    }
    return est;
  };

  ApproximateResult out;
  out.ci.level = options_.confidence_level;
  out.ci.estimate = estimate_with(sample_.weights, nullptr);

  // Bootstrap CI around the calibrated estimator.
  std::vector<double> boot;
  boot.reserve(options_.bootstrap_resamples);
  std::vector<size_t> resample(n);
  for (size_t b = 0; b < options_.bootstrap_resamples; ++b) {
    for (size_t j = 0; j < n; ++j) {
      resample[j] = static_cast<size_t>(rng_.NextBounded(n));
    }
    boot.push_back(estimate_with(sample_.weights, &resample));
  }
  double alpha = (1.0 - options_.confidence_level) / 2.0;
  double lo_q = Quantile(boot, alpha);
  double hi_q = Quantile(boot, 1.0 - alpha);
  out.ci.half_width = (hi_q - lo_q) / 2.0;
  out.used_pre = true;
  out.pre_description = "1-D facts (APA+ calibration)";
  out.estimation_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace aqpp
