// Plain sampling-based AQP baseline (Section 4.1 / Equation 3).
//
// Functionally identical to AqppEngine with precomputation disabled; kept as
// a separate class so benchmarks and examples mirror the paper's AQP-vs-
// AQP++ comparison explicitly.

#ifndef AQPP_BASELINE_AQP_H_
#define AQPP_BASELINE_AQP_H_

#include <memory>

#include "core/engine.h"

namespace aqpp {

class AqpEngine {
 public:
  // `options.enable_precompute` is forcibly cleared.
  static Result<std::unique_ptr<AqpEngine>> Create(std::shared_ptr<Table> table,
                                                   EngineOptions options);

  // Draws the sample (no cube is ever built).
  Status Prepare(const QueryTemplate& tmpl) { return inner_->Prepare(tmpl); }

  Result<ApproximateResult> Execute(const RangeQuery& query) {
    return inner_->Execute(query);
  }
  Result<std::vector<GroupApproximateResult>> ExecuteGroupBy(
      const RangeQuery& query) {
    return inner_->ExecuteGroupBy(query);
  }

  const Sample& sample() const { return inner_->sample(); }
  const PrepareStats& prepare_stats() const { return inner_->prepare_stats(); }

 private:
  explicit AqpEngine(std::unique_ptr<AqppEngine> inner)
      : inner_(std::move(inner)) {}
  std::unique_ptr<AqppEngine> inner_;
};

}  // namespace aqpp

#endif  // AQPP_BASELINE_AQP_H_
