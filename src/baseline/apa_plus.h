// APA+ baseline [38] (Section 7.2's comparison): sampling augmented with
// exact low-dimensional statistics ("facts").
//
// APA+ keeps, per condition attribute, exact one-dimensional marginals
// (prefix SUM and COUNT at every distinct value). For a query with
// per-dimension ranges R_1..R_d, the engine:
//   1. reads the exact 1-D facts SUM(A * 1[C_i in R_i]) and
//      COUNT(1[C_i in R_i]) for every i,
//   2. calibrates the sample weights w -> w' by the minimum-norm adjustment
//      min ||w' - w||^2  s.t. the weighted sample reproduces every fact and
//      the table totals — the quadratic program the paper solved with
//      gurobi, which for equality constraints is an exact KKT projection
//      (src/linalg), and
//   3. estimates the query from the calibrated weights.
// The CI is obtained by bootstrapping the calibrate-then-estimate pipeline.

#ifndef AQPP_BASELINE_APA_PLUS_H_
#define AQPP_BASELINE_APA_PLUS_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/engine.h"
#include "sampling/sample.h"
#include "storage/table.h"

namespace aqpp {

struct ApaPlusOptions {
  double sample_rate = 0.01;
  double confidence_level = 0.95;
  size_t bootstrap_resamples = 60;
  uint64_t seed = 42;
};

class ApaPlusEngine {
 public:
  static Result<std::unique_ptr<ApaPlusEngine>> Create(
      std::shared_ptr<Table> table, ApaPlusOptions options = {});

  // Draws the sample and precomputes the 1-D marginal facts for every
  // condition attribute in the template.
  Status Prepare(const QueryTemplate& tmpl);

  Result<ApproximateResult> Execute(const RangeQuery& query);

  // Bytes used by the 1-D fact tables (preprocessing-space accounting).
  size_t FactBytes() const;
  const Sample& sample() const { return sample_; }

 private:
  ApaPlusEngine(std::shared_ptr<Table> table, ApaPlusOptions options)
      : table_(std::move(table)), options_(options), rng_(options.seed) {}

  // Exact 1-D marginal: SUM(A) and COUNT over `lo <= column <= hi`.
  struct Marginal {
    double sum = 0;
    double count = 0;
  };
  Result<Marginal> LookupFact(size_t column, int64_t lo, int64_t hi) const;

  std::shared_ptr<Table> table_;
  ApaPlusOptions options_;
  Rng rng_;
  QueryTemplate template_;
  Sample sample_;
  bool prepared_ = false;

  // Per condition column: sorted distinct values + prefix SUM/COUNT arrays.
  struct FactTable {
    size_t column = 0;
    std::vector<int64_t> values;
    std::vector<double> prefix_sum;    // prefix_sum[i] = SUM over v <= values[i]
    std::vector<double> prefix_count;
  };
  std::vector<FactTable> facts_;
  double total_sum_ = 0;
  double total_count_ = 0;
};

}  // namespace aqpp

#endif  // AQPP_BASELINE_APA_PLUS_H_
