#include "baseline/aggpre.h"

#include <cmath>

#include "common/logging.h"
#include "common/timer.h"
#include "cube/partition.h"

namespace aqpp {

Result<std::unique_ptr<AggPreEngine>> AggPreEngine::Create(
    std::shared_ptr<Table> table, AggPreOptions options) {
  if (table == nullptr || table->num_rows() == 0) {
    return Status::InvalidArgument("table must be non-empty");
  }
  return std::unique_ptr<AggPreEngine>(
      new AggPreEngine(std::move(table), options));
}

Status AggPreEngine::Prepare(const QueryTemplate& tmpl) {
  template_ = tmpl;
  std::vector<size_t> all_columns = tmpl.condition_columns;
  for (size_t g : tmpl.group_columns) all_columns.push_back(g);
  if (all_columns.empty()) {
    return Status::InvalidArgument("template has no condition attributes");
  }

  // Full P-Cube: one cut per distinct value on every dimension.
  std::vector<DimensionPartition> dims;
  double cells = 1;
  for (size_t c : all_columns) {
    AQPP_ASSIGN_OR_RETURN(auto distinct, DistinctSorted(*table_, c));
    cells *= static_cast<double>(distinct.size());
    DimensionPartition dim;
    dim.column = c;
    dim.cuts = std::move(distinct);
    dims.push_back(std::move(dim));
  }
  cost_.cells = cells;
  // SUM + COUNT + SUM(A^2) planes, 8 bytes each (matching the AQP++ cube).
  cost_.bytes = cells * 8.0 * 3.0;
  cost_.estimated_build_seconds =
      static_cast<double>(table_->num_rows()) / options_.scan_rows_per_second +
      cells * 3.0 / options_.cell_writes_per_second;
  cost_.materializable =
      cells <= static_cast<double>(options_.max_materialized_cells);

  if (cost_.materializable) {
    Timer timer;
    std::vector<MeasureSpec> measures = {MeasureSpec::Sum(tmpl.agg_column),
                                         MeasureSpec::Count(),
                                         MeasureSpec::SumSquares(tmpl.agg_column)};
    AQPP_ASSIGN_OR_RETURN(
        cube_, PrefixCube::Build(*table_, PartitionScheme(std::move(dims)),
                                 measures));
    cost_.estimated_build_seconds = timer.ElapsedSeconds();  // measured
  }
  return Status::OK();
}

Result<ApproximateResult> AggPreEngine::Execute(const RangeQuery& query) const {
  ApproximateResult out;
  out.ci.level = 1.0;
  out.ci.half_width = 0.0;
  Timer timer;

  if (cube_ != nullptr) {
    // Align the query to the full cube: every distinct value is a cut, so
    // every range query is exactly representable (Definition 2's property).
    const PartitionScheme& scheme = cube_->scheme();
    PreAggregate box;
    box.lo.resize(scheme.num_dims());
    box.hi.resize(scheme.num_dims());
    bool aligned = true;
    for (size_t i = 0; i < scheme.num_dims(); ++i) {
      const auto& dim = scheme.dim(i);
      int64_t lo = std::numeric_limits<int64_t>::min();
      int64_t hi = std::numeric_limits<int64_t>::max();
      for (const auto& c : query.predicate.conditions()) {
        if (c.column == dim.column) {
          lo = std::max(lo, c.lo);
          hi = std::min(hi, c.hi);
        }
      }
      box.lo[i] = lo == std::numeric_limits<int64_t>::min()
                      ? 0
                      : dim.LowerBracket(lo - 1);
      box.hi[i] = hi == std::numeric_limits<int64_t>::max()
                      ? dim.num_cuts()
                      : dim.LowerBracket(hi);
    }
    // Any condition on a column that is not a cube dimension breaks
    // alignment; fall back to the exact scan below.
    for (const auto& c : query.predicate.conditions()) {
      bool covered = false;
      for (size_t i = 0; i < scheme.num_dims(); ++i) {
        if (scheme.dim(i).column == c.column) covered = true;
      }
      if (!covered) aligned = false;
    }
    if (aligned && query.group_by.empty()) {
      double sum = cube_->BoxValue(box, 0);
      double count = cube_->BoxValue(box, 1);
      double sum_sq = cube_->BoxValue(box, 2);
      switch (query.func) {
        case AggregateFunction::kSum:
          out.ci.estimate = sum;
          break;
        case AggregateFunction::kCount:
          out.ci.estimate = count;
          break;
        case AggregateFunction::kAvg:
          out.ci.estimate = count > 0 ? sum / count : 0.0;
          break;
        case AggregateFunction::kVar: {
          if (count > 0) {
            double mean = sum / count;
            out.ci.estimate = std::max(0.0, sum_sq / count - mean * mean);
          }
          break;
        }
        case AggregateFunction::kMin:
        case AggregateFunction::kMax:
          return Status::Unimplemented(
              "P-Cube stores SUM/COUNT planes; MIN/MAX not precomputed");
      }
      out.used_pre = true;
      out.pre_description = "full P-Cube";
      out.estimation_seconds = timer.ElapsedSeconds();
      return out;
    }
  }

  // Exact scan fallback (used for the ground truth when the full cube is not
  // materializable; the reported time is the scan time).
  AQPP_ASSIGN_OR_RETURN(out.ci.estimate, executor_.Execute(query));
  out.estimation_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace aqpp
