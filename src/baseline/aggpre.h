// Pure aggregate-precomputation baseline (the AggPre column of Table 1).
//
// AggPre precomputes the *complete* prefix cube, whose cell count is
// prod_i |dom(C_i)| — astronomically large for high-cardinality dimensions
// (1.1e13 cells in the paper's Table 1, reported as "> 10 TB / > 1 day").
// Like the paper, we therefore:
//   * always report a cost model (cells, bytes, estimated build time from a
//     measured scan rate), and
//   * actually materialize the cube only when it fits a configurable cell
//     limit, answering range queries exactly from at most 2^d cells.
// When the full cube is too large to build, Execute() falls back to an exact
// scan purely to obtain the true answer (its reported answer quality is 0%
// error either way, matching Table 1's AggPre row).

#ifndef AQPP_BASELINE_AGGPRE_H_
#define AQPP_BASELINE_AGGPRE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "cube/prefix_cube.h"
#include "exec/executor.h"
#include "storage/table.h"

namespace aqpp {

struct AggPreCost {
  double cells = 0;
  double bytes = 0;
  double estimated_build_seconds = 0;
  bool materializable = false;
};

struct AggPreOptions {
  // Cubes up to this many cells are actually built.
  size_t max_materialized_cells = size_t{1} << 24;
  // Measured/assumed throughput used to extrapolate the build time of
  // non-materializable cubes: rows scanned per second and cells written per
  // second.
  double scan_rows_per_second = 50e6;
  double cell_writes_per_second = 100e6;
};

class AggPreEngine {
 public:
  static Result<std::unique_ptr<AggPreEngine>> Create(
      std::shared_ptr<Table> table, AggPreOptions options = {});

  // Computes the cost model for the template and materializes the full
  // P-Cube when it fits options.max_materialized_cells.
  Status Prepare(const QueryTemplate& tmpl);

  const AggPreCost& cost() const { return cost_; }
  bool materialized() const { return cube_ != nullptr; }

  // Exact answer (zero-width interval): from the cube when materialized
  // (O(2^d) cell reads), otherwise via a full scan.
  Result<ApproximateResult> Execute(const RangeQuery& query) const;

 private:
  AggPreEngine(std::shared_ptr<Table> table, AggPreOptions options)
      : table_(std::move(table)), options_(options), executor_(table_.get()) {}

  std::shared_ptr<Table> table_;
  AggPreOptions options_;
  ExactExecutor executor_;
  QueryTemplate template_;
  AggPreCost cost_;
  std::shared_ptr<PrefixCube> cube_;
};

}  // namespace aqpp

#endif  // AQPP_BASELINE_AGGPRE_H_
