#include "baseline/aqp.h"

namespace aqpp {

Result<std::unique_ptr<AqpEngine>> AqpEngine::Create(
    std::shared_ptr<Table> table, EngineOptions options) {
  options.enable_precompute = false;
  AQPP_ASSIGN_OR_RETURN(auto inner,
                        AqppEngine::Create(std::move(table), options));
  return std::unique_ptr<AqpEngine>(new AqpEngine(std::move(inner)));
}

}  // namespace aqpp
