#include "testing/chaos.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "service/client.h"
#include "service/result_cache.h"
#include "service/server.h"
#include "service/service.h"
#include "sql/binder.h"

namespace aqpp {
namespace testing {

namespace {

// splitmix64 finalizer: derives independent sub-seeds from the run seed.
uint64_t Mix(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

const char* TriggerModeName(fail::Trigger::Mode mode) {
  switch (mode) {
    case fail::Trigger::Mode::kAlways:
      return "always";
    case fail::Trigger::Mode::kProbability:
      return "prob";
    case fail::Trigger::Mode::kEveryNth:
      return "every";
    case fail::Trigger::Mode::kOneShot:
      return "oneshot";
  }
  return "?";
}

const char* ActionKindName(fail::ActionKind kind) {
  switch (kind) {
    case fail::ActionKind::kReturnError:
      return "error";
    case fail::ActionKind::kInjectLatency:
      return "latency";
    case fail::ActionKind::kPartialIo:
      return "partial_io";
    case fail::ActionKind::kAbort:
      return "abort";
  }
  return "?";
}

// The synthetic workload table: two ordinal condition columns and one
// double measure (the shape the engine's template preparation expects).
std::shared_ptr<Table> MakeChaosTable(size_t rows, uint64_t seed) {
  Schema schema({{"c1", DataType::kInt64},
                 {"c2", DataType::kInt64},
                 {"a", DataType::kDouble}});
  auto table = std::make_shared<Table>(schema);
  table->Reserve(rows);
  Rng rng(seed);
  auto& c1 = table->mutable_column(0).MutableInt64Data();
  auto& c2 = table->mutable_column(1).MutableInt64Data();
  auto& a = table->mutable_column(2).MutableDoubleData();
  for (size_t i = 0; i < rows; ++i) {
    c1.push_back(rng.NextInt(1, 100));
    c2.push_back(rng.NextInt(1, 50));
    a.push_back(100.0 + 10.0 * rng.NextGaussian());
  }
  table->SetRowCountFromColumns();
  return table;
}

// Terminal reply classification shared by the phase driver.
struct Outcome {
  size_t query_index = 0;
  bool ok = false;
  bool partial = false;
  bool cache_hit = false;
  double estimate = 0;
  double half_width = 0;
  StatusCode error = StatusCode::kOk;
  std::string detail;
};

}  // namespace

std::string FaultSpec::Describe() const {
  return StrFormat(
      "%s trigger=%s p=%.6f n=%llu action=%s code=%s latency=%.6f frac=%.4f",
      point.c_str(), TriggerModeName(trigger.mode), trigger.probability,
      static_cast<unsigned long long>(trigger.n), ActionKindName(action.kind),
      StatusCodeToString(action.code), action.latency_seconds,
      action.io_fraction);
}

ChaosSchedule ChaosRunner::BuildSchedule() const {
  ChaosSchedule schedule;
  Rng rng(Mix(options_.seed ^ 0xC4A05ULL));

  // Query pool: scalar SUM/COUNT ranges over the two condition columns.
  for (size_t q = 0; q < std::max<size_t>(1, options_.num_queries); ++q) {
    int64_t lo = rng.NextInt(1, 40);
    int64_t hi = lo + rng.NextInt(20, 55);
    if (q % 3 == 2) {
      schedule.queries.push_back(
          StrFormat("SELECT COUNT(*) FROM t WHERE c1 >= %lld AND c1 <= %lld",
                    static_cast<long long>(lo), static_cast<long long>(hi)));
    } else {
      const char* col = (q % 2 == 0) ? "c1" : "c2";
      schedule.queries.push_back(
          StrFormat("SELECT SUM(a) FROM t WHERE %s >= %lld AND %s <= %lld",
                    col, static_cast<long long>(lo), col,
                    static_cast<long long>(hi)));
    }
  }

  // Candidate faults: each makes the service fail in a distinct, recoverable
  // way. Probabilities are low enough that most requests in a phase still
  // survive to be baseline-checked.
  std::vector<FaultSpec> catalog;
  {
    FaultSpec f;
    f.point = "service/admission/enqueue";
    f.trigger = fail::Trigger::Probability(0.25);
    f.action.kind = fail::ActionKind::kReturnError;
    f.action.code = StatusCode::kResourceExhausted;
    f.action.message = "injected admission reject";
    catalog.push_back(f);
  }
  {
    FaultSpec f;
    f.point = "service/server/send";
    f.trigger = fail::Trigger::Probability(0.06);
    f.action.kind = fail::ActionKind::kReturnError;
    f.action.message = "injected send drop";
    catalog.push_back(f);
  }
  {
    FaultSpec f;
    f.point = "service/server/send";
    f.trigger = fail::Trigger::Probability(0.06);
    f.action.kind = fail::ActionKind::kPartialIo;
    f.action.io_fraction = 0.4;
    catalog.push_back(f);
  }
  {
    FaultSpec f;
    f.point = "service/server/recv";
    f.trigger = fail::Trigger::Probability(0.05);
    f.action.kind = fail::ActionKind::kReturnError;
    f.action.message = "injected recv drop";
    catalog.push_back(f);
  }
  {
    FaultSpec f;
    f.point = "service/admission/worker";
    f.trigger = fail::Trigger::Probability(0.3);
    f.action.kind = fail::ActionKind::kInjectLatency;
    f.action.latency_seconds = 0.002;
    catalog.push_back(f);
  }
  {
    FaultSpec f;
    f.point = "service/cache/insert";
    f.trigger = fail::Trigger::Probability(0.2);
    f.action.kind = fail::ActionKind::kInjectLatency;
    f.action.latency_seconds = 0.001;
    catalog.push_back(f);
  }

  size_t num_phases = std::max<size_t>(2, options_.num_phases);
  for (size_t p = 0; p + 1 < num_phases; ++p) {
    PhasePlan plan;
    size_t picks = 1 + rng.NextBounded(3);  // 1..3 faults per phase
    std::vector<size_t> chosen;
    for (size_t k = 0; k < picks; ++k) {
      size_t idx = rng.NextBounded(catalog.size());
      if (std::find(chosen.begin(), chosen.end(), idx) != chosen.end()) {
        continue;
      }
      chosen.push_back(idx);
      plan.faults.push_back(catalog[idx]);
    }
    // Roughly every third phase also runs under a tight session deadline so
    // the worker-latency fault pushes queries into the progressive fallback.
    if (rng.NextBernoulli(0.35)) plan.timeout_ms = 40;
    plan.description = StrFormat("phase %zu: %zu faults, timeout_ms=%d", p,
                                 plan.faults.size(), plan.timeout_ms);
    schedule.phases.push_back(std::move(plan));
  }
  PhasePlan recovery;
  recovery.description = "recovery: no faults";
  schedule.phases.push_back(std::move(recovery));
  return schedule;
}

uint64_t ChaosRunner::Fingerprint(const ChaosSchedule& schedule) {
  std::string text;
  for (const std::string& q : schedule.queries) {
    text += q;
    text += '\n';
  }
  for (const PhasePlan& plan : schedule.phases) {
    text += StrFormat("timeout_ms=%d\n", plan.timeout_ms);
    for (const FaultSpec& f : plan.faults) {
      text += f.Describe();
      text += '\n';
    }
  }
  return Fnv1a64(text);
}

ChaosReport ChaosRunner::Run() {
  ChaosSchedule schedule = BuildSchedule();
  ChaosReport report;
  report.schedule_fingerprint = Fingerprint(schedule);

  // Production stack, built exactly the way examples/service does it.
  auto table = MakeChaosTable(options_.rows, Mix(options_.seed ^ 0x7AB1EULL));
  EngineOptions eopts;
  eopts.sample_rate = 0.05;
  eopts.cube_budget = 400;
  auto created = AqppEngine::Create(table, eopts);
  AQPP_CHECK_OK(created.status());
  std::shared_ptr<AqppEngine> engine(std::move(*created));
  QueryTemplate tmpl;
  tmpl.agg_column = 2;
  tmpl.condition_columns = {0, 1};
  AQPP_CHECK_OK(engine->Prepare(tmpl));
  Catalog catalog;
  AQPP_CHECK_OK(catalog.Register("t", table));

  ServiceOptions sopts;
  sopts.admission.num_workers = options_.admission_workers;
  QueryService service{EngineRef(engine.get()), sopts};
  ServiceServer server(&service, &catalog);
  AQPP_CHECK_OK(server.Start());

  // Fault-free baseline per query: canonical seeded execution straight
  // through the engine (no service cache involved), the same pure function
  // the service's workers compute on a miss.
  QueryCanonicalizer canonicalizer(table.get());
  std::vector<ApproximateResult> baseline;
  for (const std::string& sql : schedule.queries) {
    auto bound = ParseAndBind(sql, catalog);
    AQPP_CHECK_OK(bound.status());
    CanonicalQuery canon = canonicalizer.Canonicalize(bound->query);
    ExecuteControl control;
    control.seed = canon.seed;
    control.record = false;
    auto result = engine->Execute(canon.query, control);
    AQPP_CHECK_OK(result.status());
    baseline.push_back(*result);
  }

  const int port = server.port();
  report.final_answers.assign(schedule.queries.size(), "");

  for (size_t phase = 0; phase < schedule.phases.size(); ++phase) {
    const PhasePlan& plan = schedule.phases[phase];
    const bool is_recovery = phase + 1 == schedule.phases.size();
    fail::Registry::Global().DisableAll();
    fail::Registry::Global().SetSeed(Mix(options_.seed ^ (phase + 1)));
    for (const FaultSpec& f : plan.faults) {
      fail::Registry::Global().Enable(f.point, f.trigger, f.action);
    }

    std::vector<std::vector<Outcome>> per_client(options_.clients);
    std::vector<uint64_t> client_reconnects(options_.clients, 0);
    std::vector<std::thread> threads;
    for (size_t c = 0; c < options_.clients; ++c) {
      threads.emplace_back([&, c, phase] {
        std::vector<Outcome>& outcomes = per_client[c];
        ServiceClient client;
        // (Re)establishes the connection and the phase's session deadline.
        auto connect = [&]() -> Status {
          auto conn = ServiceClient::Connect("127.0.0.1", port);
          if (!conn.ok()) return conn.status();
          client = std::move(*conn);
          if (plan.timeout_ms > 0) {
            // SET can itself be eaten by a send fault; that still counts as
            // a failed connect attempt, not a protocol violation.
            Status st = client.SetTimeoutMs(plan.timeout_ms);
            if (!st.ok()) return st;
          }
          return Status::OK();
        };
        // The accept/send faults can kill several connections in a row;
        // bound the reconnect storm but make exhaustion loud.
        auto ensure_connected = [&]() -> bool {
          for (int tries = 0; tries < 50; ++tries) {
            if (client.connected()) return true;
            if (connect().ok()) return true;
            ++client_reconnects[c];
          }
          return false;
        };
        if (!ensure_connected()) {
          Outcome o;
          o.error = StatusCode::kUnavailable;
          o.detail = "could not establish initial connection";
          outcomes.push_back(o);
          return;
        }
        RetryPolicy policy;
        policy.max_attempts = 12;
        policy.initial_backoff_seconds = 0.001;
        policy.max_backoff_seconds = 0.02;
        policy.total_deadline_seconds = 5.0;
        policy.seed = Mix(options_.seed ^ (phase * 1000 + c + 7));
        for (size_t j = 0; j < options_.queries_per_client; ++j) {
          size_t which = (c + j) % schedule.queries.size();
          Outcome o;
          o.query_index = which;
          if (!ensure_connected()) {
            o.error = StatusCode::kUnavailable;
            o.detail = "reconnect budget exhausted";
            outcomes.push_back(o);
            break;
          }
          auto reply = client.QueryWithRetry(schedule.queries[which], policy);
          if (reply.ok()) {
            o.ok = true;
            o.partial = reply->partial;
            o.cache_hit = reply->cache_hit;
            o.estimate = reply->estimate;
            o.half_width = reply->half_width;
          } else {
            o.error = reply.status().code();
            o.detail = reply.status().message();
            if (o.error == StatusCode::kIOError) {
              // Connection died mid-call: drop it so the next iteration
              // reconnects instead of reusing a dead socket.
              client.Close();
            }
          }
          outcomes.push_back(o);
        }
        client.Close();
      });
    }
    for (std::thread& t : threads) t.join();

    // All client threads are joined: classification is single-threaded.
    for (size_t c = 0; c < options_.clients; ++c) {
      report.reconnects += client_reconnects[c];
      for (const Outcome& o : per_client[c]) {
        ++report.total;
        const ApproximateResult& base = baseline[o.query_index];
        if (o.ok && !o.partial) {
          ++report.ok;
          if (o.cache_hit) ++report.cache_hits;
          if (o.estimate != base.ci.estimate ||
              o.half_width != base.ci.half_width) {
            report.violations.push_back(StrFormat(
                "phase %zu query %zu: full-precision answer %.17g±%.17g "
                "differs from baseline %.17g±%.17g",
                phase, o.query_index, o.estimate, o.half_width,
                base.ci.estimate, base.ci.half_width));
          }
        } else if (o.ok && o.partial) {
          ++report.partial;
          if (!std::isfinite(o.estimate) || !std::isfinite(o.half_width) ||
              o.half_width < base.ci.half_width * 0.999) {
            report.violations.push_back(StrFormat(
                "phase %zu query %zu: partial answer %.17g±%.17g tighter "
                "than baseline ±%.17g (or non-finite)",
                phase, o.query_index, o.estimate, o.half_width,
                base.ci.half_width));
          }
        } else {
          switch (o.error) {
            case StatusCode::kResourceExhausted:
              ++report.rejected;
              break;
            case StatusCode::kUnavailable:
              ++report.unavailable;
              break;
            case StatusCode::kDeadlineExceeded:
            case StatusCode::kCancelled:
              ++report.deadline;
              break;
            case StatusCode::kIOError:
              ++report.io_errors;
              break;
            default:
              report.violations.push_back(StrFormat(
                  "phase %zu query %zu: unexpected terminal error %s: %s",
                  phase, o.query_index, StatusCodeToString(o.error),
                  o.detail.c_str()));
          }
        }
        if (is_recovery) {
          if (!o.ok || o.partial) {
            report.violations.push_back(StrFormat(
                "recovery phase: query %zu did not return a full answer "
                "(error=%s %s)",
                o.query_index, StatusCodeToString(o.error), o.detail.c_str()));
          } else {
            report.final_answers[o.query_index] =
                StrFormat("%.17g|%.17g", o.estimate, o.half_width);
          }
        }
      }
    }
    if (!is_recovery) report.trip_log = fail::Registry::Global().TripLog();
  }

  fail::Registry::Global().DisableAll();
  server.Stop();
  service.Stop();
  for (size_t q = 0; q < report.final_answers.size(); ++q) {
    if (report.final_answers[q].empty()) {
      report.violations.push_back(
          StrFormat("recovery phase never answered query %zu", q));
    }
  }
  return report;
}

}  // namespace testing
}  // namespace aqpp
