// Deterministic chaos harness for the service stack.
//
// A ChaosRunner stands up the full production path — synthetic table, a
// prepared AqppEngine, QueryService, ServiceServer on an ephemeral TCP port —
// and drives concurrent clients against it while flipping failpoints
// according to a *schedule* that is a pure function of the seed:
//
//   seed ──BuildSchedule()──▶ query pool + per-phase fault plans
//                                   │
//          phase 0..n-2: enable plan's failpoints, run all clients,
//                        classify every reply          (faulty phases)
//          phase n-1:    all failpoints off, run all clients,
//                        every reply must be OK        (recovery phase)
//
// Invariants checked per reply (violations collected in the report):
//   * exactly one terminal outcome — OK, partial-with-wider-CI, or a typed
//     error from the allowed set; a hang trips the test timeout instead
//   * a non-partial OK answer is bit-identical to the fault-free baseline
//     (seeded canonical execution makes the baseline exact), so a fault can
//     never silently corrupt an answer that claims full precision
//   * a partial answer's CI is no tighter than the baseline's and finite
//   * a dropped connection surfaces as IOError and a reconnect succeeds
//
// Because the schedule (and every client's query sequence and retry jitter)
// derives from the seed, two runs with the same seed — at ANY worker count —
// produce the same schedule fingerprint and bit-identical surviving answers.
// Thread interleaving only moves faults between requests; it cannot change
// what a surviving answer looks like.

#ifndef AQPP_TESTING_CHAOS_H_
#define AQPP_TESTING_CHAOS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"

namespace aqpp {
namespace testing {

// One failpoint activation in a phase plan.
struct FaultSpec {
  std::string point;
  fail::Trigger trigger;
  fail::Action action;

  // Canonical one-line rendering; the schedule fingerprint hashes these.
  std::string Describe() const;
};

// What one chaos phase does: which faults are live and the session deadline
// clients request (0 = no deadline).
struct PhasePlan {
  std::string description;
  std::vector<FaultSpec> faults;
  int timeout_ms = 0;
};

// The full deterministic plan for a run.
struct ChaosSchedule {
  std::vector<std::string> queries;  // SQL pool, shared by all phases
  std::vector<PhasePlan> phases;     // last phase is always fault-free
};

struct ChaosOptions {
  uint64_t seed = 1;
  // Phases including the final fault-free recovery phase (>= 2).
  size_t num_phases = 4;
  size_t clients = 4;
  // Queries each client issues per phase.
  size_t queries_per_client = 6;
  // Distinct SQL statements in the pool.
  size_t num_queries = 4;
  // Synthetic table rows.
  size_t rows = 20000;
  // Admission worker threads — the determinism axis: reports from different
  // worker counts must agree on fingerprint and surviving answers.
  size_t admission_workers = 4;
};

struct ChaosReport {
  uint64_t schedule_fingerprint = 0;
  // Reply classification across all phases.
  uint64_t total = 0;
  uint64_t ok = 0;         // full-precision answers (baseline-checked)
  uint64_t cache_hits = 0;
  uint64_t partial = 0;    // deadline-degraded answers (CI-width-checked)
  uint64_t rejected = 0;   // kResourceExhausted that out-lasted the retry loop
  uint64_t unavailable = 0;
  uint64_t deadline = 0;
  uint64_t io_errors = 0;  // dropped connections (each followed by reconnect)
  uint64_t reconnects = 0;
  // Invariant breaches; empty == the run passed.
  std::vector<std::string> violations;
  // Final-phase answers per query index, "%.17g"-exact: the cross-run /
  // cross-worker-count bit-identity witness.
  std::vector<std::string> final_answers;
  // Failpoint evaluation/fire counts after the last faulty phase.
  std::string trip_log;
};

class ChaosRunner {
 public:
  explicit ChaosRunner(ChaosOptions options) : options_(options) {}

  // Pure function of options_.seed (and the shape options); no side effects.
  ChaosSchedule BuildSchedule() const;

  // Stable hash of a schedule; equal seeds must yield equal fingerprints.
  static uint64_t Fingerprint(const ChaosSchedule& schedule);

  // Executes the schedule against a freshly built service stack. Requires
  // failpoints compiled in (fail::kCompiledIn) for the faulty phases to do
  // anything; without them the run degenerates to a clean soak.
  ChaosReport Run();

 private:
  ChaosOptions options_;
};

}  // namespace testing
}  // namespace aqpp

#endif  // AQPP_TESTING_CHAOS_H_
