// QueryService: the concurrent front door of the AQP++ engine.
//
// Request path (one synchronous Execute() call from the caller's thread):
//
//   session lookup ─ canonicalize ─ cache probe ──hit── return (replayed)
//                                        │miss
//                                   admission queue  ──full── reject +
//                                        │                    retry-after
//                                   worker thread
//                                        │
//                            engine Execute(canonical query,
//                                  {cancel = token, seed = canonical seed})
//                             │ok                │deadline exceeded
//                        cache insert     progressive fallback: a prefix
//                             │           of the sample under the same
//                          return         token → partial CI (widened)
//
// Seeded execution makes each query a pure function of (prepared engine
// state, canonical query), so concurrent workers never race on the session
// RNG and a cache hit is bit-identical to re-running the query. Deadlines
// ride a CancellationToken that the engine polls at phase boundaries; when
// one fires, the worker falls back to the progressive executor, which always
// yields at least its first checkpoint — a timed-out query degrades to a
// wide interval instead of an error whenever the sample supports it
// (uniform/Bernoulli, SUM/COUNT; anything else reports DeadlineExceeded).
//
// EngineRef adapts AqppEngine (one template, group-by capable) and
// MultiTemplateEngine (several templates, scalar) behind the one surface the
// service needs. Service execution bypasses the engine's workload log
// (record = false); sessions keep their own bounded logs instead.

#ifndef AQPP_SERVICE_SERVICE_H_
#define AQPP_SERVICE_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/ingest.h"
#include "core/maintenance.h"
#include "core/multi_engine.h"
#include "core/progressive.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "service/admission.h"
#include "service/result_cache.h"
#include "service/session.h"

namespace aqpp {

// Non-owning view over either engine flavor. The engine must be prepared
// (sample drawn) before concurrent service traffic; see QueryService ctor.
class EngineRef {
 public:
  explicit EngineRef(AqppEngine* engine) : single_(engine) {}
  explicit EngineRef(MultiTemplateEngine* engine) : multi_(engine) {}

  Result<ApproximateResult> Execute(const RangeQuery& query,
                                    const ExecuteControl& control) const;
  // Template the query would be answered from: 0 for a prepared AqppEngine,
  // the route index for MultiTemplateEngine, -1 for the plain-AQP path.
  int TemplateFor(const RangeQuery& query) const;
  const Table& table() const;
  const Sample& sample() const;
  // Cube backing the progressive fallback for `query` (null = plain AQP).
  const PrefixCube* ProgressiveCube(const RangeQuery& query) const;
  double confidence_level() const;
  // Draws the sample on an unprepared single engine by running one throwaway
  // COUNT(*) — EnsureSample is not safe to race from workers.
  void Warmup() const;
  // Live synopsis selection on a single engine ("" / "off" restores the
  // legacy path). MultiTemplateEngine selects per template at Prepare time
  // and reports Unimplemented here.
  Status SetSynopsis(const std::string& kind) const;

 private:
  AqppEngine* single_ = nullptr;
  MultiTemplateEngine* multi_ = nullptr;
};

struct ServiceOptions {
  AdmissionOptions admission;
  ResultCacheOptions cache;
  SessionManagerOptions sessions;
  bool enable_cache = true;
  // Deadline applied when neither the request nor the session carries one;
  // <= 0 = unbounded.
  double default_timeout_seconds = 0;
  // When a deadline fires, answer from a progressive prefix instead of
  // erroring (where the sample/aggregate allow it).
  bool progressive_fallback = true;
  // Latency samples retained for the p50/p95/p99 estimates.
  size_t latency_window = 4096;
  // Queries whose end-to-end service time reaches this land in the slow-query
  // log with their full phase breakdown; <= 0 disables the log.
  double slow_query_threshold_seconds = 0.5;
  // Most recent slow queries retained.
  size_t slow_query_capacity = 64;
  // Shared-scan batching: cache-miss queries that queue together are formed
  // into one batch (admission batch_key grouping) whose sample-side predicate
  // masks are evaluated in a single fused pass. Results are bit-identical to
  // per-query execution; false is the ablation baseline.
  bool enable_batching = true;
  // Single-flight deduplication: a cache-miss whose canonical query is
  // already executing attaches to that execution and shares its outcome
  // instead of scanning again. A follower whose leader fails re-executes on
  // its own, so errors never fan out.
  bool enable_single_flight = true;
};

struct QueryOutcome {
  // OK (possibly partial), ResourceExhausted (rejected; see
  // retry_after_seconds), DeadlineExceeded / Cancelled, or an engine error.
  Status status = Status::OK();
  ConfidenceInterval ci;
  bool cache_hit = false;
  // True when this outcome was shared from an identical in-flight query
  // (single-flight attach) rather than executed for this caller.
  bool single_flight = false;
  // True when the deadline fired and `ci` comes from a progressive prefix.
  bool partial = false;
  size_t partial_rows_used = 0;
  bool used_pre = false;
  std::string pre_description;
  double retry_after_seconds = 0;
  double queue_seconds = 0;
  double exec_seconds = 0;
  // Streaming ingest (only meaningful when an IngestManager is attached):
  // the committed generation and delta size the answer reflects, and whether
  // the delta was folded exactly into `ci` (SUM/COUNT; other aggregates
  // answer from published state until the absorber catches up).
  uint64_t ingest_generation = 0;
  uint64_t delta_rows = 0;
  bool delta_folded = false;
};

struct ServiceStats {
  uint64_t queries = 0;
  uint64_t completed = 0;
  uint64_t cache_hits = 0;
  uint64_t rejected = 0;
  uint64_t timed_out = 0;  // deadline fired (partial answers included)
  uint64_t partial = 0;    // subset of timed_out answered progressively
  uint64_t cancelled = 0;
  uint64_t failed = 0;
  // Queries answered by attaching to an identical in-flight execution.
  uint64_t single_flight_attached = 0;
  double p50_latency_seconds = 0;
  double p95_latency_seconds = 0;
  double p99_latency_seconds = 0;
  double cache_hit_rate = 0;  // hits / (hits + misses), 0 when no probes
  uint64_t sessions_active = 0;
  uint64_t sessions_opened = 0;
  uint64_t slow_queries = 0;  // queries over the slow-query threshold
  ResultCacheStats cache;
  AdmissionStats admission;
};

class QueryService {
 public:
  // `engine` is borrowed and must outlive the service. Prepare it first;
  // for an unprepared single engine the ctor warms the sample up so workers
  // never race the draw.
  QueryService(EngineRef engine, ServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  SessionManager& sessions() { return sessions_; }
  ResultCache& cache() { return cache_; }
  const EngineRef& engine() const { return engine_; }

  // Executes `query` for `session_id`, blocking until the outcome is known
  // (admitted work runs on the admission workers). `timeout_seconds` < 0
  // defers to the session default, then the service default. Scalar queries
  // only; group-by is reported Unimplemented.
  //
  // `trace`, when non-null, receives the query's full span breakdown
  // (queue wait, engine phases, total). When null and observability is
  // enabled, the service records into an internal trace so the slow-query
  // log still captures phase breakdowns.
  QueryOutcome Execute(uint64_t session_id, const RangeQuery& query,
                       double timeout_seconds = -1,
                       obs::QueryTrace* trace = nullptr);

  // Online-aggregation rounds for `query`: the progressive executor's
  // checkpoints over growing sample prefixes, seeded from the canonical query
  // (same seed as one-shot execution) and shifted by the exact delta fold
  // when ingest is attached. Rounds are filtered monotone — half_width never
  // increases from one round to the next. Queries the progressive executor
  // cannot answer (non-SUM/COUNT, stratified samples) yield an empty round
  // list with OK status: online mode degrades to one-shot. The caller streams
  // these as PROGRESS lines and then runs Execute() for the final answer,
  // dropping any round tighter than the final interval (see docs/ingest.md).
  Status OnlineRounds(uint64_t session_id, const RangeQuery& query,
                      std::vector<ProgressiveStep>* rounds);

  // Attaches the streaming-ingest manager: query execution takes its state
  // mutex shared (engine pass + delta fold are one consistent read), answers
  // fold the delta exactly for SUM/COUNT, and every delta commit or absorb
  // publish invalidates the result cache. Call before serving traffic; the
  // manager must outlive the service.
  void AttachIngest(IngestManager* ingest);
  IngestManager* ingest() const { return ingest_; }

  const obs::SlowQueryLog& slow_query_log() const { return slow_log_; }

  // Cache invalidation surface; WireMaintenance registers InvalidateAll as
  // the update observer of either maintainer (append → nothing cached stays
  // servable).
  void InvalidateCache() { cache_.InvalidateAll(); }
  void InvalidateTemplate(int template_id) {
    cache_.InvalidateTemplate(template_id);
  }
  void WireMaintenance(CubeMaintainer* cube, ReservoirMaintainer* reservoir,
                       synopsis::SynopsisMaintainer* synopsis = nullptr);

  // Selects the engine's synopsis and invalidates every cached answer (the
  // estimator changed; replayed bits would no longer match a re-execution).
  Status SetSynopsis(const std::string& kind);

  ServiceStats stats() const;

  // Stops admission (queued jobs resolve as Cancelled). Idempotent; the
  // destructor calls it.
  void Stop();

 private:
  // One in-flight canonical query; identical cache-miss arrivals attach to
  // it and share the leader's outcome (see service.cc for the definition).
  struct Flight;

  QueryOutcome RunOnWorker(const CanonicalQuery& canon, int template_id,
                           const CancellationToken* token, SteadyTime enqueued,
                           uint64_t cache_generation, obs::QueryTrace* trace,
                           const std::vector<uint8_t>* query_mask = nullptr,
                           bool state_locked = false);
  // Folds the current delta into `out` (exact SUM/COUNT shift) and stamps the
  // ingest generation fields. Caller holds the ingest state mutex shared.
  Status FoldDeltaLocked(const RangeQuery& query, QueryOutcome* out);
  // Admission run_batch target: one fused sample-mask pass for the whole
  // batch, then per-member engine execution with the precomputed masks.
  void RunBatch(std::vector<AdmissionController::Job>&& jobs);
  Result<ProgressiveStep> RunProgressive(const CanonicalQuery& canon,
                                         const CancellationToken* token);
  void RecordLatency(double seconds);
  void AccountOutcome(const QueryOutcome& outcome, Session& session);

  EngineRef engine_;
  ServiceOptions options_;
  IngestManager* ingest_ = nullptr;
  obs::SlowQueryLog slow_log_;
  QueryCanonicalizer canonicalizer_;
  SessionManager sessions_;
  ResultCache cache_;
  AdmissionController admission_;

  // Single-flight table: canonical key -> the execution identical arrivals
  // attach to. Entries are removed before the leader fans its outcome out.
  std::mutex flight_mu_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> in_flight_;

  mutable std::mutex stats_mu_;
  uint64_t queries_ = 0;
  uint64_t completed_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t rejected_ = 0;
  uint64_t timed_out_ = 0;
  uint64_t partial_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t failed_ = 0;
  uint64_t single_flight_attached_ = 0;
  std::vector<double> latencies_;  // ring buffer
  size_t latency_next_ = 0;
  bool latency_full_ = false;
};

}  // namespace aqpp

#endif  // AQPP_SERVICE_SERVICE_H_
