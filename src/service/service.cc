#include "service/service.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>
#include <optional>
#include <shared_mutex>
#include <utility>

#include "common/string_util.h"
#include "kernels/multi_scan.h"
#include "obs/metrics.h"

namespace aqpp {

namespace {

// Service-level counters/histograms, resolved once per process.
struct ServiceMetrics {
  obs::Counter* queries;
  obs::Counter* deadline_expiries;
  obs::Counter* partials;
  obs::Counter* slow_queries;
  obs::Counter* single_flight;
  obs::Histogram* latency;
  static const ServiceMetrics& Get() {
    auto& reg = obs::Registry::Global();
    static const ServiceMetrics m = {
        reg.GetCounter("aqpp_service_queries_total", "",
                       "Queries submitted to the service front door."),
        reg.GetCounter("aqpp_service_deadline_expiries_total", "",
                       "Queries whose deadline fired (partial answers "
                       "included)."),
        reg.GetCounter("aqpp_service_partial_total", "",
                       "Deadline-expired queries answered from a "
                       "progressive prefix."),
        reg.GetCounter("aqpp_service_slow_queries_total", "",
                       "Queries over the slow-query threshold."),
        reg.GetCounter("aqpp_single_flight_attached_total", "",
                       "Queries answered by attaching to an identical "
                       "in-flight execution."),
        reg.GetHistogram("aqpp_service_query_seconds", "", {},
                         "End-to-end service latency per query (cache hits "
                         "included)."),
    };
    return m;
  }
};

// Batch-pass metrics: same series the exec-layer BatchScanExecutor feeds.
struct BatchServiceMetrics {
  obs::Counter* fused;
  obs::Histogram* batch_size;
  static const BatchServiceMetrics& Get() {
    auto& reg = obs::Registry::Global();
    static const BatchServiceMetrics m = {
        reg.GetCounter(
            "aqpp_batch_queries_fused_total", "",
            "Member queries answered by fused shared-scan batch passes."),
        reg.GetHistogram("aqpp_batch_size", "", {1, 2, 4, 8, 16, 32, 64},
                         "Queries fused per shared-scan batch pass."),
    };
    return m;
  }
};

// Outcome slot one Execute() call blocks on; fulfilled by the solo worker
// path, the batch path, or the Stop() drain.
struct Pending {
  QueryOutcome out;
  std::promise<void> done;
};

// Per-query context parked on the admission job so RunBatch can execute the
// whole formed batch (Job.batch_payload).
struct BatchItem {
  CanonicalQuery canon;
  int template_id = -1;
  std::shared_ptr<CancellationToken> token;
  std::shared_ptr<Pending> pending;
  SteadyTime enqueued;
  uint64_t cache_generation = 0;
  obs::QueryTrace* trace = nullptr;
};

}  // namespace

// One in-flight canonical query. The leader executes and fans its outcome
// out; attachers block on `future` and copy `out`.
struct QueryService::Flight {
  std::promise<void> done;
  std::shared_future<void> future = done.get_future().share();
  QueryOutcome out;
};

Result<ApproximateResult> EngineRef::Execute(
    const RangeQuery& query, const ExecuteControl& control) const {
  if (single_ != nullptr) return single_->Execute(query, control);
  return multi_->Execute(query, control);
}

int EngineRef::TemplateFor(const RangeQuery& query) const {
  if (single_ != nullptr) return single_->has_cube() ? 0 : -1;
  return multi_->RouteFor(query);
}

const Table& EngineRef::table() const {
  if (single_ != nullptr) return single_->table();
  return multi_->table();
}

const Sample& EngineRef::sample() const {
  if (single_ != nullptr) return single_->sample();
  return multi_->sample();
}

const PrefixCube* EngineRef::ProgressiveCube(const RangeQuery& query) const {
  if (single_ != nullptr) return single_->cube();
  int route = multi_->RouteFor(query);
  return route >= 0 ? &multi_->cube_of(static_cast<size_t>(route)) : nullptr;
}

double EngineRef::confidence_level() const {
  if (single_ != nullptr) return single_->options().confidence_level;
  return multi_->options().confidence_level;
}

Status EngineRef::SetSynopsis(const std::string& kind) const {
  if (single_ != nullptr) return single_->SetSynopsis(kind);
  return Status::Unimplemented(
      "multi-template sessions select synopses per template at Prepare time");
}

void EngineRef::Warmup() const {
  if (single_ == nullptr) return;  // MultiTemplateEngine: Prepare() draws it
  RangeQuery count_all;
  count_all.func = AggregateFunction::kCount;
  ExecuteControl control;
  control.record = false;
  (void)single_->Execute(count_all, control);
}

QueryService::QueryService(EngineRef engine, ServiceOptions options)
    : engine_(engine),
      options_(std::move(options)),
      slow_log_(options_.slow_query_threshold_seconds > 0
                    ? options_.slow_query_threshold_seconds
                    : std::numeric_limits<double>::infinity(),
                options_.slow_query_capacity),
      canonicalizer_(&engine_.table()),
      sessions_(options_.sessions),
      cache_(options_.cache),
      admission_(options_.admission) {
  engine_.Warmup();
  latencies_.resize(std::max<size_t>(1, options_.latency_window), 0.0);
}

QueryService::~QueryService() { Stop(); }

void QueryService::Stop() { admission_.Stop(); }

void QueryService::WireMaintenance(CubeMaintainer* cube,
                                   ReservoirMaintainer* reservoir,
                                   synopsis::SynopsisMaintainer* synopsis) {
  if (cube != nullptr) {
    cube->set_update_observer([this] { cache_.InvalidateAll(); });
  }
  if (reservoir != nullptr) {
    reservoir->set_update_observer([this] { cache_.InvalidateAll(); });
  }
  if (synopsis != nullptr) {
    synopsis->set_update_observer([this] { cache_.InvalidateAll(); });
  }
}

void QueryService::AttachIngest(IngestManager* ingest) {
  ingest_ = ingest;
  if (ingest_ != nullptr) {
    // Every delta commit and every absorb publish makes cached answers
    // unreplayable (the data they answered over changed).
    ingest_->set_commit_observer([this] { cache_.InvalidateAll(); });
  }
}

Status QueryService::FoldDeltaLocked(const RangeQuery& query,
                                     QueryOutcome* out) {
  IngestSnapshot snap = ingest_->snapshot();
  out->ingest_generation = snap.committed_generation;
  out->delta_rows = snap.delta_rows;
  if (!IngestManager::FoldSupported(query.func)) return Status::OK();
  std::shared_ptr<const Table> delta = ingest_->delta();
  if (delta == nullptr || delta->num_rows() == 0) {
    out->delta_folded = true;  // nothing to fold is an exact fold
    return Status::OK();
  }
  AQPP_ASSIGN_OR_RETURN(double shift, IngestManager::FoldValue(*delta, query));
  out->ci.estimate += shift;  // exact shift: the interval width is unchanged
  out->delta_folded = true;
  return Status::OK();
}

Status QueryService::SetSynopsis(const std::string& kind) {
  if (!kind.empty() && kind != "off" &&
      !synopsis::IsSynopsisRegistered(kind)) {
    return Status::NotFound("unknown synopsis kind '" + kind + "'");
  }
  AQPP_RETURN_NOT_OK(engine_.SetSynopsis(kind));
  cache_.InvalidateAll();
  return Status::OK();
}

void QueryService::RecordLatency(double seconds) {
  ServiceMetrics::Get().latency->Observe(seconds);
  std::lock_guard<std::mutex> lock(stats_mu_);
  latencies_[latency_next_] = seconds;
  latency_next_ = (latency_next_ + 1) % latencies_.size();
  if (latency_next_ == 0) latency_full_ = true;
}

void QueryService::AccountOutcome(const QueryOutcome& outcome,
                                  Session& session) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (outcome.status.ok()) {
    ++completed_;
    session.OnCompleted();
    if (outcome.cache_hit) {
      ++cache_hits_;
      session.OnCacheHit();
    }
    if (outcome.partial) {
      ++timed_out_;
      ++partial_;
      session.OnTimedOut();
      ServiceMetrics::Get().deadline_expiries->Increment();
      ServiceMetrics::Get().partials->Increment();
    }
    return;
  }
  switch (outcome.status.code()) {
    case StatusCode::kResourceExhausted:
      ++rejected_;
      session.OnRejected();
      break;
    case StatusCode::kDeadlineExceeded:
      ++timed_out_;
      session.OnTimedOut();
      ServiceMetrics::Get().deadline_expiries->Increment();
      break;
    case StatusCode::kCancelled:
      ++cancelled_;
      break;
    default:
      ++failed_;
      session.OnFailed();
      break;
  }
}

QueryOutcome QueryService::Execute(uint64_t session_id,
                                   const RangeQuery& query,
                                   double timeout_seconds,
                                   obs::QueryTrace* trace) {
  QueryOutcome out;
  auto session_or = sessions_.Get(session_id);
  if (!session_or.ok()) {
    out.status = session_or.status();
    return out;
  }
  std::shared_ptr<Session> session = *session_or;
  session->OnSubmitted();
  ServiceMetrics::Get().queries->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++queries_;
  }
  SteadyTime start = SteadyNow();
  // Without a caller-provided trace, record into a local one (when
  // observability is on) so the slow-query log still sees phase breakdowns.
  // The trace lives on this stack frame; the worker writes into it while we
  // block on the promise below, so there is no concurrent access.
  std::optional<obs::QueryTrace> local_trace;
  if (trace == nullptr && obs::Enabled()) {
    local_trace.emplace();
    trace = &*local_trace;
  }
  obs::SpanTimer total_span(obs::Phase::kTotal, trace);

  if (!query.group_by.empty()) {
    out.status = Status::Unimplemented(
        "the service answers scalar queries; run GROUP BY through the "
        "engine directly");
    AccountOutcome(out, *session);
    return out;
  }

  CanonicalQuery canon = canonicalizer_.Canonicalize(query);
  session->RecordQuery(canon.query);

  // Snapshot the invalidation generation before executing: if maintenance
  // wipes the cache while the query runs, the stale result must not be
  // re-inserted after the wipe (InsertIfCurrent drops it).
  uint64_t cache_generation = cache_.generation();
  if (options_.enable_cache) {
    // Under ingest the lookup + delta fold must be one consistent read: the
    // absorber invalidates the cache inside its exclusive publish section, so
    // holding the state mutex shared across both pins (cached base answer,
    // delta) to the same generation.
    std::shared_lock<std::shared_mutex> state_lock;
    if (ingest_ != nullptr) {
      state_lock = std::shared_lock<std::shared_mutex>(ingest_->state_mutex());
    }
    if (auto hit = cache_.Lookup(canon.key)) {
      out.ci = hit->ci;
      out.used_pre = hit->used_pre;
      out.pre_description = hit->pre_description;
      out.cache_hit = true;
      if (ingest_ != nullptr) {
        Status folded = FoldDeltaLocked(canon.query, &out);
        if (!folded.ok()) {
          out = QueryOutcome{};
          out.status = std::move(folded);
        }
      }
      if (state_lock.owns_lock()) state_lock.unlock();
      AccountOutcome(out, *session);
      total_span.Stop();
      RecordLatency(SecondsBetween(start, SteadyNow()));
      return out;
    }
  }

  // Single-flight: if an identical canonical query is already executing,
  // attach to it and share the leader's outcome instead of scanning again.
  std::shared_ptr<Flight> flight;
  bool flight_leader = false;
  if (options_.enable_single_flight) {
    std::lock_guard<std::mutex> lock(flight_mu_);
    auto [it, inserted] = in_flight_.try_emplace(canon.key);
    if (inserted) {
      it->second = std::make_shared<Flight>();
      flight_leader = true;
    }
    flight = it->second;
  }
  if (flight != nullptr && !flight_leader) {
    flight->future.wait();
    if (flight->out.status.ok()) {
      out = flight->out;
      out.single_flight = true;
      ServiceMetrics::Get().single_flight->Increment();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++single_flight_attached_;
      }
      AccountOutcome(out, *session);
      total_span.Stop();
      RecordLatency(SecondsBetween(start, SteadyNow()));
      return out;
    }
    // The leader failed (deadline, cancellation, rejection…). Don't fan the
    // error out — fall through and execute this query on its own.
    flight = nullptr;
  }
  // The leader must fan its outcome out on every post-creation return path,
  // removing the table entry first so late arrivals start a fresh flight.
  auto finish_flight = [&] {
    if (!flight_leader) return;
    {
      std::lock_guard<std::mutex> lock(flight_mu_);
      in_flight_.erase(canon.key);
    }
    flight->out = out;
    flight->done.set_value();
  };

  double timeout = timeout_seconds;
  if (timeout < 0) timeout = session->default_timeout_seconds();
  if (timeout <= 0) timeout = options_.default_timeout_seconds;
  auto token = std::make_shared<CancellationToken>(
      timeout > 0 ? Deadline::After(timeout) : Deadline::Infinite());

  // TemplateFor peeks at the published cube; under ingest the absorber may be
  // swapping it, so the peek needs the same shared state lock the workers use.
  int template_id;
  {
    std::shared_lock<std::shared_mutex> state_lock;
    if (ingest_ != nullptr) {
      state_lock = std::shared_lock<std::shared_mutex>(ingest_->state_mutex());
    }
    template_id = engine_.TemplateFor(canon.query);
  }
  auto pending = std::make_shared<Pending>();
  AdmissionController::Job job;
  job.token = token;
  job.run = [this, pending, canon, template_id, token, trace, cache_generation,
             enqueued = SteadyNow()] {
    pending->out = RunOnWorker(canon, template_id, token.get(), enqueued,
                               cache_generation, trace);
    pending->done.set_value();
  };
  if (options_.enable_batching) {
    // Same-table cache misses that queue together fuse into one pass; the
    // payload carries everything RunBatch needs to stand in for job.run.
    auto item = std::make_shared<BatchItem>();
    item->canon = canon;
    item->template_id = template_id;
    item->token = token;
    item->pending = pending;
    item->enqueued = SteadyNow();
    item->cache_generation = cache_generation;
    item->trace = trace;
    job.batch_key =
        StrFormat("tbl:%p", static_cast<const void*>(&engine_.table()));
    job.batch_payload = std::move(item);
    job.run_batch = [this](std::vector<AdmissionController::Job>&& jobs) {
      RunBatch(std::move(jobs));
    };
  }
  double retry_after = 0;
  Status admitted = admission_.Submit(session_id, std::move(job),
                                      &retry_after);
  if (!admitted.ok()) {
    out.status = std::move(admitted);
    out.retry_after_seconds = retry_after;
    finish_flight();
    AccountOutcome(out, *session);
    return out;
  }
  pending->done.get_future().wait();
  out = std::move(pending->out);
  finish_flight();
  AccountOutcome(out, *session);
  double total_seconds = total_span.Stop();
  RecordLatency(SecondsBetween(start, SteadyNow()));
  if (trace != nullptr &&
      slow_log_.MaybeRecord(StrFormat("%llu", static_cast<unsigned long long>(
                                                  session_id)),
                            canon.key, total_seconds, *trace)) {
    ServiceMetrics::Get().slow_queries->Increment();
  }
  return out;
}

QueryOutcome QueryService::RunOnWorker(const CanonicalQuery& canon,
                                       int template_id,
                                       const CancellationToken* token,
                                       SteadyTime enqueued,
                                       uint64_t cache_generation,
                                       obs::QueryTrace* trace,
                                       const std::vector<uint8_t>* query_mask,
                                       bool state_locked) {
  QueryOutcome out;
  out.queue_seconds = SecondsBetween(enqueued, SteadyNow());
  obs::RecordPhase(trace, obs::Phase::kQueue, out.queue_seconds);
  SteadyTime start = SteadyNow();

  // Under ingest, the whole engine pass + delta fold happens inside one
  // shared acquisition of the ingest state mutex, so the absorber's publish
  // swap can never interleave with it (a row is counted in exactly one of
  // {published state, delta}). RunBatch already holds it for the fused pass.
  std::shared_lock<std::shared_mutex> state_lock;
  if (ingest_ != nullptr && !state_locked) {
    state_lock = std::shared_lock<std::shared_mutex>(ingest_->state_mutex());
  }

  Status stop = Status::OK();
  if (token->ShouldStop()) {
    // The deadline burned out in the queue (or Stop() cancelled us) — skip
    // straight to the fallback / error path without touching the engine.
    stop = token->StopStatus();
  } else {
    ExecuteControl control;
    control.cancel = token;
    control.seed = canon.seed;
    control.record = false;
    control.trace = trace;
    control.query_mask = query_mask;
    auto result = engine_.Execute(canon.query, control);
    if (result.ok()) {
      out.ci = result->ci;
      out.used_pre = result->used_pre;
      out.pre_description = result->pre_description;
      if (options_.enable_cache) {
        // The cache stores the *base* (unfolded) answer: a delta commit bumps
        // the cache generation through the commit observer, so this insert is
        // dropped whenever the delta changed since the probe, and hits fold
        // the live delta themselves.
        cache_.InsertIfCurrent(canon.key, template_id, *result,
                               cache_generation);
      }
      if (ingest_ != nullptr) {
        Status folded = FoldDeltaLocked(canon.query, &out);
        if (!folded.ok()) {
          out = QueryOutcome{};
          out.status = std::move(folded);
        }
      }
      out.exec_seconds = SecondsBetween(start, SteadyNow());
      return out;
    }
    stop = result.status();
  }

  if (options_.progressive_fallback &&
      stop.code() == StatusCode::kDeadlineExceeded) {
    obs::SpanTimer progressive_span(obs::Phase::kProgressive, trace);
    auto partial = RunProgressive(canon, token);
    if (partial.ok()) {
      out.ci = partial->ci;
      out.partial = true;
      out.partial_rows_used = partial->rows_used;
      if (ingest_ != nullptr) {
        Status folded = FoldDeltaLocked(canon.query, &out);
        if (!folded.ok()) {
          out = QueryOutcome{};
          out.status = std::move(folded);
        }
      }
      out.exec_seconds = SecondsBetween(start, SteadyNow());
      return out;  // partial answers are NOT cached: different precision
    }
  }
  out.status = std::move(stop);
  out.exec_seconds = SecondsBetween(start, SteadyNow());
  return out;
}

void QueryService::RunBatch(std::vector<AdmissionController::Job>&& jobs) {
  // Recover each member's context. A job without a payload (shouldn't happen
  // on this path, but run_batch must never strand a promise) runs solo.
  std::vector<std::shared_ptr<BatchItem>> items;
  items.reserve(jobs.size());
  for (AdmissionController::Job& j : jobs) {
    auto item = std::static_pointer_cast<BatchItem>(j.batch_payload);
    if (item == nullptr) {
      if (j.run) j.run();
      continue;
    }
    items.push_back(std::move(item));
  }
  if (items.empty()) return;
  BatchServiceMetrics::Get().batch_size->Observe(
      static_cast<double>(items.size()));
  BatchServiceMetrics::Get().fused->Increment(items.size());

  // One shared acquisition covers the fused mask pass and every member's
  // engine pass + delta fold (the state mutex is not recursive, so members
  // run with state_locked=true).
  std::shared_lock<std::shared_mutex> state_lock;
  if (ingest_ != nullptr) {
    state_lock = std::shared_lock<std::shared_mutex>(ingest_->state_mutex());
  }

  // One fused pass over the sample evaluates every eligible member's
  // predicate mask. MIN/MAX members use the extrema grid (no sample mask)
  // and already-cancelled members skip straight to their error path, so
  // neither joins the pass. A member whose mask fails to bind simply runs
  // without one — the solo path reproduces the identical error, and no
  // sibling is poisoned.
  const Table& sample_rows = *engine_.sample().rows;
  std::vector<size_t> mask_idx;
  std::vector<std::vector<RangeCondition>> conds;
  for (size_t i = 0; i < items.size(); ++i) {
    const BatchItem& item = *items[i];
    AggregateFunction func = item.canon.query.func;
    if (item.token != nullptr && item.token->ShouldStop()) continue;
    if (func == AggregateFunction::kMin || func == AggregateFunction::kMax) {
      continue;
    }
    mask_idx.push_back(i);
    conds.push_back(item.canon.query.predicate.conditions());
  }
  std::vector<std::optional<std::vector<uint8_t>>> masks(items.size());
  if (!conds.empty()) {
    auto fused = kernels::MultiEvaluateMask(sample_rows, conds);
    for (size_t j = 0; j < mask_idx.size(); ++j) {
      if (fused[j].ok()) masks[mask_idx[j]] = std::move(*fused[j]);
    }
  }

  // Per-member execution under the shared masks: failures stay scoped to
  // their member, and every promise is fulfilled exactly once.
  for (size_t i = 0; i < items.size(); ++i) {
    BatchItem& item = *items[i];
    const std::vector<uint8_t>* mask =
        masks[i].has_value() ? &*masks[i] : nullptr;
    item.pending->out =
        RunOnWorker(item.canon, item.template_id, item.token.get(),
                    item.enqueued, item.cache_generation, item.trace, mask,
                    /*state_locked=*/ingest_ != nullptr);
    item.pending->done.set_value();
  }
}

Status QueryService::OnlineRounds(uint64_t session_id, const RangeQuery& query,
                                  std::vector<ProgressiveStep>* rounds) {
  rounds->clear();
  auto session_or = sessions_.Get(session_id);
  if (!session_or.ok()) return session_or.status();
  if (!query.group_by.empty()) {
    return Status::Unimplemented("online mode answers scalar queries");
  }
  CanonicalQuery canon = canonicalizer_.Canonicalize(query);

  std::shared_lock<std::shared_mutex> state_lock;
  if (ingest_ != nullptr) {
    state_lock = std::shared_lock<std::shared_mutex>(ingest_->state_mutex());
  }
  ProgressiveOptions popts;
  popts.confidence_level = engine_.confidence_level();
  ProgressiveExecutor executor(&engine_.sample(),
                               engine_.ProgressiveCube(canon.query), popts);
  Rng rng(canon.seed);
  auto steps = executor.Run(canon.query, rng);
  // Queries the progressive executor cannot answer (non-SUM/COUNT aggregates,
  // stratified samples) produce no rounds: online degrades to one-shot.
  if (!steps.ok()) return Status::OK();
  // The delta is not part of the sample, so every round gets the same exact
  // shift the one-shot answer gets — intervals translate, widths survive.
  double shift = 0.0;
  if (ingest_ != nullptr && IngestManager::FoldSupported(canon.query.func)) {
    std::shared_ptr<const Table> delta = ingest_->delta();
    if (delta != nullptr && delta->num_rows() > 0) {
      AQPP_ASSIGN_OR_RETURN(shift,
                            IngestManager::FoldValue(*delta, canon.query));
    }
  }
  const size_t sample_rows = engine_.sample().size();
  double tightest = std::numeric_limits<double>::infinity();
  for (ProgressiveStep step : *steps) {
    step.ci.estimate += shift;
    // A zero-width round short of the full sample means the consumed prefix
    // held no difference rows at all — that is absence of evidence, not
    // certainty. Emitting it would mislead the client and pin the monotone
    // filter at zero, silencing every honest round after it. (At the full
    // sample a zero width is exact — the query aligns with the cube — and
    // passes through.)
    if (step.ci.half_width == 0.0 && step.rows_used < sample_rows) continue;
    // Monotone filter: a round wider than its predecessor carries no new
    // information for the stream's contract and is dropped.
    if (step.ci.half_width > tightest) continue;
    tightest = step.ci.half_width;
    rounds->push_back(step);
  }
  return Status::OK();
}

Result<ProgressiveStep> QueryService::RunProgressive(
    const CanonicalQuery& canon, const CancellationToken* token) {
  ProgressiveOptions popts;
  popts.confidence_level = engine_.confidence_level();
  ProgressiveExecutor executor(&engine_.sample(),
                               engine_.ProgressiveCube(canon.query), popts);
  Rng rng(canon.seed);
  AQPP_ASSIGN_OR_RETURN(auto steps, executor.Run(canon.query, rng, token));
  if (steps.empty()) {
    return Status::Internal("progressive run produced no checkpoints");
  }
  return steps.back();
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s.queries = queries_;
    s.completed = completed_;
    s.cache_hits = cache_hits_;
    s.rejected = rejected_;
    s.timed_out = timed_out_;
    s.partial = partial_;
    s.cancelled = cancelled_;
    s.failed = failed_;
    s.single_flight_attached = single_flight_attached_;
    size_t n = latency_full_ ? latencies_.size() : latency_next_;
    if (n > 0) {
      std::vector<double> sorted(latencies_.begin(),
                                 latencies_.begin() + n);
      std::sort(sorted.begin(), sorted.end());
      auto pct = [&](double q) {
        size_t idx = static_cast<size_t>(
            std::ceil(q * static_cast<double>(n)));
        return sorted[std::min(n - 1, idx == 0 ? 0 : idx - 1)];
      };
      s.p50_latency_seconds = pct(0.50);
      s.p95_latency_seconds = pct(0.95);
      s.p99_latency_seconds = pct(0.99);
    }
  }
  s.cache = cache_.stats();
  uint64_t probes = s.cache.hits + s.cache.misses;
  s.cache_hit_rate =
      probes == 0 ? 0 : static_cast<double>(s.cache.hits) /
                            static_cast<double>(probes);
  s.admission = admission_.stats();
  s.sessions_active = sessions_.active();
  s.sessions_opened = sessions_.total_opened();
  s.slow_queries = slow_log_.total_recorded();
  return s;
}

}  // namespace aqpp
