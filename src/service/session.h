// Sessions: per-client state over the shared engine.
//
// A session owns nothing heavyweight — the sample and cube live in the
// engine, shared by everyone. What a session carries is the per-client
// surface: a default deadline, counters (submitted / completed / cache hits
// / rejections / timeouts), and a bounded log of the queries it ran (the
// per-session analogue of the engine's workload log; the engine-level log is
// bypassed by service executions, which set `ExecuteControl.record = false`).
//
// SessionManager hands out monotonically increasing ids and keeps sessions
// alive via shared_ptr: a worker holding a session outlives a concurrent
// Close() without dangling. All methods on both classes are thread-safe.

#ifndef AQPP_SERVICE_SESSION_H_
#define AQPP_SERVICE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "expr/query.h"

namespace aqpp {

struct SessionCounters {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t cache_hits = 0;
  uint64_t rejected = 0;
  uint64_t timed_out = 0;
  uint64_t failed = 0;
};

class Session {
 public:
  Session(uint64_t id, std::string name, size_t max_recorded_queries)
      : id_(id), name_(std::move(name)),
        max_recorded_queries_(max_recorded_queries) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }

  // Default deadline applied when a request carries none; <= 0 = none.
  double default_timeout_seconds() const {
    return default_timeout_seconds_.load(std::memory_order_relaxed);
  }
  void set_default_timeout_seconds(double seconds) {
    default_timeout_seconds_.store(seconds, std::memory_order_relaxed);
  }

  void OnSubmitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void OnCompleted() { completed_.fetch_add(1, std::memory_order_relaxed); }
  void OnCacheHit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void OnRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void OnTimedOut() { timed_out_.fetch_add(1, std::memory_order_relaxed); }
  void OnFailed() { failed_.fetch_add(1, std::memory_order_relaxed); }

  SessionCounters counters() const {
    SessionCounters c;
    c.submitted = submitted_.load(std::memory_order_relaxed);
    c.completed = completed_.load(std::memory_order_relaxed);
    c.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    c.rejected = rejected_.load(std::memory_order_relaxed);
    c.timed_out = timed_out_.load(std::memory_order_relaxed);
    c.failed = failed_.load(std::memory_order_relaxed);
    return c;
  }

  // Bounded query log (oldest dropped first).
  void RecordQuery(const RangeQuery& query);
  std::vector<RangeQuery> recorded_queries() const;

 private:
  const uint64_t id_;
  const std::string name_;
  const size_t max_recorded_queries_;
  std::atomic<double> default_timeout_seconds_{0.0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> timed_out_{0};
  std::atomic<uint64_t> failed_{0};
  mutable std::mutex log_mu_;
  std::vector<RangeQuery> log_;
};

struct SessionManagerOptions {
  size_t max_sessions = 256;
  size_t max_recorded_queries_per_session = 256;
};

class SessionManager {
 public:
  explicit SessionManager(SessionManagerOptions options = {})
      : options_(options) {}

  // Opens a session; ResourceExhausted when at max_sessions.
  Result<std::shared_ptr<Session>> Open(const std::string& name);

  Result<std::shared_ptr<Session>> Get(uint64_t id) const;

  Status Close(uint64_t id);

  size_t active() const;
  uint64_t total_opened() const {
    return next_id_.load(std::memory_order_relaxed) - 1;
  }
  std::vector<std::shared_ptr<Session>> List() const;

 private:
  SessionManagerOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Session>> sessions_;
  std::atomic<uint64_t> next_id_{1};
};

}  // namespace aqpp

#endif  // AQPP_SERVICE_SESSION_H_
