#include "service/protocol.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/string_util.h"

namespace aqpp {

Result<Request> ParseRequest(const std::string& line) {
  std::string_view s = TrimWhitespace(line);
  if (s.empty()) return Status::InvalidArgument("empty request");
  size_t space = s.find(' ');
  std::string verb = ToLowerAscii(s.substr(0, space));
  std::string_view rest =
      space == std::string_view::npos ? std::string_view()
                                      : TrimWhitespace(s.substr(space + 1));
  Request req;
  if (verb == "hello") {
    req.type = RequestType::kHello;
    req.name = std::string(rest);
    return req;
  }
  if (verb == "ping") {
    req.type = RequestType::kPing;
    return req;
  }
  if (verb == "set") {
    req.type = RequestType::kSet;
    size_t kv = rest.find(' ');
    if (kv == std::string_view::npos) {
      return Status::InvalidArgument("SET wants: SET <key> <value>");
    }
    req.set_key = ToLowerAscii(TrimWhitespace(rest.substr(0, kv)));
    req.set_value = std::string(TrimWhitespace(rest.substr(kv + 1)));
    return req;
  }
  if (verb == "query") {
    req.type = RequestType::kQuery;
    if (rest.empty()) {
      return Status::InvalidArgument("QUERY wants a SQL statement");
    }
    req.sql = std::string(rest);
    return req;
  }
  if (verb == "stats") {
    req.type = RequestType::kStats;
    return req;
  }
  if (verb == "metrics") {
    req.type = RequestType::kMetrics;
    return req;
  }
  if (verb == "quit") {
    req.type = RequestType::kQuit;
    return req;
  }
  if (verb == "shardinfo") {
    req.type = RequestType::kShardInfo;
    return req;
  }
  if (verb == "partial") {
    req.type = RequestType::kPartial;
    if (rest.empty()) {
      return Status::InvalidArgument("PARTIAL wants a query spec");
    }
    req.args = std::string(rest);
    return req;
  }
  if (verb == "ingest") {
    req.type = RequestType::kIngest;
    if (rest.empty()) {
      return Status::InvalidArgument("INGEST wants an encoded batch");
    }
    req.args = std::string(rest);
    return req;
  }
  if (verb == "cancel") {
    req.type = RequestType::kCancel;
    return req;
  }
  return Status::InvalidArgument("unknown verb '" + verb + "'");
}

std::string FormatDoubleExact(double v) { return StrFormat("%.17g", v); }

void Response::AddUint(const std::string& key, uint64_t value) {
  Add(key, StrFormat("%llu", static_cast<unsigned long long>(value)));
}

void Response::AddDouble(const std::string& key, double value) {
  Add(key, FormatDoubleExact(value));
}

std::optional<std::string> Response::Find(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return std::nullopt;
}

Result<double> Response::GetDouble(const std::string& key) const {
  auto v = Find(key);
  if (!v.has_value()) {
    return Status::NotFound("response has no field '" + key + "'");
  }
  return std::strtod(v->c_str(), nullptr);
}

Result<uint64_t> Response::GetUint(const std::string& key) const {
  auto v = Find(key);
  if (!v.has_value()) {
    return Status::NotFound("response has no field '" + key + "'");
  }
  return static_cast<uint64_t>(std::strtoull(v->c_str(), nullptr, 10));
}

Response Response::Error(const std::string& code, const std::string& message) {
  Response r;
  r.ok = false;
  r.Add("code", code);
  r.message = message;
  return r;
}

std::string FormatResponse(const Response& response) {
  std::string out = response.ok ? "OK" : "ERR";
  for (const auto& [k, v] : response.fields) {
    out += ' ';
    out += k;
    out += '=';
    out += v;
  }
  if (!response.message.empty()) {
    // msg= is last and consumes the rest of the line; strip newlines so the
    // framing survives arbitrary status text.
    std::string msg = response.message;
    for (char& c : msg) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    out += " msg=";
    out += msg;
  }
  return out;
}

std::string FormatProgressLine(const ProgressLine& p) {
  std::string out = "PROGRESS";
  out += " round=" + StrFormat("%llu", static_cast<unsigned long long>(p.round));
  out += " rows_used=" +
         StrFormat("%llu", static_cast<unsigned long long>(p.rows_used));
  out += " estimate=" + FormatDoubleExact(p.estimate);
  out += " lo=" + FormatDoubleExact(p.lo);
  out += " hi=" + FormatDoubleExact(p.hi);
  out += " half_width=" + FormatDoubleExact(p.half_width);
  out += " level=" + FormatDoubleExact(p.level);
  return out;
}

namespace {

Status ParseFiniteDouble(const std::string& text, double* out) {
  if (text.empty()) return Status::InvalidArgument("empty numeric value");
  const char* begin = text.c_str();
  char* end = nullptr;
  double v = std::strtod(begin, &end);
  if (end != begin + text.size()) {
    return Status::InvalidArgument("trailing garbage in number '" + text + "'");
  }
  if (!std::isfinite(v)) {
    return Status::InvalidArgument("non-finite value '" + text + "'");
  }
  *out = v;
  return Status::OK();
}

Status ParseUint(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') {
    return Status::InvalidArgument("malformed unsigned '" + text + "'");
  }
  const char* begin = text.c_str();
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(begin, &end, 10);
  if (end != begin + text.size() || errno == ERANGE) {
    return Status::InvalidArgument("malformed unsigned '" + text + "'");
  }
  *out = static_cast<uint64_t>(v);
  return Status::OK();
}

}  // namespace

Result<ProgressLine> ParseProgressLine(const std::string& line) {
  std::string_view s = TrimWhitespace(line);
  size_t space = s.find(' ');
  if (s.substr(0, space) != "PROGRESS") {
    return Status::InvalidArgument("progress line must start with PROGRESS");
  }
  ProgressLine p;
  uint32_t seen = 0;  // bitmask over the 7 required fields
  std::string_view rest =
      space == std::string_view::npos ? std::string_view() : s.substr(space + 1);
  while (!rest.empty()) {
    rest = TrimWhitespace(rest);
    if (rest.empty()) break;
    size_t end = rest.find(' ');
    std::string_view field = rest.substr(0, end);
    size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("malformed field '" + std::string(field) +
                                     "'");
    }
    std::string key(field.substr(0, eq));
    std::string value(field.substr(eq + 1));
    int bit = -1;
    Status st = Status::OK();
    if (key == "round") {
      bit = 0;
      st = ParseUint(value, &p.round);
    } else if (key == "rows_used") {
      bit = 1;
      st = ParseUint(value, &p.rows_used);
    } else if (key == "estimate") {
      bit = 2;
      st = ParseFiniteDouble(value, &p.estimate);
    } else if (key == "lo") {
      bit = 3;
      st = ParseFiniteDouble(value, &p.lo);
    } else if (key == "hi") {
      bit = 4;
      st = ParseFiniteDouble(value, &p.hi);
    } else if (key == "half_width") {
      bit = 5;
      st = ParseFiniteDouble(value, &p.half_width);
    } else if (key == "level") {
      bit = 6;
      st = ParseFiniteDouble(value, &p.level);
    } else {
      return Status::InvalidArgument("unknown progress field '" + key + "'");
    }
    AQPP_RETURN_NOT_OK(st);
    if (seen & (1u << bit)) {
      return Status::InvalidArgument("duplicate progress field '" + key + "'");
    }
    seen |= 1u << bit;
    if (end == std::string_view::npos) break;
    rest = rest.substr(end + 1);
  }
  if (seen != 0x7f) {
    return Status::InvalidArgument("progress line is missing required fields");
  }
  return p;
}

Result<Response> ParseResponse(const std::string& line) {
  std::string_view s = TrimWhitespace(line);
  if (s.empty()) return Status::InvalidArgument("empty response");
  size_t space = s.find(' ');
  std::string_view verdict = s.substr(0, space);
  Response r;
  if (verdict == "OK") {
    r.ok = true;
  } else if (verdict == "ERR") {
    r.ok = false;
  } else {
    return Status::InvalidArgument("response must start with OK or ERR");
  }
  std::string_view rest =
      space == std::string_view::npos ? std::string_view() : s.substr(space + 1);
  while (!rest.empty()) {
    rest = TrimWhitespace(rest);
    if (rest.empty()) break;
    if (rest.rfind("msg=", 0) == 0) {
      r.message = std::string(rest.substr(4));
      break;
    }
    size_t end = rest.find(' ');
    std::string_view field = rest.substr(0, end);
    size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("malformed field '" +
                                     std::string(field) + "'");
    }
    r.fields.emplace_back(std::string(field.substr(0, eq)),
                          std::string(field.substr(eq + 1)));
    if (end == std::string_view::npos) break;
    rest = rest.substr(end + 1);
  }
  return r;
}

}  // namespace aqpp
