// ServiceClient: a small blocking client for the service line protocol.
//
// One TCP connection == one session. Query() parses the OK fields into a
// QueryReply; QueryWithRetry() honors the server's backpressure contract by
// sleeping out the advertised retry_after and resubmitting — the loop every
// well-behaved client of a reject-with-retry-after service runs. The loop is
// bounded (attempts, per-sleep cap, total deadline) and jittered with a
// seeded RNG so stampeding clients decorrelate deterministically in tests.

#ifndef AQPP_SERVICE_CLIENT_H_
#define AQPP_SERVICE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "service/protocol.h"
#include "storage/table.h"

namespace aqpp {

// Bounds and shapes the QueryWithRetry backoff loop. All sleeps route
// through SleepFor(), so under a SimClock the whole loop runs in virtual
// time.
struct RetryPolicy {
  // Total submission attempts (>= 1); exhausting them yields kUnavailable.
  int max_attempts = 10;
  // Sleep before the first retry when the server sent no retry_after hint;
  // doubles per attempt up to max_backoff_seconds.
  double initial_backoff_seconds = 0.01;
  // Hard cap on any single sleep, hinted or not. A saturated server can
  // advertise arbitrarily long drain times; the client stays bounded.
  double max_backoff_seconds = 2.0;
  // Budget for the whole loop (submissions + sleeps); <= 0 = unbounded.
  // When the budget cannot cover the next sleep the loop stops early with
  // kUnavailable rather than overshooting.
  double total_deadline_seconds = 0;
  // Each sleep is scaled by a uniform factor in [1-j, 1+j].
  double jitter_fraction = 0.2;
  // Seed for the jitter RNG: same seed => same sleep sequence.
  uint64_t seed = 1;
  // Opt-in handling of coordinator degraded answers (degraded=1 on the
  // wire: some shards were missing and the CI was widened). When false a
  // degraded reply is returned as-is — it is still an OK answer, just
  // flagged. When true the loop treats it like a rejection: back off and
  // resubmit for a full answer, returning the last degraded reply only if
  // every attempt stayed degraded.
  bool retry_degraded = false;
  // Test hook observing every backoff decision.
  std::function<void(int attempt, double sleep_seconds)> on_backoff;
};

struct QueryReply {
  double estimate = 0;
  double lo = 0;
  double hi = 0;
  double half_width = 0;
  double level = 0;
  bool cache_hit = false;
  bool partial = false;
  // Coordinator answers only: true when shards were missing and the answer
  // was extrapolated with a widened CI (degraded=1 on the wire). Distinct
  // from `partial`, the single-engine deadline semantics.
  bool degraded = false;
  uint64_t rows_used = 0;
  bool used_pre = false;
  double queue_ms = 0;
  double exec_ms = 0;
  // Streaming-ingest servers only: the committed ingest generation and delta
  // size the answer reflects, and whether the delta was folded exactly.
  uint64_t generation = 0;
  uint64_t delta_rows = 0;
  bool folded = false;
  // Online-mode answers: rounds streamed before the final line; cancelled
  // means the stream was abandoned mid-flight and the estimate fields are
  // not populated.
  bool online = false;
  uint64_t rounds = 0;
  bool cancelled = false;
};

// INGEST acknowledgment: the batch is committed (visible to the next query)
// when this returns OK.
struct IngestReply {
  uint64_t appended = 0;
  uint64_t generation = 0;
  uint64_t delta_rows = 0;
  uint64_t total_rows = 0;
};

class ServiceClient {
 public:
  static Result<ServiceClient> Connect(const std::string& host, int port);

  ServiceClient() = default;
  ~ServiceClient();
  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  // Sends one request line and reads one response line.
  Result<Response> Call(const std::string& request_line);

  // Caps how long a blocking read on this connection may wait (SO_RCVTIMEO;
  // <= 0 restores "wait forever"). A timed-out Call returns
  // DeadlineExceeded and the connection should be considered poisoned (a
  // late reply would desynchronize the line protocol). The coordinator's
  // per-shard deadlines ride on this.
  Status SetRecvTimeout(double seconds);

  // HELLO [name] -> session id.
  Result<uint64_t> Hello(const std::string& name = "");
  Status Ping();
  Status SetTimeoutMs(int64_t ms);
  // SET SYNOPSIS <kind>; "off" (or "") restores the legacy estimator.
  Status SetSynopsis(const std::string& kind);

  // QUERY <sql>; server-side errors come back as the matching Status code.
  Result<QueryReply> Query(const std::string& sql);

  // SET MODE online|oneshot for this connection.
  Status SetMode(const std::string& mode);

  // Online-mode QUERY: `on_progress` is invoked for every PROGRESS line in
  // stream order; returning false sends CANCEL and abandons the stream (the
  // reply then has cancelled=true and no estimate). The connection must be
  // in online mode (SetMode("online")); in oneshot mode this degrades to a
  // plain Query with zero rounds.
  Result<QueryReply> QueryOnline(
      const std::string& sql,
      const std::function<bool(const ProgressLine&)>& on_progress);

  // INGEST: encodes `batch` with the service wire codec and appends it.
  // All-or-nothing: an error reply means no row of the batch was committed.
  Result<IngestReply> Ingest(const Table& batch);

  // Query(), but on ResourceExhausted sleeps (server hint, else exponential
  // backoff; capped, jittered) and resubmits under `policy`'s bounds.
  // Exhausting the attempt budget or the total deadline while the server
  // still rejects yields kUnavailable — the terminal "saturated" error —
  // carrying the last rejection's message.
  Result<QueryReply> QueryWithRetry(const std::string& sql,
                                    const RetryPolicy& policy);

  // Legacy shorthand: default policy with `max_attempts` attempts.
  Result<QueryReply> QueryWithRetry(const std::string& sql,
                                    int max_attempts = 10);

  // STATS as ordered key=value pairs.
  Result<std::vector<std::pair<std::string, std::string>>> Stats();

  // METRICS: the raw Prometheus exposition text (the "# EOF" terminator is
  // consumed, not returned).
  Result<std::string> Metrics();

  // QUIT (best effort) + close.
  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  Result<std::string> ReadLine();
  Status SendLine(const std::string& line);

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace aqpp

#endif  // AQPP_SERVICE_CLIENT_H_
