// ServiceClient: a small blocking client for the service line protocol.
//
// One TCP connection == one session. Query() parses the OK fields into a
// QueryReply; QueryWithRetry() honors the server's backpressure contract by
// sleeping out the advertised retry_after and resubmitting — the loop every
// well-behaved client of a reject-with-retry-after service runs.

#ifndef AQPP_SERVICE_CLIENT_H_
#define AQPP_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "service/protocol.h"

namespace aqpp {

struct QueryReply {
  double estimate = 0;
  double lo = 0;
  double hi = 0;
  double half_width = 0;
  double level = 0;
  bool cache_hit = false;
  bool partial = false;
  uint64_t rows_used = 0;
  bool used_pre = false;
  double queue_ms = 0;
  double exec_ms = 0;
};

class ServiceClient {
 public:
  static Result<ServiceClient> Connect(const std::string& host, int port);

  ServiceClient() = default;
  ~ServiceClient();
  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  // Sends one request line and reads one response line.
  Result<Response> Call(const std::string& request_line);

  // HELLO [name] -> session id.
  Result<uint64_t> Hello(const std::string& name = "");
  Status Ping();
  Status SetTimeoutMs(int64_t ms);

  // QUERY <sql>; server-side errors come back as the matching Status code.
  Result<QueryReply> Query(const std::string& sql);

  // Query(), but on ResourceExhausted sleeps the server's retry_after hint
  // and resubmits, up to `max_attempts` total attempts.
  Result<QueryReply> QueryWithRetry(const std::string& sql,
                                    int max_attempts = 10);

  // STATS as ordered key=value pairs.
  Result<std::vector<std::pair<std::string, std::string>>> Stats();

  // METRICS: the raw Prometheus exposition text (the "# EOF" terminator is
  // consumed, not returned).
  Result<std::string> Metrics();

  // QUIT (best effort) + close.
  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  Result<std::string> ReadLine();

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace aqpp

#endif  // AQPP_SERVICE_CLIENT_H_
