// Admission control: a bounded, session-fair queue in front of the engine.
//
// The engine's scans already fan out across cores (the global ThreadPool),
// so the service must not oversubscribe the machine by running every request
// at once — and it must not queue without bound either, or a burst turns
// into unbounded latency. AdmissionController therefore:
//
//  * runs a fixed pool of dedicated worker threads (the fork-join ThreadPool
//    in common/ is the wrong shape here: its Run() blocks the caller, while
//    admission needs fire-and-signal tasks with its own queue discipline);
//  * bounds the queue globally and per session, rejecting overflow with
//    ResourceExhausted plus a retry-after hint derived from an EWMA of
//    observed service times — explicit backpressure instead of a hang;
//  * drains sessions round-robin, so one chatty client cannot starve the
//    others (per-session FIFO, cross-session fairness);
//  * on Stop(), cancels whatever is still queued and runs it anyway — every
//    job's promise is fulfilled (with Cancelled), so no waiter is left
//    hanging.
//
// Deadlines are not enforced here: the job's CancellationToken carries them
// into the engine, which checks cooperatively (core/cancellation.h). The
// controller only hands the token to Stop()'s drain path.

#ifndef AQPP_SERVICE_ADMISSION_H_
#define AQPP_SERVICE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/cancellation.h"

namespace aqpp {

struct AdmissionOptions {
  size_t num_workers = 2;
  // Total queued (not yet running) requests across all sessions.
  size_t max_queue_depth = 64;
  // Queued requests per session; the fairness bound.
  size_t max_per_session = 16;
  // Lower bound on the retry-after hint.
  double retry_floor_seconds = 0.01;
  // Test seam: invoked by a worker right before it runs a job.
  std::function<void()> worker_hook;
};

struct AdmissionStats {
  size_t queue_depth = 0;
  size_t peak_queue_depth = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  // Jobs cancelled-and-run by Stop()'s drain.
  uint64_t drained = 0;
  double ewma_service_seconds = 0;
};

class AdmissionController {
 public:
  struct Job {
    // Cancelled by Stop() before the drain runs the job; may be null.
    std::shared_ptr<CancellationToken> token;
    // Must not throw; fulfills whatever promise the submitter waits on.
    std::function<void()> run;
  };

  explicit AdmissionController(AdmissionOptions options);
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Enqueues `job` for `session_id`. On overflow returns ResourceExhausted
  // and, when `retry_after_seconds` is non-null, a backoff hint; the job is
  // NOT run in that case. FailedPrecondition after Stop().
  Status Submit(uint64_t session_id, Job job,
                double* retry_after_seconds = nullptr);

  // Stops the workers, then cancels and runs every still-queued job on the
  // calling thread. Idempotent.
  void Stop();

  AdmissionStats stats() const;

 private:
  void WorkerLoop();
  double RetryAfterLocked() const;

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  size_t total_queued_ = 0;
  std::unordered_map<uint64_t, std::deque<Job>> queues_;
  // Sessions with pending work, in service order (rotated on each pop).
  std::deque<uint64_t> round_robin_;
  AdmissionStats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace aqpp

#endif  // AQPP_SERVICE_ADMISSION_H_
