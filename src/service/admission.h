// Admission control: a bounded, session-fair queue in front of the engine.
//
// The engine's scans already fan out across cores (the global ThreadPool),
// so the service must not oversubscribe the machine by running every request
// at once — and it must not queue without bound either, or a burst turns
// into unbounded latency. AdmissionController therefore:
//
//  * runs a fixed pool of dedicated worker threads (the fork-join ThreadPool
//    in common/ is the wrong shape here: its Run() blocks the caller, while
//    admission needs fire-and-signal tasks with its own queue discipline);
//  * bounds the queue globally and per session, rejecting overflow with
//    ResourceExhausted plus a retry-after hint derived from an EWMA of
//    observed service times — explicit backpressure instead of a hang;
//  * drains sessions round-robin, so one chatty client cannot starve the
//    others (per-session FIFO, cross-session fairness);
//  * on Stop(), cancels whatever is still queued and runs it anyway — every
//    job's promise is fulfilled (with Cancelled), so no waiter is left
//    hanging.
//
// Deadlines are not enforced here: the job's CancellationToken carries them
// into the engine, which checks cooperatively (core/cancellation.h). The
// controller only hands the token to Stop()'s drain path.

#ifndef AQPP_SERVICE_ADMISSION_H_
#define AQPP_SERVICE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/cancellation.h"

namespace aqpp {

struct AdmissionOptions {
  size_t num_workers = 2;
  // Total queued (not yet running) requests across all sessions.
  size_t max_queue_depth = 64;
  // Queued requests per session; the fairness bound.
  size_t max_per_session = 16;
  // Lower bound on the retry-after hint.
  double retry_floor_seconds = 0.01;
  // Shared-scan batch formation. A worker that pops a job with a non-empty
  // batch_key gathers every queued same-key job (across sessions) into one
  // batch and hands them all to the popped job's run_batch. If the popped
  // job is alone, the worker waits up to batch_window_seconds for company —
  // any same-key arrival (or Stop()) ends the wait early, and a backlog that
  // already holds same-key jobs skips it entirely (queue-depth trigger).
  // 0 disables the wait; batches then form only from the existing backlog.
  double batch_window_seconds = 0.001;
  // Master switch: false degrades every job to solo run() (ablation).
  bool enable_batching = true;
  // Test seam: invoked by a worker right before it runs a job.
  std::function<void()> worker_hook;
};

struct AdmissionStats {
  size_t queue_depth = 0;
  size_t peak_queue_depth = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  // Jobs cancelled-and-run by Stop()'s drain.
  uint64_t drained = 0;
  // Multi-member batches formed by batch-key grouping, and the total member
  // jobs (leaders included) those batches absorbed.
  uint64_t batches_formed = 0;
  uint64_t batch_members = 0;
  double ewma_service_seconds = 0;
};

class AdmissionController {
 public:
  struct Job {
    // Cancelled by Stop() before the drain runs the job; may be null.
    std::shared_ptr<CancellationToken> token;
    // Must not throw; fulfills whatever promise the submitter waits on.
    // Every job must work standalone through run() — the solo path, the
    // Stop() drain, and batching-disabled mode all use it.
    std::function<void()> run;
    // Batch formation: jobs sharing a non-empty key may be grouped (across
    // sessions) into one batch. Empty key = never batched. Keys must encode
    // everything needed for the batch to share one pass (the service uses
    // the target table's identity).
    std::string batch_key;
    // Runs the whole formed batch (this job first, then every gathered
    // same-key job) and must fulfill every member's promise, isolating
    // per-member failures. Only the popped leader's run_batch is invoked.
    // Null degrades the job to solo run() even when batch_key is set.
    std::function<void(std::vector<Job>&&)> run_batch;
    // Opaque per-job context for run_batch (the service parks its canonical
    // query / promise bundle here); never touched by the controller.
    std::shared_ptr<void> batch_payload;
  };

  explicit AdmissionController(AdmissionOptions options);
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Enqueues `job` for `session_id`. On overflow returns ResourceExhausted
  // and, when `retry_after_seconds` is non-null, a backoff hint; the job is
  // NOT run in that case. FailedPrecondition after Stop().
  Status Submit(uint64_t session_id, Job job,
                double* retry_after_seconds = nullptr);

  // Stops the workers, then cancels and runs every still-queued job on the
  // calling thread. Idempotent.
  void Stop();

  AdmissionStats stats() const;

 private:
  void WorkerLoop();
  double RetryAfterLocked() const;
  // Extracts every queued job whose batch_key == key into *batch, fixing the
  // round-robin and depth bookkeeping. Caller holds mu_.
  void CollectBatchLocked(const std::string& key, std::vector<Job>* batch);

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  size_t total_queued_ = 0;
  std::unordered_map<uint64_t, std::deque<Job>> queues_;
  // Sessions with pending work, in service order (rotated on each pop).
  std::deque<uint64_t> round_robin_;
  // Queued (not yet popped) jobs per non-empty batch_key; lets the window
  // wait and the queue-depth trigger check for company in O(1).
  std::unordered_map<std::string, size_t> batchable_queued_;
  AdmissionStats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace aqpp

#endif  // AQPP_SERVICE_ADMISSION_H_
