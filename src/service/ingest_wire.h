// Text codec for INGEST row batches, riding the one-line protocol.
//
//   INGEST rows=<n> cols=<m> data=<payload>
//
// The payload encodes `n` rows separated by ';', each row `m` fields
// separated by ','. Doubles are %.17g (exact binary64 round-trip, non-finite
// rejected on both ends), int64s are decimal, and string values are
// percent-escaped (every byte outside [0x21..0x7e] minus {',', ';', '%'} is
// emitted as %XX), so the payload never contains a space and the line framing
// of the protocol survives arbitrary values.
//
// Decoding is schema-directed: the caller supplies the table whose schema and
// dictionaries the batch must match, and the decoder builds a batch table
// whose string columns carry copies of that table's dictionaries (unknown
// values are an error — the ingest contract; see docs/ingest.md). Malformed
// payloads (wrong row/field counts, bad escapes, non-finite or non-numeric
// values, truncation) are InvalidArgument, never a crash — the decoder is a
// fuzz target (tests/fuzz_test.cc).

#ifndef AQPP_SERVICE_INGEST_WIRE_H_
#define AQPP_SERVICE_INGEST_WIRE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace aqpp {

// Hard bound on an encoded payload the decoder will touch (guards the server
// against hostile rows=/cols= headers before any allocation).
inline constexpr size_t kMaxIngestWireBytes = 8u << 20;
inline constexpr size_t kMaxIngestWireRows = 1u << 16;

// Encodes `batch` as the INGEST argument text ("rows=... cols=... data=...",
// no verb, no newline). Errors on empty batches, non-finite doubles, and
// batches over the wire bounds.
Result<std::string> EncodeIngestBatch(const Table& batch);

// Decodes an INGEST argument into a batch table matching `reference`'s
// schema, string columns coded against copies of `reference`'s dictionaries.
Result<std::shared_ptr<Table>> DecodeIngestBatch(const std::string& args,
                                                 const Table& reference);

}  // namespace aqpp

#endif  // AQPP_SERVICE_INGEST_WIRE_H_
