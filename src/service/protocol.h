// The service's line protocol (one request line -> one response line).
//
// Requests (case-insensitive verb, rest of line is the argument):
//
//   HELLO [name]            open a session           -> OK session=<id>
//   PING                    liveness                 -> OK pong=1
//   SET TIMEOUT_MS <n>      session default deadline -> OK timeout_ms=<n>
//   SET SYNOPSIS <kind>     service-wide estimator   -> OK synopsis=<kind>
//                           ("off" restores the legacy estimator path)
//   SET MODE <m>            answer mode for QUERY: "oneshot" (default) or
//                           "online" (progressive PROGRESS lines, then the
//                           final OK line)       -> OK mode=<m>
//   QUERY <sql>             execute                  -> OK estimate=... ...
//                           in online mode the OK line is preceded by zero or
//                           more "PROGRESS round=... estimate=..." lines
//   INGEST <batch>          append a row batch       -> OK appended=<n>
//                           generation=<g> ... (<batch> is the text codec of
//                           service/ingest_wire.h)
//   CANCEL                  abandon the in-flight online QUERY on this
//                           connection (only meaningful between PROGRESS
//                           lines; otherwise -> OK cancelled=0)
//   STATS                   service statistics       -> OK queries=... ...
//   METRICS                 Prometheus exposition    -> OK lines=<n> then
//                           <n> raw text lines ending with a "# EOF" line
//   QUIT                    close session            -> OK bye=1
//
// Shard-worker verbs (src/shard/, served by aqpp-shardd):
//
//   SHARDINFO               shard registration info  -> OK shard=<i>
//                           shards=<n> rows=<r> ... (see docs/sharding.md)
//   PARTIAL <spec>          per-shard partial aggregates for one canonical
//                           query; <spec> is space-separated key=value text
//                           parsed by ParsePartialSpec (src/shard/partial.h)
//
// Responses are a verdict token followed by space-separated key=value
// fields; values never contain spaces except the trailing msg= field of an
// error, which consumes the rest of the line:
//
//   OK key=value key=value ...
//   ERR code=DeadlineExceeded retry_after_ms=40 msg=free text here
//
// Doubles are formatted with %.17g so a round-trip through the wire
// reproduces the exact binary64 value — the cache's bit-identical guarantee
// survives the protocol. See docs/service.md for the full grammar.

#ifndef AQPP_SERVICE_PROTOCOL_H_
#define AQPP_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace aqpp {

enum class RequestType {
  kHello,
  kPing,
  kSet,
  kQuery,
  kStats,
  kMetrics,
  kQuit,
  kShardInfo,
  kPartial,
  kIngest,
  kCancel,
};

struct Request {
  RequestType type = RequestType::kPing;
  std::string name;       // HELLO
  std::string set_key;    // SET
  std::string set_value;  // SET
  std::string sql;        // QUERY
  std::string args;       // PARTIAL / INGEST (rest of line)
};

// Parses one request line (newline already stripped). Unknown verbs and
// malformed SET/QUERY arguments are InvalidArgument.
Result<Request> ParseRequest(const std::string& line);

struct Response {
  bool ok = true;
  // Ordered key=value fields; keys may repeat (they don't in practice).
  std::vector<std::pair<std::string, std::string>> fields;
  // ERR only: free text, rendered last as msg=...
  std::string message;

  void Add(const std::string& key, const std::string& value) {
    fields.emplace_back(key, value);
  }
  void AddUint(const std::string& key, uint64_t value);
  void AddDouble(const std::string& key, double value);  // %.17g
  std::optional<std::string> Find(const std::string& key) const;
  Result<double> GetDouble(const std::string& key) const;
  Result<uint64_t> GetUint(const std::string& key) const;

  static Response Error(const std::string& code, const std::string& message);
};

// One line, no trailing newline.
std::string FormatResponse(const Response& response);

// Inverse of FormatResponse (used by the client and the round-trip tests).
Result<Response> ParseResponse(const std::string& line);

// %.17g — shortest text that round-trips binary64 exactly.
std::string FormatDoubleExact(double v);

// One progressive checkpoint of an online-mode query. The stream the server
// emits is monotone: half_width never grows from one round to the next, and
// every round's half_width is >= the final OK line's. The final OK line is
// bit-identical to what the same query would answer in oneshot mode.
struct ProgressLine {
  uint64_t round = 0;      // 1-based
  uint64_t rows_used = 0;  // sample-rows prefix this round covers
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  double half_width = 0.0;
  double level = 0.0;
};

// "PROGRESS round=<r> rows_used=<n> estimate=<e> lo=<l> hi=<h>
//  half_width=<w> level=<p>" — doubles in %.17g, no trailing newline.
std::string FormatProgressLine(const ProgressLine& p);

// Strict inverse: rejects missing/duplicate/unknown fields, non-numeric
// values, and non-finite doubles (a well-formed server never emits them).
Result<ProgressLine> ParseProgressLine(const std::string& line);

}  // namespace aqpp

#endif  // AQPP_SERVICE_PROTOCOL_H_
