// ServiceServer: a line-protocol TCP front end over QueryService.
//
// One accept thread plus one thread per connection (connections are bounded;
// the per-request concurrency cap is the admission controller's job, not
// the socket layer's). Each connection is one session: opened on accept,
// closed on QUIT / disconnect. SQL arrives via the QUERY verb, is bound
// against the catalog, and is executed through QueryService::Execute — so
// every protocol client goes through admission, deadlines, and the result
// cache exactly like an in-process caller.
//
// Binding to port 0 picks an ephemeral port; port() reports the real one
// (how the tests avoid collisions).

#ifndef AQPP_SERVICE_SERVER_H_
#define AQPP_SERVICE_SERVER_H_

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "service/service.h"
#include "storage/table.h"

namespace aqpp {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral
  int backlog = 64;
  // Above this, new connections get one ERR line and are closed.
  size_t max_connections = 64;
  // A single request line over this is a protocol violation: the connection
  // gets one ERR line and is closed (resyncing inside an oversized INGEST
  // payload is not worth the ambiguity). Sized to fit the largest INGEST
  // line (kMaxIngestWireBytes) plus verb/header slack.
  size_t max_line_bytes = (8u << 20) + 4096;
  // Online-mode streams wait this long for pipelined input between PROGRESS
  // rounds (returning early the moment any arrives), so a client that reads
  // a round and fires CANCEL is honored before the stream runs out from
  // under it. Rounds are precomputed — without the wait they would drain at
  // wire speed and a mid-stream CANCEL could never win the race. 0 disables.
  int online_round_poll_ms = 10;
};

class ServiceServer {
 public:
  // `service` and `catalog` are borrowed and must outlive the server.
  ServiceServer(QueryService* service, const Catalog* catalog,
                ServerOptions options = {});
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  // Binds, listens, and starts the accept thread.
  Status Start();

  // Unblocks every connection and joins all threads. Idempotent.
  void Stop();

  // The bound port (valid after Start()).
  int port() const { return port_; }
  size_t active_connections() const;

 private:
  // Per-connection state threaded through HandleLine: the session, the
  // answer mode (SET MODE online|oneshot), and the unconsumed input buffer —
  // which the online streaming path inspects between PROGRESS lines so a
  // pipelined CANCEL is honored deterministically.
  struct ConnState {
    int fd = -1;
    uint64_t session_id = 0;
    bool online = false;
    std::string buffer;
  };

  void AcceptLoop();
  void HandleConnection(int fd);
  std::string HandleLine(ConnState* conn, const std::string& line, bool* quit);
  // Online-mode QUERY: streams PROGRESS rounds (polling for CANCEL between
  // them), then returns the final reply line.
  std::string HandleOnlineQuery(ConnState* conn, const std::string& sql,
                                bool* quit);

  QueryService* service_;
  const Catalog* catalog_;
  ServerOptions options_;
  // Atomic: Stop() resets it from the caller's thread while AcceptLoop()
  // reads it for accept(); the fd value itself stays valid until the accept
  // thread is joined because Stop() closes before resetting.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  mutable std::mutex conn_mu_;
  std::unordered_set<int> active_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace aqpp

#endif  // AQPP_SERVICE_SERVER_H_
