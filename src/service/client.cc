#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/clock.h"
#include "common/random.h"
#include "common/string_util.h"
#include "service/ingest_wire.h"

namespace aqpp {

namespace {

Status StatusFromWire(const Response& response) {
  std::string code = response.Find("code").value_or("Internal");
  std::string msg = response.message.empty() ? code : response.message;
  if (code == "ResourceExhausted") return Status::ResourceExhausted(msg);
  if (code == "DeadlineExceeded") return Status::DeadlineExceeded(msg);
  if (code == "Cancelled") return Status::Cancelled(msg);
  if (code == "InvalidArgument") return Status::InvalidArgument(msg);
  if (code == "NotFound") return Status::NotFound(msg);
  if (code == "FailedPrecondition") return Status::FailedPrecondition(msg);
  if (code == "Unimplemented") return Status::Unimplemented(msg);
  if (code == "IOError") return Status::IOError(msg);
  if (code == "Unavailable") return Status::Unavailable(msg);
  return Status::Internal(code + ": " + msg);
}

Result<QueryReply> ParseQueryReply(const Response& r) {
  QueryReply reply;
  AQPP_ASSIGN_OR_RETURN(reply.estimate, r.GetDouble("estimate"));
  AQPP_ASSIGN_OR_RETURN(reply.lo, r.GetDouble("lo"));
  AQPP_ASSIGN_OR_RETURN(reply.hi, r.GetDouble("hi"));
  AQPP_ASSIGN_OR_RETURN(reply.half_width, r.GetDouble("half_width"));
  AQPP_ASSIGN_OR_RETURN(reply.level, r.GetDouble("level"));
  reply.cache_hit = r.Find("cache_hit").value_or("0") == "1";
  reply.partial = r.Find("partial").value_or("0") == "1";
  reply.degraded = r.Find("degraded").value_or("0") == "1";
  if (auto rows = r.Find("rows_used")) {
    reply.rows_used = std::strtoull(rows->c_str(), nullptr, 10);
  }
  reply.used_pre = r.Find("pre").value_or("0") == "1";
  if (auto q = r.Find("queue_ms")) reply.queue_ms = std::atof(q->c_str());
  if (auto e = r.Find("exec_ms")) reply.exec_ms = std::atof(e->c_str());
  if (auto g = r.Find("generation")) {
    reply.generation = std::strtoull(g->c_str(), nullptr, 10);
  }
  if (auto d = r.Find("delta_rows")) {
    reply.delta_rows = std::strtoull(d->c_str(), nullptr, 10);
  }
  reply.folded = r.Find("folded").value_or("0") == "1";
  reply.online = r.Find("online").value_or("0") == "1";
  if (auto n = r.Find("rounds")) {
    reply.rounds = std::strtoull(n->c_str(), nullptr, 10);
  }
  return reply;
}

}  // namespace

Result<ServiceClient> ServiceClient::Connect(const std::string& host,
                                             int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IOError(StrFormat("connect %s:%d: %s", host.c_str(),
                                          port, std::strerror(errno)));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ServiceClient client;
  client.fd_ = fd;
  return client;
}

ServiceClient::~ServiceClient() { Close(); }

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void ServiceClient::Close() {
  if (fd_ < 0) return;
  std::string quit = "QUIT\n";
  (void)::send(fd_, quit.data(), quit.size(), MSG_NOSIGNAL);
  ::close(fd_);
  fd_ = -1;
}

Result<std::string> ServiceClient::ReadLine() {
  char chunk[4096];
  for (;;) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Status::IOError("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded(
            "recv timed out (SO_RCVTIMEO); connection is now desynchronized");
      }
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Status ServiceClient::SendLine(const std::string& request_line) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string line = request_line;
  line += '\n';
  size_t sent = 0;
  while (sent < line.size()) {
    ssize_t n =
        ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError("send failed; connection lost");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Response> ServiceClient::Call(const std::string& request_line) {
  AQPP_RETURN_NOT_OK(SendLine(request_line));
  AQPP_ASSIGN_OR_RETURN(std::string reply, ReadLine());
  return ParseResponse(reply);
}

Status ServiceClient::SetRecvTimeout(double seconds) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  timeval tv{};
  if (seconds > 0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec =
        static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) *
                                 1e6);
    // A strictly positive timeout must not round down to {0,0} ("forever").
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0) {
    return Status::IOError(std::string("setsockopt(SO_RCVTIMEO): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<uint64_t> ServiceClient::Hello(const std::string& name) {
  AQPP_ASSIGN_OR_RETURN(Response r,
                        Call(name.empty() ? "HELLO" : "HELLO " + name));
  if (!r.ok) return StatusFromWire(r);
  return r.GetUint("session");
}

Status ServiceClient::Ping() {
  AQPP_ASSIGN_OR_RETURN(Response r, Call("PING"));
  if (!r.ok) return StatusFromWire(r);
  return Status::OK();
}

Status ServiceClient::SetTimeoutMs(int64_t ms) {
  AQPP_ASSIGN_OR_RETURN(
      Response r,
      Call(StrFormat("SET TIMEOUT_MS %lld", static_cast<long long>(ms))));
  if (!r.ok) return StatusFromWire(r);
  return Status::OK();
}

Status ServiceClient::SetSynopsis(const std::string& kind) {
  AQPP_ASSIGN_OR_RETURN(
      Response r, Call("SET SYNOPSIS " + (kind.empty() ? "off" : kind)));
  if (!r.ok) return StatusFromWire(r);
  return Status::OK();
}

Result<QueryReply> ServiceClient::Query(const std::string& sql) {
  AQPP_ASSIGN_OR_RETURN(Response r, Call("QUERY " + sql));
  if (!r.ok) return StatusFromWire(r);
  return ParseQueryReply(r);
}

Status ServiceClient::SetMode(const std::string& mode) {
  AQPP_ASSIGN_OR_RETURN(Response r, Call("SET MODE " + mode));
  if (!r.ok) return StatusFromWire(r);
  return Status::OK();
}

Result<QueryReply> ServiceClient::QueryOnline(
    const std::string& sql,
    const std::function<bool(const ProgressLine&)>& on_progress) {
  AQPP_RETURN_NOT_OK(SendLine("QUERY " + sql));
  bool cancel_sent = false;
  for (;;) {
    AQPP_ASSIGN_OR_RETURN(std::string line, ReadLine());
    if (line.rfind("PROGRESS", 0) == 0) {
      AQPP_ASSIGN_OR_RETURN(ProgressLine p, ParseProgressLine(line));
      if (on_progress && !on_progress(p) && !cancel_sent) {
        AQPP_RETURN_NOT_OK(SendLine("CANCEL"));
        cancel_sent = true;
      }
      continue;
    }
    AQPP_ASSIGN_OR_RETURN(Response r, ParseResponse(line));
    if (!r.ok) return StatusFromWire(r);
    bool cancelled = r.Find("cancelled").value_or("0") == "1";
    if (cancel_sent && !cancelled) {
      // The final line beat our CANCEL to the server; the stray verb gets
      // its own "OK cancelled=0" reply — consume it to stay in sync.
      AQPP_ASSIGN_OR_RETURN(std::string stray, ReadLine());
      (void)stray;
    }
    if (cancelled) {
      QueryReply reply;
      reply.online = true;
      reply.cancelled = true;
      if (auto n = r.Find("rounds")) {
        reply.rounds = std::strtoull(n->c_str(), nullptr, 10);
      }
      return reply;
    }
    return ParseQueryReply(r);
  }
}

Result<IngestReply> ServiceClient::Ingest(const Table& batch) {
  AQPP_ASSIGN_OR_RETURN(std::string payload, EncodeIngestBatch(batch));
  AQPP_ASSIGN_OR_RETURN(Response r, Call("INGEST " + payload));
  if (!r.ok) return StatusFromWire(r);
  IngestReply reply;
  AQPP_ASSIGN_OR_RETURN(reply.appended, r.GetUint("appended"));
  AQPP_ASSIGN_OR_RETURN(reply.generation, r.GetUint("generation"));
  AQPP_ASSIGN_OR_RETURN(reply.delta_rows, r.GetUint("delta_rows"));
  AQPP_ASSIGN_OR_RETURN(reply.total_rows, r.GetUint("total_rows"));
  return reply;
}

Result<QueryReply> ServiceClient::QueryWithRetry(const std::string& sql,
                                                 const RetryPolicy& policy) {
  const int max_attempts = std::max(1, policy.max_attempts);
  Deadline deadline = policy.total_deadline_seconds > 0
                          ? Deadline::After(policy.total_deadline_seconds)
                          : Deadline::Infinite();
  Rng rng(policy.seed == 0 ? 1 : policy.seed);
  double backoff = std::max(0.0, policy.initial_backoff_seconds);
  Status last_reject = Status::OK();
  // Degraded coordinator answers are OK-but-flagged; with retry_degraded the
  // loop resubmits for a full answer but keeps the best degraded reply as
  // the fallback — a widened CI beats an error when the shard stays down.
  std::optional<QueryReply> last_degraded;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    AQPP_ASSIGN_OR_RETURN(Response r, Call("QUERY " + sql));
    bool degraded_retry = false;
    if (r.ok) {
      AQPP_ASSIGN_OR_RETURN(QueryReply reply, ParseQueryReply(r));
      if (!reply.degraded || !policy.retry_degraded) return reply;
      last_degraded = std::move(reply);
      degraded_retry = true;
      if (attempt == max_attempts) break;
    } else {
      Status st = StatusFromWire(r);
      if (st.code() != StatusCode::kResourceExhausted) return st;
      last_reject = std::move(st);
      if (attempt == max_attempts) break;
    }
    double sleep_seconds = backoff;
    if (!degraded_retry) {
      if (auto hint = r.GetUint("retry_after_ms"); hint.ok()) {
        sleep_seconds = static_cast<double>(*hint) / 1000.0;
      }
    }
    sleep_seconds = std::min(sleep_seconds, policy.max_backoff_seconds);
    if (policy.jitter_fraction > 0) {
      double j = std::min(policy.jitter_fraction, 1.0);
      sleep_seconds *= 1.0 - j + 2.0 * j * rng.NextDouble();
    }
    if (sleep_seconds > deadline.remaining_seconds()) {
      if (last_degraded.has_value()) return *last_degraded;
      return Status::Unavailable(StrFormat(
          "service saturated: retry budget of %.3fs exhausted after %d "
          "attempts (last rejection: %s)",
          policy.total_deadline_seconds, attempt,
          last_reject.message().c_str()));
    }
    if (policy.on_backoff) policy.on_backoff(attempt, sleep_seconds);
    SleepFor(sleep_seconds);
    backoff = std::min(backoff * 2.0, policy.max_backoff_seconds);
  }
  if (last_degraded.has_value()) return *last_degraded;
  return Status::Unavailable(StrFormat(
      "service saturated: still rejected after %d attempts (last rejection: "
      "%s)",
      max_attempts, last_reject.message().c_str()));
}

Result<QueryReply> ServiceClient::QueryWithRetry(const std::string& sql,
                                                 int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  return QueryWithRetry(sql, policy);
}

Result<std::vector<std::pair<std::string, std::string>>>
ServiceClient::Stats() {
  AQPP_ASSIGN_OR_RETURN(Response r, Call("STATS"));
  if (!r.ok) return StatusFromWire(r);
  return r.fields;
}

Result<std::string> ServiceClient::Metrics() {
  AQPP_ASSIGN_OR_RETURN(Response r, Call("METRICS"));
  if (!r.ok) return StatusFromWire(r);
  AQPP_ASSIGN_OR_RETURN(uint64_t lines, r.GetUint("lines"));
  std::string text;
  for (uint64_t i = 0; i <= lines; ++i) {
    AQPP_ASSIGN_OR_RETURN(std::string line, ReadLine());
    if (line == "# EOF") return text;
    text += line;
    text += '\n';
  }
  return Status::Internal("METRICS block missing its # EOF terminator");
}

}  // namespace aqpp
