// Semantic result cache for the query service.
//
// Two syntactically different queries often denote the same aggregate: ranges
// written past the column's domain clamp to the same rectangle, duplicate
// conditions on one column intersect, and full-domain conditions are
// vacuous. `QueryCanonicalizer` rewrites a RangeQuery into that normal form
// and derives a stable text key plus an execution seed from it, so
//
//  * equivalent queries share one cache slot (semantic, not textual, hits),
//  * a miss is executed with `ExecuteControl.seed = canonical seed`, which
//    makes the fresh result a pure function of (prepared state, canonical
//    query) — a later hit replays it bit-identically.
//
// `ResultCache` is an LRU map from canonical key to ApproximateResult with
// hit/miss/eviction/invalidation accounting. Entries carry the template id
// they were answered from, so maintenance can invalidate one template's
// entries (cube rebuilt) or everything (data appended). All methods are
// thread-safe.

#ifndef AQPP_SERVICE_RESULT_CACHE_H_
#define AQPP_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "expr/query.h"
#include "storage/table.h"

namespace aqpp {

// A query in service normal form, with its cache key and execution seed.
struct CanonicalQuery {
  RangeQuery query;
  std::string key;
  uint64_t seed = 0;
};

// FNV-1a over `s`; the cache's key hash and the seed derivation.
uint64_t Fnv1a64(const std::string& s);

// One column's known ordinal domain, for building a canonicalizer without
// an in-process table (the shard coordinator learns these over SHARDINFO).
struct ColumnDomainSpec {
  size_t column = 0;
  int64_t lo = 0;
  int64_t hi = 0;
};

class QueryCanonicalizer {
 public:
  // Precomputes per-column domains of `table` (ordinal columns only);
  // `table` must outlive the canonicalizer.
  explicit QueryCanonicalizer(const Table* table);

  // Builds from externally supplied domains instead of a table. Columns not
  // listed have unknown domains (their conditions pass through unclamped).
  // Same canonical form as the table constructor when the domains match, so
  // a coordinator and a single-engine service agree on keys and seeds.
  static QueryCanonicalizer FromDomains(
      size_t num_columns, const std::vector<ColumnDomainSpec>& domains);

  // Normal form: conditions clamped to the column domain, same-column
  // conditions intersected, vacuous (full-domain) conditions dropped,
  // remaining conditions sorted by column; an unsatisfiable predicate
  // collapses to the single marker condition {0, 1, 0}; COUNT ignores the
  // aggregate column (canonicalized to 0).
  CanonicalQuery Canonicalize(const RangeQuery& query) const;

 private:
  QueryCanonicalizer() = default;

  struct Domain {
    bool known = false;
    int64_t lo = 0;
    int64_t hi = 0;
  };
  std::vector<Domain> domains_;
};

struct ResultCacheOptions {
  // Maximum resident entries; 0 disables insertion entirely.
  size_t capacity = 1024;
};

struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  // Entries dropped by InvalidateTemplate / InvalidateAll.
  uint64_t invalidated = 0;
  size_t size = 0;
};

class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options = {});

  // Returns the cached result and refreshes its recency; counts a hit or a
  // miss either way.
  std::optional<ApproximateResult> Lookup(const std::string& key);

  // Inserts (or overwrites) `key`, evicting the least recently used entry
  // when at capacity. `template_id` tags the entry for invalidation (-1 =
  // answered without a cube).
  void Insert(const std::string& key, int template_id,
              const ApproximateResult& result);

  // Race-safe insert for results computed outside the cache lock: the caller
  // snapshots generation() before executing and the insert is dropped if any
  // invalidation ran in between. Without this guard a worker that finished
  // against pre-maintenance data could re-populate the cache with a stale
  // answer just after InvalidateAll() cleared it.
  void InsertIfCurrent(const std::string& key, int template_id,
                       const ApproximateResult& result,
                       uint64_t observed_generation);

  // Monotonic count of invalidation events; bumped by InvalidateTemplate
  // (when it dropped anything) and InvalidateAll.
  uint64_t generation() const;

  // Drops every entry answered from `template_id`.
  void InvalidateTemplate(int template_id);

  // Drops everything (data-update hook: appended rows change every answer).
  void InvalidateAll();

  ResultCacheStats stats() const;
  size_t size() const;

 private:
  struct Entry {
    ApproximateResult result;
    int template_id = -1;
    std::list<std::string>::iterator lru_it;
  };

  void InsertLocked(const std::string& key, int template_id,
                    const ApproximateResult& result);

  ResultCacheOptions options_;
  mutable std::mutex mu_;
  // Front = most recently used.
  std::list<std::string> lru_;
  std::unordered_map<std::string, Entry> entries_;
  ResultCacheStats stats_;
  uint64_t generation_ = 0;
};

}  // namespace aqpp

#endif  // AQPP_SERVICE_RESULT_CACHE_H_
