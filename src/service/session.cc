#include "service/session.h"

#include <algorithm>

#include "obs/metrics.h"

namespace aqpp {

namespace {

struct SessionMetrics {
  obs::Gauge* active;
  obs::Counter* opened;
  static const SessionMetrics& Get() {
    auto& reg = obs::Registry::Global();
    static const SessionMetrics m = {
        reg.GetGauge("aqpp_sessions_active", "",
                     "Sessions currently open."),
        reg.GetCounter("aqpp_sessions_opened_total", "",
                       "Sessions opened over the process lifetime."),
    };
    return m;
  }
};

}  // namespace

void Session::RecordQuery(const RangeQuery& query) {
  std::lock_guard<std::mutex> lock(log_mu_);
  if (log_.size() >= max_recorded_queries_) {
    log_.erase(log_.begin());
  }
  log_.push_back(query);
}

std::vector<RangeQuery> Session::recorded_queries() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return log_;
}

Result<std::shared_ptr<Session>> SessionManager::Open(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.size() >= options_.max_sessions) {
    return Status::ResourceExhausted("session limit reached");
  }
  uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  auto session = std::make_shared<Session>(
      id, name.empty() ? "session-" + std::to_string(id) : name,
      options_.max_recorded_queries_per_session);
  sessions_[id] = session;
  SessionMetrics::Get().opened->Increment();
  SessionMetrics::Get().active->Set(static_cast<int64_t>(sessions_.size()));
  return session;
}

Result<std::shared_ptr<Session>> SessionManager::Get(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session with id " + std::to_string(id));
  }
  return it->second;
}

Status SessionManager::Close(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.erase(id) == 0) {
    return Status::NotFound("no session with id " + std::to_string(id));
  }
  SessionMetrics::Get().active->Set(static_cast<int64_t>(sessions_.size()));
  return Status::OK();
}

size_t SessionManager::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::vector<std::shared_ptr<Session>> SessionManager::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Session>> out;
  out.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) out.push_back(s);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a->id() < b->id(); });
  return out;
}

}  // namespace aqpp
