#include "service/admission.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"
#include "common/failpoint.h"
#include "obs/metrics.h"

namespace aqpp {

namespace {

struct AdmissionMetrics {
  obs::Gauge* queue_depth;
  obs::Counter* admitted;
  obs::Counter* rejected;
  obs::Counter* completed;
  obs::Histogram* batch_window_wait;
  static const AdmissionMetrics& Get() {
    auto& reg = obs::Registry::Global();
    static const AdmissionMetrics m = {
        reg.GetGauge("aqpp_admission_queue_depth", "",
                     "Requests currently waiting in the admission queue."),
        reg.GetCounter("aqpp_admission_admitted_total", "",
                       "Requests admitted to the worker queue."),
        reg.GetCounter("aqpp_admission_rejected_total", "",
                       "Requests rejected with retry-after backpressure."),
        reg.GetCounter("aqpp_admission_completed_total", "",
                       "Requests completed by admission workers."),
        reg.GetHistogram(
            "aqpp_batch_window_wait_seconds", "",
            {0.0001, 0.00025, 0.0005, 0.001, 0.002, 0.005, 0.01},
            "Seconds a lone batch leader waited for same-key company."),
    };
    return m;
  }
};

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {
  size_t n = std::max<size_t>(1, options_.num_workers);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AdmissionController::~AdmissionController() { Stop(); }

double AdmissionController::RetryAfterLocked() const {
  // Rough drain time of the current backlog: one EWMA service time per
  // queued request, divided across the workers, plus one for the retrier.
  double per_job = stats_.ewma_service_seconds;
  double backlog = static_cast<double>(total_queued_ + 1) /
                   static_cast<double>(workers_.size());
  return std::max(options_.retry_floor_seconds, per_job * backlog);
}

Status AdmissionController::Submit(uint64_t session_id, Job job,
                                   double* retry_after_seconds) {
  // Injected admission failure: rejected requests still carry a retry-after
  // hint when the injected code is the backpressure one, so clients exercise
  // their real retry loop.
  if (auto fired = AQPP_FAILPOINT_EVAL("service/admission/enqueue");
      fired.has_value() && fired->kind == fail::ActionKind::kReturnError) {
    if (retry_after_seconds != nullptr &&
        fired->error.code() == StatusCode::kResourceExhausted) {
      std::lock_guard<std::mutex> lock(mu_);
      *retry_after_seconds = RetryAfterLocked();
      ++stats_.rejected;
    }
    return fired->error;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return Status::FailedPrecondition("admission controller stopped");
    }
    std::deque<Job>& queue = queues_[session_id];
    if (total_queued_ >= options_.max_queue_depth ||
        queue.size() >= options_.max_per_session) {
      if (retry_after_seconds != nullptr) {
        *retry_after_seconds = RetryAfterLocked();
      }
      ++stats_.rejected;
      AdmissionMetrics::Get().rejected->Increment();
      if (queue.empty()) queues_.erase(session_id);
      return Status::ResourceExhausted(
          total_queued_ >= options_.max_queue_depth
              ? "request queue full"
              : "per-session queue full");
    }
    if (queue.empty()) round_robin_.push_back(session_id);
    const bool batchable = !job.batch_key.empty();
    if (batchable) ++batchable_queued_[job.batch_key];
    queue.push_back(std::move(job));
    ++total_queued_;
    ++stats_.admitted;
    stats_.queue_depth = total_queued_;
    stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, total_queued_);
    AdmissionMetrics::Get().admitted->Increment();
    AdmissionMetrics::Get().queue_depth->Set(
        static_cast<int64_t>(total_queued_));
    if (batchable) {
      // A window-waiting leader may be the batch this job should join;
      // notify_one could wake a different worker and strand it.
      cv_.notify_all();
      return Status::OK();
    }
  }
  cv_.notify_one();
  return Status::OK();
}

void AdmissionController::CollectBatchLocked(const std::string& key,
                                             std::vector<Job>* batch) {
  auto counted = batchable_queued_.find(key);
  if (counted == batchable_queued_.end()) return;
  size_t taken = 0;
  for (auto it = queues_.begin(); it != queues_.end();) {
    std::deque<Job>& queue = it->second;
    for (auto j = queue.begin(); j != queue.end();) {
      if (j->batch_key == key) {
        batch->push_back(std::move(*j));
        j = queue.erase(j);
        ++taken;
      } else {
        ++j;
      }
    }
    if (queue.empty()) {
      // Keep the round-robin invariant: a session appears iff its queue is
      // non-empty.
      for (auto r = round_robin_.begin(); r != round_robin_.end(); ++r) {
        if (*r == it->first) {
          round_robin_.erase(r);
          break;
        }
      }
      it = queues_.erase(it);
    } else {
      ++it;
    }
  }
  total_queued_ -= taken;
  stats_.queue_depth = total_queued_;
  AdmissionMetrics::Get().queue_depth->Set(static_cast<int64_t>(total_queued_));
  batchable_queued_.erase(counted);
}

void AdmissionController::WorkerLoop() {
  for (;;) {
    Job job;
    std::vector<Job> followers;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || total_queued_ > 0; });
      if (stopping_) return;  // leftovers are drained by Stop()
      uint64_t sid = round_robin_.front();
      round_robin_.pop_front();
      auto it = queues_.find(sid);
      job = std::move(it->second.front());
      it->second.pop_front();
      --total_queued_;
      stats_.queue_depth = total_queued_;
      AdmissionMetrics::Get().queue_depth->Set(
          static_cast<int64_t>(total_queued_));
      if (it->second.empty()) {
        queues_.erase(it);
      } else {
        round_robin_.push_back(sid);  // fairness: back of the rotation
      }
      const bool batchable = options_.enable_batching &&
                             !job.batch_key.empty() &&
                             job.run_batch != nullptr;
      if (!job.batch_key.empty()) {
        auto cnt = batchable_queued_.find(job.batch_key);
        if (cnt != batchable_queued_.end() && --cnt->second == 0) {
          batchable_queued_.erase(cnt);
        }
      }
      if (batchable) {
        // Queue-depth trigger: same-key backlog joins immediately.
        CollectBatchLocked(job.batch_key, &followers);
        if (followers.empty() && options_.batch_window_seconds > 0) {
          // Lone leader: hold the collection window open for company. Any
          // same-key Submit (or Stop) ends it early.
          SteadyTime wait_start = SteadyNow();
          cv_.wait_for(
              lock,
              std::chrono::duration<double>(options_.batch_window_seconds),
              [this, &job] {
                return stopping_ ||
                       batchable_queued_.count(job.batch_key) > 0;
              });
          AdmissionMetrics::Get().batch_window_wait->Observe(
              SecondsBetween(wait_start, SteadyNow()));
          if (!stopping_) CollectBatchLocked(job.batch_key, &followers);
        }
        if (!followers.empty()) {
          ++stats_.batches_formed;
          stats_.batch_members += followers.size() + 1;
        }
      }
    }
    if (options_.worker_hook) options_.worker_hook();
    // Latency injection here stalls the worker between dequeue and execute —
    // the window where a slow engine pushes queued requests past deadline.
    AQPP_FAILPOINT("service/admission/worker");
    SteadyTime start = SteadyNow();
    const size_t jobs_run = followers.size() + 1;
    if (!followers.empty()) {
      std::vector<Job> batch;
      batch.reserve(jobs_run);
      batch.push_back(std::move(job));
      for (Job& f : followers) batch.push_back(std::move(f));
      // The leader's run_batch owns every member's promise; grab it before
      // the leader is moved into the batch vector's first slot.
      auto run_batch = batch.front().run_batch;
      run_batch(std::move(batch));
    } else {
      job.run();
    }
    double seconds = SecondsBetween(start, SteadyNow());
    {
      std::lock_guard<std::mutex> lock(mu_);
      // EWMA tracks per-job service time; a fused batch amortizes one pass
      // across its members.
      double per_job = seconds / static_cast<double>(jobs_run);
      stats_.ewma_service_seconds =
          stats_.ewma_service_seconds == 0
              ? per_job
              : 0.8 * stats_.ewma_service_seconds + 0.2 * per_job;
      stats_.completed += jobs_run;
    }
    AdmissionMetrics::Get().completed->Increment(jobs_run);
  }
}

void AdmissionController::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Fulfill every queued job with its cancellation path so no submitter
  // waits forever on a promise that nobody will set.
  std::vector<Job> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [sid, queue] : queues_) {
      for (Job& j : queue) leftovers.push_back(std::move(j));
    }
    queues_.clear();
    round_robin_.clear();
    batchable_queued_.clear();
    total_queued_ = 0;
    stats_.queue_depth = 0;
    AdmissionMetrics::Get().queue_depth->Set(0);
  }
  for (Job& j : leftovers) {
    if (j.token != nullptr) j.token->Cancel();
    j.run();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.drained;
  }
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace aqpp
