#include "service/admission.h"

#include <algorithm>

#include "common/clock.h"
#include "common/failpoint.h"
#include "obs/metrics.h"

namespace aqpp {

namespace {

struct AdmissionMetrics {
  obs::Gauge* queue_depth;
  obs::Counter* admitted;
  obs::Counter* rejected;
  obs::Counter* completed;
  static const AdmissionMetrics& Get() {
    auto& reg = obs::Registry::Global();
    static const AdmissionMetrics m = {
        reg.GetGauge("aqpp_admission_queue_depth", "",
                     "Requests currently waiting in the admission queue."),
        reg.GetCounter("aqpp_admission_admitted_total", "",
                       "Requests admitted to the worker queue."),
        reg.GetCounter("aqpp_admission_rejected_total", "",
                       "Requests rejected with retry-after backpressure."),
        reg.GetCounter("aqpp_admission_completed_total", "",
                       "Requests completed by admission workers."),
    };
    return m;
  }
};

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {
  size_t n = std::max<size_t>(1, options_.num_workers);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AdmissionController::~AdmissionController() { Stop(); }

double AdmissionController::RetryAfterLocked() const {
  // Rough drain time of the current backlog: one EWMA service time per
  // queued request, divided across the workers, plus one for the retrier.
  double per_job = stats_.ewma_service_seconds;
  double backlog = static_cast<double>(total_queued_ + 1) /
                   static_cast<double>(workers_.size());
  return std::max(options_.retry_floor_seconds, per_job * backlog);
}

Status AdmissionController::Submit(uint64_t session_id, Job job,
                                   double* retry_after_seconds) {
  // Injected admission failure: rejected requests still carry a retry-after
  // hint when the injected code is the backpressure one, so clients exercise
  // their real retry loop.
  if (auto fired = AQPP_FAILPOINT_EVAL("service/admission/enqueue");
      fired.has_value() && fired->kind == fail::ActionKind::kReturnError) {
    if (retry_after_seconds != nullptr &&
        fired->error.code() == StatusCode::kResourceExhausted) {
      std::lock_guard<std::mutex> lock(mu_);
      *retry_after_seconds = RetryAfterLocked();
      ++stats_.rejected;
    }
    return fired->error;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return Status::FailedPrecondition("admission controller stopped");
    }
    std::deque<Job>& queue = queues_[session_id];
    if (total_queued_ >= options_.max_queue_depth ||
        queue.size() >= options_.max_per_session) {
      if (retry_after_seconds != nullptr) {
        *retry_after_seconds = RetryAfterLocked();
      }
      ++stats_.rejected;
      AdmissionMetrics::Get().rejected->Increment();
      if (queue.empty()) queues_.erase(session_id);
      return Status::ResourceExhausted(
          total_queued_ >= options_.max_queue_depth
              ? "request queue full"
              : "per-session queue full");
    }
    if (queue.empty()) round_robin_.push_back(session_id);
    queue.push_back(std::move(job));
    ++total_queued_;
    ++stats_.admitted;
    stats_.queue_depth = total_queued_;
    stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, total_queued_);
    AdmissionMetrics::Get().admitted->Increment();
    AdmissionMetrics::Get().queue_depth->Set(
        static_cast<int64_t>(total_queued_));
  }
  cv_.notify_one();
  return Status::OK();
}

void AdmissionController::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || total_queued_ > 0; });
      if (stopping_) return;  // leftovers are drained by Stop()
      uint64_t sid = round_robin_.front();
      round_robin_.pop_front();
      auto it = queues_.find(sid);
      job = std::move(it->second.front());
      it->second.pop_front();
      --total_queued_;
      stats_.queue_depth = total_queued_;
      AdmissionMetrics::Get().queue_depth->Set(
          static_cast<int64_t>(total_queued_));
      if (it->second.empty()) {
        queues_.erase(it);
      } else {
        round_robin_.push_back(sid);  // fairness: back of the rotation
      }
    }
    if (options_.worker_hook) options_.worker_hook();
    // Latency injection here stalls the worker between dequeue and execute —
    // the window where a slow engine pushes queued requests past deadline.
    AQPP_FAILPOINT("service/admission/worker");
    SteadyTime start = SteadyNow();
    job.run();
    double seconds = SecondsBetween(start, SteadyNow());
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.ewma_service_seconds =
          stats_.ewma_service_seconds == 0
              ? seconds
              : 0.8 * stats_.ewma_service_seconds + 0.2 * seconds;
      ++stats_.completed;
    }
    AdmissionMetrics::Get().completed->Increment();
  }
}

void AdmissionController::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Fulfill every queued job with its cancellation path so no submitter
  // waits forever on a promise that nobody will set.
  std::vector<Job> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [sid, queue] : queues_) {
      for (Job& j : queue) leftovers.push_back(std::move(j));
    }
    queues_.clear();
    round_robin_.clear();
    total_queued_ = 0;
    stats_.queue_depth = 0;
    AdmissionMetrics::Get().queue_depth->Set(0);
  }
  for (Job& j : leftovers) {
    if (j.token != nullptr) j.token->Cancel();
    j.run();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.drained;
  }
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace aqpp
