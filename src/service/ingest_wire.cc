#include "service/ingest_wire.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "common/string_util.h"

namespace aqpp {

namespace {

bool NeedsEscape(unsigned char c) {
  return c < 0x21 || c > 0x7e || c == ',' || c == ';' || c == '%';
}

void AppendEscaped(std::string* out, const std::string& value) {
  static const char* kHex = "0123456789ABCDEF";
  for (unsigned char c : value) {
    if (NeedsEscape(c)) {
      out->push_back('%');
      out->push_back(kHex[c >> 4]);
      out->push_back(kHex[c & 0xf]);
    } else {
      out->push_back(static_cast<char>(c));
    }
  }
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

Result<std::string> Unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c != '%') {
      out.push_back(c);
      continue;
    }
    if (i + 2 >= text.size()) {
      return Status::InvalidArgument("truncated %XX escape");
    }
    int hi = HexDigit(text[i + 1]);
    int lo = HexDigit(text[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("malformed %XX escape");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

Result<double> ParseWireDouble(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty double field");
  std::string buf(text);
  const char* begin = buf.c_str();
  char* end = nullptr;
  double v = std::strtod(begin, &end);
  if (end != begin + buf.size()) {
    return Status::InvalidArgument("malformed double '" + buf + "'");
  }
  if (!std::isfinite(v)) {
    return Status::InvalidArgument("non-finite double '" + buf + "'");
  }
  return v;
}

Result<int64_t> ParseWireInt64(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty int64 field");
  std::string buf(text);
  const char* begin = buf.c_str();
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(begin, &end, 10);
  if (end != begin + buf.size() || errno == ERANGE) {
    return Status::InvalidArgument("malformed int64 '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

Result<uint64_t> ParseWireUint(std::string_view text) {
  if (text.empty() || text[0] == '-' || text[0] == '+') {
    return Status::InvalidArgument("malformed unsigned '" + std::string(text) +
                                   "'");
  }
  std::string buf(text);
  const char* begin = buf.c_str();
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(begin, &end, 10);
  if (end != begin + buf.size() || errno == ERANGE) {
    return Status::InvalidArgument("malformed unsigned '" + buf + "'");
  }
  return static_cast<uint64_t>(v);
}

}  // namespace

Result<std::string> EncodeIngestBatch(const Table& batch) {
  if (batch.num_rows() == 0) {
    return Status::InvalidArgument("cannot encode an empty batch");
  }
  if (batch.num_rows() > kMaxIngestWireRows) {
    return Status::InvalidArgument(
        StrFormat("batch of %zu rows exceeds the wire bound %zu",
                  batch.num_rows(), kMaxIngestWireRows));
  }
  std::string out = StrFormat(
      "rows=%zu cols=%zu data=", batch.num_rows(), batch.num_columns());
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    if (r > 0) out.push_back(';');
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      if (c > 0) out.push_back(',');
      const Column& col = batch.column(c);
      switch (col.type()) {
        case DataType::kDouble: {
          double v = col.GetDouble(r);
          if (!std::isfinite(v)) {
            return Status::InvalidArgument(
                "non-finite double in column '" +
                batch.schema().column(c).name + "'");
          }
          out += StrFormat("%.17g", v);
          break;
        }
        case DataType::kInt64:
          out += StrFormat("%lld", static_cast<long long>(col.GetInt64(r)));
          break;
        case DataType::kString:
          AppendEscaped(&out, col.GetString(r));
          break;
      }
    }
    if (out.size() > kMaxIngestWireBytes) {
      return Status::InvalidArgument("encoded batch exceeds the wire bound");
    }
  }
  return out;
}

Result<std::shared_ptr<Table>> DecodeIngestBatch(const std::string& args,
                                                 const Table& reference) {
  if (args.size() > kMaxIngestWireBytes) {
    return Status::InvalidArgument("INGEST payload exceeds the wire bound");
  }
  std::string_view s = TrimWhitespace(args);
  if (s.rfind("rows=", 0) != 0) {
    return Status::InvalidArgument("INGEST wants 'rows=<n> cols=<m> data=...'");
  }
  size_t sp1 = s.find(' ');
  if (sp1 == std::string_view::npos) {
    return Status::InvalidArgument("INGEST is missing the cols= field");
  }
  AQPP_ASSIGN_OR_RETURN(uint64_t rows, ParseWireUint(s.substr(5, sp1 - 5)));
  std::string_view after = TrimWhitespace(s.substr(sp1 + 1));
  if (after.rfind("cols=", 0) != 0) {
    return Status::InvalidArgument("INGEST is missing the cols= field");
  }
  size_t sp2 = after.find(' ');
  if (sp2 == std::string_view::npos) {
    return Status::InvalidArgument("INGEST is missing the data= field");
  }
  AQPP_ASSIGN_OR_RETURN(uint64_t cols, ParseWireUint(after.substr(5, sp2 - 5)));
  std::string_view data = after.substr(sp2 + 1);
  if (data.rfind("data=", 0) != 0) {
    return Status::InvalidArgument("INGEST is missing the data= field");
  }
  data = data.substr(5);

  if (rows == 0) return Status::InvalidArgument("INGEST batch has no rows");
  if (rows > kMaxIngestWireRows) {
    return Status::InvalidArgument(
        StrFormat("INGEST batch of %llu rows exceeds the wire bound %zu",
                  static_cast<unsigned long long>(rows), kMaxIngestWireRows));
  }
  if (cols != reference.num_columns()) {
    return Status::InvalidArgument(StrFormat(
        "INGEST batch has %llu columns; the table has %zu",
        static_cast<unsigned long long>(cols), reference.num_columns()));
  }

  auto batch = std::make_shared<Table>(reference.schema());
  for (size_t c = 0; c < reference.num_columns(); ++c) {
    if (reference.column(c).type() == DataType::kString) {
      batch->mutable_column(c).SetDictionary(
          reference.column(c).dictionary());
    }
  }
  batch->Reserve(rows);

  size_t row = 0;
  size_t pos = 0;
  while (true) {
    size_t row_end = data.find(';', pos);
    std::string_view row_text = data.substr(
        pos, row_end == std::string_view::npos ? std::string_view::npos
                                               : row_end - pos);
    if (row >= rows) {
      return Status::InvalidArgument("INGEST payload has more rows than rows=");
    }
    // Split the row into exactly `cols` fields.
    size_t fpos = 0;
    for (size_t c = 0; c < cols; ++c) {
      size_t fend = row_text.find(',', fpos);
      bool last = c + 1 == cols;
      if (last && fend != std::string_view::npos) {
        return Status::InvalidArgument(StrFormat(
            "row %zu has more than %llu fields", row,
            static_cast<unsigned long long>(cols)));
      }
      if (!last && fend == std::string_view::npos) {
        return Status::InvalidArgument(StrFormat(
            "row %zu is truncated at field %zu", row, c));
      }
      std::string_view field = row_text.substr(
          fpos, fend == std::string_view::npos ? std::string_view::npos
                                               : fend - fpos);
      Column& col = batch->mutable_column(c);
      switch (col.type()) {
        case DataType::kDouble: {
          AQPP_ASSIGN_OR_RETURN(double v, ParseWireDouble(field));
          col.MutableDoubleData().push_back(v);
          break;
        }
        case DataType::kInt64: {
          AQPP_ASSIGN_OR_RETURN(int64_t v, ParseWireInt64(field));
          col.MutableInt64Data().push_back(v);
          break;
        }
        case DataType::kString: {
          AQPP_ASSIGN_OR_RETURN(std::string value, Unescape(field));
          auto code = col.LookupDictionary(value);
          if (!code.ok()) {
            return Status::InvalidArgument(
                "unknown dictionary value '" + value + "' in column '" +
                reference.schema().column(c).name + "'");
          }
          col.MutableInt64Data().push_back(*code);
          break;
        }
      }
      if (fend == std::string_view::npos) break;
      fpos = fend + 1;
    }
    ++row;
    if (row_end == std::string_view::npos) break;
    pos = row_end + 1;
  }
  if (row != rows) {
    return Status::InvalidArgument(StrFormat(
        "INGEST payload has %zu rows; header says %llu", row,
        static_cast<unsigned long long>(rows)));
  }
  batch->SetRowCountFromColumns();
  return batch;
}

}  // namespace aqpp
