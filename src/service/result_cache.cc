#include "service/result_cache.h"

#include <algorithm>
#include <map>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace aqpp {

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= static_cast<uint64_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

QueryCanonicalizer::QueryCanonicalizer(const Table* table) {
  domains_.resize(table->num_columns());
  for (size_t c = 0; c < table->num_columns(); ++c) {
    const Column& col = table->column(c);
    if (col.type() == DataType::kDouble || col.size() == 0) continue;
    auto lo = col.MinInt64();
    auto hi = col.MaxInt64();
    if (!lo.ok() || !hi.ok()) continue;
    domains_[c] = {true, *lo, *hi};
  }
}

QueryCanonicalizer QueryCanonicalizer::FromDomains(
    size_t num_columns, const std::vector<ColumnDomainSpec>& domains) {
  QueryCanonicalizer canon;
  canon.domains_.resize(num_columns);
  for (const ColumnDomainSpec& d : domains) {
    if (d.column >= num_columns) continue;
    canon.domains_[d.column] = {true, d.lo, d.hi};
  }
  return canon;
}

CanonicalQuery QueryCanonicalizer::Canonicalize(const RangeQuery& query) const {
  CanonicalQuery out;
  out.query.func = query.func;
  // COUNT reads no measure: queries differing only in agg_column are the
  // same count.
  out.query.agg_column =
      query.func == AggregateFunction::kCount ? 0 : query.agg_column;
  out.query.group_by = query.group_by;

  // Intersect same-column conditions, then clamp to the column domain.
  std::map<size_t, RangeCondition> merged;
  for (const RangeCondition& c : query.predicate.conditions()) {
    auto [it, inserted] = merged.emplace(c.column, c);
    if (!inserted) {
      it->second.lo = std::max(it->second.lo, c.lo);
      it->second.hi = std::min(it->second.hi, c.hi);
    }
  }
  bool unsatisfiable = false;
  for (auto& [col, cond] : merged) {
    if (col < domains_.size() && domains_[col].known) {
      cond.lo = std::max(cond.lo, domains_[col].lo);
      cond.hi = std::min(cond.hi, domains_[col].hi);
    }
    if (cond.IsEmpty()) unsatisfiable = true;
  }

  if (unsatisfiable) {
    // Any empty conjunct empties the whole predicate; all such queries are
    // one cache slot.
    out.query.predicate.Add({0, 1, 0});
  } else {
    for (const auto& [col, cond] : merged) {  // std::map: sorted by column
      if (col < domains_.size() && domains_[col].known &&
          cond.lo <= domains_[col].lo && cond.hi >= domains_[col].hi) {
        continue;  // vacuous
      }
      out.query.predicate.Add(cond);
    }
  }

  std::string key = StrFormat("f=%d a=%zu", static_cast<int>(out.query.func),
                              out.query.agg_column);
  for (size_t g : out.query.group_by) key += StrFormat(" g=%zu", g);
  for (const RangeCondition& c : out.query.predicate.conditions()) {
    key += StrFormat(" c=%zu:%lld:%lld", c.column,
                     static_cast<long long>(c.lo),
                     static_cast<long long>(c.hi));
  }
  out.key = std::move(key);
  out.seed = Fnv1a64(out.key);
  // Seed 0 means "use the engine session RNG" in ExecuteControl semantics
  // downstream; keep canonical seeds nonzero.
  if (out.seed == 0) out.seed = 0x9e3779b97f4a7c15ULL;
  return out;
}

namespace {

struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* insertions;
  obs::Counter* evictions;
  obs::Counter* invalidated;
  static const CacheMetrics& Get() {
    auto& reg = obs::Registry::Global();
    static const CacheMetrics m = {
        reg.GetCounter("aqpp_cache_hits_total", "",
                       "Result-cache lookups answered from cache."),
        reg.GetCounter("aqpp_cache_misses_total", "",
                       "Result-cache lookups that fell through."),
        reg.GetCounter("aqpp_cache_insertions_total", "",
                       "Results inserted into the cache."),
        reg.GetCounter("aqpp_cache_evictions_total", "",
                       "Entries evicted by LRU capacity pressure."),
        reg.GetCounter("aqpp_cache_invalidated_total", "",
                       "Entries dropped by template/maintenance "
                       "invalidation."),
    };
    return m;
  }
};

}  // namespace

ResultCache::ResultCache(ResultCacheOptions options) : options_(options) {}

std::optional<ApproximateResult> ResultCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    CacheMetrics::Get().misses->Increment();
    return std::nullopt;
  }
  ++stats_.hits;
  CacheMetrics::Get().hits->Increment();
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.result;
}

void ResultCache::Insert(const std::string& key, int template_id,
                         const ApproximateResult& result) {
  if (options_.capacity == 0) return;
  AQPP_FAILPOINT("service/cache/insert");
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(key, template_id, result);
}

void ResultCache::InsertIfCurrent(const std::string& key, int template_id,
                                  const ApproximateResult& result,
                                  uint64_t observed_generation) {
  if (options_.capacity == 0) return;
  AQPP_FAILPOINT("service/cache/insert");
  std::lock_guard<std::mutex> lock(mu_);
  // An invalidation ran after this result was computed: the result reflects
  // pre-maintenance data and must not outlive the wipe.
  if (generation_ != observed_generation) return;
  InsertLocked(key, template_id, result);
}

uint64_t ResultCache::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

void ResultCache::InsertLocked(const std::string& key, int template_id,
                               const ApproximateResult& result) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.result = result;
    it->second.template_id = template_id;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  while (entries_.size() >= options_.capacity) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
    CacheMetrics::Get().evictions->Increment();
  }
  lru_.push_front(key);
  entries_[key] = Entry{result, template_id, lru_.begin()};
  ++stats_.insertions;
  CacheMetrics::Get().insertions->Increment();
}

void ResultCache::InvalidateTemplate(int template_id) {
  std::lock_guard<std::mutex> lock(mu_);
  // Bump the generation even when nothing matched: a result computed from
  // this template before the rebuild is stale whether or not it was cached.
  ++generation_;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.template_id == template_id) {
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
      ++stats_.invalidated;
      CacheMetrics::Get().invalidated->Increment();
    } else {
      ++it;
    }
  }
}

void ResultCache::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  ++generation_;
  stats_.invalidated += entries_.size();
  CacheMetrics::Get().invalidated->Increment(entries_.size());
  entries_.clear();
  lru_.clear();
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResultCacheStats s = stats_;
  s.size = entries_.size();
  return s;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace aqpp
