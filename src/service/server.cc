#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/ingest_wire.h"
#include "service/protocol.h"
#include "sql/binder.h"

namespace aqpp {

namespace {

// Writes all of `s` (blocking socket); false on a broken connection. The
// service/server/send failpoint simulates a peer that vanished mid-reply:
// partial-io transmits a prefix and then reports the connection broken, so
// tests can verify clients treat truncated frames as connection errors.
bool SendAll(int fd, const std::string& s) {
  size_t limit = s.size();
  if (auto fired = AQPP_FAILPOINT_EVAL("service/server/send")) {
    if (fired->kind == fail::ActionKind::kReturnError) return false;
    if (fired->kind == fail::ActionKind::kPartialIo) {
      limit = static_cast<size_t>(static_cast<double>(s.size()) *
                                  fired->io_fraction);
    }
  }
  size_t sent = 0;
  while (sent < limit) {
    ssize_t n = ::send(fd, s.data() + sent, limit - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return sent == s.size();
}

// Returns true if the request line is a CANCEL verb.
bool IsCancelLine(const std::string& line) {
  auto req = ParseRequest(line);
  return req.ok() && req->type == RequestType::kCancel;
}

}  // namespace

ServiceServer::ServiceServer(QueryService* service, const Catalog* catalog,
                             ServerOptions options)
    : service_(service), catalog_(catalog), options_(std::move(options)) {}

ServiceServer::~ServiceServer() { Stop(); }

Status ServiceServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already started");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host '" + options_.host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, options_.backlog) < 0) {
    Status st = Status::IOError(std::string("listen: ") +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_.store(fd);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ServiceServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed by Stop()
    }
    // Simulated accept-path failure: the kernel handed us a connection but
    // the server drops it before registering (e.g. fd-limit pressure).
    if (auto fired = AQPP_FAILPOINT_EVAL("service/server/accept");
        fired.has_value() && fired->kind == fail::ActionKind::kReturnError) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!running_.load() || active_fds_.size() >= options_.max_connections) {
      SendAll(fd, FormatResponse(Response::Error(
                      "ResourceExhausted", "connection limit reached")) +
                      "\n");
      ::close(fd);
      continue;
    }
    active_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

std::string ServiceServer::HandleLine(ConnState* conn, const std::string& line,
                                      bool* quit) {
  uint64_t* session_id = &conn->session_id;
  auto req = ParseRequest(line);
  if (!req.ok()) {
    return FormatResponse(Response::Error(
        StatusCodeToString(req.status().code()), req.status().message()));
  }
  Response resp;
  switch (req->type) {
    case RequestType::kHello: {
      // The accept path already opened a session; HELLO just reports it (a
      // second HELLO with a name opens a fresh, named one).
      if (!req->name.empty()) {
        auto opened = service_->sessions().Open(req->name);
        if (!opened.ok()) {
          return FormatResponse(
              Response::Error(StatusCodeToString(opened.status().code()),
                              opened.status().message()));
        }
        (void)service_->sessions().Close(*session_id);
        *session_id = (*opened)->id();
      }
      resp.AddUint("session", *session_id);
      return FormatResponse(resp);
    }
    case RequestType::kPing:
      resp.AddUint("pong", 1);
      return FormatResponse(resp);
    case RequestType::kSet: {
      if (req->set_key == "synopsis") {
        // Service-wide estimator selection; "off" restores the legacy path.
        std::string kind = ToLowerAscii(req->set_value);
        Status set = service_->SetSynopsis(kind == "off" ? "" : kind);
        if (!set.ok()) {
          return FormatResponse(Response::Error(
              StatusCodeToString(set.code()), set.message()));
        }
        resp.Add("synopsis", kind.empty() ? "off" : kind);
        return FormatResponse(resp);
      }
      if (req->set_key == "mode") {
        std::string mode = ToLowerAscii(req->set_value);
        if (mode != "online" && mode != "oneshot") {
          return FormatResponse(Response::Error(
              "InvalidArgument", "MODE wants 'online' or 'oneshot'"));
        }
        conn->online = mode == "online";
        resp.Add("mode", mode);
        return FormatResponse(resp);
      }
      if (req->set_key != "timeout_ms") {
        return FormatResponse(Response::Error(
            "InvalidArgument", "unknown setting '" + req->set_key + "'"));
      }
      auto session = service_->sessions().Get(*session_id);
      if (!session.ok()) {
        return FormatResponse(
            Response::Error(StatusCodeToString(session.status().code()),
                            session.status().message()));
      }
      long long ms = std::atoll(req->set_value.c_str());
      (*session)->set_default_timeout_seconds(
          ms <= 0 ? 0.0 : static_cast<double>(ms) / 1000.0);
      resp.AddUint("timeout_ms", ms <= 0 ? 0 : static_cast<uint64_t>(ms));
      return FormatResponse(resp);
    }
    case RequestType::kQuery: {
      if (conn->online) return HandleOnlineQuery(conn, req->sql, quit);
      // The trace outlives the Execute call (the worker writes into it while
      // this thread blocks); spans recorded here land in the same global
      // phase histograms the engine phases do.
      obs::QueryTrace trace;
      obs::SpanTimer parse_span(obs::Phase::kParse, &trace);
      auto bound = ParseAndBind(req->sql, *catalog_);
      parse_span.Stop();
      if (!bound.ok()) {
        return FormatResponse(
            Response::Error(StatusCodeToString(bound.status().code()),
                            bound.status().message()));
      }
      QueryOutcome out = service_->Execute(*session_id, bound->query,
                                           /*timeout_seconds=*/-1, &trace);
      if (!out.status.ok()) {
        Response err = Response::Error(StatusCodeToString(out.status.code()),
                                       out.status.message());
        if (out.status.code() == StatusCode::kResourceExhausted) {
          // retry_after_ms must precede msg=; insert after code=.
          err.fields.emplace_back(
              "retry_after_ms",
              StrFormat("%lld", static_cast<long long>(
                                    out.retry_after_seconds * 1000.0 + 0.5)));
        }
        return FormatResponse(err);
      }
      resp.AddDouble("estimate", out.ci.estimate);
      resp.AddDouble("lo", out.ci.lower());
      resp.AddDouble("hi", out.ci.upper());
      resp.AddDouble("half_width", out.ci.half_width);
      resp.AddDouble("level", out.ci.level);
      resp.AddUint("cache_hit", out.cache_hit ? 1 : 0);
      resp.AddUint("partial", out.partial ? 1 : 0);
      if (out.partial) resp.AddUint("rows_used", out.partial_rows_used);
      resp.AddUint("pre", out.used_pre ? 1 : 0);
      resp.AddDouble("queue_ms", out.queue_seconds * 1000.0);
      resp.AddDouble("exec_ms", out.exec_seconds * 1000.0);
      if (service_->ingest() != nullptr) {
        resp.AddUint("generation", out.ingest_generation);
        resp.AddUint("delta_rows", out.delta_rows);
        resp.AddUint("folded", out.delta_folded ? 1 : 0);
      }
      return FormatResponse(resp);
    }
    case RequestType::kStats: {
      ServiceStats s = service_->stats();
      resp.AddUint("queries", s.queries);
      resp.AddUint("completed", s.completed);
      resp.AddUint("cache_hits", s.cache_hits);
      resp.AddUint("rejected", s.rejected);
      resp.AddUint("timed_out", s.timed_out);
      resp.AddUint("partial", s.partial);
      resp.AddUint("cancelled", s.cancelled);
      resp.AddUint("failed", s.failed);
      resp.AddUint("queue_depth", s.admission.queue_depth);
      resp.AddUint("peak_queue_depth", s.admission.peak_queue_depth);
      resp.AddDouble("p50_ms", s.p50_latency_seconds * 1000.0);
      resp.AddDouble("p95_ms", s.p95_latency_seconds * 1000.0);
      resp.AddDouble("p99_ms", s.p99_latency_seconds * 1000.0);
      resp.AddDouble("cache_hit_rate", s.cache_hit_rate);
      resp.AddUint("cache_size", s.cache.size);
      resp.AddUint("cache_evictions", s.cache.evictions);
      resp.AddUint("cache_invalidated", s.cache.invalidated);
      resp.AddUint("sessions_active", s.sessions_active);
      resp.AddUint("sessions_opened", s.sessions_opened);
      resp.AddUint("slow_queries", s.slow_queries);
      // This connection's per-session counters.
      if (auto session = service_->sessions().Get(*session_id);
          session.ok()) {
        SessionCounters c = (*session)->counters();
        resp.AddUint("session_submitted", c.submitted);
        resp.AddUint("session_completed", c.completed);
        resp.AddUint("session_cache_hits", c.cache_hits);
        resp.AddUint("session_rejected", c.rejected);
        resp.AddUint("session_timed_out", c.timed_out);
        resp.AddUint("session_failed", c.failed);
      }
      return FormatResponse(resp);
    }
    case RequestType::kMetrics: {
      // Multi-line framing: the header response counts the raw Prometheus
      // text lines that follow; a literal "# EOF" line terminates the block
      // (OpenMetrics convention) so clients need no length bookkeeping.
      std::string text = obs::Registry::Global().RenderPrometheus();
      uint64_t lines = 0;
      for (char c : text) {
        if (c == '\n') ++lines;
      }
      resp.AddUint("lines", lines);
      return FormatResponse(resp) + "\n" + text + "# EOF";
    }
    case RequestType::kIngest: {
      IngestManager* ingest = service_->ingest();
      if (ingest == nullptr) {
        return FormatResponse(Response::Error(
            "FailedPrecondition", "streaming ingest is not enabled"));
      }
      auto batch = DecodeIngestBatch(req->args, service_->engine().table());
      if (!batch.ok()) {
        return FormatResponse(
            Response::Error(StatusCodeToString(batch.status().code()),
                            batch.status().message()));
      }
      Status appended = ingest->Append(**batch);
      if (!appended.ok()) {
        return FormatResponse(Response::Error(
            StatusCodeToString(appended.code()), appended.message()));
      }
      IngestSnapshot snap = ingest->snapshot();
      resp.AddUint("appended", (*batch)->num_rows());
      resp.AddUint("generation", snap.committed_generation);
      resp.AddUint("delta_rows", snap.delta_rows);
      resp.AddUint("total_rows", snap.total_rows);
      return FormatResponse(resp);
    }
    case RequestType::kCancel:
      // A CANCEL with no online query streaming is a no-op; mid-stream
      // CANCELs are consumed by HandleOnlineQuery and never reach here.
      resp.AddUint("cancelled", 0);
      return FormatResponse(resp);
    case RequestType::kQuit:
      *quit = true;
      resp.AddUint("bye", 1);
      return FormatResponse(resp);
    case RequestType::kShardInfo:
    case RequestType::kPartial:
      return FormatResponse(Response::Error(
          "Unimplemented",
          "shard verbs are served by aqpp-shardd, not the query service"));
  }
  return FormatResponse(Response::Error("Internal", "unhandled verb"));
}

std::string ServiceServer::HandleOnlineQuery(ConnState* conn,
                                             const std::string& sql,
                                             bool* quit) {
  obs::QueryTrace trace;
  obs::SpanTimer parse_span(obs::Phase::kParse, &trace);
  auto bound = ParseAndBind(sql, *catalog_);
  parse_span.Stop();
  if (!bound.ok()) {
    return FormatResponse(
        Response::Error(StatusCodeToString(bound.status().code()),
                        bound.status().message()));
  }
  // Rounds first, then the final one-shot execution: the final OK line must
  // be bit-identical to oneshot mode, and computing it up front lets the
  // stream guarantee that no PROGRESS round is tighter than the final
  // interval (rounds that would be are dropped).
  std::vector<ProgressiveStep> rounds;
  Status round_status =
      service_->OnlineRounds(conn->session_id, bound->query, &rounds);
  if (!round_status.ok()) {
    return FormatResponse(Response::Error(
        StatusCodeToString(round_status.code()), round_status.message()));
  }
  QueryOutcome out = service_->Execute(conn->session_id, bound->query,
                                       /*timeout_seconds=*/-1, &trace);
  if (!out.status.ok()) {
    Response err = Response::Error(StatusCodeToString(out.status.code()),
                                   out.status.message());
    if (out.status.code() == StatusCode::kResourceExhausted) {
      err.fields.emplace_back(
          "retry_after_ms",
          StrFormat("%lld", static_cast<long long>(
                                out.retry_after_seconds * 1000.0 + 0.5)));
    }
    return FormatResponse(err);
  }

  // Consumes a pipelined CANCEL: waits up to `wait_ms` for input (returning
  // the moment any arrives), drains it, and when the next complete request
  // line is CANCEL, eats it. A non-CANCEL line stays buffered for the normal
  // loop.
  auto cancel_requested = [&](int wait_ms) -> bool {
    if (wait_ms > 0 && conn->buffer.find('\n') == std::string::npos) {
      pollfd pfd{};
      pfd.fd = conn->fd;
      pfd.events = POLLIN;
      ::poll(&pfd, 1, wait_ms);
    }
    char chunk[4096];
    while (true) {
      ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n <= 0) break;
      conn->buffer.append(chunk, static_cast<size_t>(n));
    }
    size_t nl = conn->buffer.find('\n');
    if (nl == std::string::npos) return false;
    std::string next = conn->buffer.substr(0, nl);
    if (!next.empty() && next.back() == '\r') next.pop_back();
    if (!IsCancelLine(next)) return false;
    conn->buffer.erase(0, nl + 1);
    return true;
  };

  uint64_t sent = 0;
  bool cancelled = false;
  for (const ProgressiveStep& step : rounds) {
    // A partial (deadline-degraded) final answer voids the >=-final-width
    // guarantee, so only filter against clean finals.
    if (!out.partial && step.ci.half_width < out.ci.half_width) continue;
    // No wait before the first round — nothing has streamed yet, so the
    // client cannot be reacting. Between rounds, give an in-flight CANCEL
    // its round-trip.
    if (cancel_requested(sent == 0 ? 0 : options_.online_round_poll_ms)) {
      cancelled = true;
      break;
    }
    ProgressLine p;
    p.round = ++sent;
    p.rows_used = step.rows_used;
    p.estimate = step.ci.estimate;
    p.lo = step.ci.lower();
    p.hi = step.ci.upper();
    p.half_width = step.ci.half_width;
    p.level = step.ci.level;
    if (!SendAll(conn->fd, FormatProgressLine(p) + "\n")) {
      *quit = true;
      return std::string();
    }
  }

  Response resp;
  if (cancelled) {
    // The caller abandoned the stream: no estimate is reported (the computed
    // answer is discarded), just how far the stream got.
    resp.AddUint("online", 1);
    resp.AddUint("rounds", sent);
    resp.AddUint("cancelled", 1);
    return FormatResponse(resp);
  }
  resp.AddDouble("estimate", out.ci.estimate);
  resp.AddDouble("lo", out.ci.lower());
  resp.AddDouble("hi", out.ci.upper());
  resp.AddDouble("half_width", out.ci.half_width);
  resp.AddDouble("level", out.ci.level);
  resp.AddUint("cache_hit", out.cache_hit ? 1 : 0);
  resp.AddUint("partial", out.partial ? 1 : 0);
  if (out.partial) resp.AddUint("rows_used", out.partial_rows_used);
  resp.AddUint("pre", out.used_pre ? 1 : 0);
  resp.AddDouble("queue_ms", out.queue_seconds * 1000.0);
  resp.AddDouble("exec_ms", out.exec_seconds * 1000.0);
  if (service_->ingest() != nullptr) {
    resp.AddUint("generation", out.ingest_generation);
    resp.AddUint("delta_rows", out.delta_rows);
    resp.AddUint("folded", out.delta_folded ? 1 : 0);
  }
  resp.AddUint("online", 1);
  resp.AddUint("rounds", sent);
  return FormatResponse(resp);
}

void ServiceServer::HandleConnection(int fd) {
  auto session = service_->sessions().Open("");
  if (!session.ok()) {
    SendAll(fd, FormatResponse(Response::Error(
                    StatusCodeToString(session.status().code()),
                    session.status().message())) +
                    "\n");
    ::close(fd);
    std::lock_guard<std::mutex> lock(conn_mu_);
    active_fds_.erase(fd);
    return;
  }
  ConnState conn;
  conn.fd = fd;
  conn.session_id = (*session)->id();

  char chunk[65536];
  bool quit = false;
  while (!quit) {
    // Simulated mid-session connection drop on the read side.
    if (auto fired = AQPP_FAILPOINT_EVAL("service/server/recv");
        fired.has_value() && fired->kind == fail::ActionKind::kReturnError) {
      break;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // disconnect or Stop()
    }
    conn.buffer.append(chunk, static_cast<size_t>(n));
    // A line over the cap can never complete into a servable request;
    // resyncing mid-payload is ambiguous, so reply once and close.
    if (conn.buffer.find('\n') == std::string::npos &&
        conn.buffer.size() > options_.max_line_bytes) {
      SendAll(fd, FormatResponse(Response::Error(
                      "InvalidArgument", "request line over the size cap")) +
                      "\n");
      break;
    }
    size_t nl;
    while (!quit && (nl = conn.buffer.find('\n')) != std::string::npos) {
      std::string line = conn.buffer.substr(0, nl);
      conn.buffer.erase(0, nl + 1);
      if (line.size() > options_.max_line_bytes) {
        SendAll(fd, FormatResponse(Response::Error(
                        "InvalidArgument", "request line over the size cap")) +
                        "\n");
        quit = true;
        break;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (TrimWhitespace(line).empty()) continue;
      std::string reply = HandleLine(&conn, line, &quit);
      // The online streaming path reports a broken peer with an empty reply
      // (it already sent everything it could).
      if (reply.empty()) continue;
      if (!SendAll(fd, reply + "\n")) {
        quit = true;
      }
    }
  }
  (void)service_->sessions().Close(conn.session_id);
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  active_fds_.erase(fd);
}

size_t ServiceServer::active_connections() const {
  std::lock_guard<std::mutex> lock(conn_mu_);
  return active_fds_.size();
}

void ServiceServer::Stop() {
  bool was_running = running_.exchange(false);
  // Close before resetting so a racing accept() fails rather than blocking;
  // the slot is reset only after the accept thread can no longer read it.
  if (int fd = listen_fd_.exchange(-1); fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Unblock recv() in every connection thread.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  (void)was_running;
}

}  // namespace aqpp
