#include "shard/partition.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cstdio>
#include <cstring>
#include <numeric>

#include "common/string_util.h"
#include "kernels/kernels.h"
#include "storage/extent_file.h"
#include "storage/types.h"

namespace aqpp {
namespace shard {

Result<ShardPlan> MakeShardPlan(uint64_t total_rows, size_t num_shards) {
  if (total_rows == 0) return Status::InvalidArgument("empty table");
  if (num_shards == 0) return Status::InvalidArgument("need at least 1 shard");
  const uint64_t grid = kernels::kShardRows;
  const uint64_t blocks = (total_rows + grid - 1) / grid;
  if (blocks < num_shards) {
    return Status::InvalidArgument(StrFormat(
        "%llu rows span only %llu grid blocks of %llu rows — cannot cut %zu "
        "aligned shards",
        static_cast<unsigned long long>(total_rows),
        static_cast<unsigned long long>(blocks),
        static_cast<unsigned long long>(grid), num_shards));
  }
  ShardPlan plan;
  plan.total_rows = total_rows;
  const uint64_t base = blocks / num_shards;
  const uint64_t extra = blocks % num_shards;
  uint64_t begin = 0;
  for (size_t i = 0; i < num_shards; ++i) {
    uint64_t nblocks = base + (i < extra ? 1 : 0);
    uint64_t end = std::min(total_rows, (begin / grid + nblocks) * grid);
    plan.shards.push_back(ShardRange{begin, end});
    begin = end;
  }
  plan.shards.back().row_end = total_rows;
  return plan;
}

uint64_t ShardSeed(uint64_t base_seed, uint32_t shard_index) {
  // splitmix64 finalizer over (base, index) — decorrelated, reproducible.
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (shard_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Result<std::shared_ptr<Table>> SliceShard(const Table& table,
                                          const ShardRange& range) {
  if (range.row_end > table.num_rows() || range.row_begin >= range.row_end) {
    return Status::InvalidArgument("shard range outside table");
  }
  std::vector<size_t> rows(static_cast<size_t>(range.rows()));
  std::iota(rows.begin(), rows.end(), static_cast<size_t>(range.row_begin));
  return TakeRows(table, rows);
}

Result<std::vector<ShardSlabInfo>> PackShardSlabs(const Table& table,
                                                  const ShardPlan& plan,
                                                  const std::string& dir) {
  if (plan.total_rows != table.num_rows()) {
    return Status::InvalidArgument("plan was made for a different table");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir " + dir + ": " + std::strerror(errno));
  }
  std::vector<ShardSlabInfo> infos;
  for (size_t i = 0; i < plan.num_shards(); ++i) {
    const ShardRange& range = plan.shards[i];
    AQPP_ASSIGN_OR_RETURN(std::shared_ptr<Table> slice,
                          SliceShard(table, range));
    ShardSlabInfo info;
    info.shard_index = static_cast<uint32_t>(i);
    info.num_shards = static_cast<uint32_t>(plan.num_shards());
    info.row_begin = range.row_begin;
    info.rows = range.rows();
    info.path = StrFormat("shard-%zu.ext", i);
    AQPP_ASSIGN_OR_RETURN(
        std::unique_ptr<ExtentFileWriter> writer,
        ExtentFileWriter::Create(dir + "/" + info.path, table.schema()));
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (table.schema().column(c).type == DataType::kString) {
        AQPP_RETURN_NOT_OK(
            writer->SetDictionary(c, table.column(c).dictionary()));
      }
    }
    AQPP_RETURN_NOT_OK(writer->Append(*slice));
    AQPP_RETURN_NOT_OK(writer->Finish());
    infos.push_back(std::move(info));
  }
  // MANIFEST: one "shard <i> <n> <row_begin> <rows> <path>" line per shard.
  std::string tmp = dir + "/MANIFEST.tmp";
  FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("open " + tmp + ": " + std::strerror(errno));
  }
  std::fprintf(f, "# aqpp shard manifest v1\n");
  for (const ShardSlabInfo& info : infos) {
    std::fprintf(f, "shard %u %u %llu %llu %s\n", info.shard_index,
                 info.num_shards,
                 static_cast<unsigned long long>(info.row_begin),
                 static_cast<unsigned long long>(info.rows),
                 info.path.c_str());
  }
  if (std::fclose(f) != 0) {
    return Status::IOError("close " + tmp + ": " + std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), (dir + "/MANIFEST").c_str()) != 0) {
    return Status::IOError("rename MANIFEST: " + std::string(strerror(errno)));
  }
  return infos;
}

Result<std::vector<ShardSlabInfo>> ReadShardManifest(const std::string& dir) {
  std::string path = dir + "/MANIFEST";
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::NotFound("no shard manifest at " + path);
  }
  std::vector<ShardSlabInfo> infos;
  char line[1024];
  Status st = Status::OK();
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    std::string_view s = TrimWhitespace(line);
    if (s.empty() || s[0] == '#') continue;
    auto fields = SplitString(s, ' ');
    unsigned shard = 0, shards = 0;
    unsigned long long begin = 0, rows = 0;
    if (fields.size() != 6 || fields[0] != "shard" ||
        std::sscanf(fields[1].c_str(), "%u", &shard) != 1 ||
        std::sscanf(fields[2].c_str(), "%u", &shards) != 1 ||
        std::sscanf(fields[3].c_str(), "%llu", &begin) != 1 ||
        std::sscanf(fields[4].c_str(), "%llu", &rows) != 1) {
      st = Status::FailedPrecondition("malformed manifest line: " + std::string(s));
      break;
    }
    ShardSlabInfo info;
    info.shard_index = shard;
    info.num_shards = shards;
    info.row_begin = begin;
    info.rows = rows;
    info.path = fields[5];
    infos.push_back(std::move(info));
  }
  std::fclose(f);
  AQPP_RETURN_NOT_OK(st);
  if (infos.empty()) return Status::FailedPrecondition("empty shard manifest");
  uint64_t next_begin = 0;
  for (size_t i = 0; i < infos.size(); ++i) {
    if (infos[i].shard_index != i || infos[i].num_shards != infos.size() ||
        infos[i].row_begin != next_begin || infos[i].rows == 0) {
      return Status::FailedPrecondition(StrFormat(
          "manifest shard %zu is out of order or leaves a row gap", i));
    }
    next_begin += infos[i].rows;
  }
  return infos;
}

}  // namespace shard
}  // namespace aqpp
