// Shard partials and their deterministic merge — the math of the scatter-
// gather tier.
//
// A shard worker answers a canonical scalar query with up to three partial
// views, and the coordinator folds them in fixed shard-index order so the
// merged answer does not depend on worker count or arrival order:
//
//  * Exact moment partials: one lane-accumulator block (count + 8 sum lanes
//    + 8 sum-of-square lanes) per kernels::kShardRows-aligned block of the
//    shard. Concatenating every shard's blocks in global order and reducing
//    them with the kernel layer's Finalize contract reproduces, bit for bit,
//    the single-table ScanAggregate fold — so merged exact COUNT/SUM/AVG/VAR
//    answers are identical to the single-engine exact executor at 1/2/4/8
//    shards (any partitioning aligned to the kShardRows grid) and at any
//    worker count.
//
//  * Stratified sample partials: each shard is one stratum of a stratified-
//    by-shard estimator (Liang et al., arXiv:2103.15994). The worker reports
//    Welford moments of the three per-row series c_i = match_i,
//    s_i = match_i * A_i, q_i = match_i * A_i^2 over its sample, plus their
//    pairwise sample covariances. The coordinator folds est/var per stratum
//    exactly like SampleEstimator::SumCI's stratified branch — so merged
//    SUM/COUNT estimates and CIs are bit-identical to running that estimator
//    over the concatenated stratified sample. AVG/VAR come from the merged
//    moment vector by the delta method (ratio / plug-in variance gradients).
//
//  * Engine partials: the shard's own AQP++ difference estimate (cube probe
//    + sample). Estimates of disjoint shard totals are independent, so
//    SUM/COUNT merge as est = sum_h est_h, var = sum_h (half_h / lambda)^2.
//
// Degradation: when a shard stays missing after replica retries, the merge
// extrapolates the covered estimate by total/covered row mass and inflates
// the variance by scale^2 * penalty; the answer is flagged `degraded` and
// must never be cached (coordinator contract, chaos-tested).

#ifndef AQPP_SHARD_PARTIAL_H_
#define AQPP_SHARD_PARTIAL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/query.h"
#include "kernels/kernels.h"
#include "service/protocol.h"
#include "stats/confidence.h"

namespace aqpp {
namespace shard {

// Streaming covariance companion to RunningMoments (Welford pair update).
// Feeding (x_i, y_i) in the same order on worker and reference produces
// bit-identical C2, so covariance terms survive the wire deterministically.
class RunningCovariance {
 public:
  void Add(double x, double y);
  double count() const { return n_; }
  // Sample covariance (Bessel-corrected); 0 with fewer than two points.
  double covariance_sample() const;

 private:
  double n_ = 0.0;
  double mean_x_ = 0.0;
  double mean_y_ = 0.0;
  double c2_ = 0.0;
};

// One kernels::kShardRows block's lane accumulators (the wire image of the
// scan layer's ShardAccum, minus min/max which the shard tier doesn't merge).
struct BlockMoments {
  uint64_t count = 0;
  double sum[kernels::kAccumulatorLanes] = {0};
  double sum_sq[kernels::kAccumulatorLanes] = {0};
};

// One stratum's (== one shard's) sample-side summary for the stratified
// estimator: Welford moments of c/s/q plus pairwise sample covariances.
struct StratumPartial {
  uint64_t sample_rows = 0;      // n_h
  uint64_t population_rows = 0;  // N_h
  double mean_c = 0, mean_s = 0, mean_q = 0;
  double var_c = 0, var_s = 0, var_q = 0;  // sample variances
  double cov_cs = 0, cov_cq = 0, cov_sq = 0;
};

// Which partial views a PARTIAL request asks the worker to compute.
struct PartialWants {
  bool exact = false;   // full-shard moment scan (heavy, bit-exact)
  bool sample = false;  // stratified sample moments (cheap)
  bool engine = false;  // the shard engine's AQP++ difference estimate
};

struct ShardPartial {
  uint32_t shard_index = 0;
  uint32_t num_shards = 0;
  uint64_t rows = 0;  // population rows owned by this shard

  bool has_exact = false;
  std::vector<BlockMoments> blocks;  // one per kShardRows block, in order

  bool has_sample = false;
  StratumPartial stratum;

  bool has_engine = false;
  double engine_estimate = 0;
  double engine_half_width = 0;
  bool engine_used_pre = false;

  double exec_seconds = 0;
};

// ---- Wire encoding ---------------------------------------------------------
//
// PARTIAL requests carry the canonical query as a compact spec:
//   func=SUM agg=10 conds=7:30:90,4:1:25 want=esa seed=123456
// (conds may be absent for a full-table aggregate; `want` is any subset of
// e=exact s=sample a=aqpp-engine). Responses carry the partial as key=value
// fields; doubles are %.17g so every moment round-trips exactly.

struct PartialSpec {
  RangeQuery query;
  PartialWants wants;
  uint64_t seed = 0;
  // Synopsis kind the worker's engine should estimate with ("" = the
  // worker's default / legacy estimator). Carried on the wire only when
  // non-empty, so old coordinators and workers interoperate unchanged.
  std::string synopsis_kind;
};

std::string FormatPartialSpec(const PartialSpec& spec);
// Strict inverse: unknown keys, malformed triples, and out-of-range counts
// are InvalidArgument (fuzz-tested; this faces the network).
Result<PartialSpec> ParsePartialSpec(const std::string& text);

// Appends the partial's fields to an OK response.
void EncodePartial(const ShardPartial& partial, Response* response);

// Parses a worker's OK response. Validates structural invariants so a
// truncated moment vector or a shard-count mismatch surfaces as a protocol
// error instead of silently skewing the merge:
//  * shard < shards, shards >= 1;
//  * when exact moments are present, the block count must equal
//    ceil(rows / kernels::kShardRows) and every block must parse fully;
//  * when sample moments are present, population_rows must equal rows.
Result<ShardPartial> ParsePartial(const Response& response);

// ---- Merge -----------------------------------------------------------------

enum class MergeMode {
  kExact,   // fold moment blocks; bit-identical to the single-table scan
  kSample,  // stratified-by-shard estimator fold
  kEngine,  // per-shard AQP++ difference estimates (SUM/COUNT only)
};

struct MergeOptions {
  MergeMode mode = MergeMode::kSample;
  double confidence_level = 0.95;
  // Population rows across all shards (the coordinator knows this from
  // SHARDINFO). Used only when shards are missing, to size the
  // extrapolation; 0 means "assume missing shards match the covered mean".
  uint64_t total_rows = 0;
  // Variance inflation applied to the covered-mass extrapolation when shards
  // are missing. Deliberately conservative: a degraded CI must never read
  // tighter than the full answer's (chaos invariant b).
  double degraded_penalty = 4.0;
  // When false, any missing shard fails the merge instead of degrading.
  bool allow_degraded = true;
};

struct MergedAnswer {
  ConfidenceInterval ci;
  // True when at least one shard was missing and the answer was
  // extrapolated. Degraded answers must never be cached.
  bool degraded = false;
  uint32_t shards_total = 0;
  uint32_t shards_answered = 0;
  // Engine mode: true when any shard's difference estimate used a non-phi
  // precomputed aggregate.
  bool used_pre = false;
};

// Folds the partials in shard-index order (`partials[i]` is shard i; missing
// shards are nullopt). Every present partial must agree on num_shards ==
// partials.size() and carry the view `options.mode` needs.
Result<MergedAnswer> MergePartials(
    const RangeQuery& query,
    const std::vector<std::optional<ShardPartial>>& partials,
    const MergeOptions& options);

}  // namespace shard
}  // namespace aqpp

#endif  // AQPP_SHARD_PARTIAL_H_
