#include "shard/worker_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>

#include "common/clock.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "service/ingest_wire.h"
#include "service/protocol.h"
#include "shard/partial.h"

namespace aqpp {
namespace shard {

namespace {

// Batch-pass metrics: same series the service's fused passes feed.
struct BatcherMetrics {
  obs::Counter* fused;
  obs::Histogram* batch_size;
  obs::Histogram* window_wait;
  static const BatcherMetrics& Get() {
    auto& reg = obs::Registry::Global();
    static const BatcherMetrics m = {
        reg.GetCounter(
            "aqpp_batch_queries_fused_total", "",
            "Member queries answered by fused shared-scan batch passes."),
        reg.GetHistogram("aqpp_batch_size", "", {1, 2, 4, 8, 16, 32, 64},
                         "Queries fused per shared-scan batch pass."),
        reg.GetHistogram(
            "aqpp_batch_window_wait_seconds", "",
            {0.0001, 0.00025, 0.0005, 0.001, 0.002, 0.005, 0.01},
            "Seconds a lone batch leader waited for same-key company."),
    };
    return m;
  }
};

}  // namespace

// Fuses concurrent PARTIAL requests into single ShardWorker::PartialBatch
// calls. A submitting thread with no active leader becomes one: it waits
// briefly for company when alone, then executes everything queued and fans
// the per-member results out. Followers park until their slot is fulfilled;
// arrivals during an execution form the next batch.
class PartialBatcher {
 public:
  PartialBatcher(const ShardWorker* worker, double window_seconds)
      : worker_(worker), window_seconds_(window_seconds) {}

  Result<ShardPartial> Submit(ShardWorker::PartialRequest req) {
    auto slot = std::make_shared<Slot>(std::move(req));
    std::unique_lock<std::mutex> lock(mu_);
    pending_.push_back(slot);
    cv_.notify_all();  // a window-waiting leader collects us immediately
    for (;;) {
      if (slot->done) return std::move(slot->result);
      if (!leader_active_) break;
      cv_.wait(lock);
    }
    leader_active_ = true;
    if (pending_.size() == 1 && window_seconds_ > 0) {
      SteadyTime wait_start = SteadyNow();
      cv_.wait_for(lock, std::chrono::duration<double>(window_seconds_),
                   [this] { return pending_.size() > 1; });
      BatcherMetrics::Get().window_wait->Observe(
          SecondsBetween(wait_start, SteadyNow()));
    }
    std::vector<std::shared_ptr<Slot>> batch;
    batch.swap(pending_);
    lock.unlock();

    std::vector<ShardWorker::PartialRequest> requests;
    requests.reserve(batch.size());
    for (const auto& s : batch) requests.push_back(s->req);
    BatcherMetrics::Get().batch_size->Observe(
        static_cast<double>(batch.size()));
    BatcherMetrics::Get().fused->Increment(batch.size());
    auto results = worker_->PartialBatch(requests);

    lock.lock();
    Result<ShardPartial> mine = Status::Internal("batch lost its own slot");
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch[i] == slot) {
        mine = std::move(results[i]);
      } else {
        batch[i]->result = std::move(results[i]);
      }
      batch[i]->done = true;
    }
    leader_active_ = false;
    cv_.notify_all();
    return mine;
  }

 private:
  struct Slot {
    explicit Slot(ShardWorker::PartialRequest r) : req(std::move(r)) {}
    ShardWorker::PartialRequest req;
    Result<ShardPartial> result = Status::Internal("pending");
    bool done = false;
  };

  const ShardWorker* worker_;
  double window_seconds_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool leader_active_ = false;
  std::vector<std::shared_ptr<Slot>> pending_;
};

namespace {

struct WorkerMetrics {
  obs::Counter* partials;
  obs::Counter* partial_errors;
  obs::Histogram* partial_seconds;
  static const WorkerMetrics& Get() {
    static const WorkerMetrics m = {
        obs::Registry::Global().GetCounter(
            "aqpp_shard_partials_total", "",
            "PARTIAL requests answered by this shard worker."),
        obs::Registry::Global().GetCounter(
            "aqpp_shard_partial_errors_total", "",
            "PARTIAL requests that failed to parse or compute."),
        obs::Registry::Global().GetHistogram(
            "aqpp_shard_partial_seconds", "", {},
            "Wall-clock seconds per PARTIAL request."),
    };
    return m;
  }
};

// Same contract as the service server's SendAll, behind the shard worker's
// own failpoint so chaos schedules can kill exactly one tier.
bool SendAll(int fd, const std::string& s) {
  size_t limit = s.size();
  if (auto fired = AQPP_FAILPOINT_EVAL("shard/worker/send")) {
    if (fired->kind == fail::ActionKind::kReturnError) return false;
    if (fired->kind == fail::ActionKind::kPartialIo) {
      limit = static_cast<size_t>(static_cast<double>(s.size()) *
                                  fired->io_fraction);
    }
  }
  size_t sent = 0;
  while (sent < limit) {
    ssize_t n = ::send(fd, s.data() + sent, limit - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return sent == s.size();
}

}  // namespace

WorkerServer::WorkerServer(const ShardWorker* worker,
                           WorkerServerOptions options)
    : worker_(worker), options_(std::move(options)) {
  if (options_.enable_batching) {
    batcher_ = std::make_unique<PartialBatcher>(
        worker_, options_.batch_window_seconds);
  }
}

WorkerServer::~WorkerServer() { Stop(); }

Status WorkerServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already started");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host '" + options_.host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, options_.backlog) < 0) {
    Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_.store(fd);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void WorkerServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed by Stop()
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!running_.load() || active_fds_.size() >= options_.max_connections) {
      SendAll(fd, FormatResponse(Response::Error(
                      "ResourceExhausted", "connection limit reached")) +
                      "\n");
      ::close(fd);
      continue;
    }
    active_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

std::string WorkerServer::HandleLine(const std::string& line, bool* quit) {
  auto req = ParseRequest(line);
  if (!req.ok()) {
    return FormatResponse(Response::Error(
        StatusCodeToString(req.status().code()), req.status().message()));
  }
  Response resp;
  switch (req->type) {
    case RequestType::kHello:
      resp.AddUint("shard", worker_->shard_index());
      resp.AddUint("shards", worker_->num_shards());
      return FormatResponse(resp);
    case RequestType::kPing:
      resp.AddUint("pong", 1);
      return FormatResponse(resp);
    case RequestType::kShardInfo: {
      resp.AddUint("shard", worker_->shard_index());
      resp.AddUint("shards", worker_->num_shards());
      resp.AddUint("rows", worker_->rows());
      resp.AddUint("row_begin", worker_->row_begin());
      resp.AddUint("sample_rows", worker_->sample_rows());
      if (worker_->ingest() != nullptr) {
        resp.AddUint("generation", worker_->ingest_generation());
      }
      std::string domains;
      for (const ColumnDomain& d : worker_->domains()) {
        if (!domains.empty()) domains += ',';
        domains += StrFormat("%zu:%lld:%lld", d.column,
                             static_cast<long long>(d.min),
                             static_cast<long long>(d.max));
      }
      if (!domains.empty()) resp.Add("domains", domains);
      return FormatResponse(resp);
    }
    case RequestType::kPartial: {
      const WorkerMetrics& metrics = WorkerMetrics::Get();
      Timer timer;
      auto spec = ParsePartialSpec(req->args);
      if (!spec.ok()) {
        metrics.partial_errors->Increment();
        return FormatResponse(
            Response::Error(StatusCodeToString(spec.status().code()),
                            spec.status().message()));
      }
      if (!spec->synopsis_kind.empty()) {
        // Estimator agreement check: a coordinator that wants synopsis
        // answers must talk to workers built with that synopsis.
        auto active = worker_->engine().active_synopsis();
        std::string have = active != nullptr ? active->kind() : "";
        if (spec->synopsis_kind != have) {
          metrics.partial_errors->Increment();
          return FormatResponse(Response::Error(
              "FailedPrecondition",
              "synopsis mismatch: request wants '" + spec->synopsis_kind +
                  "', worker has '" + (have.empty() ? "off" : have) + "'"));
        }
      }
      auto partial =
          batcher_ != nullptr
              ? batcher_->Submit({spec->query, spec->wants, spec->seed})
              : worker_->Partial(spec->query, spec->wants, spec->seed);
      if (!partial.ok()) {
        metrics.partial_errors->Increment();
        return FormatResponse(
            Response::Error(StatusCodeToString(partial.status().code()),
                            partial.status().message()));
      }
      metrics.partials->Increment();
      metrics.partial_seconds->Observe(timer.ElapsedSeconds());
      EncodePartial(*partial, &resp);
      if (worker_->ingest() != nullptr) {
        // Freshness hint: the committed generation the fold could reflect.
        resp.AddUint("generation", worker_->ingest_generation());
      }
      return FormatResponse(resp);
    }
    case RequestType::kIngest: {
      IngestManager* ingest = worker_->ingest();
      if (ingest == nullptr) {
        return FormatResponse(Response::Error(
            "FailedPrecondition",
            "streaming ingest is not enabled on this worker"));
      }
      auto batch = DecodeIngestBatch(req->args, worker_->table());
      if (!batch.ok()) {
        return FormatResponse(
            Response::Error(StatusCodeToString(batch.status().code()),
                            batch.status().message()));
      }
      if (Status st = ingest->Append(**batch); !st.ok()) {
        return FormatResponse(Response::Error(
            StatusCodeToString(st.code()), st.message()));
      }
      IngestSnapshot snap = ingest->snapshot();
      resp.AddUint("appended", (*batch)->num_rows());
      resp.AddUint("generation", snap.committed_generation);
      resp.AddUint("delta_rows", snap.delta_rows);
      resp.AddUint("total_rows", snap.total_rows);
      return FormatResponse(resp);
    }
    case RequestType::kMetrics: {
      std::string text = obs::Registry::Global().RenderPrometheus();
      uint64_t lines = 0;
      for (char c : text) {
        if (c == '\n') ++lines;
      }
      resp.AddUint("lines", lines);
      return FormatResponse(resp) + "\n" + text + "# EOF";
    }
    case RequestType::kQuit:
      *quit = true;
      resp.AddUint("bye", 1);
      return FormatResponse(resp);
    default:
      return FormatResponse(Response::Error(
          "InvalidArgument", "verb not supported by shard workers"));
  }
}

void WorkerServer::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool quit = false;
  while (!quit) {
    if (auto fired = AQPP_FAILPOINT_EVAL("shard/worker/recv");
        fired.has_value() && fired->kind == fail::ActionKind::kReturnError) {
      break;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // disconnect or Stop()
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t nl;
    while (!quit && (nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (TrimWhitespace(line).empty()) continue;
      std::string reply = HandleLine(line, &quit);
      if (!SendAll(fd, reply + "\n")) {
        quit = true;
      }
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  active_fds_.erase(fd);
}

size_t WorkerServer::active_connections() const {
  std::lock_guard<std::mutex> lock(conn_mu_);
  return active_fds_.size();
}

void WorkerServer::Stop() {
  bool was_running = running_.exchange(false);
  if (int fd = listen_fd_.exchange(-1); fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  (void)was_running;
}

}  // namespace shard
}  // namespace aqpp
