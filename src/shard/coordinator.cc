#include "shard/coordinator.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/ingest_wire.h"
#include "shard/partition.h"

namespace aqpp {
namespace shard {

namespace {

struct CoordMetrics {
  obs::Counter* queries;
  obs::Counter* scatters;
  obs::Counter* failovers;
  obs::Counter* shard_failures;
  obs::Counter* degraded;
  static const CoordMetrics& Get() {
    auto& reg = obs::Registry::Global();
    static const CoordMetrics m = {
        reg.GetCounter("aqpp_coord_queries_total", "",
                       "Queries answered by the shard coordinator."),
        reg.GetCounter("aqpp_coord_scatter_total", "",
                       "PARTIAL fetch attempts fanned out to shard workers."),
        reg.GetCounter("aqpp_coord_failovers_total", "",
                       "Fetches retried on another replica of the shard."),
        reg.GetCounter("aqpp_coord_shard_failures_total", "",
                       "Shards whose every replica failed for a query."),
        reg.GetCounter("aqpp_coord_degraded_total", "",
                       "Merged answers returned in degraded (partial) "
                       "form."),
    };
    return m;
  }
};

struct CoordIngestMetrics {
  obs::Counter* batches;
  obs::Counter* errors;
  obs::Counter* invalidations;
  static const CoordIngestMetrics& Get() {
    auto& reg = obs::Registry::Global();
    static const CoordIngestMetrics m = {
        reg.GetCounter("aqpp_coord_ingest_batches_total", "",
                       "Ingest batches fully acked by the target shard's "
                       "replicas."),
        reg.GetCounter("aqpp_coord_ingest_errors_total", "",
                       "Ingest forwards that failed on some replica."),
        reg.GetCounter("aqpp_coord_ingest_invalidations_total", "",
                       "Result-cache invalidations driven by acked ingest "
                       "generation bumps."),
    };
    return m;
  }
};

obs::Histogram* ShardLatency(uint32_t shard_index) {
  return obs::Registry::Global().GetHistogram(
      "aqpp_coord_shard_seconds",
      StrFormat("shard=\"%u\"", shard_index), {},
      "Per-shard PARTIAL round-trip seconds as seen by the coordinator.");
}

Status WireError(const Response& r) {
  std::string code = r.Find("code").value_or("Internal");
  std::string msg = r.message.empty() ? code : r.message;
  if (code == "DeadlineExceeded") return Status::DeadlineExceeded(msg);
  if (code == "InvalidArgument") return Status::InvalidArgument(msg);
  if (code == "Unimplemented") return Status::Unimplemented(msg);
  if (code == "FailedPrecondition") return Status::FailedPrecondition(msg);
  return Status::Unavailable(code + ": " + msg);
}

PartialWants WantsForMode(MergeMode mode) {
  PartialWants wants;
  switch (mode) {
    case MergeMode::kExact:
      wants.exact = true;
      break;
    case MergeMode::kSample:
      wants.sample = true;
      break;
    case MergeMode::kEngine:
      wants.engine = true;
      break;
  }
  return wants;
}

// Parses the SHARDINFO "domains" field: `col:min:max,col:min:max,...`.
Result<std::vector<ColumnDomainSpec>> ParseDomains(const std::string& text) {
  std::vector<ColumnDomainSpec> out;
  if (text.empty()) return out;
  for (const std::string& triple : SplitString(text, ',')) {
    std::vector<std::string> parts = SplitString(triple, ':');
    if (parts.size() != 3) {
      return Status::FailedPrecondition("malformed domain triple '" + triple +
                                        "'");
    }
    ColumnDomainSpec spec;
    char* end = nullptr;
    spec.column = static_cast<size_t>(std::strtoull(parts[0].c_str(), &end, 10));
    if (end == parts[0].c_str() || *end != '\0') {
      return Status::FailedPrecondition("bad domain column '" + parts[0] + "'");
    }
    spec.lo = std::strtoll(parts[1].c_str(), &end, 10);
    if (end == parts[1].c_str() || *end != '\0') {
      return Status::FailedPrecondition("bad domain lo '" + parts[1] + "'");
    }
    spec.hi = std::strtoll(parts[2].c_str(), &end, 10);
    if (end == parts[2].c_str() || *end != '\0') {
      return Status::FailedPrecondition("bad domain hi '" + parts[2] + "'");
    }
    out.push_back(spec);
  }
  return out;
}

}  // namespace

ShardCoordinator::ShardCoordinator(
    std::vector<std::vector<ReplicaEndpoint>> replicas,
    CoordinatorOptions options)
    : replicas_(std::move(replicas)),
      options_(options),
      wants_(WantsForMode(options.mode)),
      cache_(ResultCacheOptions{options.cache_capacity}) {}

Status ShardCoordinator::Connect() {
  if (replicas_.empty()) {
    return Status::InvalidArgument("coordinator needs at least one shard");
  }
  const size_t n = replicas_.size();
  topology_.assign(n, {});
  std::vector<char> known(n, 0);
  // Global domain = union over shards: min of mins, max of maxes. A query
  // canonicalized against the union clamps exactly like the single-engine
  // canonicalizer over the whole table would.
  std::map<size_t, std::pair<int64_t, int64_t>> domain;
  for (size_t i = 0; i < n; ++i) {
    if (replicas_[i].empty()) {
      return Status::InvalidArgument(
          StrFormat("shard %zu has no replica endpoints", i));
    }
    Status last = Status::Unavailable("unreachable");
    bool got = false;
    for (const ReplicaEndpoint& ep : replicas_[i]) {
      auto client = ServiceClient::Connect(ep.host, ep.port);
      if (!client.ok()) {
        last = client.status();
        continue;
      }
      if (Status st = client->SetRecvTimeout(options_.shard_timeout_seconds);
          !st.ok()) {
        last = std::move(st);
        continue;
      }
      auto r = client->Call("SHARDINFO");
      if (!r.ok()) {
        last = r.status();
        continue;
      }
      if (!r->ok) {
        last = WireError(*r);
        continue;
      }
      auto shard = r->GetUint("shard");
      auto shards = r->GetUint("shards");
      auto rows = r->GetUint("rows");
      auto row_begin = r->GetUint("row_begin");
      auto sample_rows = r->GetUint("sample_rows");
      if (!shard.ok() || !shards.ok() || !rows.ok() || !row_begin.ok() ||
          !sample_rows.ok()) {
        last = Status::FailedPrecondition("incomplete SHARDINFO reply");
        continue;
      }
      if (*shard != i || *shards != n) {
        return Status::FailedPrecondition(StrFormat(
            "endpoint %s:%d identifies as shard %llu/%llu, expected %zu/%zu",
            ep.host.c_str(), ep.port,
            static_cast<unsigned long long>(*shard),
            static_cast<unsigned long long>(*shards), i, n));
      }
      if (*rows == 0) {
        return Status::FailedPrecondition(
            StrFormat("shard %zu reports zero rows", i));
      }
      auto domains = ParseDomains(r->Find("domains").value_or(""));
      if (!domains.ok()) {
        last = domains.status();
        continue;
      }
      topology_[i] = {*rows, *row_begin, *sample_rows};
      for (const ColumnDomainSpec& d : *domains) {
        auto [it, inserted] = domain.emplace(d.column,
                                             std::make_pair(d.lo, d.hi));
        if (!inserted) {
          it->second.first = std::min(it->second.first, d.lo);
          it->second.second = std::max(it->second.second, d.hi);
        }
      }
      got = true;
      break;
    }
    if (got) {
      known[i] = 1;
    } else if (!options_.allow_degraded) {
      return Status::Unavailable(
          StrFormat("shard %zu: every replica failed SHARDINFO (last: %s)", i,
                    last.message().c_str()));
    } else {
      // Degraded boot: serve what is reachable. With the shard's row count
      // unknown the merge falls back to covered-mean extrapolation
      // (MergeOptions.total_rows == 0) until the shard comes back.
      AQPP_LOG(Warning) << "shard " << i
                        << " unreachable at connect; starting degraded "
                           "(last: "
                        << last.message() << ")";
    }
  }
  const size_t known_count =
      static_cast<size_t>(std::count(known.begin(), known.end(), 1));
  if (known_count == 0) {
    return Status::Unavailable("every shard failed SHARDINFO");
  }
  if (known_count == n) {
    // Row ranges must tile [0, total) in shard order — the exact merge
    // splices block sequences by position, so a gap or overlap would
    // silently corrupt answers.
    uint64_t expect_begin = 0;
    for (size_t i = 0; i < n; ++i) {
      if (topology_[i].row_begin != expect_begin) {
        return Status::FailedPrecondition(StrFormat(
            "shard %zu starts at row %llu, expected %llu (ranges must be "
            "contiguous)",
            i, static_cast<unsigned long long>(topology_[i].row_begin),
            static_cast<unsigned long long>(expect_begin)));
      }
      expect_begin += topology_[i].rows;
    }
    total_rows_ = expect_begin;
  } else {
    total_rows_ = 0;  // unknown — merge extrapolates from the covered mean
  }
  size_t num_columns = 0;
  std::vector<ColumnDomainSpec> specs;
  specs.reserve(domain.size());
  for (const auto& [col, range] : domain) {
    specs.push_back({col, range.first, range.second});
    num_columns = std::max(num_columns, col + 1);
  }
  canonicalizer_ = QueryCanonicalizer::FromDomains(num_columns, specs);
  connected_ = true;
  return Status::OK();
}

Result<IngestAck> ShardCoordinator::Ingest(const Table& batch) {
  AQPP_ASSIGN_OR_RETURN(std::string payload, EncodeIngestBatch(batch));
  return IngestRaw(payload);
}

Result<IngestAck> ShardCoordinator::IngestRaw(const std::string& payload) {
  if (!connected_) {
    return Status::FailedPrecondition("coordinator is not connected");
  }
  const CoordIngestMetrics& metrics = CoordIngestMetrics::Get();
  // Row-range sharding: appended rows extend the tail, so the batch goes to
  // the last shard — to every replica, in endpoint order, so replicas fed
  // the same batch sequence hold bit-identical deltas.
  const std::vector<ReplicaEndpoint>& reps = replicas_.back();
  const std::string line = "INGEST " + payload;
  IngestAck ack;
  for (const ReplicaEndpoint& ep : reps) {
    auto fail = [&](const Status& st) {
      metrics.errors->Increment();
      return Status::Unavailable(StrFormat(
          "replica %s:%d failed INGEST after %u sibling ack(s): %s",
          ep.host.c_str(), ep.port, ack.replicas_acked,
          st.ToString().c_str()));
    };
    auto client = ServiceClient::Connect(ep.host, ep.port);
    if (!client.ok()) return fail(client.status());
    if (Status st = client->SetRecvTimeout(options_.shard_timeout_seconds);
        !st.ok()) {
      return fail(st);
    }
    auto r = client->Call(line);
    if (!r.ok()) return fail(r.status());
    if (!r->ok) return fail(WireError(*r));
    auto appended = r->GetUint("appended");
    auto generation = r->GetUint("generation");
    auto delta_rows = r->GetUint("delta_rows");
    auto total_rows = r->GetUint("total_rows");
    if (!appended.ok() || !generation.ok() || !delta_rows.ok() ||
        !total_rows.ok()) {
      return fail(Status::FailedPrecondition("incomplete INGEST reply"));
    }
    ack.appended = *appended;
    ack.generation = std::max(ack.generation, *generation);
    ack.delta_rows = *delta_rows;
    ack.total_rows = *total_rows;
    ++ack.replicas_acked;
  }
  metrics.batches->Increment();
  // Invalidate on the generation bump: cached merged answers predate the
  // batch, and the next scatter's engine merge folds it.
  uint64_t seen = ingest_generation_.load();
  while (ack.generation > seen &&
         !ingest_generation_.compare_exchange_weak(seen, ack.generation)) {
  }
  if (ack.generation > seen) {
    cache_.InvalidateAll();
    metrics.invalidations->Increment();
  }
  return ack;
}

Result<ShardPartial> ShardCoordinator::FetchFrom(
    const ReplicaEndpoint& endpoint, const std::string& request_line) const {
  AQPP_ASSIGN_OR_RETURN(ServiceClient client,
                        ServiceClient::Connect(endpoint.host, endpoint.port));
  AQPP_RETURN_NOT_OK(client.SetRecvTimeout(options_.shard_timeout_seconds));
  AQPP_ASSIGN_OR_RETURN(Response r, client.Call(request_line));
  if (!r.ok) return WireError(r);
  return ParsePartial(r);
}

Result<ShardPartial> ShardCoordinator::FetchShard(
    uint32_t shard_index, const std::string& request_line,
    uint64_t seed) const {
  const CoordMetrics& metrics = CoordMetrics::Get();
  const std::vector<ReplicaEndpoint>& reps = replicas_[shard_index];
  const size_t num_replicas = reps.size();
  // Same (coordinator seed, query seed, shard) => same first replica, so a
  // repeated query exercises the same worker and chaos runs replay.
  const size_t pick = static_cast<size_t>(
      ShardSeed(options_.seed ^ seed, shard_index) % num_replicas);
  Status last = Status::Unavailable("no replicas");
  for (size_t attempt = 0; attempt < num_replicas; ++attempt) {
    const ReplicaEndpoint& ep = reps[(pick + attempt) % num_replicas];
    if (attempt > 0) metrics.failovers->Increment();
    metrics.scatters->Increment();
    Timer timer;
    Result<ShardPartial> partial = FetchFrom(ep, request_line);
    const double elapsed = timer.ElapsedSeconds();
    ShardLatency(shard_index)->Observe(elapsed);
    if (elapsed > options_.straggler_seconds) {
      AQPP_LOG(Warning) << "straggler: shard " << shard_index << " replica "
                        << ep.host << ":" << ep.port << " took " << elapsed
                        << "s (budget " << options_.straggler_seconds << "s)";
    }
    if (partial.ok()) {
      if (partial->shard_index != shard_index ||
          partial->num_shards != replicas_.size()) {
        last = Status::FailedPrecondition(StrFormat(
            "replica %s:%d answered as shard %u/%u, expected %u/%zu",
            ep.host.c_str(), ep.port, partial->shard_index,
            partial->num_shards, shard_index, replicas_.size()));
        continue;
      }
      return partial;
    }
    last = partial.status();
  }
  metrics.shard_failures->Increment();
  return last;
}

std::vector<std::optional<ShardPartial>> ShardCoordinator::Scatter(
    const RangeQuery& query, uint64_t seed) const {
  PartialSpec spec;
  spec.query = query;
  spec.wants = wants_;
  spec.seed = seed;
  const std::string line = "PARTIAL " + FormatPartialSpec(spec);
  std::vector<std::optional<ShardPartial>> partials(replicas_.size());
  auto fetch = [&](uint32_t i) {
    Result<ShardPartial> r = FetchShard(i, line, seed);
    if (r.ok()) {
      partials[i] = std::move(r).value();
    } else {
      AQPP_LOG(Warning) << "shard " << i
                        << " unavailable: " << r.status().ToString();
    }
  };
  if (replicas_.size() > 1) {
    std::vector<std::thread> threads;
    threads.reserve(replicas_.size());
    for (uint32_t i = 0; i < replicas_.size(); ++i) {
      threads.emplace_back(fetch, i);
    }
    for (std::thread& t : threads) t.join();
  } else {
    fetch(0);
  }
  return partials;
}

Result<CoordinatorAnswer> ShardCoordinator::Query(const RangeQuery& query) {
  if (!connected_) {
    return Status::FailedPrecondition("coordinator is not connected");
  }
  const CoordMetrics& metrics = CoordMetrics::Get();
  metrics.queries->Increment();
  Timer timer;
  CanonicalQuery canonical = canonicalizer_->Canonicalize(query);
  CoordinatorAnswer answer;
  answer.cache_key = canonical.key;
  answer.seed = canonical.seed;
  if (std::optional<ApproximateResult> hit = cache_.Lookup(canonical.key)) {
    answer.cache_hit = true;
    answer.merged.ci = hit->ci;
    answer.merged.used_pre = hit->used_pre;
    answer.merged.degraded = false;  // degraded answers are never cached
    answer.merged.shards_total = static_cast<uint32_t>(replicas_.size());
    answer.merged.shards_answered = static_cast<uint32_t>(replicas_.size());
    answer.exec_seconds = timer.ElapsedSeconds();
    return answer;
  }
  const uint64_t generation = cache_.generation();
  std::vector<std::optional<ShardPartial>> partials =
      Scatter(canonical.query, canonical.seed);
  MergeOptions merge;
  merge.mode = options_.mode;
  merge.confidence_level = options_.confidence_level;
  merge.total_rows = total_rows_;
  merge.degraded_penalty = options_.degraded_penalty;
  merge.allow_degraded = options_.allow_degraded;
  AQPP_ASSIGN_OR_RETURN(answer.merged,
                        MergePartials(canonical.query, partials, merge));
  if (answer.merged.degraded) {
    metrics.degraded->Increment();
  } else {
    ApproximateResult result;
    result.ci = answer.merged.ci;
    result.used_pre = answer.merged.used_pre;
    cache_.InsertIfCurrent(canonical.key, /*template_id=*/-1, result,
                           generation);
  }
  answer.exec_seconds = timer.ElapsedSeconds();
  return answer;
}

}  // namespace shard
}  // namespace aqpp
