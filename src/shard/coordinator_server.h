// CoordinatorServer: the client-facing TCP front of a ShardCoordinator.
// Speaks the same line protocol as the single-engine service — QUERY <sql>
// returns the familiar estimate/lo/hi/half_width/level fields — so existing
// ServiceClient callers work unchanged against a sharded deployment. Extra
// fields: degraded=0|1 (some shards missing, CI widened; pairs with
// RetryPolicy::retry_degraded on the client), shards, shards_answered.
//
// SQL is bound against a schema catalog (column names + string
// dictionaries); the catalog table carries no rows — the data lives on the
// workers.

#ifndef AQPP_SHARD_COORDINATOR_SERVER_H_
#define AQPP_SHARD_COORDINATOR_SERVER_H_

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "shard/coordinator.h"
#include "storage/table.h"

namespace aqpp {
namespace shard {

struct CoordinatorServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral
  int backlog = 64;
  size_t max_connections = 64;
};

class CoordinatorServer {
 public:
  // `coordinator` (already Connect()ed) and `catalog` are borrowed and must
  // outlive the server.
  CoordinatorServer(ShardCoordinator* coordinator, const Catalog* catalog,
                    CoordinatorServerOptions options = {});
  ~CoordinatorServer();

  CoordinatorServer(const CoordinatorServer&) = delete;
  CoordinatorServer& operator=(const CoordinatorServer&) = delete;

  Status Start();
  void Stop();

  int port() const { return port_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  std::string HandleLine(const std::string& line, bool* quit);

  ShardCoordinator* coordinator_;
  const Catalog* catalog_;
  CoordinatorServerOptions options_;
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  mutable std::mutex conn_mu_;
  std::unordered_set<int> active_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace shard
}  // namespace aqpp

#endif  // AQPP_SHARD_COORDINATOR_SERVER_H_
