// An in-process scatter-gather group: the reference implementation of the
// shard tier, and the bench driver.
//
// LocalShardGroup splits one table into an aligned shard plan, builds a
// ShardWorker per shard (same build path as aqpp-shardd over a slab), and
// answers queries by scattering PARTIAL work to every worker and folding
// with MergePartials. Because the merge is shard-index-ordered, the result
// is bit-identical whether workers ran sequentially, on threads, or behind
// TCP — the coordinator tests pin TCP answers against this group.
//
// Chaos hooks (per shard): FailShard makes a worker's scatter leg return an
// error, SetShardDelay sleeps on the clock (virtual under SimClock) before
// the worker computes — deterministic stand-ins for killed and straggling
// workers.

#ifndef AQPP_SHARD_LOCAL_GROUP_H_
#define AQPP_SHARD_LOCAL_GROUP_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "shard/partial.h"
#include "shard/partition.h"
#include "shard/worker.h"

namespace aqpp {
namespace shard {

struct LocalShardGroupOptions {
  ShardWorkerOptions worker;
  // Scatter on one thread per shard; the fold is ordered either way, so
  // this only changes wall-clock, never bits.
  bool parallel = true;
};

class LocalShardGroup {
 public:
  static Result<std::unique_ptr<LocalShardGroup>> Build(
      std::shared_ptr<Table> table, const QueryTemplate& tmpl,
      size_t num_shards, const LocalShardGroupOptions& options);

  // Scatter + ordered merge. `options.total_rows` is filled in by the group.
  Result<MergedAnswer> Query(const RangeQuery& query, const PartialWants& wants,
                             uint64_t seed, MergeOptions options) const;

  // The raw scatter (failed/disabled shards come back nullopt) — lets tests
  // permute arrival order and merge by hand.
  std::vector<std::optional<ShardPartial>> Scatter(const RangeQuery& query,
                                                   const PartialWants& wants,
                                                   uint64_t seed) const;

  void FailShard(uint32_t shard, bool fail);
  void SetShardDelay(uint32_t shard, double seconds);

  size_t num_shards() const { return workers_.size(); }
  uint64_t total_rows() const { return plan_.total_rows; }
  const ShardPlan& plan() const { return plan_; }
  const ShardWorker& worker(size_t i) const { return *workers_[i]; }
  // Mutable access for post-build configuration (EnableIngest).
  ShardWorker& mutable_worker(size_t i) { return *workers_[i]; }

 private:
  LocalShardGroup() = default;

  ShardPlan plan_;
  std::vector<std::unique_ptr<ShardWorker>> workers_;
  std::vector<char> failed_;
  std::vector<double> delays_;
  bool parallel_ = true;
};

}  // namespace shard
}  // namespace aqpp

#endif  // AQPP_SHARD_LOCAL_GROUP_H_
