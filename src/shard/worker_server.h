// WorkerServer: the line-protocol TCP front end of one shard worker
// (aqpp-shardd). Mirrors ServiceServer's socket structure (one accept
// thread, one thread per connection, ephemeral port support) but speaks the
// shard verbs:
//
//   PING              liveness
//   HELLO [name]      no sessions here; echoes shard identity
//   SHARDINFO         shard=<i> shards=<n> rows=<r> row_begin=<b>
//                     sample_rows=<s> domains=<col:min:max,...>
//   PARTIAL <spec>    computes the requested partial views (see
//                     src/shard/partial.h) and returns them on one line
//   INGEST <payload>  appends a wire-encoded row batch to the worker's
//                     delta (requires ShardWorker::EnableIngest); replies
//                     appended= generation= delta_rows= total_rows=
//   METRICS           Prometheus exposition (same framing as the service)
//   QUIT              closes the connection
//
// Chaos seams: shard/worker/recv and shard/worker/send failpoints drop the
// connection mid-session, the deterministic stand-ins for a killed worker.

#ifndef AQPP_SHARD_WORKER_SERVER_H_
#define AQPP_SHARD_WORKER_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "shard/worker.h"

namespace aqpp {
namespace shard {

class PartialBatcher;

struct WorkerServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral
  int backlog = 64;
  size_t max_connections = 64;
  // Fuse concurrent PARTIAL requests (one per connection thread) into single
  // ShardWorker::PartialBatch calls. A lone request holds a short collection
  // window open for company; requests that arrive while a batch executes
  // form the next one. False is the per-request ablation baseline; answers
  // are bit-identical either way.
  bool enable_batching = true;
  double batch_window_seconds = 0.0005;
};

class WorkerServer {
 public:
  // `worker` is borrowed and must outlive the server.
  WorkerServer(const ShardWorker* worker, WorkerServerOptions options = {});
  ~WorkerServer();

  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  Status Start();
  void Stop();

  int port() const { return port_; }
  size_t active_connections() const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  std::string HandleLine(const std::string& line, bool* quit);

  const ShardWorker* worker_;
  WorkerServerOptions options_;
  std::unique_ptr<PartialBatcher> batcher_;
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  mutable std::mutex conn_mu_;
  std::unordered_set<int> active_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace shard
}  // namespace aqpp

#endif  // AQPP_SHARD_WORKER_SERVER_H_
