#include "shard/partial.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/string_util.h"
#include "kernels/scan_internal.h"

namespace aqpp {
namespace shard {
namespace {

// Strict numeric parsing for network-facing payloads: the whole token must
// be consumed and the value must be finite. strtod's permissive tail
// ("1.5garbage") and inf/nan spellings are all rejected.
bool ParseFiniteDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  if (errno == ERANGE || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t d = static_cast<uint64_t>(c - '0');
    if (v > (std::numeric_limits<uint64_t>::max() - d) / 10) return false;
    v = v * 10 + d;
  }
  *out = v;
  return true;
}

bool ParseI64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  bool neg = s[0] == '-';
  uint64_t mag = 0;
  if (!ParseU64(neg ? s.substr(1) : s, &mag)) return false;
  if (neg) {
    if (mag > static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) + 1) {
      return false;
    }
    *out = static_cast<int64_t>(-mag);
  } else {
    if (mag > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
      return false;
    }
    *out = static_cast<int64_t>(mag);
  }
  return true;
}

// Fuzz-safety caps: well above anything the system produces, well below
// anything that could make parsing a hostile line expensive.
constexpr size_t kMaxConditions = 64;
constexpr size_t kMaxColumnOrdinal = 1u << 20;
constexpr size_t kMaxBlocks = 1u << 22;

constexpr size_t kLanes = kernels::kAccumulatorLanes;

uint64_t ExpectedBlockCount(uint64_t rows) {
  return (rows + kernels::kShardRows - 1) / kernels::kShardRows;
}

}  // namespace

void RunningCovariance::Add(double x, double y) {
  n_ += 1.0;
  double dx = x - mean_x_;
  mean_x_ += dx / n_;
  double dy = y - mean_y_;
  mean_y_ += dy / n_;
  c2_ += dx * (y - mean_y_);
}

double RunningCovariance::covariance_sample() const {
  return n_ > 1 ? c2_ / (n_ - 1) : 0.0;
}

// ---- Spec ------------------------------------------------------------------

std::string FormatPartialSpec(const PartialSpec& spec) {
  std::string out =
      StrFormat("func=%s agg=%zu", AggregateFunctionToString(spec.query.func),
                spec.query.agg_column);
  const auto& conds = spec.query.predicate.conditions();
  if (!conds.empty()) {
    out += " conds=";
    for (size_t i = 0; i < conds.size(); ++i) {
      if (i > 0) out += ',';
      out += StrFormat("%zu:%lld:%lld", conds[i].column,
                       static_cast<long long>(conds[i].lo),
                       static_cast<long long>(conds[i].hi));
    }
  }
  out += " want=";
  if (spec.wants.exact) out += 'e';
  if (spec.wants.sample) out += 's';
  if (spec.wants.engine) out += 'a';
  out += StrFormat(" seed=%llu", static_cast<unsigned long long>(spec.seed));
  if (!spec.synopsis_kind.empty()) {
    out += " synopsis=" + spec.synopsis_kind;
  }
  return out;
}

Result<PartialSpec> ParsePartialSpec(const std::string& text) {
  PartialSpec spec;
  bool saw_func = false, saw_agg = false, saw_want = false, saw_seed = false;
  for (const std::string& raw : SplitString(text, ' ')) {
    std::string token(TrimWhitespace(raw));
    if (token.empty()) continue;
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("malformed spec token '" + token + "'");
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key == "func") {
      AQPP_ASSIGN_OR_RETURN(spec.query.func, AggregateFunctionFromString(value));
      saw_func = true;
    } else if (key == "agg") {
      uint64_t col = 0;
      if (!ParseU64(value, &col) || col >= kMaxColumnOrdinal) {
        return Status::InvalidArgument("bad agg column '" + value + "'");
      }
      spec.query.agg_column = static_cast<size_t>(col);
      saw_agg = true;
    } else if (key == "conds") {
      for (const std::string& triple : SplitString(value, ',')) {
        auto parts = SplitString(triple, ':');
        if (parts.size() != 3) {
          return Status::InvalidArgument("bad condition '" + triple +
                                         "' (want col:lo:hi)");
        }
        uint64_t col = 0;
        RangeCondition c;
        if (!ParseU64(parts[0], &col) || col >= kMaxColumnOrdinal ||
            !ParseI64(parts[1], &c.lo) || !ParseI64(parts[2], &c.hi)) {
          return Status::InvalidArgument("bad condition '" + triple + "'");
        }
        c.column = static_cast<size_t>(col);
        spec.query.predicate.Add(c);
        if (spec.query.predicate.size() > kMaxConditions) {
          return Status::InvalidArgument("too many conditions");
        }
      }
    } else if (key == "want") {
      for (char c : value) {
        if (c == 'e') {
          spec.wants.exact = true;
        } else if (c == 's') {
          spec.wants.sample = true;
        } else if (c == 'a') {
          spec.wants.engine = true;
        } else {
          return Status::InvalidArgument(
              std::string("unknown want flag '") + c + "'");
        }
      }
      if (value.empty()) return Status::InvalidArgument("empty want=");
      saw_want = true;
    } else if (key == "seed") {
      if (!ParseU64(value, &spec.seed)) {
        return Status::InvalidArgument("bad seed '" + value + "'");
      }
      saw_seed = true;
    } else if (key == "synopsis") {
      // Registered kinds are [a-z_]+; bound the length, this faces the
      // network.
      if (value.empty() || value.size() > 32) {
        return Status::InvalidArgument("bad synopsis kind '" + value + "'");
      }
      for (char c : value) {
        if ((c < 'a' || c > 'z') && c != '_') {
          return Status::InvalidArgument("bad synopsis kind '" + value + "'");
        }
      }
      spec.synopsis_kind = value;
    } else {
      return Status::InvalidArgument("unknown spec key '" + key + "'");
    }
  }
  if (!saw_func || !saw_agg || !saw_want || !saw_seed) {
    return Status::InvalidArgument(
        "spec needs func=, agg=, want=, and seed=");
  }
  return spec;
}

// ---- Partial wire image ----------------------------------------------------

void EncodePartial(const ShardPartial& partial, Response* response) {
  response->AddUint("shard", partial.shard_index);
  response->AddUint("shards", partial.num_shards);
  response->AddUint("rows", partial.rows);
  response->AddDouble("exec_ms", partial.exec_seconds * 1000.0);
  if (partial.has_exact) {
    std::string mv;
    for (size_t b = 0; b < partial.blocks.size(); ++b) {
      const BlockMoments& blk = partial.blocks[b];
      if (b > 0) mv += ';';
      mv += StrFormat("%llu", static_cast<unsigned long long>(blk.count));
      for (size_t l = 0; l < kLanes; ++l) {
        mv += ':';
        mv += FormatDoubleExact(blk.sum[l]);
      }
      for (size_t l = 0; l < kLanes; ++l) {
        mv += ':';
        mv += FormatDoubleExact(blk.sum_sq[l]);
      }
    }
    response->Add("mv", mv);
  }
  if (partial.has_sample) {
    const StratumPartial& st = partial.stratum;
    std::string s =
        StrFormat("%llu:%llu", static_cast<unsigned long long>(st.sample_rows),
                  static_cast<unsigned long long>(st.population_rows));
    const double vals[] = {st.mean_c, st.mean_s, st.mean_q, st.var_c,
                           st.var_s,  st.var_q,  st.cov_cs, st.cov_cq,
                           st.cov_sq};
    for (double v : vals) {
      s += ':';
      s += FormatDoubleExact(v);
    }
    response->Add("strat", s);
  }
  if (partial.has_engine) {
    response->AddDouble("aqpp_est", partial.engine_estimate);
    response->AddDouble("aqpp_half", partial.engine_half_width);
    response->AddUint("aqpp_pre", partial.engine_used_pre ? 1 : 0);
  }
}

Result<ShardPartial> ParsePartial(const Response& response) {
  if (!response.ok) {
    return Status::InvalidArgument("cannot parse a partial from an ERR line");
  }
  ShardPartial p;
  auto shard = response.Find("shard");
  auto shards = response.Find("shards");
  auto rows = response.Find("rows");
  if (!shard || !shards || !rows) {
    return Status::InvalidArgument("partial needs shard=, shards=, rows=");
  }
  uint64_t shard_v = 0, shards_v = 0;
  if (!ParseU64(*shard, &shard_v) || !ParseU64(*shards, &shards_v) ||
      !ParseU64(*rows, &p.rows)) {
    return Status::InvalidArgument("non-numeric shard header field");
  }
  if (shards_v == 0 || shards_v > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("bad shard count");
  }
  if (shard_v >= shards_v) {
    return Status::InvalidArgument(StrFormat(
        "shard index %llu out of range for %llu shards",
        static_cast<unsigned long long>(shard_v),
        static_cast<unsigned long long>(shards_v)));
  }
  if (p.rows == 0) return Status::InvalidArgument("shard reports zero rows");
  p.shard_index = static_cast<uint32_t>(shard_v);
  p.num_shards = static_cast<uint32_t>(shards_v);
  if (auto exec = response.Find("exec_ms")) {
    double ms = 0;
    if (!ParseFiniteDouble(*exec, &ms) || ms < 0) {
      return Status::InvalidArgument("bad exec_ms");
    }
    p.exec_seconds = ms / 1000.0;
  }

  if (auto mv = response.Find("mv")) {
    uint64_t expected = ExpectedBlockCount(p.rows);
    if (expected > kMaxBlocks) {
      return Status::InvalidArgument("implausible row count for moment vector");
    }
    auto block_strs = SplitString(*mv, ';');
    if (block_strs.size() != expected) {
      return Status::InvalidArgument(StrFormat(
          "truncated moment vector: %zu blocks, want %llu for %llu rows",
          block_strs.size(), static_cast<unsigned long long>(expected),
          static_cast<unsigned long long>(p.rows)));
    }
    p.blocks.reserve(block_strs.size());
    for (const std::string& bs : block_strs) {
      auto fields = SplitString(bs, ':');
      if (fields.size() != 1 + 2 * kLanes) {
        return Status::InvalidArgument("malformed moment block '" + bs + "'");
      }
      BlockMoments blk;
      if (!ParseU64(fields[0], &blk.count) ||
          blk.count > kernels::kShardRows) {
        return Status::InvalidArgument("bad block count '" + fields[0] + "'");
      }
      for (size_t l = 0; l < kLanes; ++l) {
        if (!ParseFiniteDouble(fields[1 + l], &blk.sum[l]) ||
            !ParseFiniteDouble(fields[1 + kLanes + l], &blk.sum_sq[l])) {
          return Status::InvalidArgument("non-finite moment in block");
        }
      }
      p.blocks.push_back(blk);
    }
    p.has_exact = true;
  }

  if (auto strat = response.Find("strat")) {
    auto fields = SplitString(*strat, ':');
    if (fields.size() != 11) {
      return Status::InvalidArgument("malformed stratum summary");
    }
    StratumPartial& st = p.stratum;
    if (!ParseU64(fields[0], &st.sample_rows) ||
        !ParseU64(fields[1], &st.population_rows)) {
      return Status::InvalidArgument("bad stratum counts");
    }
    double* vals[] = {&st.mean_c, &st.mean_s, &st.mean_q,
                      &st.var_c,  &st.var_s,  &st.var_q,
                      &st.cov_cs, &st.cov_cq, &st.cov_sq};
    for (size_t i = 0; i < 9; ++i) {
      if (!ParseFiniteDouble(fields[2 + i], vals[i])) {
        return Status::InvalidArgument("non-finite stratum moment");
      }
    }
    if (st.population_rows != p.rows) {
      return Status::InvalidArgument(StrFormat(
          "stratum population %llu disagrees with shard rows %llu",
          static_cast<unsigned long long>(st.population_rows),
          static_cast<unsigned long long>(p.rows)));
    }
    if (st.sample_rows > st.population_rows) {
      return Status::InvalidArgument("stratum sample larger than population");
    }
    if (st.var_c < 0 || st.var_s < 0 || st.var_q < 0) {
      return Status::InvalidArgument("negative stratum variance");
    }
    p.has_sample = true;
  }

  auto est = response.Find("aqpp_est");
  auto half = response.Find("aqpp_half");
  auto pre = response.Find("aqpp_pre");
  if (est || half || pre) {
    if (!est || !half || !pre) {
      return Status::InvalidArgument(
          "engine partial needs aqpp_est=, aqpp_half=, aqpp_pre=");
    }
    uint64_t pre_v = 0;
    if (!ParseFiniteDouble(*est, &p.engine_estimate) ||
        !ParseFiniteDouble(*half, &p.engine_half_width) ||
        p.engine_half_width < 0 || !ParseU64(*pre, &pre_v) || pre_v > 1) {
      return Status::InvalidArgument("bad engine partial fields");
    }
    p.engine_used_pre = pre_v == 1;
    p.has_engine = true;
  }
  return p;
}

// ---- Merge -----------------------------------------------------------------

namespace {

bool HasView(const ShardPartial& p, MergeMode mode) {
  switch (mode) {
    case MergeMode::kExact:
      return p.has_exact;
    case MergeMode::kSample:
      return p.has_sample;
    case MergeMode::kEngine:
      return p.has_engine;
  }
  return false;
}

const char* ViewName(MergeMode mode) {
  switch (mode) {
    case MergeMode::kExact:
      return "exact";
    case MergeMode::kSample:
      return "sample";
    case MergeMode::kEngine:
      return "engine";
  }
  return "?";
}

// Shared degradation geometry: how much mass is missing and how to scale.
struct Missing {
  uint32_t count = 0;           // shards missing
  double rows = 0;              // extrapolated missing row mass
  double per_shard_rows = 0;    // rows / count
  double scale = 1.0;           // (covered + missing) / covered
  double fraction = 0.0;        // missing / (covered + missing)
};

Missing ComputeMissing(uint32_t total, uint32_t covered, uint64_t covered_rows,
                       const MergeOptions& options) {
  Missing m;
  m.count = total - covered;
  if (m.count == 0) return m;
  double ncov = static_cast<double>(covered_rows);
  if (options.total_rows > covered_rows) {
    m.rows = static_cast<double>(options.total_rows - covered_rows);
  } else {
    m.rows = ncov / static_cast<double>(covered) *
             static_cast<double>(m.count);
  }
  m.per_shard_rows = m.rows / static_cast<double>(m.count);
  m.scale = (ncov + m.rows) / ncov;
  m.fraction = m.rows / (ncov + m.rows);
  return m;
}

}  // namespace

Result<MergedAnswer> MergePartials(
    const RangeQuery& query,
    const std::vector<std::optional<ShardPartial>>& partials,
    const MergeOptions& options) {
  if (partials.empty()) {
    return Status::InvalidArgument("no shard slots to merge");
  }
  if (!query.group_by.empty()) {
    return Status::InvalidArgument("shard merge handles scalar queries only");
  }
  if (query.func == AggregateFunction::kMin ||
      query.func == AggregateFunction::kMax) {
    return Status::InvalidArgument("shard merge does not support MIN/MAX");
  }
  const uint32_t total = static_cast<uint32_t>(partials.size());
  uint32_t covered = 0;
  uint64_t covered_rows = 0;
  for (uint32_t i = 0; i < total; ++i) {
    if (!partials[i].has_value()) continue;
    const ShardPartial& p = *partials[i];
    if (p.num_shards != total) {
      return Status::InvalidArgument(StrFormat(
          "shard %u reports %u total shards, coordinator expects %u", i,
          p.num_shards, total));
    }
    if (p.shard_index != i) {
      return Status::InvalidArgument(StrFormat(
          "partial in slot %u carries shard index %u", i, p.shard_index));
    }
    if (!HasView(p, options.mode)) {
      return Status::InvalidArgument(StrFormat(
          "shard %u partial lacks the %s view", i, ViewName(options.mode)));
    }
    ++covered;
    covered_rows += p.rows;
  }
  if (covered == 0) return Status::Unavailable("no shard answered");
  if (covered < total && !options.allow_degraded) {
    return Status::Unavailable(StrFormat(
        "%u of %u shards missing and degradation is disabled", total - covered,
        total));
  }
  Missing miss = ComputeMissing(total, covered, covered_rows, options);

  MergedAnswer out;
  out.shards_total = total;
  out.shards_answered = covered;
  out.degraded = miss.count > 0;
  out.ci.level = options.confidence_level;
  const double lambda = NormalCriticalValue(options.confidence_level);
  const double penalty = options.degraded_penalty;

  switch (options.mode) {
    case MergeMode::kExact: {
      // Rebuild the kernel layer's per-block lane accumulators in global
      // block order and reduce them exactly as a single-table scan would
      // (shard-index-order merge, then lane-order reduction): the answer is
      // bit-identical to ScanAggregate over the unsharded table.
      std::vector<kernels::internal::ShardAccum> accums;
      for (uint32_t i = 0; i < total; ++i) {
        if (!partials[i].has_value()) continue;
        for (const BlockMoments& blk : partials[i]->blocks) {
          kernels::internal::ShardAccum a;
          a.count = blk.count;
          for (size_t l = 0; l < kLanes; ++l) {
            a.sum[l] = blk.sum[l];
            a.sum_sq[l] = blk.sum_sq[l];
          }
          accums.push_back(a);
        }
      }
      kernels::ScanStats stats = kernels::internal::Finalize(accums);
      double est = 0;
      switch (query.func) {
        case AggregateFunction::kCount:
          est = static_cast<double>(stats.count);
          break;
        case AggregateFunction::kSum:
          est = stats.sum;
          break;
        case AggregateFunction::kAvg:
          est = stats.mean();
          break;
        case AggregateFunction::kVar:
          est = stats.variance_population();
          break;
        default:
          return Status::InvalidArgument("unsupported exact merge function");
      }
      if (miss.count == 0) {
        out.ci.estimate = est;
        out.ci.half_width = 0.0;
        out.ci.level = 1.0;  // deterministic
        return out;
      }
      // Degraded exact answer: extrapolate by row mass and attach an
      // uncertainty derived from the covered per-row spread (documented
      // heuristic — missing rows treated as draws from the covered per-row
      // distribution, inflated by the penalty; see docs/sharding.md).
      const double ncov = static_cast<double>(covered_rows);
      const double mean_row = stats.sum / ncov;
      const double var_row =
          std::max(0.0, stats.sum_sq / ncov - mean_row * mean_row);
      const double p_match = static_cast<double>(stats.count) / ncov;
      const double var_match = std::max(0.0, p_match * (1.0 - p_match));
      double var = 0;
      switch (query.func) {
        case AggregateFunction::kSum:
          est *= miss.scale;
          var = penalty * static_cast<double>(miss.count) *
                miss.per_shard_rows * miss.per_shard_rows * var_row;
          break;
        case AggregateFunction::kCount:
          est *= miss.scale;
          var = penalty * static_cast<double>(miss.count) *
                miss.per_shard_rows * miss.per_shard_rows * var_match;
          break;
        case AggregateFunction::kAvg:
          var = penalty * miss.fraction * miss.fraction *
                stats.variance_population();
          break;
        case AggregateFunction::kVar:
          var = penalty * miss.fraction * miss.fraction * est * est;
          break;
        default:
          break;
      }
      out.ci.estimate = est;
      out.ci.half_width = lambda * std::sqrt(std::max(0.0, var));
      return out;
    }

    case MergeMode::kSample: {
      if (query.func == AggregateFunction::kSum ||
          query.func == AggregateFunction::kCount) {
        // Verbatim SampleEstimator::SumCI stratified fold, one stratum per
        // shard, in shard-index order: est += N_h * mean_h,
        // var += N_h^2 * s_h^2 / n_h. Bit-identical to running the single
        // estimator over the concatenated stratified sample.
        double est = 0, var = 0, max_unit = 0;
        for (uint32_t i = 0; i < total; ++i) {
          if (!partials[i].has_value()) continue;
          const StratumPartial& st = partials[i]->stratum;
          if (st.sample_rows == 0) continue;
          double num_pop = static_cast<double>(st.population_rows);
          double n_h = static_cast<double>(st.sample_rows);
          double mean = query.func == AggregateFunction::kSum ? st.mean_s
                                                              : st.mean_c;
          double v = query.func == AggregateFunction::kSum ? st.var_s
                                                           : st.var_c;
          est += num_pop * mean;
          var += num_pop * num_pop * v / n_h;
          max_unit = std::max(max_unit, v / n_h);
        }
        if (miss.count > 0) {
          // Impute each missing stratum's variance term at the worst covered
          // per-sample-row variance and inflate by the penalty.
          est *= miss.scale;
          var = penalty *
                (miss.scale * miss.scale * var +
                 static_cast<double>(miss.count) * miss.per_shard_rows *
                     miss.per_shard_rows * max_unit);
        }
        out.ci.estimate = est;
        out.ci.half_width = lambda * std::sqrt(std::max(0.0, var));
        return out;
      }
      // AVG / VAR: merge the three moment series (c, s, q), then the delta
      // method on the merged totals with the stratified covariance terms.
      double chat = 0, shat = 0, qhat = 0;
      double vc = 0, vs = 0, vq = 0, ccs = 0, ccq = 0, csq = 0;
      for (uint32_t i = 0; i < total; ++i) {
        if (!partials[i].has_value()) continue;
        const StratumPartial& st = partials[i]->stratum;
        if (st.sample_rows == 0) continue;
        double num_pop = static_cast<double>(st.population_rows);
        double w = num_pop * num_pop / static_cast<double>(st.sample_rows);
        chat += num_pop * st.mean_c;
        shat += num_pop * st.mean_s;
        qhat += num_pop * st.mean_q;
        vc += w * st.var_c;
        vs += w * st.var_s;
        vq += w * st.var_q;
        ccs += w * st.cov_cs;
        ccq += w * st.cov_cq;
        csq += w * st.cov_sq;
      }
      if (chat <= 0) {
        // No matching rows observed anywhere: estimate 0, zero width
        // (mirrors the single-engine estimator's no-observation answer).
        out.ci.estimate = 0.0;
        out.ci.half_width = 0.0;
        return out;
      }
      double ratio = shat / chat;
      double est = 0, var = 0;
      if (query.func == AggregateFunction::kAvg) {
        est = ratio;
        var = (vs - 2.0 * ratio * ccs + ratio * ratio * vc) / (chat * chat);
      } else {  // kVar
        est = std::max(0.0, qhat / chat - ratio * ratio);
        double gq = 1.0 / chat;
        double gs = -2.0 * shat / (chat * chat);
        double gc = (-qhat + 2.0 * shat * ratio) / (chat * chat);
        var = gq * gq * vq + gs * gs * vs + gc * gc * vc +
              2.0 * gc * gs * ccs + 2.0 * gc * gq * ccq + 2.0 * gs * gq * csq;
      }
      if (miss.count > 0) {
        // Ratio estimates don't rescale with mass; widen for the unobserved
        // strata instead (heuristic, penalty-inflated).
        var = penalty * (var + miss.fraction * miss.fraction * est * est);
      }
      out.ci.estimate = est;
      out.ci.half_width = lambda * std::sqrt(std::max(0.0, var));
      return out;
    }

    case MergeMode::kEngine: {
      if (query.func != AggregateFunction::kSum &&
          query.func != AggregateFunction::kCount) {
        return Status::InvalidArgument(
            "engine merge supports SUM and COUNT only");
      }
      // Shard totals are disjoint, so the difference estimates add and their
      // variances (recovered from half = lambda * sigma) add.
      double est = 0, var = 0, max_unit = 0;
      for (uint32_t i = 0; i < total; ++i) {
        if (!partials[i].has_value()) continue;
        const ShardPartial& p = *partials[i];
        est += p.engine_estimate;
        double sigma = p.engine_half_width / lambda;
        double vh = sigma * sigma;
        var += vh;
        double rows = static_cast<double>(p.rows);
        max_unit = std::max(max_unit, vh / (rows * rows));
        out.used_pre = out.used_pre || p.engine_used_pre;
      }
      if (miss.count > 0) {
        est *= miss.scale;
        var = penalty *
              (miss.scale * miss.scale * var +
               static_cast<double>(miss.count) * miss.per_shard_rows *
                   miss.per_shard_rows * max_unit);
      }
      out.ci.estimate = est;
      out.ci.half_width = lambda * std::sqrt(std::max(0.0, var));
      return out;
    }
  }
  return Status::InvalidArgument("unknown merge mode");
}

}  // namespace shard
}  // namespace aqpp
