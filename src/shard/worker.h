// A shard worker: one AqppEngine over one row-range shard, answering
// PARTIAL requests with the three partial views the coordinator knows how
// to merge (src/shard/partial.h).
//
// Build paths:
//   * Build(table, ...)        — in-memory shard slice (tests, local groups)
//   * BuildFromSlab(path, ...) — a table_pack shard slab; the slab is
//     materialized and the cube + reservoir are built from the same one-pass
//     streaming builder the single-engine out-of-core path uses.
//
// Both paths build identical state from identical data: the BP-Cube scheme
// is equal-depth over the template's condition columns (the paper's P_eq)
// with the cut budget spread evenly across dimensions, the cube and sample
// come from BuildCubeAndSampleFromSource, and the engine adopts them via
// AqppEngine::AdoptPrepared. The per-shard sample seed must come from
// ShardSeed(base, shard_index) so replicas of the same shard draw the same
// reservoir — that is what makes replica answers interchangeable bits.

#ifndef AQPP_SHARD_WORKER_H_
#define AQPP_SHARD_WORKER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cancellation.h"
#include "core/engine.h"
#include "core/ingest.h"
#include "shard/partial.h"
#include "storage/table.h"

namespace aqpp {
namespace shard {

struct ShardWorkerOptions {
  // Reservoir rows drawn from this shard (one stratum of the global
  // stratified-by-shard sample).
  size_t sample_size = 4096;
  // BP-Cube cell budget for this shard; cuts per dimension are
  // max(2, floor(budget^(1/d))). 0 disables the cube (plain-AQP shard).
  size_t cube_budget = 1024;
  double confidence_level = 0.95;
  // Base seed; the shard's sample RNG is seeded with
  // ShardSeed(base_seed, shard_index).
  uint64_t base_seed = 42;
  // Synopsis kind the shard engine estimates with ("" = legacy estimator).
  // PARTIAL requests carrying a different kind are rejected, so coordinator
  // and workers can never silently disagree on the estimator.
  std::string synopsis;
};

// Per-condition-column value range, reported over SHARDINFO so the
// coordinator can canonicalize queries against the merged global domain.
struct ColumnDomain {
  size_t column = 0;
  int64_t min = 0;
  int64_t max = 0;
};

class ShardWorker {
 public:
  static Result<std::unique_ptr<ShardWorker>> Build(
      std::shared_ptr<Table> table, const QueryTemplate& tmpl,
      uint32_t shard_index, uint32_t num_shards, uint64_t row_begin,
      const ShardWorkerOptions& options);

  static Result<std::unique_ptr<ShardWorker>> BuildFromSlab(
      const std::string& slab_path, const QueryTemplate& tmpl,
      uint32_t shard_index, uint32_t num_shards, uint64_t row_begin,
      const ShardWorkerOptions& options);

  // Computes the requested partial views for a canonical scalar query.
  // Deterministic: a pure function of (shard data, query, wants, seed).
  Result<ShardPartial> Partial(const RangeQuery& query,
                               const PartialWants& wants, uint64_t seed,
                               const CancellationToken* cancel = nullptr) const;

  // One member of a fused PARTIAL batch; mirrors Partial's arguments.
  struct PartialRequest {
    RangeQuery query;
    PartialWants wants;
    uint64_t seed = 0;
  };

  // Fused counterpart of Partial: one pass over the shard's block grid
  // evaluates every member's exact view, and one pass over the sample
  // evaluates every member's predicate mask (shared by the sample and
  // engine views). results[i] is bit-identical to
  // Partial(requests[i].query, requests[i].wants, requests[i].seed) —
  // including error statuses — and one member's failure never affects its
  // siblings.
  std::vector<Result<ShardPartial>> PartialBatch(
      const std::vector<PartialRequest>& requests,
      const CancellationToken* cancel = nullptr) const;

  // Enables delta-only streaming ingest on this worker: appended batches are
  // stage-validated and committed to an exact in-memory delta that is folded
  // into the *engine* partial view (SUM/COUNT). The exact and sample views
  // keep answering from base data — their wire invariants (block count ==
  // ceil(rows / kShardRows), population_rows == rows) pin them to the
  // build-time row range — so the absorber never runs here (background is
  // forced off; do not call AbsorbNow on the returned manager) and the
  // prepared state stays at the build generation until a rebuild. Replicas
  // fed identical batch sequences stay interchangeable bits.
  Status EnableIngest(IngestOptions options = {});
  // Null until EnableIngest; internally synchronized (Append is safe under
  // concurrent Partial traffic).
  IngestManager* ingest() const { return ingest_.get(); }
  // Committed ingest generation (0 when ingest is disabled or idle).
  uint64_t ingest_generation() const;

  uint32_t shard_index() const { return shard_index_; }
  uint32_t num_shards() const { return num_shards_; }
  uint64_t row_begin() const { return row_begin_; }
  uint64_t rows() const { return table_->num_rows(); }
  uint64_t sample_rows() const { return engine_->sample().size(); }
  const QueryTemplate& query_template() const { return template_; }
  const Table& table() const { return *table_; }
  const AqppEngine& engine() const { return *engine_; }
  // Observed min/max per template condition column on this shard.
  const std::vector<ColumnDomain>& domains() const { return domains_; }

 private:
  ShardWorker() = default;

  Status ComputeExact(const RangeQuery& query, ShardPartial* out) const;
  Status ComputeSample(const RangeQuery& query, ShardPartial* out) const;
  // Moments accumulation under a precomputed sample-row mask (what
  // ComputeSample evaluates itself and PartialBatch shares across members).
  Status ComputeSampleWithMask(const RangeQuery& query,
                               const std::vector<uint8_t>& mask,
                               ShardPartial* out) const;
  Status ComputeEngine(const RangeQuery& query, uint64_t seed,
                       const CancellationToken* cancel,
                       const std::vector<uint8_t>* query_mask,
                       ShardPartial* out) const;

  std::shared_ptr<Table> table_;
  std::unique_ptr<AqppEngine> engine_;
  std::unique_ptr<IngestManager> ingest_;
  QueryTemplate template_;
  std::vector<ColumnDomain> domains_;
  uint32_t shard_index_ = 0;
  uint32_t num_shards_ = 1;
  uint64_t row_begin_ = 0;
};

}  // namespace shard
}  // namespace aqpp

#endif  // AQPP_SHARD_WORKER_H_
