// Row-range sharding of a table into per-shard extent slabs.
//
// Shards are contiguous row ranges whose boundaries sit on the kernel
// layer's kShardRows grid (which equals kExtentRows, so one extent is one
// kernel shard block). That alignment is what lets a worker's per-block
// moment partials concatenate into exactly the block sequence a
// single-table scan would have produced — the foundation of the exact-path
// bit-identity guarantee (see src/shard/partial.h).
//
// `table_pack shard` uses PackShardSlabs to split a packed table into
// shard-<i>.ext slabs plus a small text MANIFEST that aqpp-shardd and the
// coordinator read back.

#ifndef AQPP_SHARD_PARTITION_H_
#define AQPP_SHARD_PARTITION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace aqpp {
namespace shard {

struct ShardRange {
  uint64_t row_begin = 0;
  uint64_t row_end = 0;  // exclusive
  uint64_t rows() const { return row_end - row_begin; }
};

struct ShardPlan {
  uint64_t total_rows = 0;
  std::vector<ShardRange> shards;
  size_t num_shards() const { return shards.size(); }
};

// Splits [0, total_rows) into `num_shards` contiguous ranges with every
// interior boundary on the kernels::kShardRows grid and block counts spread
// as evenly as the grid allows (earlier shards take the remainder). Errors
// if total_rows == 0, num_shards == 0, or there are fewer grid blocks than
// shards (a shard must own at least one block).
Result<ShardPlan> MakeShardPlan(uint64_t total_rows, size_t num_shards);

// Deterministic per-shard RNG seed derived from a base seed (splitmix64
// finalizer), so shard workers draw independent but reproducible samples.
uint64_t ShardSeed(uint64_t base_seed, uint32_t shard_index);

// Materializes one shard's rows as an in-memory table (same schema, string
// dictionaries copied so codes stay valid).
Result<std::shared_ptr<Table>> SliceShard(const Table& table,
                                          const ShardRange& range);

// One line per shard in the MANIFEST file.
struct ShardSlabInfo {
  uint32_t shard_index = 0;
  uint32_t num_shards = 0;
  uint64_t row_begin = 0;
  uint64_t rows = 0;
  std::string path;  // slab path, relative to the manifest's directory
};

// Writes shard-<i>.ext slabs for every shard of `plan` into `dir` (created
// if needed) plus `dir`/MANIFEST. Returns the manifest entries.
Result<std::vector<ShardSlabInfo>> PackShardSlabs(const Table& table,
                                                  const ShardPlan& plan,
                                                  const std::string& dir);

// Reads `dir`/MANIFEST back. Validates shard indices are dense [0, n) and
// row ranges are contiguous from 0.
Result<std::vector<ShardSlabInfo>> ReadShardManifest(const std::string& dir);

}  // namespace shard
}  // namespace aqpp

#endif  // AQPP_SHARD_PARTITION_H_
