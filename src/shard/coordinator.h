// ShardCoordinator: the merging front of the scatter-gather tier.
//
// The coordinator owns no data. It learns the topology over SHARDINFO
// (per-shard row ranges + condition-column domains), canonicalizes each
// query against the merged global domain with the same QueryCanonicalizer
// the single-engine service uses (same keys, same derived seeds), scatters
// PARTIAL requests to one replica per shard under a per-shard recv
// deadline, and folds the partials in fixed shard-index order with
// MergePartials — so the merged answer is a pure function of (shard data,
// canonical query) regardless of worker count or arrival order.
//
// Replica fan-out: each shard may have R interchangeable replicas (same
// slab, same ShardSeed => same reservoir bits). The replica tried first is
// a deterministic function of (coordinator seed, canonical query seed,
// shard index); on failure or timeout the others are tried in rotation.
// Only when every replica of a shard fails does the merge degrade: the
// answer is extrapolated, its CI widened, flagged `degraded`, and — by
// contract, enforced here — never inserted into the result cache.
#ifndef AQPP_SHARD_COORDINATOR_H_
#define AQPP_SHARD_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/result_cache.h"
#include "shard/partial.h"
#include "storage/table.h"

namespace aqpp {
namespace shard {

struct ReplicaEndpoint {
  std::string host = "127.0.0.1";
  int port = 0;
};

struct CoordinatorOptions {
  // Per-attempt recv deadline for SHARDINFO / PARTIAL calls. A replica that
  // blows this deadline counts as failed and the next replica is tried.
  double shard_timeout_seconds = 2.0;
  // Shards slower than this get a straggler warning in the log.
  double straggler_seconds = 0.5;
  // Coordinator-level seed folded into the replica pick.
  uint64_t seed = 42;
  // Which partial view the merge runs on (the matching `want` is requested).
  MergeMode mode = MergeMode::kSample;
  double confidence_level = 0.95;
  double degraded_penalty = 4.0;
  // When false a missing shard fails the query instead of degrading it.
  bool allow_degraded = true;
  size_t cache_capacity = 1024;
};

// Acknowledgment of one ingest batch forwarded through the shard tier.
struct IngestAck {
  uint64_t appended = 0;
  // Highest committed ingest generation acked by the target shard's
  // replicas (the freshness token the coordinator invalidates on).
  uint64_t generation = 0;
  uint64_t delta_rows = 0;
  uint64_t total_rows = 0;
  uint32_t replicas_acked = 0;
};

struct CoordinatorAnswer {
  MergedAnswer merged;
  bool cache_hit = false;
  std::string cache_key;
  // The canonical execution seed (shipped to every shard).
  uint64_t seed = 0;
  double exec_seconds = 0;
};

class ShardCoordinator {
 public:
  // `replicas[i]` lists the interchangeable endpoints serving shard i.
  explicit ShardCoordinator(std::vector<std::vector<ReplicaEndpoint>> replicas,
                            CoordinatorOptions options = {});

  // SHARDINFO handshake: contacts each shard (first reachable replica),
  // validates that shard indices/counts/row ranges form one contiguous
  // table, merges the per-shard condition-column domains into the global
  // domain, and builds the canonicalizer. Must succeed before Query().
  // With allow_degraded, shards unreachable at connect are tolerated (at
  // least one must answer): queries start out degraded, and with the total
  // row count unknown the merge imputes the missing mass from the covered
  // mean until the shard returns.
  Status Connect();

  // Canonicalize -> cache lookup -> scatter -> merge -> (cache insert unless
  // degraded). Thread-safe after Connect().
  Result<CoordinatorAnswer> Query(const RangeQuery& query);

  // Appends `batch` through the shard tier. Row-range sharding makes ingest
  // an append at the tail: the batch is forwarded to every replica of the
  // last shard (replicas must stay interchangeable bits, so every one of
  // them must ack). When the acked generation moves past the last one seen,
  // the result cache is invalidated so the next query re-scatters and its
  // engine merge folds the new rows. A replica failing after a sibling
  // acked is an error — those replicas may have diverged and should be
  // drained or rebuilt before failover answers are trusted.
  Result<IngestAck> Ingest(const Table& batch);
  // Same, forwarding an already-encoded wire payload verbatim (what the
  // coordinator server receives; the coordinator owns no schema to decode
  // against — workers validate).
  Result<IngestAck> IngestRaw(const std::string& payload);
  // Highest ingest generation acked through this coordinator.
  uint64_t ingest_generation() const { return ingest_generation_.load(); }

  // Raw scatter of an already-canonical query (gate testing and chaos
  // drills): no cache, no canonicalization; `partials[i]` is shard i or
  // nullopt if every replica failed.
  std::vector<std::optional<ShardPartial>> Scatter(const RangeQuery& query,
                                                   uint64_t seed) const;

  size_t num_shards() const { return replicas_.size(); }
  uint64_t total_rows() const { return total_rows_; }
  bool connected() const { return connected_; }
  ResultCacheStats cache_stats() const { return cache_.stats(); }
  const CoordinatorOptions& options() const { return options_; }

 private:
  struct ShardTopology {
    uint64_t rows = 0;
    uint64_t row_begin = 0;
    uint64_t sample_rows = 0;
  };

  // One PARTIAL round-trip against one replica (fresh connection; a recv
  // timeout poisons a line-protocol connection, so none are pooled).
  Result<ShardPartial> FetchFrom(const ReplicaEndpoint& endpoint,
                                 const std::string& request_line) const;
  // Deterministic replica pick + rotation failover for one shard.
  Result<ShardPartial> FetchShard(uint32_t shard_index,
                                  const std::string& request_line,
                                  uint64_t seed) const;

  std::vector<std::vector<ReplicaEndpoint>> replicas_;
  CoordinatorOptions options_;
  PartialWants wants_;
  bool connected_ = false;
  uint64_t total_rows_ = 0;
  std::vector<ShardTopology> topology_;
  std::optional<QueryCanonicalizer> canonicalizer_;
  ResultCache cache_;
  std::atomic<uint64_t> ingest_generation_{0};
};

}  // namespace shard
}  // namespace aqpp

#endif  // AQPP_SHARD_COORDINATOR_H_
