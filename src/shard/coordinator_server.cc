#include "shard/coordinator_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "service/protocol.h"
#include "sql/binder.h"

namespace aqpp {
namespace shard {

namespace {

bool SendAll(int fd, const std::string& s) {
  size_t sent = 0;
  while (sent < s.size()) {
    ssize_t n = ::send(fd, s.data() + sent, s.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

CoordinatorServer::CoordinatorServer(ShardCoordinator* coordinator,
                                     const Catalog* catalog,
                                     CoordinatorServerOptions options)
    : coordinator_(coordinator),
      catalog_(catalog),
      options_(std::move(options)) {}

CoordinatorServer::~CoordinatorServer() { Stop(); }

Status CoordinatorServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already started");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host '" + options_.host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, options_.backlog) < 0) {
    Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_.store(fd);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void CoordinatorServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed by Stop()
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!running_.load() || active_fds_.size() >= options_.max_connections) {
      SendAll(fd, FormatResponse(Response::Error(
                      "ResourceExhausted", "connection limit reached")) +
                      "\n");
      ::close(fd);
      continue;
    }
    active_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

std::string CoordinatorServer::HandleLine(const std::string& line,
                                          bool* quit) {
  auto req = ParseRequest(line);
  if (!req.ok()) {
    return FormatResponse(Response::Error(
        StatusCodeToString(req.status().code()), req.status().message()));
  }
  Response resp;
  switch (req->type) {
    case RequestType::kHello:
      resp.AddUint("shards", coordinator_->num_shards());
      resp.AddUint("rows", coordinator_->total_rows());
      return FormatResponse(resp);
    case RequestType::kPing:
      resp.AddUint("pong", 1);
      return FormatResponse(resp);
    case RequestType::kShardInfo:
      resp.AddUint("shards", coordinator_->num_shards());
      resp.AddUint("rows", coordinator_->total_rows());
      return FormatResponse(resp);
    case RequestType::kQuery: {
      auto bound = ParseAndBind(req->sql, *catalog_);
      if (!bound.ok()) {
        return FormatResponse(
            Response::Error(StatusCodeToString(bound.status().code()),
                            bound.status().message()));
      }
      auto answer = coordinator_->Query(bound->query);
      if (!answer.ok()) {
        return FormatResponse(
            Response::Error(StatusCodeToString(answer.status().code()),
                            answer.status().message()));
      }
      resp.AddDouble("estimate", answer->merged.ci.estimate);
      resp.AddDouble("lo", answer->merged.ci.lower());
      resp.AddDouble("hi", answer->merged.ci.upper());
      resp.AddDouble("half_width", answer->merged.ci.half_width);
      resp.AddDouble("level", answer->merged.ci.level);
      resp.AddUint("cache_hit", answer->cache_hit ? 1 : 0);
      resp.AddUint("degraded", answer->merged.degraded ? 1 : 0);
      resp.AddUint("shards", answer->merged.shards_total);
      resp.AddUint("shards_answered", answer->merged.shards_answered);
      resp.AddUint("pre", answer->merged.used_pre ? 1 : 0);
      resp.AddDouble("exec_ms", answer->exec_seconds * 1000.0);
      return FormatResponse(resp);
    }
    case RequestType::kIngest: {
      // Forwarded verbatim: the coordinator owns no schema, so the payload
      // is validated (and decoded) by the target shard's workers.
      auto ack = coordinator_->IngestRaw(req->args);
      if (!ack.ok()) {
        return FormatResponse(
            Response::Error(StatusCodeToString(ack.status().code()),
                            ack.status().message()));
      }
      resp.AddUint("appended", ack->appended);
      resp.AddUint("generation", ack->generation);
      resp.AddUint("delta_rows", ack->delta_rows);
      resp.AddUint("total_rows", ack->total_rows);
      resp.AddUint("replicas", ack->replicas_acked);
      return FormatResponse(resp);
    }
    case RequestType::kStats: {
      ResultCacheStats cache = coordinator_->cache_stats();
      resp.AddUint("shards", coordinator_->num_shards());
      resp.AddUint("rows", coordinator_->total_rows());
      resp.AddUint("cache_hits", cache.hits);
      resp.AddUint("cache_misses", cache.misses);
      resp.AddUint("cache_size", cache.size);
      resp.AddUint("cache_evictions", cache.evictions);
      return FormatResponse(resp);
    }
    case RequestType::kMetrics: {
      std::string text = obs::Registry::Global().RenderPrometheus();
      uint64_t lines = 0;
      for (char c : text) {
        if (c == '\n') ++lines;
      }
      resp.AddUint("lines", lines);
      return FormatResponse(resp) + "\n" + text + "# EOF";
    }
    case RequestType::kQuit:
      *quit = true;
      resp.AddUint("bye", 1);
      return FormatResponse(resp);
    default:
      return FormatResponse(Response::Error(
          "InvalidArgument", "verb not supported by the coordinator"));
  }
}

void CoordinatorServer::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool quit = false;
  while (!quit) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // disconnect or Stop()
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t nl;
    while (!quit && (nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (TrimWhitespace(line).empty()) continue;
      std::string reply = HandleLine(line, &quit);
      if (!SendAll(fd, reply + "\n")) {
        quit = true;
      }
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  active_fds_.erase(fd);
}

void CoordinatorServer::Stop() {
  bool was_running = running_.exchange(false);
  if (int fd = listen_fd_.exchange(-1); fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  (void)was_running;
}

}  // namespace shard
}  // namespace aqpp
