#include "shard/worker.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/string_util.h"
#include "common/timer.h"
#include "stats/descriptive.h"
#include "core/stream_build.h"
#include "shard/partition.h"
#include "cube/partition.h"
#include "kernels/multi_scan.h"
#include "kernels/scan_internal.h"
#include "storage/column_source.h"
#include "storage/extent_file.h"

namespace aqpp {
namespace shard {
namespace {

// Cuts per dimension so the cube stays within `budget` cells: the paper's
// uniform split of the partition budget across condition attributes.
size_t CutsPerDimension(size_t budget, size_t dims) {
  double per = std::floor(std::pow(static_cast<double>(budget),
                                   1.0 / static_cast<double>(dims)));
  return std::max<size_t>(2, static_cast<size_t>(per));
}

kernels::ScanProfile ProfileFor(AggregateFunction func) {
  switch (func) {
    case AggregateFunction::kCount:
      return kernels::ScanProfile::kCount;
    case AggregateFunction::kSum:
    case AggregateFunction::kAvg:
      return kernels::ScanProfile::kSum;
    default:
      return kernels::ScanProfile::kMoments;
  }
}

Status ValidateQuery(const RangeQuery& query, const Table& table) {
  if (!query.group_by.empty()) {
    return Status::InvalidArgument("shard partials are scalar-only");
  }
  if (query.func == AggregateFunction::kMin ||
      query.func == AggregateFunction::kMax) {
    return Status::InvalidArgument("shard partials do not support MIN/MAX");
  }
  if (query.func != AggregateFunction::kCount &&
      query.agg_column >= table.num_columns()) {
    return Status::InvalidArgument("aggregate column out of range");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<ShardWorker>> ShardWorker::Build(
    std::shared_ptr<Table> table, const QueryTemplate& tmpl,
    uint32_t shard_index, uint32_t num_shards, uint64_t row_begin,
    const ShardWorkerOptions& options) {
  if (table == nullptr || table->num_rows() == 0) {
    return Status::InvalidArgument("shard table is empty");
  }
  if (num_shards == 0 || shard_index >= num_shards) {
    return Status::InvalidArgument("bad shard index");
  }
  if (row_begin % kernels::kShardRows != 0) {
    return Status::InvalidArgument(StrFormat(
        "shard row_begin %llu is not aligned to the %zu-row kernel grid",
        static_cast<unsigned long long>(row_begin), kernels::kShardRows));
  }
  if (tmpl.condition_columns.empty()) {
    return Status::InvalidArgument(
        "shard worker needs at least one condition column in the template");
  }
  if (options.cube_budget == 0 || options.sample_size == 0) {
    return Status::InvalidArgument(
        "shard worker needs a cube budget and a sample size");
  }

  // Equal-depth partition scheme over the template's condition columns.
  size_t cuts =
      CutsPerDimension(options.cube_budget, tmpl.condition_columns.size());
  std::vector<DimensionPartition> dims;
  for (size_t col : tmpl.condition_columns) {
    AQPP_ASSIGN_OR_RETURN(
        DimensionPartition dim,
        PartitionScheme::EqualDepthPartition(*table, col, cuts));
    dims.push_back(std::move(dim));
  }
  PartitionScheme scheme(std::move(dims));

  // One-pass cube + reservoir build, seeded per shard so every replica of
  // this shard draws the same reservoir.
  std::vector<MeasureSpec> measures = {MeasureSpec::Sum(tmpl.agg_column),
                                       MeasureSpec::Count(),
                                       MeasureSpec::SumSquares(tmpl.agg_column)};
  TableColumnSource source(table.get());
  Rng rng(ShardSeed(options.base_seed, shard_index));
  StreamBuildOptions build_opts;
  build_opts.sample_size = options.sample_size;
  build_opts.release_consumed_extents = false;
  AQPP_ASSIGN_OR_RETURN(
      StreamBuildResult built,
      BuildCubeAndSampleFromSource(source, std::move(scheme), measures, rng,
                                   build_opts));

  EngineOptions eopts;
  eopts.confidence_level = options.confidence_level;
  eopts.seed = ShardSeed(options.base_seed, shard_index);
  // AdoptPrepared builds the selected synopsis over the adopted state.
  eopts.synopsis = options.synopsis;
  AQPP_ASSIGN_OR_RETURN(std::unique_ptr<AqppEngine> engine,
                        AqppEngine::Create(table, eopts));
  AQPP_RETURN_NOT_OK(
      engine->AdoptPrepared(tmpl, std::move(built.sample), built.cube));

  auto worker = std::unique_ptr<ShardWorker>(new ShardWorker());
  worker->table_ = std::move(table);
  worker->engine_ = std::move(engine);
  worker->template_ = tmpl;
  worker->shard_index_ = shard_index;
  worker->num_shards_ = num_shards;
  worker->row_begin_ = row_begin;
  for (size_t col : tmpl.condition_columns) {
    const auto& data = worker->table_->column(col).Int64Data();
    ColumnDomain d;
    d.column = col;
    d.min = data[0];
    d.max = data[0];
    for (int64_t v : data) {
      d.min = std::min(d.min, v);
      d.max = std::max(d.max, v);
    }
    worker->domains_.push_back(d);
  }
  return worker;
}

Result<std::unique_ptr<ShardWorker>> ShardWorker::BuildFromSlab(
    const std::string& slab_path, const QueryTemplate& tmpl,
    uint32_t shard_index, uint32_t num_shards, uint64_t row_begin,
    const ShardWorkerOptions& options) {
  AQPP_ASSIGN_OR_RETURN(std::shared_ptr<ExtentFileReader> reader,
                        ExtentFileReader::Open(slab_path));
  // Materialize the slab: the worker serves exact partials from raw column
  // pointers, and the one-pass builder over the materialized table is
  // bit-identical to streaming the extent file (PR 6 contract).
  AQPP_ASSIGN_OR_RETURN(std::shared_ptr<Table> table, reader->ReadTable());
  return Build(std::move(table), tmpl, shard_index, num_shards, row_begin,
               options);
}

Status ShardWorker::EnableIngest(IngestOptions options) {
  if (ingest_ != nullptr) {
    return Status::FailedPrecondition("ingest already enabled");
  }
  // Delta-only mode (see the header comment): the absorber would swap the
  // reservoir out from under the sample view's population_rows == rows wire
  // invariant, so shard workers never run it.
  options.background = false;
  ingest_ = std::make_unique<IngestManager>(engine_.get(), std::move(options));
  return Status::OK();
}

uint64_t ShardWorker::ingest_generation() const {
  return ingest_ != nullptr ? ingest_->generation() : 0;
}

Result<ShardPartial> ShardWorker::Partial(
    const RangeQuery& query, const PartialWants& wants, uint64_t seed,
    const CancellationToken* cancel) const {
  AQPP_RETURN_NOT_OK(ValidateQuery(query, *table_));
  if (!wants.exact && !wants.sample && !wants.engine) {
    return Status::InvalidArgument("partial request wants no views");
  }
  Timer timer;
  ShardPartial out;
  out.shard_index = shard_index_;
  out.num_shards = num_shards_;
  out.rows = table_->num_rows();
  if (wants.exact) {
    AQPP_RETURN_IF_STOPPED(cancel);
    AQPP_RETURN_NOT_OK(ComputeExact(query, &out));
  }
  if (wants.sample) {
    AQPP_RETURN_IF_STOPPED(cancel);
    AQPP_RETURN_NOT_OK(ComputeSample(query, &out));
  }
  if (wants.engine) {
    AQPP_RETURN_IF_STOPPED(cancel);
    AQPP_RETURN_NOT_OK(ComputeEngine(query, seed, cancel, nullptr, &out));
  }
  out.exec_seconds = timer.ElapsedSeconds();
  return out;
}

std::vector<Result<ShardPartial>> ShardWorker::PartialBatch(
    const std::vector<PartialRequest>& requests,
    const CancellationToken* cancel) const {
  const size_t q = requests.size();
  Timer timer;
  struct Member {
    ShardPartial out;
    Status status = Status::OK();
    bool failed = false;
  };
  std::vector<Member> members(q);
  auto fail = [&members](size_t i, Status st) {
    members[i].status = std::move(st);
    members[i].failed = true;
  };
  auto stopped = [cancel] { return cancel != nullptr && cancel->ShouldStop(); };

  for (size_t i = 0; i < q; ++i) {
    const PartialRequest& r = requests[i];
    if (Status st = ValidateQuery(r.query, *table_); !st.ok()) {
      fail(i, std::move(st));
      continue;
    }
    if (!r.wants.exact && !r.wants.sample && !r.wants.engine) {
      fail(i, Status::InvalidArgument("partial request wants no views"));
      continue;
    }
    members[i].out.shard_index = shard_index_;
    members[i].out.num_shards = num_shards_;
    members[i].out.rows = table_->num_rows();
  }

  // ---- Exact view: one fused pass over the shard's block grid. Per block,
  // every member gets a fresh accumulator and fresh adaptive-scan state, so
  // its per-block moments are bit-identical to ComputeExact's.
  if (stopped()) {
    for (size_t i = 0; i < q; ++i) {
      if (!members[i].failed) fail(i, cancel->StopStatus());
    }
  }
  std::vector<kernels::BoundPredicate> preds(q);
  std::vector<kernels::MultiScanMember> scan_members;
  std::vector<size_t> scan_idx;
  scan_members.reserve(q);
  scan_idx.reserve(q);
  for (size_t i = 0; i < q; ++i) {
    if (members[i].failed || !requests[i].wants.exact) continue;
    auto bound = kernels::BindConditions(
        *table_, requests[i].query.predicate.conditions());
    if (!bound.ok()) {
      fail(i, bound.status());
      continue;
    }
    preds[i] = std::move(*bound);
    kernels::MultiScanMember m;
    m.pred = &preds[i];
    m.profile = ProfileFor(requests[i].query.func);
    if (requests[i].query.func != AggregateFunction::kCount) {
      m.values = kernels::ValueRef::FromColumn(
          table_->column(requests[i].query.agg_column));
    }
    scan_members.push_back(m);
    scan_idx.push_back(i);
  }
  if (!scan_members.empty()) {
    const size_t n = table_->num_rows();
    const size_t nblocks = (n + kernels::kShardRows - 1) / kernels::kShardRows;
    for (size_t idx : scan_idx) {
      members[idx].out.blocks.assign(nblocks, BlockMoments{});
    }
    std::vector<kernels::internal::ShardAccum> accs(scan_members.size());
    for (size_t b = 0; b < nblocks; ++b) {
      const size_t begin = b * kernels::kShardRows;
      const size_t end = std::min(n, begin + kernels::kShardRows);
      std::fill(accs.begin(), accs.end(), kernels::internal::ShardAccum{});
      kernels::MultiScanBlock(scan_members, begin, end,
                              kernels::ScanStrategy::kAdaptive, accs.data());
      for (size_t j = 0; j < scan_members.size(); ++j) {
        BlockMoments& blk = members[scan_idx[j]].out.blocks[b];
        blk.count = accs[j].count;
        for (size_t l = 0; l < kernels::kAccumulatorLanes; ++l) {
          blk.sum[l] = accs[j].sum[l];
          blk.sum_sq[l] = accs[j].sum_sq[l];
        }
      }
    }
    for (size_t idx : scan_idx) members[idx].out.has_exact = true;
  }

  // ---- Sample masks: one fused pass over the reservoir evaluates every
  // remaining member's predicate; the mask feeds both the sample view and
  // the engine view (ExecuteControl::query_mask).
  std::vector<size_t> mask_idx;
  std::vector<std::vector<RangeCondition>> conds;
  for (size_t i = 0; i < q; ++i) {
    if (members[i].failed) continue;
    if (!requests[i].wants.sample && !requests[i].wants.engine) continue;
    mask_idx.push_back(i);
    conds.push_back(requests[i].query.predicate.conditions());
  }
  std::vector<std::optional<std::vector<uint8_t>>> masks(q);
  std::vector<std::optional<Status>> mask_err(q);
  if (!conds.empty() && !stopped()) {
    auto fused = kernels::MultiEvaluateMask(*engine_->sample().rows, conds);
    for (size_t j = 0; j < mask_idx.size(); ++j) {
      if (fused[j].ok()) {
        masks[mask_idx[j]] = std::move(*fused[j]);
      } else {
        mask_err[mask_idx[j]] = fused[j].status();
      }
    }
  }

  for (size_t i = 0; i < q; ++i) {
    if (members[i].failed || !requests[i].wants.sample) continue;
    if (stopped()) {
      fail(i, cancel->StopStatus());
      continue;
    }
    if (mask_err[i].has_value()) {
      // Same status ComputeSample's own EvaluateMask would produce.
      fail(i, *mask_err[i]);
      continue;
    }
    if (Status st = ComputeSampleWithMask(requests[i].query, *masks[i],
                                          &members[i].out);
        !st.ok()) {
      fail(i, std::move(st));
    }
  }

  for (size_t i = 0; i < q; ++i) {
    if (members[i].failed || !requests[i].wants.engine) continue;
    if (stopped()) {
      fail(i, cancel->StopStatus());
      continue;
    }
    // A member whose mask failed to bind runs without one: the engine's own
    // mask pass reproduces the identical error for this member alone.
    const std::vector<uint8_t>* qm =
        masks[i].has_value() ? &*masks[i] : nullptr;
    if (Status st = ComputeEngine(requests[i].query, requests[i].seed, cancel,
                                  qm, &members[i].out);
        !st.ok()) {
      fail(i, std::move(st));
    }
  }

  std::vector<Result<ShardPartial>> results;
  results.reserve(q);
  const double elapsed = timer.ElapsedSeconds();
  for (size_t i = 0; i < q; ++i) {
    if (members[i].failed) {
      results.push_back(members[i].status);
    } else {
      members[i].out.exec_seconds = elapsed;
      results.push_back(std::move(members[i].out));
    }
  }
  return results;
}

Status ShardWorker::ComputeExact(const RangeQuery& query,
                                 ShardPartial* out) const {
  AQPP_ASSIGN_OR_RETURN(
      kernels::BoundPredicate pred,
      kernels::BindConditions(*table_, query.predicate.conditions()));
  kernels::ScanProfile profile = ProfileFor(query.func);
  kernels::ValueRef values;
  if (query.func != AggregateFunction::kCount) {
    values = kernels::ValueRef::FromColumn(table_->column(query.agg_column));
  }
  const size_t n = table_->num_rows();
  const size_t nblocks = (n + kernels::kShardRows - 1) / kernels::kShardRows;
  out->blocks.assign(nblocks, BlockMoments{});
  const kernels::ScanStrategy strategy = kernels::ScanStrategy::kAdaptive;
  for (size_t b = 0; b < nblocks; ++b) {
    const size_t begin = b * kernels::kShardRows;
    const size_t end = std::min(n, begin + kernels::kShardRows);
    kernels::internal::ShardAccum acc;
    if (!pred.never_matches) {
      if (values.dbl != nullptr) {
        kernels::internal::ScanShard<double>(pred, values.dbl, begin, end,
                                             profile, strategy, acc);
      } else {
        kernels::internal::ScanShard<int64_t>(pred, values.i64, begin, end,
                                              profile, strategy, acc);
      }
    }
    BlockMoments& blk = out->blocks[b];
    blk.count = acc.count;
    for (size_t l = 0; l < kernels::kAccumulatorLanes; ++l) {
      blk.sum[l] = acc.sum[l];
      blk.sum_sq[l] = acc.sum_sq[l];
    }
  }
  out->has_exact = true;
  return Status::OK();
}

Status ShardWorker::ComputeSample(const RangeQuery& query,
                                  ShardPartial* out) const {
  AQPP_ASSIGN_OR_RETURN(
      std::vector<uint8_t> mask,
      query.predicate.EvaluateMask(*engine_->sample().rows));
  return ComputeSampleWithMask(query, mask, out);
}

Status ShardWorker::ComputeSampleWithMask(const RangeQuery& query,
                                          const std::vector<uint8_t>& mask,
                                          ShardPartial* out) const {
  const Sample& sample = engine_->sample();
  const size_t n = sample.size();
  // Measure doubles materialized exactly like the estimator's MeasureCache
  // (static_cast for ordinal columns), so the stratified witness in the
  // tests reproduces these bits.
  const bool need_measure = query.func != AggregateFunction::kCount;
  const double* dbl = nullptr;
  const int64_t* i64 = nullptr;
  if (need_measure) {
    const Column& col = sample.rows->column(query.agg_column);
    if (col.type() == DataType::kDouble) {
      dbl = col.DoubleData().data();
    } else {
      i64 = col.Int64Data().data();
    }
  }
  RunningMoments mc, ms, mq;
  RunningCovariance ccs, ccq, csq;
  for (size_t i = 0; i < n; ++i) {
    const bool hit = mask[i] != 0;
    const double a =
        !need_measure ? 0.0
                      : (dbl != nullptr ? dbl[i]
                                        : static_cast<double>(i64[i]));
    const double c = hit ? 1.0 : 0.0;
    const double s = hit ? a : 0.0;
    const double q = hit ? a * a : 0.0;
    mc.Add(c);
    ms.Add(s);
    mq.Add(q);
    ccs.Add(c, s);
    ccq.Add(c, q);
    csq.Add(s, q);
  }
  StratumPartial& st = out->stratum;
  st.sample_rows = n;
  st.population_rows = table_->num_rows();
  st.mean_c = mc.mean();
  st.mean_s = ms.mean();
  st.mean_q = mq.mean();
  st.var_c = mc.variance_sample();
  st.var_s = ms.variance_sample();
  st.var_q = mq.variance_sample();
  st.cov_cs = ccs.covariance_sample();
  st.cov_cq = ccq.covariance_sample();
  st.cov_sq = csq.covariance_sample();
  out->has_sample = true;
  return Status::OK();
}

Status ShardWorker::ComputeEngine(const RangeQuery& query, uint64_t seed,
                                  const CancellationToken* cancel,
                                  const std::vector<uint8_t>* query_mask,
                                  ShardPartial* out) const {
  ExecuteControl control;
  control.cancel = cancel;
  control.seed = seed;
  control.record = false;
  control.query_mask = query_mask;
  AQPP_ASSIGN_OR_RETURN(ApproximateResult r, engine_->Execute(query, control));
  out->engine_estimate = r.ci.estimate;
  out->engine_half_width = r.ci.half_width;
  out->engine_used_pre = r.used_pre;
  // Delta-only ingest: committed-but-unabsorbed rows are folded exactly into
  // the engine view (SUM/COUNT), so the coordinator's engine merge reflects
  // every acked batch. The half-width is unchanged — the fold is exact.
  if (ingest_ != nullptr && IngestManager::FoldSupported(query.func)) {
    std::shared_ptr<const Table> delta = ingest_->delta();
    if (delta != nullptr && delta->num_rows() > 0) {
      AQPP_ASSIGN_OR_RETURN(double fold,
                            IngestManager::FoldValue(*delta, query));
      out->engine_estimate += fold;
    }
  }
  out->has_engine = true;
  return Status::OK();
}

}  // namespace shard
}  // namespace aqpp
