#include "shard/local_group.h"

#include <thread>

#include "common/clock.h"
#include "common/logging.h"

namespace aqpp {
namespace shard {

Result<std::unique_ptr<LocalShardGroup>> LocalShardGroup::Build(
    std::shared_ptr<Table> table, const QueryTemplate& tmpl, size_t num_shards,
    const LocalShardGroupOptions& options) {
  AQPP_ASSIGN_OR_RETURN(ShardPlan plan,
                        MakeShardPlan(table->num_rows(), num_shards));
  auto group = std::unique_ptr<LocalShardGroup>(new LocalShardGroup());
  group->plan_ = plan;
  group->parallel_ = options.parallel;
  for (size_t i = 0; i < plan.num_shards(); ++i) {
    AQPP_ASSIGN_OR_RETURN(std::shared_ptr<Table> slice,
                          SliceShard(*table, plan.shards[i]));
    AQPP_ASSIGN_OR_RETURN(
        std::unique_ptr<ShardWorker> worker,
        ShardWorker::Build(std::move(slice), tmpl, static_cast<uint32_t>(i),
                           static_cast<uint32_t>(plan.num_shards()),
                           plan.shards[i].row_begin, options.worker));
    group->workers_.push_back(std::move(worker));
  }
  group->failed_.assign(group->workers_.size(), 0);
  group->delays_.assign(group->workers_.size(), 0.0);
  return group;
}

std::vector<std::optional<ShardPartial>> LocalShardGroup::Scatter(
    const RangeQuery& query, const PartialWants& wants, uint64_t seed) const {
  std::vector<std::optional<ShardPartial>> partials(workers_.size());
  auto run = [&](size_t i) {
    if (failed_[i]) return;
    if (delays_[i] > 0) SleepFor(delays_[i]);
    Result<ShardPartial> r = workers_[i]->Partial(query, wants, seed);
    if (r.ok()) {
      partials[i] = std::move(r).value();
    } else {
      AQPP_LOG(Warning) << "shard " << i
                        << " partial failed: " << r.status().ToString();
    }
  };
  if (parallel_ && workers_.size() > 1) {
    std::vector<std::thread> threads;
    threads.reserve(workers_.size());
    for (size_t i = 0; i < workers_.size(); ++i) {
      threads.emplace_back(run, i);
    }
    for (auto& t : threads) t.join();
  } else {
    for (size_t i = 0; i < workers_.size(); ++i) run(i);
  }
  return partials;
}

Result<MergedAnswer> LocalShardGroup::Query(const RangeQuery& query,
                                            const PartialWants& wants,
                                            uint64_t seed,
                                            MergeOptions options) const {
  options.total_rows = plan_.total_rows;
  std::vector<std::optional<ShardPartial>> partials =
      Scatter(query, wants, seed);
  return MergePartials(query, partials, options);
}

void LocalShardGroup::FailShard(uint32_t shard, bool fail) {
  AQPP_CHECK_LT(shard, failed_.size());
  failed_[shard] = fail ? 1 : 0;
}

void LocalShardGroup::SetShardDelay(uint32_t shard, double seconds) {
  AQPP_CHECK_LT(shard, delays_.size());
  delays_[shard] = seconds;
}

}  // namespace shard
}  // namespace aqpp
