#include "workload/tlctrip.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "stats/distributions.h"

namespace aqpp {

namespace {

constexpr int64_t kMaxDay = 2922;  // 2009-01-01 .. 2016-12-31

}  // namespace

Schema TlcTripSchema() {
  return Schema({
      {"Pickup_Date", DataType::kInt64},
      {"Pickup_Time", DataType::kInt64},
      {"Passenger_Count", DataType::kInt64},
      {"Rate_Code", DataType::kInt64},
      {"Fare_Amt", DataType::kInt64},
      {"surcharge", DataType::kInt64},
      {"Tip_Amt", DataType::kInt64},
      {"Dropoff_Date", DataType::kInt64},
      {"Dropoff_Time", DataType::kInt64},
      {"Trip_Distance", DataType::kDouble},
      {"vendor_name", DataType::kString},
  });
}

Result<std::shared_ptr<Table>> GenerateTlcTrip(const TlcTripOptions& options) {
  if (options.rows == 0) return Status::InvalidArgument("rows must be > 0");
  Rng rng(options.seed);
  const size_t n = options.rows;

  auto table = std::make_shared<Table>(TlcTripSchema());
  table->Reserve(n);
  auto& pickup_date = table->mutable_column(0).MutableInt64Data();
  auto& pickup_time = table->mutable_column(1).MutableInt64Data();
  auto& passengers = table->mutable_column(2).MutableInt64Data();
  auto& rate_code = table->mutable_column(3).MutableInt64Data();
  auto& fare = table->mutable_column(4).MutableInt64Data();
  auto& surcharge = table->mutable_column(5).MutableInt64Data();
  auto& tip = table->mutable_column(6).MutableInt64Data();
  auto& dropoff_date = table->mutable_column(7).MutableInt64Data();
  auto& dropoff_time = table->mutable_column(8).MutableInt64Data();
  auto& distance = table->mutable_column(9).MutableDoubleData();
  Column& vendor = table->mutable_column(10);

  for (size_t i = 0; i < n; ++i) {
    // Demand grows over the years and dips in winter.
    int64_t day;
    do {
      day = rng.NextInt(1, kMaxDay);
      double growth =
          0.6 + 0.4 * static_cast<double>(day) / static_cast<double>(kMaxDay);
      double season =
          1.0 - 0.2 * std::cos(2.0 * M_PI * static_cast<double>(day % 365) /
                               365.0);
      if (rng.NextDouble() < growth * season / 1.4) break;
    } while (true);

    // Bimodal pickup times: morning and evening rush with a night tail.
    int64_t minute;
    double u = rng.NextDouble();
    if (u < 0.35) {
      minute = static_cast<int64_t>(SampleTruncatedNormal(8.5 * 60, 75, 0,
                                                          1439, rng));
    } else if (u < 0.8) {
      minute = static_cast<int64_t>(SampleTruncatedNormal(18.0 * 60, 110, 0,
                                                          1439, rng));
    } else {
      minute = rng.NextInt(0, 1439);
    }

    // Rate code: 1 standard, 2 JFK, 3 Newark, 4 Nassau, 5 negotiated, 6 group.
    int64_t rate;
    double rr = rng.NextDouble();
    if (rr < 0.90) {
      rate = 1;
    } else if (rr < 0.96) {
      rate = 2;
    } else {
      rate = 3 + static_cast<int64_t>(rng.NextBounded(4));
    }

    // Distance: lognormal-ish city trips; airport trips are long.
    double dist;
    if (rate == 2 || rate == 3) {
      dist = SampleTruncatedNormal(17.0, 3.0, 8.0, 35.0, rng);
    } else {
      dist = std::min(30.0, 0.4 + SamplePareto(1.2, 2.3, rng));
    }

    // Fare (cents): metered structure + rate-code flat fares + noise.
    double fare_d;
    if (rate == 2) {
      fare_d = 5200.0;  // JFK flat fare
    } else {
      double per_mile = 250.0;
      fare_d = 250.0 + per_mile * dist +
               40.0 * rng.NextGaussian();  // base + metered
    }
    // Fares rose over the years.
    fare_d *= 1.0 + 0.25 * static_cast<double>(day) /
                         static_cast<double>(kMaxDay);
    int64_t fare_c = std::max<int64_t>(250, static_cast<int64_t>(fare_d));

    // Night/peak surcharge.
    int64_t sur = 0;
    int64_t hour = minute / 60;
    if (hour >= 20 || hour < 6) {
      sur = 50;
    } else if (hour >= 16 && hour < 20) {
      sur = 100;
    }

    // Zero-inflated tips (cash tips unrecorded): ~40% zero, else ~15-25%.
    int64_t tip_c = 0;
    if (rng.NextDouble() > 0.4) {
      double rate_t = 0.15 + 0.1 * rng.NextDouble();
      tip_c = static_cast<int64_t>(rate_t * static_cast<double>(fare_c));
    }

    // Trip duration from distance and time-of-day congestion.
    double congestion = (hour >= 7 && hour <= 19) ? 1.6 : 1.0;
    int64_t dur_min = std::max<int64_t>(
        1, static_cast<int64_t>(dist * 3.2 * congestion +
                                3.0 * rng.NextGaussian() + 5.0));
    int64_t drop_min = minute + dur_min;
    int64_t drop_day = day + drop_min / 1440;
    drop_min %= 1440;

    pickup_date.push_back(day);
    pickup_time.push_back(minute);
    passengers.push_back(rng.NextDouble() < 0.72 ? 1 : rng.NextInt(2, 6));
    rate_code.push_back(rate);
    fare.push_back(fare_c);
    surcharge.push_back(sur);
    tip.push_back(tip_c);
    dropoff_date.push_back(std::min(drop_day, kMaxDay + 1));
    dropoff_time.push_back(drop_min);
    distance.push_back(dist);
    double v = rng.NextDouble();
    vendor.AppendString(v < 0.5 ? "CMT" : (v < 0.9 ? "VTS" : "DDS"));
  }
  table->SetRowCountFromColumns();
  table->FinalizeDictionaries();
  return table;
}

}  // namespace aqpp
