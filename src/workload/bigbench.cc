#include "workload/bigbench.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/string_util.h"
#include "stats/distributions.h"

namespace aqpp {

namespace {

constexpr int64_t kMaxDay = 730;  // two years of visits

const char* kCountries[] = {"USA", "CHN", "IND", "BRA", "RUS", "JPN", "DEU",
                            "GBR", "FRA", "CAN", "KOR", "ITA", "AUS", "ESP",
                            "MEX", "IDN", "NLD", "SAU", "TUR", "CHE"};
const char* kLanguages[] = {"en", "zh", "hi", "pt", "ru",
                            "ja", "de", "fr", "ko", "es"};

}  // namespace

Schema BigBenchSchema() {
  return Schema({
      {"sourceIP", DataType::kInt64},
      {"destURL", DataType::kInt64},
      {"visitDate", DataType::kInt64},
      {"duration", DataType::kInt64},
      {"searchWord", DataType::kInt64},
      {"adRevenue", DataType::kDouble},
      {"countryCode", DataType::kString},
      {"languageCode", DataType::kString},
  });
}

Result<std::shared_ptr<Table>> GenerateBigBench(const BigBenchOptions& options) {
  if (options.rows == 0) return Status::InvalidArgument("rows must be > 0");
  Rng rng(options.seed);
  const size_t n = options.rows;
  const int64_t ip_card = std::max<int64_t>(1000, static_cast<int64_t>(n / 10));
  const int64_t url_card = std::max<int64_t>(500, static_cast<int64_t>(n / 20));

  ZipfDistribution ip_zipf(ip_card, 1.4);
  ZipfDistribution url_zipf(url_card, 1.2);

  auto table = std::make_shared<Table>(BigBenchSchema());
  table->Reserve(n);
  auto& source_ip = table->mutable_column(0).MutableInt64Data();
  auto& dest_url = table->mutable_column(1).MutableInt64Data();
  auto& visit_date = table->mutable_column(2).MutableInt64Data();
  auto& duration = table->mutable_column(3).MutableInt64Data();
  auto& search_word = table->mutable_column(4).MutableInt64Data();
  auto& ad_revenue = table->mutable_column(5).MutableDoubleData();
  Column& country = table->mutable_column(6);
  Column& language = table->mutable_column(7);

  for (size_t i = 0; i < n; ++i) {
    int64_t ip = ip_zipf.Sample(rng);
    int64_t day = rng.NextInt(1, kMaxDay);
    // Engagement: long-tail session durations.
    int64_t dur = std::clamp<int64_t>(
        static_cast<int64_t>(SamplePareto(20.0, 1.3, rng)), 1, 3600);
    // Revenue: heavy-tailed base, boosted on weekends and in Q4, and mildly
    // increasing with session duration (the duration correlation AQP++ can
    // exploit when partitioning on duration).
    double base = SamplePareto(0.05, 1.6, rng);
    bool weekend = (day % 7) >= 5;
    double season = 1.0 + 0.6 * std::exp(-std::pow(
        (static_cast<double>(day % 365) - 330.0) / 25.0, 2.0));
    double engagement = 1.0 + 0.3 * std::log1p(static_cast<double>(dur) / 60.0);
    double revenue =
        std::min(1000.0, base * (weekend ? 1.4 : 1.0) * season * engagement);

    source_ip.push_back(ip);
    dest_url.push_back(url_zipf.Sample(rng));
    visit_date.push_back(day);
    duration.push_back(dur);
    search_word.push_back(rng.NextInt(1, 10000));
    ad_revenue.push_back(revenue);
    country.AppendString(kCountries[rng.NextBounded(20)]);
    language.AppendString(kLanguages[rng.NextBounded(10)]);
  }
  table->SetRowCountFromColumns();
  table->FinalizeDictionaries();
  return table;
}

}  // namespace aqpp
