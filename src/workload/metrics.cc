#include "workload/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "stats/descriptive.h"

namespace aqpp {

std::string WorkloadSummary::ToString() const {
  return StrFormat(
      "queries=%zu skipped=%zu avg=%.3f%% median=%.3f%% p95=%.3f%% "
      "max=%.3f%% coverage=%.1f%% avg_time=%s",
      queries_run, queries_skipped, avg_relative_error * 100,
      median_relative_error * 100, p95_relative_error * 100,
      max_relative_error * 100, coverage * 100,
      FormatDuration(avg_response_seconds).c_str());
}

Result<std::vector<double>> ComputeTruths(
    const std::vector<RangeQuery>& queries, const ExactExecutor& executor) {
  std::vector<double> truths;
  truths.reserve(queries.size());
  for (const auto& q : queries) {
    AQPP_ASSIGN_OR_RETURN(double t, executor.Execute(q));
    truths.push_back(t);
  }
  return truths;
}

Result<WorkloadSummary> RunWorkloadWithTruth(
    const std::vector<RangeQuery>& queries, const std::vector<double>& truths,
    const EngineFn& engine_fn, double zero_epsilon) {
  if (queries.size() != truths.size()) {
    return Status::InvalidArgument("queries/truths size mismatch");
  }
  WorkloadSummary out;
  double time_sum = 0;
  size_t covered = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (std::fabs(truths[i]) < zero_epsilon) {
      ++out.queries_skipped;
      continue;
    }
    AQPP_ASSIGN_OR_RETURN(auto result, engine_fn(queries[i]));
    double rel = result.ci.half_width / std::fabs(truths[i]);
    out.relative_errors.push_back(rel);
    if (result.ci.Contains(truths[i])) ++covered;
    double t = result.response_seconds();
    time_sum += t;
    out.max_response_seconds = std::max(out.max_response_seconds, t);
    ++out.queries_run;
  }
  if (out.queries_run > 0) {
    out.avg_relative_error = Mean(out.relative_errors);
    out.median_relative_error = Median(out.relative_errors);
    out.p95_relative_error = Quantile(out.relative_errors, 0.95);
    out.max_relative_error =
        *std::max_element(out.relative_errors.begin(),
                          out.relative_errors.end());
    out.avg_response_seconds = time_sum / static_cast<double>(out.queries_run);
    out.coverage = static_cast<double>(covered) /
                   static_cast<double>(out.queries_run);
  }
  return out;
}

Result<WorkloadSummary> RunWorkload(const std::vector<RangeQuery>& queries,
                                    const EngineFn& engine_fn,
                                    const ExactExecutor& executor,
                                    double zero_epsilon) {
  AQPP_ASSIGN_OR_RETURN(auto truths, ComputeTruths(queries, executor));
  return RunWorkloadWithTruth(queries, truths, engine_fn, zero_epsilon);
}

}  // namespace aqpp
