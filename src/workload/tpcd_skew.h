// TPCD-Skew synthetic dataset (the paper's primary benchmark [18]).
//
// Generates a lineitem-shaped table with Zipf(z)-skewed key columns
// (z = 2 in the paper), TPC-H-like date semantics, and a price measure that
// is deliberately correlated with the ship/commit dates (heteroscedastic
// seasonal + trend components) — the correlation the hill-climbing
// experiments of Sections 6/7.3 rely on.
//
// The paper uses 100 GB / 600 M rows; we generate a row-scaled table with
// identical schema and distributional structure (see DESIGN.md's
// substitution table).

#ifndef AQPP_WORKLOAD_TPCD_SKEW_H_
#define AQPP_WORKLOAD_TPCD_SKEW_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "storage/table.h"

namespace aqpp {

struct TpcdSkewOptions {
  size_t rows = 1'000'000;
  // Zipf exponent applied to the key columns (the benchmark's z).
  double skew = 2.0;
  uint64_t seed = 7;
};

// Column order:
//   l_orderkey, l_partkey, l_suppkey, l_linenumber, l_quantity, l_discount,
//   l_tax, l_shipdate, l_commitdate, l_receiptdate (INT64),
//   l_extendedprice (DOUBLE), l_returnflag, l_linestatus (STRING).
Result<std::shared_ptr<Table>> GenerateTpcdSkew(const TpcdSkewOptions& options);

// Schema-only accessor (column names in generation order).
Schema TpcdSkewSchema();

}  // namespace aqpp

#endif  // AQPP_WORKLOAD_TPCD_SKEW_H_
