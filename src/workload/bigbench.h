// BigBench / AMPLab Big Data Benchmark UserVisits synthetic dataset [1].
//
// Row-scaled substitute for the paper's 100 GB (752 M row) UserVisits table:
// identical schema spirit (sourceIP, visitDate, adRevenue, duration, ...)
// with skewed IP traffic, weekly/seasonal revenue cycles, and a
// duration–revenue correlation. Used by Figure 11(a).

#ifndef AQPP_WORKLOAD_BIGBENCH_H_
#define AQPP_WORKLOAD_BIGBENCH_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "storage/table.h"

namespace aqpp {

struct BigBenchOptions {
  size_t rows = 1'000'000;
  uint64_t seed = 11;
};

// Column order:
//   sourceIP, destURL, visitDate, duration, searchWord (INT64),
//   adRevenue (DOUBLE), countryCode, languageCode (STRING).
Result<std::shared_ptr<Table>> GenerateBigBench(const BigBenchOptions& options);

Schema BigBenchSchema();

}  // namespace aqpp

#endif  // AQPP_WORKLOAD_BIGBENCH_H_
