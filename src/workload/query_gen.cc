#include "workload/query_gen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace aqpp {

QueryGenerator::QueryGenerator(const Table* table, QueryTemplate tmpl,
                               QueryGenOptions options, uint64_t seed)
    : table_(table),
      template_(std::move(tmpl)),
      options_(options),
      rng_(seed) {
  AQPP_CHECK(table != nullptr);
  const size_t d = template_.condition_columns.size();
  sorted_values_.resize(d);
  calib_values_.resize(d);

  // Calibration subset: every ceil(N / calibration_rows)-th row (stride
  // sampling is unbiased enough for selectivity checks and deterministic).
  const size_t N = table_->num_rows();
  size_t stride = std::max<size_t>(1, N / std::max<size_t>(
                                           1, options_.calibration_rows));
  for (size_t i = 0; i < d; ++i) {
    const auto& data =
        table_->column(template_.condition_columns[i]).Int64Data();
    sorted_values_[i] = data;
    std::sort(sorted_values_[i].begin(), sorted_values_[i].end());
    auto& calib = calib_values_[i];
    calib.reserve(N / stride + 1);
    for (size_t r = 0; r < N; r += stride) calib.push_back(data[r]);
  }
  calib_rows_ = d == 0 ? 0 : calib_values_[0].size();
  for (size_t i = 0; i < d; ++i) {
    auto hist = EquiDepthHistogram::Build(*table_,
                                          template_.condition_columns[i]);
    AQPP_CHECK(hist.ok()) << hist.status();
    histograms_.push_back(std::move(*hist));
  }
}

double QueryGenerator::CalibrationSelectivity(
    const std::vector<RangeCondition>& conds) const {
  if (calib_rows_ == 0) return 1.0;
  size_t matches = 0;
  for (size_t r = 0; r < calib_rows_; ++r) {
    bool ok = true;
    for (size_t i = 0; i < conds.size(); ++i) {
      int64_t v = calib_values_[i][r];
      if (v < conds[i].lo || v > conds[i].hi) {
        ok = false;
        break;
      }
    }
    if (ok) ++matches;
  }
  return static_cast<double>(matches) / static_cast<double>(calib_rows_);
}

Result<RangeQuery> QueryGenerator::Generate() {
  const size_t d = template_.condition_columns.size();
  if (d == 0) return Status::FailedPrecondition("template has no conditions");

  RangeQuery best;
  double best_penalty = std::numeric_limits<double>::infinity();
  for (size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    // Target joint selectivity: log-uniform inside the band.
    double s = std::exp(std::log(options_.min_selectivity) +
                        rng_.NextDouble() *
                            (std::log(options_.max_selectivity) -
                             std::log(options_.min_selectivity)));
    // Split into per-dimension marginal fractions with random emphasis.
    std::vector<double> u(d);
    double u_sum = 0;
    for (double& x : u) {
      x = 0.3 + rng_.NextDouble();
      u_sum += x;
    }
    std::vector<RangeCondition> conds(d);
    for (size_t i = 0; i < d; ++i) {
      double f = std::pow(s, u[i] / u_sum);
      f = std::clamp(f, 1e-6, 1.0);
      const auto& sorted = sorted_values_[i];
      double start = rng_.NextDouble() * (1.0 - f);
      size_t lo_idx = static_cast<size_t>(
          start * static_cast<double>(sorted.size() - 1));
      size_t hi_idx = static_cast<size_t>(
          std::min(1.0, start + f) * static_cast<double>(sorted.size() - 1));
      conds[i].column = template_.condition_columns[i];
      conds[i].lo = sorted[lo_idx];
      conds[i].hi = std::max(sorted[lo_idx], sorted[hi_idx]);
    }
    // Histogram pre-filter: product of per-dimension marginal estimates
    // (independence assumption). Only clearly hopeless draws are skipped —
    // the exact check below still gates acceptance.
    double hist_sel = 1.0;
    for (size_t i = 0; i < d; ++i) {
      hist_sel *= histograms_[i].EstimateSelectivity(conds[i].lo, conds[i].hi);
    }
    if (hist_sel > options_.max_selectivity * 20 ||
        hist_sel < options_.min_selectivity / 20) {
      continue;
    }
    double sel = CalibrationSelectivity(conds);
    if (sel >= options_.min_selectivity && sel <= options_.max_selectivity) {
      RangeQuery q;
      q.func = template_.func;
      q.agg_column = template_.agg_column;
      q.predicate = RangePredicate(std::move(conds));
      q.group_by = template_.group_columns;
      return q;
    }
    // Track the least-bad draw as a fallback.
    double penalty =
        sel < options_.min_selectivity
            ? std::log(options_.min_selectivity / std::max(sel, 1e-9))
            : std::log(sel / options_.max_selectivity);
    if (penalty < best_penalty) {
      best_penalty = penalty;
      best.func = template_.func;
      best.agg_column = template_.agg_column;
      best.predicate = RangePredicate(conds);
      best.group_by = template_.group_columns;
    }
  }
  if (best.predicate.size() != d) {
    return Status::Internal("query generation failed to produce a candidate");
  }
  return best;
}

Result<std::vector<RangeQuery>> QueryGenerator::GenerateMany(size_t count) {
  std::vector<RangeQuery> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    AQPP_ASSIGN_OR_RETURN(auto q, Generate());
    out.push_back(std::move(q));
  }
  return out;
}

const char* AdversarialDistributionName(AdversarialDistribution d) {
  switch (d) {
    case AdversarialDistribution::kParetoHeavyTail:
      return "pareto";
    case AdversarialDistribution::kLognormalHeavyTail:
      return "lognormal";
    case AdversarialDistribution::kDuplicateHeavy:
      return "duplicate_heavy";
    case AdversarialDistribution::kCorrelatedPredicates:
      return "correlated";
  }
  return "?";
}

std::vector<AdversarialDistribution> AllAdversarialDistributions() {
  return {AdversarialDistribution::kParetoHeavyTail,
          AdversarialDistribution::kLognormalHeavyTail,
          AdversarialDistribution::kDuplicateHeavy,
          AdversarialDistribution::kCorrelatedPredicates};
}

std::shared_ptr<Table> MakeAdversarialTable(
    const AdversarialTableOptions& opt) {
  Schema schema({{"c1", DataType::kInt64},
                 {"c2", DataType::kInt64},
                 {"a", DataType::kDouble}});
  auto table = std::make_shared<Table>(schema);
  table->Reserve(opt.rows);
  Rng rng(opt.seed);
  auto& c1 = table->mutable_column(0).MutableInt64Data();
  auto& c2 = table->mutable_column(1).MutableInt64Data();
  auto& a = table->mutable_column(2).MutableDoubleData();
  for (size_t i = 0; i < opt.rows; ++i) {
    int64_t v1 = rng.NextInt(1, opt.dom1);
    int64_t v2 = rng.NextInt(1, opt.dom2);
    double x = 0;
    switch (opt.distribution) {
      case AdversarialDistribution::kParetoHeavyTail: {
        // Inverse-CDF Pareto with x_m = 1: u in (0, 1], x = u^(-1/alpha).
        double u = 1.0 - rng.NextDouble();
        x = std::pow(u, -1.0 / 2.5);
        break;
      }
      case AdversarialDistribution::kLognormalHeavyTail:
        x = std::exp(1.5 * rng.NextGaussian());
        break;
      case AdversarialDistribution::kDuplicateHeavy:
        // 90% of rows carry one value; the remainder scatter two orders of
        // magnitude away, so small samples often see zero variance.
        x = rng.NextDouble() < 0.9 ? 10.0
                                   : 1000.0 + 50.0 * rng.NextGaussian();
        break;
      case AdversarialDistribution::kCorrelatedPredicates: {
        // c2 tracks c1 (scaled, with a small jitter) and the measure's scale
        // ramps with c1 — joint selectivity and per-range variance both
        // violate the independent-marginals picture.
        double frac =
            static_cast<double>(v1) / static_cast<double>(opt.dom1);
        int64_t tracked =
            1 + static_cast<int64_t>(frac * static_cast<double>(opt.dom2 - 1));
        int64_t jitter = rng.NextInt(-2, 2);
        v2 = std::min(opt.dom2, std::max<int64_t>(1, tracked + jitter));
        x = 100.0 * frac + (1.0 + 20.0 * frac) * rng.NextGaussian();
        break;
      }
    }
    c1.push_back(v1);
    c2.push_back(v2);
    a.push_back(x);
  }
  table->SetRowCountFromColumns();
  return table;
}

}  // namespace aqpp
