#include "workload/tpcd_skew.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "stats/distributions.h"

namespace aqpp {

namespace {

// TPC-H date horizon: 1992-01-01 .. 1998-12-31 as day ordinals 1..2557.
constexpr int64_t kMaxDay = 2557;
// TPC-H "current date" (1995-06-17) used by the returnflag/linestatus rules.
constexpr int64_t kCurrentDay = 1264;

}  // namespace

Schema TpcdSkewSchema() {
  return Schema({
      {"l_orderkey", DataType::kInt64},
      {"l_partkey", DataType::kInt64},
      {"l_suppkey", DataType::kInt64},
      {"l_linenumber", DataType::kInt64},
      {"l_quantity", DataType::kInt64},
      {"l_discount", DataType::kInt64},
      {"l_tax", DataType::kInt64},
      {"l_shipdate", DataType::kInt64},
      {"l_commitdate", DataType::kInt64},
      {"l_receiptdate", DataType::kInt64},
      {"l_extendedprice", DataType::kDouble},
      {"l_returnflag", DataType::kString},
      {"l_linestatus", DataType::kString},
  });
}

Result<std::shared_ptr<Table>> GenerateTpcdSkew(
    const TpcdSkewOptions& options) {
  if (options.rows == 0) return Status::InvalidArgument("rows must be > 0");
  Rng rng(options.seed);

  const size_t n = options.rows;
  const int64_t orderkey_card =
      std::max<int64_t>(1000, static_cast<int64_t>(n / 4));
  const int64_t partkey_card =
      std::max<int64_t>(500, static_cast<int64_t>(n / 5));
  const int64_t suppkey_card =
      std::max<int64_t>(100, static_cast<int64_t>(n / 200));

  ZipfDistribution order_zipf(orderkey_card, options.skew);
  ZipfDistribution part_zipf(partkey_card, options.skew);
  ZipfDistribution supp_zipf(suppkey_card, options.skew);

  auto table = std::make_shared<Table>(TpcdSkewSchema());
  table->Reserve(n);
  auto& orderkey = table->mutable_column(0).MutableInt64Data();
  auto& partkey = table->mutable_column(1).MutableInt64Data();
  auto& suppkey = table->mutable_column(2).MutableInt64Data();
  auto& linenumber = table->mutable_column(3).MutableInt64Data();
  auto& quantity = table->mutable_column(4).MutableInt64Data();
  auto& discount = table->mutable_column(5).MutableInt64Data();
  auto& tax = table->mutable_column(6).MutableInt64Data();
  auto& shipdate = table->mutable_column(7).MutableInt64Data();
  auto& commitdate = table->mutable_column(8).MutableInt64Data();
  auto& receiptdate = table->mutable_column(9).MutableInt64Data();
  auto& price = table->mutable_column(10).MutableDoubleData();
  Column& returnflag = table->mutable_column(11);
  Column& linestatus = table->mutable_column(12);

  for (size_t i = 0; i < n; ++i) {
    int64_t okey = order_zipf.Sample(rng);
    int64_t pkey = part_zipf.Sample(rng);
    int64_t skey = supp_zipf.Sample(rng);
    int64_t ship = rng.NextInt(1, kMaxDay - 35);
    int64_t commit = std::clamp<int64_t>(
        ship + static_cast<int64_t>(std::llround(rng.NextGaussian() * 12.0)),
        1, kMaxDay);
    int64_t receipt = std::clamp<int64_t>(ship + rng.NextInt(1, 30), 1,
                                          kMaxDay);
    int64_t qty = rng.NextInt(1, 50);

    // Unit price: part-keyed base with a seasonal + trend modulation on the
    // ship date plus heteroscedastic noise that grows over time. This makes
    // Var(l_extendedprice | date segment) non-uniform, i.e. the data is
    // exactly the Figure 4(b) regime where equal partitioning is suboptimal.
    double base = 900.0 + static_cast<double>(pkey % 2000) * 0.05 +
                  static_cast<double>(qty) * 10.0;
    double phase = 2.0 * M_PI * static_cast<double>(ship % 365) / 365.0;
    double seasonal = 1.0 + 0.35 * std::sin(phase);
    double trend =
        1.0 + 0.8 * static_cast<double>(ship) / static_cast<double>(kMaxDay);
    double noise_scale =
        0.05 + 0.45 * static_cast<double>(ship) / static_cast<double>(kMaxDay);
    double noise = 1.0 + noise_scale * rng.NextGaussian();
    double extended = std::max(1.0, base * seasonal * trend * noise);

    orderkey.push_back(okey);
    partkey.push_back(pkey);
    suppkey.push_back(skey);
    linenumber.push_back(rng.NextInt(1, 7));
    quantity.push_back(qty);
    discount.push_back(rng.NextInt(0, 10));
    tax.push_back(rng.NextInt(0, 8));
    shipdate.push_back(ship);
    commitdate.push_back(commit);
    receiptdate.push_back(receipt);
    price.push_back(extended);

    // TPC-H case rules: rows received by the "current date" were returned
    // or accepted; later rows are 'N'. Line status flips on the ship date.
    // The combination <N, F> needs ship <= current < receipt, which only
    // happens in a ~30-day window — the naturally tiny group of Fig. 10(b).
    if (receipt <= kCurrentDay) {
      returnflag.AppendString(rng.NextBernoulli(0.5) ? "R" : "A");
    } else {
      returnflag.AppendString("N");
    }
    linestatus.AppendString(ship > kCurrentDay ? "O" : "F");
  }
  table->SetRowCountFromColumns();
  table->FinalizeDictionaries();
  return table;
}

}  // namespace aqpp
