// NYC TLC yellow-cab trip synthetic dataset [2].
//
// Row-scaled substitute for the paper's 200 GB / 1.4 B row 2009-2016 yellow
// cab extract, used by Figure 11(b). Reproduces the marginals and
// correlations that matter for the experiment: daily/seasonal demand cycles,
// rush-hour pickup times, fare ~ distance structure with rate-code effects,
// zero-inflated tips, and ten heterogeneous condition attributes.

#ifndef AQPP_WORKLOAD_TLCTRIP_H_
#define AQPP_WORKLOAD_TLCTRIP_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "storage/table.h"

namespace aqpp {

struct TlcTripOptions {
  size_t rows = 1'000'000;
  uint64_t seed = 13;
};

// Column order:
//   Pickup_Date, Pickup_Time, Passenger_Count, Rate_Code, Fare_Amt,
//   surcharge, Tip_Amt, Dropoff_Date, Dropoff_Time (INT64; money in cents,
//   time in minutes, dates in day ordinals 1..2922 for 2009-2016),
//   Trip_Distance (DOUBLE, the measure), vendor_name (STRING).
Result<std::shared_ptr<Table>> GenerateTlcTrip(const TlcTripOptions& options);

Schema TlcTripSchema();

}  // namespace aqpp

#endif  // AQPP_WORKLOAD_TLCTRIP_H_
