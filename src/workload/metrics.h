// Workload evaluation helpers: run a query set through any engine, compare
// against exact answers, and summarize with the paper's error metrics
// (relative error = CI half-width / true answer; Section 7.1).

#ifndef AQPP_WORKLOAD_METRICS_H_
#define AQPP_WORKLOAD_METRICS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "exec/executor.h"
#include "expr/query.h"

namespace aqpp {

struct WorkloadSummary {
  size_t queries_run = 0;
  size_t queries_skipped = 0;  // true answer ~ 0 (relative error undefined)
  double avg_relative_error = 0.0;
  double median_relative_error = 0.0;
  double p95_relative_error = 0.0;
  double max_relative_error = 0.0;
  double avg_response_seconds = 0.0;
  double max_response_seconds = 0.0;
  // Fraction of queries whose CI contained the truth (should track the
  // confidence level).
  double coverage = 0.0;
  std::vector<double> relative_errors;

  std::string ToString() const;
};

using EngineFn = std::function<Result<ApproximateResult>(const RangeQuery&)>;

// Runs `queries` through `engine_fn`, computing truth with `executor`.
// Queries whose |truth| < `zero_epsilon` are skipped (the paper's relative
// error is undefined there).
Result<WorkloadSummary> RunWorkload(const std::vector<RangeQuery>& queries,
                                    const EngineFn& engine_fn,
                                    const ExactExecutor& executor,
                                    double zero_epsilon = 1e-9);

// Variant with precomputed truths (avoids rescanning when several engines
// are compared on the same query set).
Result<WorkloadSummary> RunWorkloadWithTruth(
    const std::vector<RangeQuery>& queries, const std::vector<double>& truths,
    const EngineFn& engine_fn, double zero_epsilon = 1e-9);

// Exact answers for a query set.
Result<std::vector<double>> ComputeTruths(const std::vector<RangeQuery>& queries,
                                          const ExactExecutor& executor);

}  // namespace aqpp

#endif  // AQPP_WORKLOAD_METRICS_H_
