// Selectivity-controlled random range-query generation.
//
// Every experiment in Section 7 uses "1000 randomly generated queries with
// selectivity between 0.5% and 5%". The generator draws per-dimension ranges
// from the empirical marginals so the *joint* selectivity lands in the
// target band, verifying each draw against a fixed calibration subset and
// retrying when dependence pushes it out of band.

#ifndef AQPP_WORKLOAD_QUERY_GEN_H_
#define AQPP_WORKLOAD_QUERY_GEN_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/engine.h"
#include "expr/query.h"
#include "stats/histogram.h"
#include "storage/table.h"

namespace aqpp {

struct QueryGenOptions {
  double min_selectivity = 0.005;
  double max_selectivity = 0.05;
  size_t max_attempts = 40;
  // Rows used to verify a draw's selectivity (a fixed uniform subset).
  size_t calibration_rows = 50'000;
};

// ---- Adversarial data generation --------------------------------------------
//
// Synthetic tables engineered to stress estimator assumptions: CLT-defying
// heavy tails, near-degenerate duplicate mass, and predicate columns whose
// dependence breaks independence-assumption selectivity reasoning. The
// statistical-correctness battery (tests/coverage_test.cc) runs every
// registered synopsis against each of these; a synopsis whose CIs only hold
// on friendly Gaussian data fails there.

enum class AdversarialDistribution {
  // Pareto(alpha = 2.5) measure: finite variance, but the third moment is
  // enormous — bootstrap and skew-adjusted CIs must stretch to cover.
  kParetoHeavyTail,
  // Lognormal(mu = 0, sigma = 1.5): moderate-looking body, extreme upper
  // tail; the classic AQP hard case.
  kLognormalHeavyTail,
  // 90% of measures share one value, the rest scatter far from it — near-zero
  // sample variance until a rare row lands in the sample.
  kDuplicateHeavy,
  // c2 is a noisy copy of c1 and the measure scale ramps with c1: joint
  // selectivities and per-range variances are far from the independent case.
  kCorrelatedPredicates,
};

const char* AdversarialDistributionName(AdversarialDistribution d);
std::vector<AdversarialDistribution> AllAdversarialDistributions();

struct AdversarialTableOptions {
  AdversarialDistribution distribution =
      AdversarialDistribution::kParetoHeavyTail;
  size_t rows = 2000;
  // Domain sizes of the two condition columns c1, c2.
  int64_t dom1 = 100;
  int64_t dom2 = 50;
  uint64_t seed = 7;
};

// Schema: c1 INT64, c2 INT64, a DOUBLE (the suite's standard shape).
std::shared_ptr<Table> MakeAdversarialTable(const AdversarialTableOptions& opt);

class QueryGenerator {
 public:
  // `table` must outlive the generator.
  QueryGenerator(const Table* table, QueryTemplate tmpl,
                 QueryGenOptions options, uint64_t seed);

  // One random query from the template (group-by columns of the template are
  // copied into the query's group_by list).
  Result<RangeQuery> Generate();

  Result<std::vector<RangeQuery>> GenerateMany(size_t count);

  const QueryTemplate& query_template() const { return template_; }

 private:
  // Estimated selectivity of `conds` on the calibration subset.
  double CalibrationSelectivity(const std::vector<RangeCondition>& conds) const;

  const Table* table_;
  QueryTemplate template_;
  QueryGenOptions options_;
  Rng rng_;
  // Per condition dimension: sorted column values (with duplicates) for
  // empirical-quantile range construction.
  std::vector<std::vector<int64_t>> sorted_values_;
  // Calibration subset: per condition dimension, the subset's column values.
  std::vector<std::vector<int64_t>> calib_values_;
  size_t calib_rows_ = 0;
  // Per-dimension equi-depth histograms: a cheap independence-assumption
  // selectivity pre-filter that rejects clearly out-of-band draws before
  // the exact calibration count.
  std::vector<EquiDepthHistogram> histograms_;
};

}  // namespace aqpp

#endif  // AQPP_WORKLOAD_QUERY_GEN_H_
