#include "core/advisor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace aqpp {

PrecomputeAdvisor::PrecomputeAdvisor(const Table* sample_table,
                                     size_t population_size,
                                     ShapeOptions options)
    : sample_table_(sample_table),
      population_size_(population_size),
      options_(options) {
  AQPP_CHECK(sample_table != nullptr);
}

Result<std::vector<BudgetPrediction>> PrecomputeAdvisor::PredictErrorCurve(
    size_t measure_column, const std::vector<size_t>& condition_columns,
    const std::vector<size_t>& budgets) const {
  if (condition_columns.empty()) {
    return Status::InvalidArgument("no condition columns");
  }
  if (budgets.empty()) return Status::InvalidArgument("no budgets");
  ShapeOptimizer shaper(sample_table_, measure_column, population_size_,
                        options_);

  std::vector<BudgetPrediction> out;
  for (size_t k : budgets) {
    if (k == 0) return Status::InvalidArgument("budget must be > 0");
    AQPP_ASSIGN_OR_RETURN(auto shape,
                          shaper.DetermineShape(condition_columns, k));
    BudgetPrediction prediction;
    prediction.budget = k;
    prediction.shape = shape.shape;
    // Predicted error: the max over dimensions of the fitted c_i / sqrt(k_i)
    // (a balanced shape equalizes them; clamping can leave one dominant).
    double err = 0;
    for (size_t i = 0; i < shape.shape.size(); ++i) {
      double c = i < shape.fitted_coefficients.size()
                     ? shape.fitted_coefficients[i]
                     : 0.0;
      if (c <= 0) continue;
      err = std::max(err,
                     c / std::sqrt(static_cast<double>(shape.shape[i])));
    }
    prediction.predicted_error = err;
    out.push_back(std::move(prediction));
  }
  return out;
}

Result<size_t> PrecomputeAdvisor::BudgetForError(
    size_t measure_column, const std::vector<size_t>& condition_columns,
    double target_error, size_t max_budget) const {
  if (target_error <= 0) {
    return Status::InvalidArgument("target error must be > 0");
  }
  // Geometric search over budgets; the predicted error is monotone
  // non-increasing in k, so the first budget at or below target wins.
  size_t last_feasible = 0;
  double last_error = std::numeric_limits<double>::infinity();
  for (size_t k = 2; k <= max_budget; k *= 2) {
    AQPP_ASSIGN_OR_RETURN(
        auto curve,
        PredictErrorCurve(measure_column, condition_columns, {k}));
    last_error = curve[0].predicted_error;
    if (last_error <= target_error) {
      last_feasible = k;
      break;
    }
    // Saturated (shape clamped at feasibility caps): growing k further
    // cannot help.
    double cells = 1;
    for (size_t s : curve[0].shape) cells *= static_cast<double>(s);
    if (cells * 4 < static_cast<double>(k)) break;
  }
  if (last_feasible == 0) {
    return Status::OutOfRange(
        "target error unreachable within the budget cap (profile floor " +
        std::to_string(last_error) + ")");
  }
  // Refine downward by bisection between last_feasible/2 and last_feasible.
  size_t lo = std::max<size_t>(2, last_feasible / 2);
  size_t hi = last_feasible;
  while (lo + 1 < hi) {
    size_t mid = lo + (hi - lo) / 2;
    AQPP_ASSIGN_OR_RETURN(
        auto curve,
        PredictErrorCurve(measure_column, condition_columns, {mid}));
    if (curve[0].predicted_error <= target_error) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace aqpp
