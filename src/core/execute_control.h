// Per-call execution control shared by the engines and the synopsis layer.
//
// Lives in its own header (rather than core/engine.h) so Synopsis
// implementations can take an ExecuteControl without depending on the
// engine's headers — the struct is pure data plus borrowed pointers.

#ifndef AQPP_CORE_EXECUTE_CONTROL_H_
#define AQPP_CORE_EXECUTE_CONTROL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/cancellation.h"
#include "obs/trace.h"

namespace aqpp {

// Per-call execution control for service-style callers.
//
// `cancel` is polled cooperatively at phase boundaries (request entry,
// before identification, between identification and estimation) — a stopped
// call returns Status::Cancelled / DeadlineExceeded instead of a result.
//
// When `seed` is set the call draws from a private RNG seeded by it instead
// of consuming the engine's session RNG. That makes the call a pure
// function of (prepared state, query, seed) — required both for concurrent
// Execute calls from service workers (the session RNG is not thread-safe)
// and for the service result cache's bit-identical-replay guarantee.
//
// `record` = false skips the engine-level query log; service sessions keep
// their own per-session logs instead.
//
// `trace`, when non-null, collects the query's per-phase spans
// (identification, scoring, cube probe, sample estimation, CI construction)
// — threaded through the pipeline the same way `cancel` is. The trace is
// owned by the caller and must outlive the call; it is single-threaded, so
// each concurrent Execute needs its own.
struct ExecuteControl {
  const CancellationToken* cancel = nullptr;
  std::optional<uint64_t> seed;
  bool record = true;
  obs::QueryTrace* trace = nullptr;
  // Precomputed sample-side query mask: one byte per sample row, 1 iff the
  // row passes the query's predicate — exactly what SampleEstimator::Mask
  // returns. When set, the engine uses it instead of running its own mask
  // pass; everything downstream is untouched, so the result is bit-identical
  // to the unset case. This is the seam the batched service path uses to
  // evaluate all batch members' sample masks in one fused scan. Must outlive
  // the call. Ignored by the MIN/MAX extrema path (no sample involved).
  const std::vector<uint8_t>* query_mask = nullptr;
};

}  // namespace aqpp

#endif  // AQPP_CORE_EXECUTE_CONTROL_H_
