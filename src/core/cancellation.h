// Cooperative cancellation for engine execution.
//
// A CancellationToken is shared between a request owner (the service layer)
// and the worker executing it. The worker polls ShouldStop() at phase
// boundaries — never mid-scan, so a poll costs one atomic load plus one
// clock read — and bails out with Status::Cancelled / DeadlineExceeded.
// The owner may Cancel() at any time from any thread, and/or attach a
// deadline at construction so long-running queries time out without the
// owner doing anything.

#ifndef AQPP_CORE_CANCELLATION_H_
#define AQPP_CORE_CANCELLATION_H_

#include <atomic>

#include "common/clock.h"
#include "common/status.h"

namespace aqpp {

class CancellationToken {
 public:
  CancellationToken() = default;
  explicit CancellationToken(Deadline deadline) : deadline_(deadline) {}

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  bool expired() const { return deadline_.expired(); }
  bool ShouldStop() const { return cancelled() || expired(); }

  // The status a cooperative check should return; call only when
  // ShouldStop() is true.
  Status StopStatus() const {
    if (cancelled()) return Status::Cancelled("query cancelled");
    return Status::DeadlineExceeded("query deadline expired");
  }

  const Deadline& deadline() const { return deadline_; }

 private:
  std::atomic<bool> cancelled_{false};
  Deadline deadline_;
};

// Polls `token` (which may be null) and propagates the stop status.
#define AQPP_RETURN_IF_STOPPED(token)                          \
  do {                                                         \
    if ((token) != nullptr && (token)->ShouldStop())           \
      return (token)->StopStatus();                            \
  } while (0)

}  // namespace aqpp

#endif  // AQPP_CORE_CANCELLATION_H_
