#include "core/multi_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"
#include "sampling/samplers.h"

namespace aqpp {

Result<std::unique_ptr<MultiTemplateEngine>> MultiTemplateEngine::Create(
    std::shared_ptr<Table> table, MultiEngineOptions options) {
  if (table == nullptr || table->num_rows() == 0) {
    return Status::InvalidArgument("table must be non-empty");
  }
  if (options.sample_rate <= 0 || options.sample_rate > 1) {
    return Status::InvalidArgument("sample_rate must be in (0, 1]");
  }
  if (options.total_cube_budget == 0) {
    return Status::InvalidArgument("total_cube_budget must be > 0");
  }
  return std::unique_ptr<MultiTemplateEngine>(
      new MultiTemplateEngine(std::move(table), std::move(options)));
}

Status MultiTemplateEngine::Prepare(
    const std::vector<QueryTemplate>& templates) {
  if (templates.empty()) {
    return Status::InvalidArgument("no templates given");
  }
  for (const auto& t : templates) {
    if (t.condition_columns.empty()) {
      return Status::InvalidArgument("template without condition columns");
    }
    if (!t.group_columns.empty()) {
      return Status::Unimplemented(
          "multi-template sessions currently cover scalar templates");
    }
  }
  if (!has_sample_) {
    AQPP_ASSIGN_OR_RETURN(
        sample_, CreateUniformSample(*table_, options_.sample_rate, rng_));
    has_sample_ = true;
    measure_cache_ = std::make_unique<MeasureCache>(sample_.rows.get());
  }

  // Error-equalizing budget split (Appendix C).
  std::vector<TemplateSpec> specs;
  for (const auto& t : templates) {
    specs.push_back({t.agg_column, t.condition_columns});
  }
  MultiTemplateAllocator allocator(sample_.rows.get(),
                                   sample_.population_size, options_.shape);
  AQPP_ASSIGN_OR_RETURN(auto allocation,
                        allocator.Allocate(specs,
                                           options_.total_cube_budget));

  prepared_.clear();
  for (size_t t = 0; t < templates.size(); ++t) {
    PreparedTemplate prep;
    prep.tmpl = templates[t];
    prep.budget = allocation.budgets[t];
    PrecomputeOptions popts;
    popts.shape = options_.shape;
    Precomputer precomputer(table_.get(), &sample_, templates[t].agg_column,
                            popts);
    AQPP_ASSIGN_OR_RETURN(
        auto pre, precomputer.Precompute(templates[t].condition_columns,
                                         std::max<size_t>(1, prep.budget)));
    prep.cube = pre.cube;
    IdentificationOptions iopts = options_.identification;
    iopts.confidence_level = options_.confidence_level;
    prep.identifier = std::make_unique<AggregateIdentifier>(
        prep.cube.get(), &sample_, iopts, rng_);

    // Per-template synopsis selection: the explicit override wins, else the
    // session default; "" keeps the legacy estimator.
    std::string kind = options_.default_synopsis;
    if (t < options_.synopsis_per_template.size() &&
        !options_.synopsis_per_template[t].empty()) {
      kind = options_.synopsis_per_template[t];
    }
    if (!kind.empty() && kind != "off") {
      synopsis::SynopsisOptions sopts;
      sopts.confidence_level = options_.confidence_level;
      sopts.bootstrap_resamples = options_.bootstrap_resamples;
      sopts.sample_rate = options_.sample_rate;
      sopts.seed = options_.seed;
      sopts.key_columns = templates[t].condition_columns;
      sopts.measure_column = templates[t].agg_column;
      AQPP_ASSIGN_OR_RETURN(auto syn, synopsis::CreateSynopsis(kind, sopts));
      Status adopted = syn->BuildFromSample(sample_);
      if (adopted.code() == StatusCode::kUnimplemented) {
        AQPP_RETURN_NOT_OK(syn->BuildFromTable(*table_));
      } else if (!adopted.ok()) {
        return adopted;
      }
      prep.synopsis = std::move(syn);
    }
    prepared_.push_back(std::move(prep));
  }
  return Status::OK();
}

int MultiTemplateEngine::RouteFor(const RangeQuery& query) const {
  // Condition columns referenced by the query.
  std::vector<size_t> query_cols;
  for (const auto& c : query.predicate.conditions()) {
    if (std::find(query_cols.begin(), query_cols.end(), c.column) ==
        query_cols.end()) {
      query_cols.push_back(c.column);
    }
  }
  if (query_cols.empty() || prepared_.empty()) return -1;

  int best = -1;
  // Score: covered columns minus a small penalty for unused cube dimensions
  // (wider cubes dilute the per-dimension budget); require the measure to
  // match and at least one covered column.
  double best_score = 0;
  for (size_t t = 0; t < prepared_.size(); ++t) {
    const auto& tmpl = prepared_[t].tmpl;
    if (tmpl.agg_column != query.agg_column) continue;
    size_t covered = 0;
    for (size_t qc : query_cols) {
      if (std::find(tmpl.condition_columns.begin(),
                    tmpl.condition_columns.end(),
                    qc) != tmpl.condition_columns.end()) {
        ++covered;
      }
    }
    if (covered == 0) continue;
    double score = static_cast<double>(covered) -
                   0.25 * static_cast<double>(tmpl.condition_columns.size() -
                                              covered);
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(t);
    }
  }
  return best;
}

Result<ApproximateResult> MultiTemplateEngine::Execute(
    const RangeQuery& query) {
  return Execute(query, ExecuteControl{});
}

Result<ApproximateResult> MultiTemplateEngine::Execute(
    const RangeQuery& query, const ExecuteControl& control) {
  if (!query.group_by.empty()) {
    return Status::Unimplemented(
        "multi-template sessions currently cover scalar queries");
  }
  if (!has_sample_) {
    return Status::FailedPrecondition("call Prepare() first");
  }
  AQPP_RETURN_IF_STOPPED(control.cancel);
  Rng local_rng(control.seed.value_or(0));
  Rng& rng = control.seed.has_value() ? local_rng : rng_;
  SampleEstimator estimator(
      &sample_, {.confidence_level = options_.confidence_level,
                 .bootstrap_resamples = options_.bootstrap_resamples});
  if (measure_cache_ != nullptr) {
    estimator.set_measure_cache(measure_cache_.get());
  }
  estimator.set_trace(control.trace);
  ApproximateResult out;
  int route = RouteFor(query);
  if (route < 0) {
    Timer timer;
    obs::SpanTimer est_span(obs::Phase::kSampleEstimation, control.trace);
    AQPP_ASSIGN_OR_RETURN(out.ci, estimator.EstimateDirect(query, rng));
    est_span.Stop();
    out.estimation_seconds = timer.ElapsedSeconds();
    return out;
  }
  PreparedTemplate& prep = prepared_[static_cast<size_t>(route)];
  Timer ident_timer;
  obs::SpanTimer ident_span(obs::Phase::kIdentification, control.trace);
  AQPP_ASSIGN_OR_RETURN(auto identified,
                        prep.identifier->Identify(query, rng, control.trace));
  ident_span.Stop();
  out.identification_seconds = ident_timer.ElapsedSeconds();
  out.candidates_considered = identified.num_candidates;
  AQPP_RETURN_IF_STOPPED(control.cancel);

  // Mask reuse as in AqppEngine::Execute: one query-mask evaluation, pre
  // mask from the identifier's cell-id matrix.
  Timer est_timer;
  obs::SpanTimer est_span(obs::Phase::kSampleEstimation, control.trace);
  AQPP_ASSIGN_OR_RETURN(auto q_mask, estimator.Mask(query.predicate));
  if (prep.synopsis != nullptr) {
    // Synopsis arm: the template's synopsis answers both the direct and the
    // difference estimate (mirrors AqppEngine::ExecuteWithSynopsis).
    const synopsis::Synopsis& syn = *prep.synopsis;
    if (identified.pre.IsEmpty()) {
      AQPP_ASSIGN_OR_RETURN(out.ci, syn.Estimate(query, control, rng));
      out.pre_description = "phi";
    } else {
      Result<ConfidenceInterval> ci = Status::Internal("unset");
      if (syn.engine_aligned()) {
        std::vector<uint8_t> pre_mask =
            prep.identifier->PreMaskOnSample(identified.pre);
        ci = syn.EstimateWithPreMasked(query, q_mask, pre_mask,
                                       identified.values, control, rng);
      } else {
        ci = syn.EstimateWithPre(query,
                                 identified.pre.ToPredicate(prep.cube->scheme()),
                                 identified.values, control, rng);
      }
      if (ci.ok()) {
        out.ci = std::move(ci).value();
        out.used_pre = true;
        out.pre_description =
            identified.pre.ToString(prep.cube->scheme(), table_->schema());
      } else if (ci.status().code() == StatusCode::kUnimplemented) {
        AQPP_ASSIGN_OR_RETURN(out.ci, syn.Estimate(query, control, rng));
        out.pre_description = "phi (synopsis)";
      } else {
        return ci.status();
      }
    }
  } else if (identified.pre.IsEmpty()) {
    AQPP_ASSIGN_OR_RETURN(out.ci,
                          estimator.EstimateDirectMasked(query, q_mask, rng));
  } else {
    std::vector<uint8_t> pre_mask =
        prep.identifier->PreMaskOnSample(identified.pre);
    AQPP_ASSIGN_OR_RETURN(
        out.ci, estimator.EstimateWithPreMasked(query, q_mask, pre_mask,
                                                identified.values, rng));
    out.used_pre = true;
    out.pre_description =
        identified.pre.ToString(prep.cube->scheme(), table_->schema());
  }
  est_span.Stop();
  out.estimation_seconds = est_timer.ElapsedSeconds();
  return out;
}

}  // namespace aqpp
