#include "core/allocation.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace aqpp {

MultiTemplateAllocator::MultiTemplateAllocator(const Table* sample_table,
                                               size_t population_size,
                                               ShapeOptions options)
    : sample_table_(sample_table),
      population_size_(population_size),
      options_(options) {
  AQPP_CHECK(sample_table != nullptr);
}

Result<TemplateAllocation> MultiTemplateAllocator::Allocate(
    const std::vector<TemplateSpec>& specs, size_t total_budget) const {
  if (specs.empty()) return Status::InvalidArgument("no templates");
  if (total_budget < specs.size()) {
    return Status::InvalidArgument("budget smaller than one cell/template");
  }

  // Per-template profile fits (c_i per dimension) and feasibility caps.
  struct Model {
    std::vector<double> coefficients;  // c_i, zero entries dropped
    double k_cap = 1;                  // product of per-dim max cuts
  };
  std::vector<Model> models;
  for (const auto& spec : specs) {
    if (spec.condition_columns.empty()) {
      return Status::InvalidArgument("template without condition columns");
    }
    ShapeOptimizer shaper(sample_table_, spec.agg_column, population_size_,
                          options_);
    AQPP_ASSIGN_OR_RETURN(
        auto shape, shaper.DetermineShape(spec.condition_columns,
                                          total_budget));
    Model m;
    double cap = 1;
    for (size_t i = 0; i < spec.condition_columns.size(); ++i) {
      double c = i < shape.fitted_coefficients.size()
                     ? shape.fitted_coefficients[i]
                     : 0.0;
      if (c > 0) m.coefficients.push_back(c);
      AQPP_ASSIGN_OR_RETURN(auto distinct,
                            DistinctSorted(*sample_table_,
                                           spec.condition_columns[i]));
      cap *= std::max<double>(1.0, static_cast<double>(distinct.size()));
    }
    m.k_cap = cap;
    models.push_back(std::move(m));
  }

  // error_t(k) = (prod c_i^2 / k)^(1/(2 d_t)); invert to k_t(eps).
  auto budget_for = [&](const Model& m, double eps) -> double {
    if (m.coefficients.empty()) return 1.0;  // flat template: one cell
    double prod_c2 = 1;
    for (double c : m.coefficients) prod_c2 *= c * c;
    double d = static_cast<double>(m.coefficients.size());
    double k = prod_c2 / std::pow(eps, 2.0 * d);
    return std::clamp(k, 1.0, m.k_cap);
  };
  auto error_for = [&](const Model& m, double k) -> double {
    if (m.coefficients.empty()) return 0.0;
    double prod_c2 = 1;
    for (double c : m.coefficients) prod_c2 *= c * c;
    double d = static_cast<double>(m.coefficients.size());
    return std::pow(prod_c2 / std::max(1.0, k), 1.0 / (2.0 * d));
  };

  // Bisect the common error level so the budgets fill total_budget.
  double eps_hi = 0;
  for (const auto& m : models) {
    eps_hi = std::max(eps_hi, error_for(m, 1.0));
  }
  if (eps_hi <= 0) {
    // All templates flat: spread evenly.
    TemplateAllocation out;
    out.budgets.assign(specs.size(), total_budget / specs.size());
    out.predicted_errors.assign(specs.size(), 0.0);
    return out;
  }
  double eps_lo = eps_hi * 1e-9;
  std::vector<double> best(models.size(), 1.0);
  for (int iter = 0; iter < 80; ++iter) {
    double mid = std::sqrt(eps_lo * eps_hi);
    double total = 0;
    std::vector<double> ks(models.size());
    for (size_t t = 0; t < models.size(); ++t) {
      ks[t] = budget_for(models[t], mid);
      total += ks[t];
    }
    if (total <= static_cast<double>(total_budget)) {
      best = ks;
      eps_hi = mid;  // feasible; push for lower error
    } else {
      eps_lo = mid;
    }
  }

  TemplateAllocation out;
  for (size_t t = 0; t < models.size(); ++t) {
    out.budgets.push_back(
        std::max<size_t>(1, static_cast<size_t>(std::floor(best[t]))));
    out.predicted_errors.push_back(error_for(models[t], best[t]));
  }
  return out;
}

Result<SpaceSplit> SplitSpaceBudget(size_t total_bytes,
                                    size_t bytes_per_sample_row,
                                    size_t bytes_per_cell,
                                    double max_response_seconds,
                                    double sample_rows_per_second) {
  if (bytes_per_sample_row == 0 || bytes_per_cell == 0) {
    return Status::InvalidArgument("byte costs must be positive");
  }
  if (max_response_seconds <= 0 || sample_rows_per_second <= 0) {
    return Status::InvalidArgument("response budget must be positive");
  }
  // Largest sample whose estimation pass meets the response target.
  size_t response_cap = static_cast<size_t>(max_response_seconds *
                                            sample_rows_per_second);
  size_t affordable = total_bytes / bytes_per_sample_row;
  SpaceSplit split;
  split.sample_rows = std::min(response_cap, affordable);
  if (split.sample_rows == 0) {
    return Status::InvalidArgument(
        "budget cannot fit a single sample row within the response target");
  }
  size_t used = split.sample_rows * bytes_per_sample_row;
  split.cube_cells = (total_bytes - used) / bytes_per_cell;
  return split;
}

}  // namespace aqpp
