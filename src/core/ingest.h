// Streaming ingest: an in-memory delta of appended rows kept exactly, plus a
// background absorber that folds the delta into the engine's prepared state
// (cube + reservoir + active synopsis) through the maintainers' Absorb paths.
//
// The consistency model has two layers:
//
//  * The delta. `Append` stage-validates a batch (schema, dictionary
//    membership, cube-domain last-cut guard, finite doubles) and then commits
//    it by publishing a new immutable delta table — copy-on-write, so a
//    reader that snapshotted the previous delta keeps scanning a stable
//    table. Every commit bumps `committed_generation` and fires the commit
//    observer (the service registers cache invalidation there). Queries scan
//    the delta exactly and fold it into their answers (SUM/COUNT), so a
//    committed batch is visible to the very next query.
//
//  * The absorber. A background thread (or AbsorbNow in manual mode) takes a
//    delta snapshot, prepares *candidate* state outside any lock — a cloned
//    cube absorbed via CubeMaintainer, a deep-copied sample continued via
//    ReservoirMaintainer (Vitter's algorithm R), a serialized-clone of the
//    active synopsis absorbed via Synopsis::Absorb — and then publishes all
//    of them under one exclusive acquisition of `state_mutex()`, truncating
//    the absorbed delta prefix in the same critical section. Query execution
//    holds `state_mutex()` shared for its whole engine pass + delta fold, so
//    readers never observe a half-swapped engine, and a row is counted in
//    exactly one of {delta, published state}. Any failure before the publish
//    (including the injected ones below) discards the candidates and leaves
//    the prior generation readable bit-identically.
//
// Failpoints (compiled in with AQPP_ENABLE_FAILPOINTS):
//   ingest/append         batch rejected at the enqueue seam (nothing commits)
//   ingest/delta_fold     exact delta fold fails (query-side read seam)
//   ingest/absorb_commit  absorb cycle aborts while preparing candidates
//   ingest/swap           absorb cycle aborts at the publish point
//
// Known limitation: MIN/MAX extrema grids are not maintained — engines with
// `enable_extrema` answer MIN/MAX from base data only (docs/ingest.md).

#ifndef AQPP_CORE_INGEST_H_
#define AQPP_CORE_INGEST_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "core/engine.h"
#include "expr/query.h"
#include "storage/table.h"

namespace aqpp {

struct IngestOptions {
  // Delta rows beyond which the background absorber folds the delta into the
  // prepared state.
  size_t absorb_threshold_rows = 4096;
  // Periodic absorber wakeup (it also wakes on every threshold crossing).
  double absorb_interval_seconds = 0.25;
  // Appends are rejected (ResourceExhausted) while the delta holds this many
  // rows — backpressure when the absorber cannot keep up.
  size_t max_delta_rows = 1 << 20;
  // Largest accepted batch (protocol-level bound; oversized batches are
  // rejected before validation).
  size_t max_batch_rows = 1 << 16;
  // When false, no background thread runs and absorbs happen only through
  // AbsorbNow() — the deterministic-replay mode the soak fingerprint test
  // uses.
  bool background = true;
  // Seed for the reservoir continuation and synopsis absorb determinism.
  // Cycle seeds are derived from (seed, rows absorbed so far), so a failed
  // cycle retries with the same draw and equal schedules reproduce equal
  // state.
  uint64_t seed = 0x1234;
};

struct IngestSnapshot {
  // Bumped on every committed batch and every absorb publish; the freshness
  // token the wire reports as `generation=`.
  uint64_t committed_generation = 0;
  // Bumped once per successful absorb publish.
  uint64_t absorbed_generation = 0;
  uint64_t batches_committed = 0;
  uint64_t rows_committed = 0;
  uint64_t rows_absorbed = 0;
  uint64_t absorb_failures = 0;
  size_t delta_rows = 0;
  // Base-table rows + every committed row (what COUNT(*) should report).
  uint64_t total_rows = 0;
};

class IngestManager {
 public:
  // `engine` is borrowed and must outlive the manager; it must be prepared
  // (sample drawn) before ingest traffic. Call Start() to begin absorbing.
  IngestManager(AqppEngine* engine, IngestOptions options = {});
  ~IngestManager();

  IngestManager(const IngestManager&) = delete;
  IngestManager& operator=(const IngestManager&) = delete;

  // Spawns the background absorber (no-op when options.background is false).
  Status Start();
  // Stops the absorber thread; committed-but-unabsorbed delta rows stay
  // readable. Idempotent; the destructor calls it.
  void Stop();

  // Stage-validates `batch` and commits it to the delta. All-or-nothing: a
  // batch that fails any check (schema, unknown dictionary value, value past
  // a cube dimension's last cut, non-finite double, size/backpressure bound)
  // leaves no trace. Thread-safe.
  Status Append(const Table& batch);

  // Runs one absorb cycle synchronously (waits out a concurrent background
  // cycle). OK when the delta was empty.
  Status AbsorbNow();

  // Readers (query execution) hold this shared for engine pass + delta fold;
  // the absorber takes it exclusively only for the publish swap.
  std::shared_mutex& state_mutex() const { return state_mu_; }

  // Immutable snapshot of the current delta (never mutated after publish).
  std::shared_ptr<const Table> delta() const;

  IngestSnapshot snapshot() const;
  uint64_t generation() const;

  // Invoked after every delta commit and every absorb publish (outside the
  // locks). The service registers result-cache invalidation here.
  void set_commit_observer(std::function<void()> observer);

  // Exact aggregate of `query` over `delta` (row-at-a-time scan; the delta
  // is small by construction). SUM and COUNT only — the fold contract other
  // aggregates opt out of (they answer from published state until the
  // absorber catches up).
  static Result<double> FoldValue(const Table& delta, const RangeQuery& query);
  static bool FoldSupported(AggregateFunction func) {
    return func == AggregateFunction::kSum || func == AggregateFunction::kCount;
  }

 private:
  Status ValidateBatch(const Table& batch) const;
  // One absorb cycle: snapshot -> candidates -> exclusive publish.
  Status AbsorbCycle();
  void AbsorberLoop();
  void NotifyObserver();

  AqppEngine* engine_;
  IngestOptions options_;

  // Reader/absorber state lock (see header comment).
  mutable std::shared_mutex state_mu_;

  // Guards the delta pointer and the counters.
  mutable std::mutex delta_mu_;
  std::shared_ptr<const Table> delta_;
  uint64_t committed_generation_ = 0;
  uint64_t absorbed_generation_ = 0;
  uint64_t batches_committed_ = 0;
  uint64_t rows_committed_ = 0;
  uint64_t rows_absorbed_ = 0;
  uint64_t absorb_failures_ = 0;

  // Serializes absorb cycles (background thread vs AbsorbNow).
  std::mutex absorb_mu_;

  std::mutex observer_mu_;
  std::function<void()> observer_;

  std::mutex cv_mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool wake_ = false;
  std::thread absorber_;
};

}  // namespace aqpp

#endif  // AQPP_CORE_INGEST_H_
