// Aggregate identification (Problem 1, Section 5).
//
// Given a user query and a BP-Cube, pick the precomputed aggregate in P+
// that minimizes the query's confidence-interval width. Per Lemma 3 /
// Equation 7, only the 4^d + 1 candidates P- formed by the partition points
// bracketing each range endpoint need to be considered; each candidate is
// scored by estimating its CI on a cheap subsample (Section 5.2), and the
// winner is used for the final full-sample estimate.
//
// Scoring runs through the batched pipeline of core/scoring.h by default:
// the query mask and measure column are computed once per query, candidate
// pre-masks are derived from a precomputed cell-id matrix, and candidates
// are scored concurrently on the persistent thread pool. Every candidate's
// RNG is seeded purely from (query base seed, candidate box), so results
// are bit-identical regardless of thread count or schedule.

#ifndef AQPP_CORE_IDENTIFICATION_H_
#define AQPP_CORE_IDENTIFICATION_H_

#include <map>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "common/status.h"
#include "core/estimator.h"
#include "core/scoring.h"
#include "cube/partition.h"
#include "cube/prefix_cube.h"
#include "expr/query.h"
#include "obs/trace.h"
#include "sampling/sample.h"

namespace aqpp {

struct IdentificationOptions {
  // Subsampling rate for candidate scoring. <= 0 means "auto": min(1, 4/4^d)
  // scaled so the identification overhead stays below one full-sample pass
  // (the paper uses < 1/4^d).
  double subsample_rate = -1.0;
  double confidence_level = 0.95;
  // When true, score candidates on the full sample instead of a subsample
  // (exact error(q, pre); used by tests and the brute-force comparison).
  bool score_on_full_sample = false;
  // When |P-| = 4^d + 1 exceeds this, fall back to greedy per-dimension
  // bracket selection (O(4d) candidates instead of O(4^d), default keeps full enumeration
  // through d = 4); keeps
  // identification tractable at d ~ 10 (Figure 7's upper range).
  size_t max_enumerated_candidates = 320;
  // Score candidates through the batched single-pass pipeline (cell-id
  // matrix, shared query mask/measure, pooled parallel scoring). False
  // falls back to per-candidate predicate evaluation — the legacy reference
  // path kept for equivalence tests and ablation benchmarks. Both paths
  // produce bit-identical scores for the same seed.
  bool use_batched_scorer = true;
  // Thread pool for parallel candidate scoring; nullptr uses the
  // process-global pool. Tests inject fixed-size pools here to assert
  // schedule independence.
  ThreadPool* scoring_pool = nullptr;
};

struct IdentifiedAggregate {
  PreAggregate pre;
  // Exact cube values of the box (sum / count / sum of squares).
  PreValues values;
  // The subsample-estimated error that won the comparison.
  double scored_error = 0.0;
  // Candidate-set size actually scored (|P-| after dedup and memoization).
  size_t num_candidates = 0;
};

// One candidate with its subsample-estimated error (EXPLAIN output).
struct ScoredCandidate {
  PreAggregate pre;
  double scored_error = 0.0;
};

class AggregateIdentifier {
 public:
  // `cube` and `sample` must outlive the identifier. The subsample used for
  // scoring is drawn once at construction (it is query-independent), and the
  // cell-id matrices for both the scoring subsample and the full sample are
  // built here too.
  AggregateIdentifier(const PrefixCube* cube, const Sample* sample,
                      IdentificationOptions options, Rng& rng);

  // Enumerates the candidate set P- of Equation 7 for `query` (deduplicated;
  // phi always included). Conditions on columns that are not cube dimensions
  // are ignored for bracketing (the pre box never constrains them).
  std::vector<PreAggregate> EnumerateCandidates(const RangeQuery& query) const;

  // Full identification: enumerate P-, score each candidate's CI width on
  // the subsample, return the argmin. `trace`, when non-null, receives
  // kScoring spans around the batched scoring sweeps and one kCubeProbe
  // span around the winner's cube read; the matching global phase
  // histograms are observed either way.
  Result<IdentifiedAggregate> Identify(const RangeQuery& query, Rng& rng,
                                       obs::QueryTrace* trace = nullptr) const;

  // Scores the whole candidate set and returns it sorted best-first
  // (EXPLAIN support). Falls back to the greedy path's visited candidates
  // at high d.
  Result<std::vector<ScoredCandidate>> ScoreAll(const RangeQuery& query,
                                                Rng& rng) const;

  // Reference implementation for tests: scores *every* value in P+ on the
  // full sample (exponential in the cuts; only safe for tiny cubes).
  Result<IdentifiedAggregate> IdentifyBruteForce(const RangeQuery& query,
                                                 Rng& rng) const;

  // 0/1 mask of `pre` over the *full* estimation sample, derived from the
  // cached cell-id matrix. Lets the engine feed the identified box straight
  // into SampleEstimator::EstimateWithPreMasked without re-evaluating the
  // box predicate.
  std::vector<uint8_t> PreMaskOnSample(const PreAggregate& pre) const;

  const Sample& scoring_sample() const { return scoring_sample_; }

 private:
  // Memoized candidate scores within one query, keyed by (lo || hi).
  using ScoreMemo = std::map<std::vector<size_t>, double>;

  // Reads all measure planes of `pre` from the cube.
  PreValues ReadPreValues(const PreAggregate& pre) const;

  // CI half-width of `query` w.r.t. `pre` on the scoring sample — the
  // legacy per-candidate path (predicate re-evaluation, fresh vectors).
  Result<double> ScoreCandidate(const RangeQuery& query,
                                const PreAggregate& pre, Rng& rng) const;

  // Scores every candidate in `cands`, memoizing by box within the query
  // and scoring unmemoized boxes in parallel on the pool (batched path).
  // `ctx` is the prepared batched query context, or nullptr for the legacy
  // path. `memo` may be nullptr when the batch is known to be deduplicated
  // (skips the key/map machinery). Deterministic either way: each box's RNG
  // is seeded from (base_seed, box), so memo hits, dedup and scheduling can
  // never change a score.
  Result<std::vector<double>> ScoreBatch(
      const RangeQuery& query, const BatchCandidateScorer::QueryContext* ctx,
      const std::vector<PreAggregate>& cands, uint64_t base_seed,
      ScoreMemo* memo) const;

  // Per-dimension bracket candidates (the {l,h} pairs of Equation 7).
  void BracketQuery(const RangeQuery& query,
                    std::vector<std::vector<size_t>>* u_cands,
                    std::vector<std::vector<size_t>>* v_cands) const;

  // Greedy fallback for high d: fixes one dimension's bracket pair at a
  // time, scoring each option on the subsample (scores memoized per query).
  Result<IdentifiedAggregate> IdentifyGreedy(const RangeQuery& query, Rng& rng,
                                             obs::QueryTrace* trace) const;

  const PrefixCube* cube_;
  const Sample* sample_;
  IdentificationOptions options_;
  Sample scoring_sample_;
  // Batched scorer over the scoring subsample.
  std::unique_ptr<BatchCandidateScorer> scorer_;
  // Cell-id matrix over the full sample (for PreMaskOnSample). Points into
  // scorer_'s index when the scoring sample IS the full sample.
  std::unique_ptr<CellIndex> full_cells_owned_;
  const CellIndex* full_cells_ = nullptr;
};

}  // namespace aqpp

#endif  // AQPP_CORE_IDENTIFICATION_H_
