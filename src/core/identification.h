// Aggregate identification (Problem 1, Section 5).
//
// Given a user query and a BP-Cube, pick the precomputed aggregate in P+
// that minimizes the query's confidence-interval width. Per Lemma 3 /
// Equation 7, only the 4^d + 1 candidates P- formed by the partition points
// bracketing each range endpoint need to be considered; each candidate is
// scored by estimating its CI on a cheap subsample (Section 5.2), and the
// winner is used for the final full-sample estimate.

#ifndef AQPP_CORE_IDENTIFICATION_H_
#define AQPP_CORE_IDENTIFICATION_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/estimator.h"
#include "cube/partition.h"
#include "cube/prefix_cube.h"
#include "expr/query.h"
#include "sampling/sample.h"

namespace aqpp {

struct IdentificationOptions {
  // Subsampling rate for candidate scoring. <= 0 means "auto": min(1, 4/4^d)
  // scaled so the identification overhead stays below one full-sample pass
  // (the paper uses < 1/4^d).
  double subsample_rate = -1.0;
  double confidence_level = 0.95;
  // When true, score candidates on the full sample instead of a subsample
  // (exact error(q, pre); used by tests and the brute-force comparison).
  bool score_on_full_sample = false;
  // When |P-| = 4^d + 1 exceeds this, fall back to greedy per-dimension
  // bracket selection (O(4d) candidates instead of O(4^d), default keeps full enumeration
  // through d = 4); keeps
  // identification tractable at d ~ 10 (Figure 7's upper range).
  size_t max_enumerated_candidates = 320;
};

struct IdentifiedAggregate {
  PreAggregate pre;
  // Exact cube values of the box (sum / count / sum of squares).
  PreValues values;
  // The subsample-estimated error that won the comparison.
  double scored_error = 0.0;
  // Candidate-set size actually scored (|P-| after dedup).
  size_t num_candidates = 0;
};

// One candidate with its subsample-estimated error (EXPLAIN output).
struct ScoredCandidate {
  PreAggregate pre;
  double scored_error = 0.0;
};

class AggregateIdentifier {
 public:
  // `cube` and `sample` must outlive the identifier. The subsample used for
  // scoring is drawn once at construction (it is query-independent).
  AggregateIdentifier(const PrefixCube* cube, const Sample* sample,
                      IdentificationOptions options, Rng& rng);

  // Enumerates the candidate set P- of Equation 7 for `query` (deduplicated;
  // phi always included). Conditions on columns that are not cube dimensions
  // are ignored for bracketing (the pre box never constrains them).
  std::vector<PreAggregate> EnumerateCandidates(const RangeQuery& query) const;

  // Full identification: enumerate P-, score each candidate's CI width on
  // the subsample, return the argmin.
  Result<IdentifiedAggregate> Identify(const RangeQuery& query, Rng& rng) const;

  // Scores the whole candidate set and returns it sorted best-first
  // (EXPLAIN support). Falls back to the greedy path's visited candidates
  // at high d.
  Result<std::vector<ScoredCandidate>> ScoreAll(const RangeQuery& query,
                                                Rng& rng) const;

  // Reference implementation for tests: scores *every* value in P+ on the
  // full sample (exponential in the cuts; only safe for tiny cubes).
  Result<IdentifiedAggregate> IdentifyBruteForce(const RangeQuery& query,
                                                 Rng& rng) const;

  const Sample& scoring_sample() const { return scoring_sample_; }

 private:
  // Reads all measure planes of `pre` from the cube.
  PreValues ReadPreValues(const PreAggregate& pre) const;

  // CI half-width of `query` w.r.t. `pre` on the scoring sample.
  Result<double> ScoreCandidate(const RangeQuery& query,
                                const PreAggregate& pre, Rng& rng) const;

  // Per-dimension bracket candidates (the {l,h} pairs of Equation 7).
  void BracketQuery(const RangeQuery& query,
                    std::vector<std::vector<size_t>>* u_cands,
                    std::vector<std::vector<size_t>>* v_cands) const;

  // Greedy fallback for high d: fixes one dimension's bracket pair at a
  // time, scoring each option on the subsample.
  Result<IdentifiedAggregate> IdentifyGreedy(const RangeQuery& query,
                                             Rng& rng) const;

  const PrefixCube* cube_;
  const Sample* sample_;
  IdentificationOptions options_;
  Sample scoring_sample_;
};

}  // namespace aqpp

#endif  // AQPP_CORE_IDENTIFICATION_H_
