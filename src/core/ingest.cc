#include "core/ingest.h"

#include <chrono>
#include <cmath>
#include <numeric>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/maintenance.h"
#include "obs/metrics.h"
#include "synopsis/synopsis.h"

namespace aqpp {

namespace {

struct IngestMetrics {
  obs::Counter* rows;
  obs::Counter* batches;
  obs::Counter* rejected;
  obs::Counter* absorbs;
  obs::Counter* absorb_failures;
  obs::Gauge* delta_rows;
  obs::Histogram* absorb_latency;
  static const IngestMetrics& Get() {
    auto& reg = obs::Registry::Global();
    static const IngestMetrics m = {
        reg.GetCounter("aqpp_ingest_rows_total", "",
                       "Rows committed to the ingest delta."),
        reg.GetCounter("aqpp_ingest_batches_total", "",
                       "Batches committed to the ingest delta."),
        reg.GetCounter("aqpp_ingest_rejected_batches_total", "",
                       "Ingest batches rejected at validation or by "
                       "delta backpressure."),
        reg.GetCounter("aqpp_ingest_absorbs_total", "",
                       "Absorb cycles published (delta folded into cube, "
                       "reservoir, and synopsis)."),
        reg.GetCounter("aqpp_ingest_absorb_failures_total", "",
                       "Absorb cycles aborted before publishing; the prior "
                       "generation stays live."),
        reg.GetGauge("aqpp_ingest_delta_rows", "",
                     "Rows currently resident in the ingest delta."),
        reg.GetHistogram("aqpp_ingest_absorb_seconds", "", {},
                         "Wall time of one absorb cycle (candidate "
                         "preparation + publish swap)."),
    };
    return m;
  }
};

// New empty table with `base`'s schema sharing its dictionary codings, so
// ordinal codes in the delta line up with canonicalized predicates.
std::shared_ptr<Table> NewDeltaLike(const Table& base) {
  auto t = std::make_shared<Table>(base.schema());
  for (size_t c = 0; c < base.num_columns(); ++c) {
    if (base.column(c).type() == DataType::kString) {
      t->mutable_column(c).SetDictionary(base.column(c).dictionary());
    }
  }
  return t;
}

// Appends rows [begin, end) of `src` onto `dst`, re-coding string values
// into dst's dictionaries. The caller has validated dictionary membership,
// so lookups cannot fail.
void AppendRowsCoded(Table* dst, const Table& src, size_t begin, size_t end) {
  for (size_t c = 0; c < dst->num_columns(); ++c) {
    Column& d = dst->mutable_column(c);
    const Column& s = src.column(c);
    if (d.type() == DataType::kDouble) {
      auto& out = d.MutableDoubleData();
      const auto& in = s.DoubleData();
      out.insert(out.end(), in.begin() + static_cast<ptrdiff_t>(begin),
                 in.begin() + static_cast<ptrdiff_t>(end));
    } else if (d.type() == DataType::kString) {
      auto& out = d.MutableInt64Data();
      out.reserve(out.size() + (end - begin));
      for (size_t r = begin; r < end; ++r) {
        auto code = d.LookupDictionary(s.GetString(r));
        AQPP_CHECK(code.ok()) << "unvalidated dictionary value reached commit";
        out.push_back(*code);
      }
    } else {
      auto& out = d.MutableInt64Data();
      const auto& in = s.Int64Data();
      out.insert(out.end(), in.begin() + static_cast<ptrdiff_t>(begin),
                 in.begin() + static_cast<ptrdiff_t>(end));
    }
  }
  dst->SetRowCountFromColumns();
}

uint64_t CycleSeed(uint64_t base, uint64_t rows_absorbed_before) {
  // splitmix-style derivation: equal (seed, absorbed-prefix) => equal draw,
  // so a failed cycle retries with the same reservoir continuation.
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (rows_absorbed_before + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

IngestManager::IngestManager(AqppEngine* engine, IngestOptions options)
    : engine_(engine), options_(options) {
  AQPP_CHECK(engine_ != nullptr);
  delta_ = NewDeltaLike(engine_->table());
}

IngestManager::~IngestManager() { Stop(); }

Status IngestManager::Start() {
  if (!options_.background) return Status::OK();
  if (absorber_.joinable()) {
    return Status::FailedPrecondition("ingest absorber already running");
  }
  {
    std::lock_guard<std::mutex> lock(cv_mu_);
    stop_ = false;
  }
  absorber_ = std::thread([this] { AbsorberLoop(); });
  return Status::OK();
}

void IngestManager::Stop() {
  {
    std::lock_guard<std::mutex> lock(cv_mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (absorber_.joinable()) absorber_.join();
}

void IngestManager::set_commit_observer(std::function<void()> observer) {
  std::lock_guard<std::mutex> lock(observer_mu_);
  observer_ = std::move(observer);
}

void IngestManager::NotifyObserver() {
  std::function<void()> observer;
  {
    std::lock_guard<std::mutex> lock(observer_mu_);
    observer = observer_;
  }
  if (observer) observer();
}

std::shared_ptr<const Table> IngestManager::delta() const {
  std::lock_guard<std::mutex> lock(delta_mu_);
  return delta_;
}

uint64_t IngestManager::generation() const {
  std::lock_guard<std::mutex> lock(delta_mu_);
  return committed_generation_;
}

IngestSnapshot IngestManager::snapshot() const {
  std::lock_guard<std::mutex> lock(delta_mu_);
  IngestSnapshot s;
  s.committed_generation = committed_generation_;
  s.absorbed_generation = absorbed_generation_;
  s.batches_committed = batches_committed_;
  s.rows_committed = rows_committed_;
  s.rows_absorbed = rows_absorbed_;
  s.absorb_failures = absorb_failures_;
  s.delta_rows = delta_ == nullptr ? 0 : delta_->num_rows();
  s.total_rows = engine_->table().num_rows() + rows_committed_;
  return s;
}

Status IngestManager::ValidateBatch(const Table& batch) const {
  if (batch.num_rows() == 0) {
    return Status::InvalidArgument("empty ingest batch");
  }
  if (batch.num_rows() > options_.max_batch_rows) {
    return Status::InvalidArgument(
        StrFormat("ingest batch of %zu rows exceeds the %zu-row bound",
                  batch.num_rows(), options_.max_batch_rows));
  }
  const Table& base = engine_->table();
  AQPP_RETURN_NOT_OK(
      synopsis::CheckSameSchema(base.schema(), batch.schema()));
  AQPP_RETURN_NOT_OK(synopsis::ValidateBatchDictionaries(base, batch));
  // Non-finite measures would poison every downstream aggregate (cube cells,
  // reservoir moments, delta folds); reject the batch whole.
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    if (batch.column(c).type() != DataType::kDouble) continue;
    for (double v : batch.column(c).DoubleData()) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            "non-finite value in column '" + batch.schema().column(c).name +
            "'");
      }
    }
  }
  // Cube-domain guard (footnote 5): a value past a dimension's last cut
  // would silently break the cube's coverage guarantee — reject up front so
  // the absorber can never fail on it later.
  if (engine_->has_cube()) {
    for (const auto& dim : engine_->cube()->scheme().dims()) {
      const Column& base_col = base.column(dim.column);
      const Column& batch_col = batch.column(dim.column);
      for (size_t r = 0; r < batch.num_rows(); ++r) {
        int64_t v;
        if (base_col.type() == DataType::kString) {
          auto code = base_col.LookupDictionary(batch_col.GetString(r));
          AQPP_CHECK(code.ok());  // dictionary membership validated above
          v = *code;
        } else {
          v = batch_col.GetInt64(r);
        }
        if (v > dim.cuts.back()) {
          return Status::OutOfRange(StrFormat(
              "appended value %lld on column '%s' exceeds the cube's last "
              "cut %lld; rebuild the cube to extend the domain",
              static_cast<long long>(v),
              base.schema().column(dim.column).name.c_str(),
              static_cast<long long>(dim.cuts.back())));
        }
      }
    }
  }
  return Status::OK();
}

Status IngestManager::Append(const Table& batch) {
  // Validation reads published engine state (cube scheme, dictionaries); hold
  // the state lock shared so a concurrent absorb publish cannot swap the cube
  // out from under the domain check.
  Status valid;
  {
    std::shared_lock<std::shared_mutex> state_lock(state_mu_);
    valid = ValidateBatch(batch);
  }
  if (!valid.ok()) {
    IngestMetrics::Get().rejected->Increment();
    return valid;
  }
  if (auto fired = AQPP_FAILPOINT_EVAL("ingest/append")) {
    if (fired->kind == fail::ActionKind::kReturnError) {
      IngestMetrics::Get().rejected->Increment();
      return fired->error;
    }
  }
  size_t delta_rows_after = 0;
  {
    std::lock_guard<std::mutex> lock(delta_mu_);
    size_t current = delta_ == nullptr ? 0 : delta_->num_rows();
    if (current + batch.num_rows() > options_.max_delta_rows) {
      IngestMetrics::Get().rejected->Increment();
      return Status::ResourceExhausted(StrFormat(
          "ingest delta holds %zu rows (bound %zu); retry after the "
          "absorber catches up",
          current, options_.max_delta_rows));
    }
    // Copy-on-write commit: readers that snapshotted the previous delta keep
    // scanning a stable table.
    auto next = NewDeltaLike(engine_->table());
    if (current > 0) AppendRowsCoded(next.get(), *delta_, 0, current);
    AppendRowsCoded(next.get(), batch, 0, batch.num_rows());
    delta_ = std::move(next);
    ++batches_committed_;
    rows_committed_ += batch.num_rows();
    ++committed_generation_;
    delta_rows_after = delta_->num_rows();
  }
  IngestMetrics::Get().rows->Increment(batch.num_rows());
  IngestMetrics::Get().batches->Increment();
  IngestMetrics::Get().delta_rows->Set(
      static_cast<int64_t>(delta_rows_after));
  NotifyObserver();
  if (options_.background && delta_rows_after >= options_.absorb_threshold_rows) {
    {
      std::lock_guard<std::mutex> lock(cv_mu_);
      wake_ = true;
    }
    cv_.notify_all();
  }
  return Status::OK();
}

Result<double> IngestManager::FoldValue(const Table& delta,
                                        const RangeQuery& query) {
  if (auto fired = AQPP_FAILPOINT_EVAL("ingest/delta_fold")) {
    if (fired->kind == fail::ActionKind::kReturnError) return fired->error;
  }
  if (!FoldSupported(query.func)) {
    return Status::Unimplemented(
        "exact delta folds cover SUM and COUNT only");
  }
  if (query.func == AggregateFunction::kSum &&
      query.agg_column >= delta.num_columns()) {
    return Status::InvalidArgument("aggregate column out of range");
  }
  double total = 0.0;
  for (size_t r = 0; r < delta.num_rows(); ++r) {
    if (!query.predicate.Matches(delta, r)) continue;
    total += query.func == AggregateFunction::kCount
                 ? 1.0
                 : delta.column(query.agg_column).GetDouble(r);
  }
  return total;
}

Status IngestManager::AbsorbNow() {
  std::lock_guard<std::mutex> cycle_lock(absorb_mu_);
  Status st = AbsorbCycle();
  if (!st.ok()) {
    std::lock_guard<std::mutex> lock(delta_mu_);
    ++absorb_failures_;
    IngestMetrics::Get().absorb_failures->Increment();
  }
  return st;
}

Status IngestManager::AbsorbCycle() {
  std::shared_ptr<const Table> batch;
  uint64_t rows_absorbed_before = 0;
  {
    std::lock_guard<std::mutex> lock(delta_mu_);
    batch = delta_;
    rows_absorbed_before = rows_absorbed_;
  }
  if (batch == nullptr || batch->num_rows() == 0) return Status::OK();
  const size_t absorbing = batch->num_rows();
  SteadyTime start = SteadyNow();

  if (auto fired = AQPP_FAILPOINT_EVAL("ingest/absorb_commit")) {
    if (fired->kind == fail::ActionKind::kReturnError) return fired->error;
  }

  // ---- Candidates, prepared outside any lock --------------------------------

  // Reservoir continuation on a deep copy (the live sample table must not be
  // touched: Algorithm R overwrites rows in place).
  Sample sample_copy = engine_->sample();
  if (sample_copy.rows == nullptr || sample_copy.size() == 0) {
    return Status::FailedPrecondition(
        "engine has no sample; prepare it before ingest");
  }
  {
    std::vector<size_t> all(sample_copy.size());
    std::iota(all.begin(), all.end(), size_t{0});
    AQPP_ASSIGN_OR_RETURN(sample_copy.rows, TakeRows(*sample_copy.rows, all));
  }
  ReservoirMaintainer reservoir(std::move(sample_copy),
                                CycleSeed(options_.seed, rows_absorbed_before));
  AQPP_RETURN_NOT_OK(reservoir.Absorb(*batch));

  // Cube absorb on a clone, through the maintainer's validate + delta-cube
  // binning path (compact_threshold=1 folds the pending buffer immediately).
  std::shared_ptr<PrefixCube> cube_candidate;
  if (engine_->has_cube()) {
    cube_candidate = engine_->shared_cube()->Clone();
    CubeMaintainer cube_maintainer(cube_candidate, engine_->shared_table(),
                                   CubeMaintainerOptions{/*compact_threshold=*/1});
    AQPP_RETURN_NOT_OK(cube_maintainer.Absorb(*batch));
    AQPP_RETURN_NOT_OK(cube_maintainer.Compact());
  }

  // Active synopsis: serialize → fresh instance → absorb the clone.
  std::shared_ptr<synopsis::Synopsis> synopsis_candidate;
  if (auto active = engine_->active_synopsis()) {
    AQPP_ASSIGN_OR_RETURN(
        auto fresh, synopsis::CreateSynopsis(active->kind(), active->options()));
    std::string bytes;
    AQPP_RETURN_NOT_OK(active->SerializeTo(&bytes));
    AQPP_RETURN_NOT_OK(fresh->DeserializeFrom(bytes));
    synopsis::SynopsisMaintainer maintainer(fresh.get());
    AQPP_RETURN_NOT_OK(maintainer.Absorb(*batch));
    synopsis_candidate = std::move(fresh);
  }

  // ---- Publish: one exclusive critical section ------------------------------

  {
    std::unique_lock<std::shared_mutex> state_lock(state_mu_);
    if (auto fired = AQPP_FAILPOINT_EVAL("ingest/swap")) {
      if (fired->kind == fail::ActionKind::kReturnError) return fired->error;
    }
    AQPP_RETURN_NOT_OK(
        engine_->PublishMaintained(reservoir.sample(), cube_candidate));
    if (synopsis_candidate != nullptr) {
      auto active = engine_->active_synopsis();
      // A concurrent SET SYNOPSIS may have swapped kinds mid-cycle; never
      // clobber the newer selection with a stale clone.
      if (active != nullptr &&
          std::string(active->kind()) == synopsis_candidate->kind()) {
        engine_->AdoptSynopsis(std::move(synopsis_candidate));
      }
    }
    {
      std::lock_guard<std::mutex> lock(delta_mu_);
      auto next = NewDeltaLike(engine_->table());
      if (delta_ != nullptr && delta_->num_rows() > absorbing) {
        AppendRowsCoded(next.get(), *delta_, absorbing, delta_->num_rows());
      }
      delta_ = std::move(next);
      rows_absorbed_ += absorbing;
      ++absorbed_generation_;
      ++committed_generation_;
      IngestMetrics::Get().delta_rows->Set(
          static_cast<int64_t>(delta_->num_rows()));
    }
    // The observer (cache invalidation) must fire before any reader can run
    // against the new state: a reader that acquired the state lock after this
    // publish but before invalidation could pair a stale cached base answer
    // with the truncated delta and lose the absorbed rows.
    NotifyObserver();
  }
  IngestMetrics::Get().absorbs->Increment();
  IngestMetrics::Get().absorb_latency->Observe(
      SecondsBetween(start, SteadyNow()));
  return Status::OK();
}

void IngestManager::AbsorberLoop() {
  std::unique_lock<std::mutex> lock(cv_mu_);
  while (!stop_) {
    cv_.wait_for(
        lock,
        std::chrono::duration<double>(options_.absorb_interval_seconds),
        [this] { return stop_ || wake_; });
    wake_ = false;
    if (stop_) break;
    lock.unlock();
    bool pending;
    {
      std::lock_guard<std::mutex> dlock(delta_mu_);
      pending = delta_ != nullptr && delta_->num_rows() > 0;
    }
    if (pending) {
      Status st = AbsorbNow();
      if (!st.ok()) {
        AQPP_LOG(Warning) << "ingest absorb cycle aborted: " << st.ToString();
      }
    }
    lock.lock();
  }
}

}  // namespace aqpp
