// Aggregate precomputation (Problem 2, Section 6).
//
// Stage 1 (sample-only): decide the BP-Cube — its shape k_1 x ... x k_d via
// per-dimension error profiles + binary search (Section 6.2), and the cut
// positions per dimension via hill climbing on the error_up bound
// (Section 6.1.2, Lemma 6). Stage 2 (one full scan): build the cube with
// the Ho et al. algorithm (src/cube).

#ifndef AQPP_CORE_PRECOMPUTE_H_
#define AQPP_CORE_PRECOMPUTE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "cube/partition.h"
#include "cube/prefix_cube.h"
#include "sampling/sample.h"
#include "storage/table.h"

namespace aqpp {

struct HillClimbOptions {
  size_t max_iterations = 100;
  // Global adjustment considers removing any cut; local only the cuts
  // adjacent to the two worst boundaries (the Figure 8 comparison).
  bool global_adjustment = true;
  double confidence_level = 0.95;
  // Record error_up after every iteration (Figure 8's convergence curves).
  bool record_history = false;
  // Skip hill climbing and return the equal-depth initialization
  // (the Section 6.1 baseline / ablation switch).
  bool equal_partition_only = false;
};

struct HillClimbResult {
  DimensionPartition partition;
  // Final upper bound error_up(Q, P) (Lemma 6 evaluation).
  double error_up = 0.0;
  // error_up after initialization and after each accepted iteration.
  std::vector<double> history;
  size_t iterations = 0;
};

// One-dimensional cut optimizer over a *sample*, per Section 6.1.2.
class HillClimbOptimizer {
 public:
  // `sample_table` is the sample rows; `column` the condition attribute,
  // `measure_column` the aggregation attribute; `population_size` is N in
  // the lambda*N/sqrt(n) error scale.
  HillClimbOptimizer(const Table* sample_table, size_t column,
                     size_t measure_column, size_t population_size,
                     HillClimbOptions options = {});

  // Chooses (at most) k cuts. The last cut is pinned to the sample maximum
  // (footnote 5: t_k = |dom(C)|).
  Result<HillClimbResult> Optimize(size_t k) const;

  // error_up for an arbitrary strictly-increasing cut-value set, evaluated
  // on the sample (used by benchmarks to compare partition schemes).
  Result<double> EvaluateErrorUp(const std::vector<int64_t>& cut_values) const;

  size_t num_boundaries() const { return boundary_value_.size(); }

 private:
  struct State;

  // error_i at boundary b when bracketed by cut boundaries prev/next (indices
  // into the boundary arrays; prev == SIZE_MAX means "before the first row").
  double BoundaryError(size_t b, size_t prev, size_t next) const;

  // Recomputes error_i for every boundary under `cut_b` (sorted boundary
  // indices, last pinned) and returns the top-two boundary indices and the
  // error_up sum.
  void Evaluate(const std::vector<size_t>& cut_b, std::vector<double>* errors,
                size_t* worst1, size_t* worst2, double* error_up) const;

  const Table* sample_table_;
  size_t column_;
  size_t measure_column_;
  size_t population_size_;
  HillClimbOptions options_;
  double lambda_;

  // Sample rows sorted by the condition column.
  std::vector<int64_t> sorted_values_;
  std::vector<double> sorted_measure_;
  // Prefix sums over the sorted order: pa_[i] = sum of first i measures,
  // pa2_[i] = sum of first i squared measures.
  std::vector<double> pa_, pa2_;
  // Feasible boundaries: boundary_row_[j] is the last row index of a run of
  // equal values; cutting there means "value <= boundary_value_[j]".
  std::vector<size_t> boundary_row_;
  std::vector<int64_t> boundary_value_;
};

// A point on a dimension's error profile (Figure 6).
struct ErrorProfilePoint {
  size_t k = 0;
  double error_up = 0.0;
};

struct ShapeOptions {
  // Number of profile points computed per dimension (the paper's m = 20
  // default; we default lower because profiles are smooth).
  size_t profile_points = 8;
  HillClimbOptions hill_climb;
};

struct ShapeResult {
  std::vector<size_t> shape;  // k_i per dimension
  std::vector<std::vector<ErrorProfilePoint>> profiles;
  // Fitted c_i with error ~ c_i / sqrt(k) (Lemma 4's decay rate).
  std::vector<double> fitted_coefficients;
};

// Determines the cube shape k_1 x ... x k_d <= k by plotting per-dimension
// error profiles and binary-searching a common error level (Section 6.2).
class ShapeOptimizer {
 public:
  ShapeOptimizer(const Table* sample_table, size_t measure_column,
                 size_t population_size, ShapeOptions options = {});

  Result<ShapeResult> DetermineShape(const std::vector<size_t>& condition_columns,
                                     size_t k) const;

 private:
  const Table* sample_table_;
  size_t measure_column_;
  size_t population_size_;
  ShapeOptions options_;
};

// End-to-end precomputation: shape + cuts on the sample, then the cube on
// the full table (SUM / COUNT / SUM(A^2) planes).
struct PrecomputeOptions {
  ShapeOptions shape;
  // Force specific per-dimension budgets (skips shape search when set).
  std::vector<size_t> forced_shape;
  // Pin cuts of some dimensions at every distinct value (group-by columns,
  // Appendix C); listed by column index.
  std::vector<size_t> exhaustive_columns;
};

struct PrecomputeResult {
  PartitionScheme scheme;
  std::shared_ptr<PrefixCube> cube;
  ShapeResult shape;
  std::vector<HillClimbResult> per_dimension;
  double stage1_seconds = 0.0;  // sample-side optimization
  double stage2_seconds = 0.0;  // full-scan cube build
};

class Precomputer {
 public:
  Precomputer(const Table* table, const Sample* sample, size_t measure_column,
              PrecomputeOptions options = {});

  Result<PrecomputeResult> Precompute(const std::vector<size_t>& condition_columns,
                                      size_t k) const;

 private:
  const Table* table_;
  const Sample* sample_;
  size_t measure_column_;
  PrecomputeOptions options_;
};

}  // namespace aqpp

#endif  // AQPP_CORE_PRECOMPUTE_H_
