// Incremental maintenance under data appends (Appendix C, "Data Updates").
//
// AQP++ has two materialized artifacts to keep fresh when rows are appended:
//
//  * the BP-Cube — maintained by `CubeMaintainer`: appended batches are
//    buffered; queries read the buffered rows exactly (they are few);
//    when the buffer crosses a threshold, a delta cube is built over it
//    (one small scan + d prefix passes) and *added* onto the main cube —
//    exact, because prefix summation is linear;
//  * the uniform sample — maintained by `ReservoirMaintainer` with Vitter's
//    algorithm R continued across batches, keeping the sample an exact
//    uniform draw of everything seen so far.
//
// Deletions and in-place updates are out of scope, as in the paper.

#ifndef AQPP_CORE_MAINTENANCE_H_
#define AQPP_CORE_MAINTENANCE_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "cube/prefix_cube.h"
#include "sampling/sample.h"
#include "storage/table.h"

namespace aqpp {

struct CubeMaintainerOptions {
  // Pending rows beyond which Absorb() folds the buffer into the cube.
  size_t compact_threshold = 64 * 1024;
};

// Keeps a BP-Cube consistent with a growing table.
class CubeMaintainer {
 public:
  // `cube` is taken over (shared). `reference_table` supplies the schema and
  // the dictionary codings that batches are translated into; only its
  // metadata is read.
  CubeMaintainer(std::shared_ptr<PrefixCube> cube,
                 std::shared_ptr<Table> reference_table,
                 CubeMaintainerOptions options = {});

  // Ingests an appended batch (same schema as the base table). Values of
  // partition columns beyond the last cut are rejected: the cube's domain
  // coverage guarantee (footnote 5) cannot be silently broken.
  Status Absorb(const Table& batch);

  // Exact aggregate over the box, including all absorbed-but-uncompacted
  // rows (cube read + a scan of the pending buffer).
  double BoxValue(const PreAggregate& pre, size_t measure) const;

  // Folds the pending buffer into the cube (builds and merges a delta
  // cube). Idempotent when nothing is pending.
  Status Compact();

  size_t pending_rows() const {
    return pending_ == nullptr ? 0 : pending_->num_rows();
  }
  size_t total_absorbed_rows() const { return total_absorbed_; }
  const PrefixCube& cube() const { return *cube_; }

  // Invoked after every Absorb() that changed state. The service layer
  // registers result-cache invalidation here, so an appended batch can
  // never leave stale cached aggregates servable.
  void set_update_observer(std::function<void()> observer) {
    observer_ = std::move(observer);
  }

 private:
  std::shared_ptr<PrefixCube> cube_;
  std::shared_ptr<Table> reference_;
  CubeMaintainerOptions options_;
  std::shared_ptr<Table> pending_;
  size_t total_absorbed_ = 0;
  std::function<void()> observer_;
};

// Keeps a fixed-size uniform sample representative of base + appends.
//
// The maintained sample's rows table is rewritten in place; weights are
// N_seen / n after every batch. STRING columns are supported as long as
// appended values already exist in the sample's dictionary (new categories
// would invalidate the alphabetical ordinal coding used by cubes; the
// maintainer rejects them).
class ReservoirMaintainer {
 public:
  // `sample` must be a uniform fixed-size sample of the base table.
  ReservoirMaintainer(Sample sample, uint64_t seed = 99);

  // Streams an appended batch through the reservoir.
  Status Absorb(const Table& batch);

  // The maintained sample (valid after any number of Absorb calls).
  const Sample& sample() const { return sample_; }

  size_t rows_seen() const { return rows_seen_; }

  // Invoked after every Absorb() (see CubeMaintainer::set_update_observer).
  void set_update_observer(std::function<void()> observer) {
    observer_ = std::move(observer);
  }

 private:
  Status OverwriteRow(size_t slot, const Table& batch, size_t row);

  Sample sample_;
  size_t rows_seen_;
  Rng rng_;
  std::function<void()> observer_;
};

}  // namespace aqpp

#endif  // AQPP_CORE_MAINTENANCE_H_
