// Capacity-planning advisor: predict the accuracy a budget buys before
// spending the precomputation.
//
// Uses the Section 6.2 error-profile machinery: per-dimension 1/sqrt(k)
// fits over the sample give a closed-form predicted query-template error
// for any budget, so a DBA can pick k from a printed curve instead of
// building cubes by trial and error.

#ifndef AQPP_CORE_ADVISOR_H_
#define AQPP_CORE_ADVISOR_H_

#include <vector>

#include "common/status.h"
#include "core/precompute.h"
#include "sampling/sample.h"

namespace aqpp {

struct BudgetPrediction {
  size_t budget = 0;
  // Predicted error_up level (the Lemma 6 bound at the balanced shape).
  double predicted_error = 0.0;
  // The shape the binary search would pick at this budget.
  std::vector<size_t> shape;
};

class PrecomputeAdvisor {
 public:
  // Profiles are fitted once on `sample`; predictions are then O(1) per
  // budget.
  PrecomputeAdvisor(const Table* sample_table, size_t population_size,
                    ShapeOptions options = {});

  // Predicted error curve for `condition_columns` at each budget in
  // `budgets` (ascending recommended for readable output).
  Result<std::vector<BudgetPrediction>> PredictErrorCurve(
      size_t measure_column, const std::vector<size_t>& condition_columns,
      const std::vector<size_t>& budgets) const;

  // Smallest budget whose predicted error is <= `target_error`, or an
  // OutOfRange error when even the per-dimension feasibility caps cannot
  // reach it.
  Result<size_t> BudgetForError(size_t measure_column,
                                const std::vector<size_t>& condition_columns,
                                double target_error,
                                size_t max_budget = 1 << 24) const;

 private:
  const Table* sample_table_;
  size_t population_size_;
  ShapeOptions options_;
};

}  // namespace aqpp

#endif  // AQPP_CORE_ADVISOR_H_
