// One-pass out-of-core precomputation: stream a ColumnSource's extents once
// and build both the BP-Cube and the reservoir sample from that single scan.
//
// Peak memory is bounded by the cube's partial planes (<= 64 MiB + the final
// planes, see PrefixCube::PlanFor), one extent's pinned columns, and the
// staged sample values — independent of the table size. Between extents the
// source is told to release everything already consumed (ReleaseBefore), so
// a 100M-row table builds in a few hundred MiB of resident memory.
//
// Determinism contract:
//   * The cube is bit-identical to PrefixCube::Build over the materialized
//     table: chunks are binned on the same kChunkRows grid into the same
//     partial planes (PrefixCube::AccumulationPlan), partials merge in
//     shard-index order, and the prefix sweeps are shared code
//     (PrefixCube::FromRawPlanes).
//   * The sample is row-identical to CreateReservoirSample with the same
//     Rng state: one NextBounded(i + 1) draw per row i >= n, in row order,
//     which is exactly Vitter's Algorithm R. Replacement values are staged
//     as slots are won, so no second pass over the data is needed.

#ifndef AQPP_CORE_STREAM_BUILD_H_
#define AQPP_CORE_STREAM_BUILD_H_

#include <cstddef>
#include <memory>
#include <vector>

#include <string>

#include "common/random.h"
#include "common/status.h"
#include "cube/prefix_cube.h"
#include "sampling/sample.h"
#include "storage/column_source.h"
#include "synopsis/synopsis.h"

namespace aqpp {

struct StreamBuildOptions {
  // Rows in the reservoir sample; 0 skips sampling entirely.
  size_t sample_size = 0;
  // Tell the source to drop decoded/mapped extents behind the scan cursor.
  // Disable only to keep a shared reader's cache warm for later queries.
  bool release_consumed_extents = true;
  // Synopsis kind to build alongside ("" = none). Sample-backed kinds adopt
  // the streamed reservoir (no extra pass); others re-stream the source
  // through Synopsis::Build.
  std::string synopsis_kind;
  synopsis::SynopsisOptions synopsis_options;
};

struct StreamBuildResult {
  std::shared_ptr<PrefixCube> cube;
  // Empty (rows == nullptr) when options.sample_size == 0.
  Sample sample;
  // Built when options.synopsis_kind != "" (warm-handoff payload).
  std::shared_ptr<synopsis::Synopsis> synopsis;
  size_t extents_streamed = 0;
};

// Builds the cube for `scheme` (and, if requested, a reservoir sample of the
// whole table) in one sequential pass over `source`. Validates the scheme
// against the source with the same rules PartitionScheme::Validate applies
// to a table, using footer zone maps instead of column scans when the source
// is extent-backed.
Result<StreamBuildResult> BuildCubeAndSampleFromSource(
    ColumnSource& source, PartitionScheme scheme,
    const std::vector<MeasureSpec>& measures, Rng& rng,
    const StreamBuildOptions& options = StreamBuildOptions());

}  // namespace aqpp

#endif  // AQPP_CORE_STREAM_BUILD_H_
