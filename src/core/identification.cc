#include "core/identification.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <mutex>
#include <utility>

#include "common/logging.h"

namespace aqpp {

namespace {

constexpr size_t kNoJob = std::numeric_limits<size_t>::max();

// Canonical phi: an all-empty box.
PreAggregate MakePhi(size_t d) {
  PreAggregate p;
  p.lo.assign(d, 0);
  p.hi.assign(d, 0);
  return p;
}

bool LessPre(const PreAggregate& a, const PreAggregate& b) {
  if (a.lo != b.lo) return a.lo < b.lo;
  return a.hi < b.hi;
}

// Deterministic per-candidate RNG seed: SplitMix64-mixes the candidate box
// into the query's base seed. A pure function of (base_seed, box), so a
// candidate's score never depends on which thread picks it up or in what
// order — parallel identification is bit-identical to sequential.
uint64_t CandidateSeed(uint64_t base_seed, const PreAggregate& pre) {
  uint64_t h = base_seed;
  auto mix = [&h](uint64_t v) {
    h += 0x9e3779b97f4a7c15ULL + v;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    h ^= h >> 31;
  };
  for (size_t v : pre.lo) mix(static_cast<uint64_t>(v));
  for (size_t v : pre.hi) mix(static_cast<uint64_t>(v));
  return h;
}

std::vector<size_t> MemoKey(const PreAggregate& pre) {
  std::vector<size_t> key = pre.lo;
  key.insert(key.end(), pre.hi.begin(), pre.hi.end());
  return key;
}

}  // namespace

AggregateIdentifier::AggregateIdentifier(const PrefixCube* cube,
                                         const Sample* sample,
                                         IdentificationOptions options,
                                         Rng& rng)
    : cube_(cube), sample_(sample), options_(options) {
  AQPP_CHECK(cube != nullptr);
  AQPP_CHECK(sample != nullptr);
  const size_t d = cube_->scheme().num_dims();
  double rate = options_.subsample_rate;
  if (rate <= 0) {
    // Section 5.2: keep the total scoring work (|P-| * subsample rows) below
    // one pass over the full sample: rate <= 1/4^d. Keep at least ~512 rows
    // so the variance estimates stay usable.
    rate = 1.0 / std::pow(4.0, static_cast<double>(d));
    double min_rows = 512.0;
    rate = std::max(rate, min_rows / static_cast<double>(sample_->size()));
    rate = std::min(rate, 1.0);
  }
  if (options_.score_on_full_sample || rate >= 1.0) {
    scoring_sample_ = *sample_;
  } else {
    auto sub = Subsample(*sample_, rate, rng);
    AQPP_CHECK(sub.ok()) << sub.status().ToString();
    scoring_sample_ = std::move(sub).value();
  }
  scorer_ = std::make_unique<BatchCandidateScorer>(
      &scoring_sample_, &cube_->scheme(), options_.confidence_level,
      /*bootstrap_resamples=*/40);
  if (scoring_sample_.rows.get() == sample_->rows.get()) {
    full_cells_ = &scorer_->cell_index();
  } else {
    full_cells_owned_ =
        std::make_unique<CellIndex>(*sample_->rows, cube_->scheme());
    full_cells_ = full_cells_owned_.get();
  }
}

std::vector<uint8_t> AggregateIdentifier::PreMaskOnSample(
    const PreAggregate& pre) const {
  return full_cells_->BoxMask(pre);
}

void AggregateIdentifier::BracketQuery(
    const RangeQuery& query, std::vector<std::vector<size_t>>* u_cands,
    std::vector<std::vector<size_t>>* v_cands) const {
  const PartitionScheme& scheme = cube_->scheme();
  const size_t d = scheme.num_dims();
  u_cands->resize(d);
  v_cands->resize(d);
  for (size_t i = 0; i < d; ++i) {
    const DimensionPartition& dim = scheme.dim(i);
    // Intersect all query conditions on this column.
    int64_t lo = std::numeric_limits<int64_t>::min();
    int64_t hi = std::numeric_limits<int64_t>::max();
    for (const auto& c : query.predicate.conditions()) {
      if (c.column == dim.column) {
        lo = std::max(lo, c.lo);
        hi = std::min(hi, c.hi);
      }
    }
    if (lo == std::numeric_limits<int64_t>::min()) {
      (*u_cands)[i] = {0};
    } else {
      int64_t b_lo = lo - 1;  // exclusive lower boundary of the query box
      size_t l = dim.LowerBracket(b_lo);
      size_t h = dim.UpperBracket(b_lo);
      (*u_cands)[i] =
          l == h ? std::vector<size_t>{l} : std::vector<size_t>{l, h};
    }
    if (hi == std::numeric_limits<int64_t>::max()) {
      (*v_cands)[i] = {dim.num_cuts()};
    } else {
      size_t l = dim.LowerBracket(hi);
      size_t h = dim.UpperBracket(hi);
      (*v_cands)[i] =
          l == h ? std::vector<size_t>{l} : std::vector<size_t>{l, h};
    }
  }
}

std::vector<PreAggregate> AggregateIdentifier::EnumerateCandidates(
    const RangeQuery& query) const {
  const PartitionScheme& scheme = cube_->scheme();
  const size_t d = scheme.num_dims();
  std::vector<std::vector<size_t>> u_cands, v_cands;
  BracketQuery(query, &u_cands, &v_cands);

  // Cartesian product across dimensions (Equation 7).
  std::vector<size_t> arity(d);
  size_t total = 1;
  for (size_t i = 0; i < d; ++i) {
    arity[i] = u_cands[i].size() * v_cands[i].size();
    total *= arity[i];
  }

  // Dedup on the packed (lo || hi) key: every coordinate is at most
  // num_cuts + 1, so for realistic dimensionalities all 2d coordinates pack
  // into one uint64 and dedup is a sort + std::unique over flat integers
  // instead of a node-per-key red-black tree of vectors.
  size_t max_coord = 1;
  for (size_t i = 0; i < d; ++i) {
    max_coord = std::max(max_coord, scheme.dim(i).num_cuts());
  }
  unsigned width = 1;
  while ((uint64_t{1} << width) <= max_coord) ++width;
  const bool packable = 2 * d * width <= 64;
  const uint64_t coord_mask = (uint64_t{1} << width) - 1;

  std::vector<uint64_t> keys;
  std::vector<PreAggregate> raw;  // fallback when keys do not fit in 64 bits
  if (packable) {
    keys.reserve(total);
  } else {
    raw.reserve(total);
  }
  for (size_t combo = 0; combo < total; ++combo) {
    size_t rem = combo;
    PreAggregate pre;
    pre.lo.resize(d);
    pre.hi.resize(d);
    bool empty = false;
    for (size_t i = 0; i < d; ++i) {
      size_t c = rem % arity[i];
      rem /= arity[i];
      size_t u = u_cands[i][c % u_cands[i].size()];
      size_t v = v_cands[i][c / u_cands[i].size()];
      if (u >= v) empty = true;
      pre.lo[i] = u;
      pre.hi[i] = v;
    }
    if (empty) continue;  // normalized into the single phi below
    if (packable) {
      uint64_t key = 0;
      for (size_t i = 0; i < d; ++i) key = (key << width) | pre.lo[i];
      for (size_t i = 0; i < d; ++i) key = (key << width) | pre.hi[i];
      keys.push_back(key);
    } else {
      raw.push_back(std::move(pre));
    }
  }

  std::vector<PreAggregate> out;
  if (packable) {
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    out.reserve(keys.size() + 1);
    for (uint64_t key : keys) {
      PreAggregate pre;
      pre.lo.resize(d);
      pre.hi.resize(d);
      for (size_t i = d; i-- > 0;) {
        pre.hi[i] = static_cast<size_t>(key & coord_mask);
        key >>= width;
      }
      for (size_t i = d; i-- > 0;) {
        pre.lo[i] = static_cast<size_t>(key & coord_mask);
        key >>= width;
      }
      out.push_back(std::move(pre));
    }
  } else {
    std::sort(raw.begin(), raw.end(), LessPre);
    raw.erase(std::unique(raw.begin(), raw.end(),
                          [](const PreAggregate& a, const PreAggregate& b) {
                            return a.lo == b.lo && a.hi == b.hi;
                          }),
              raw.end());
    out = std::move(raw);
  }
  out.push_back(MakePhi(d));
  return out;
}

PreValues AggregateIdentifier::ReadPreValues(const PreAggregate& pre) const {
  PreValues v;
  // Cube planes are laid out per the engine convention:
  // plane 0 = SUM(A), plane 1 = COUNT, plane 2 = SUM(A^2) (if present).
  if (cube_->num_measures() > 0) v.sum = cube_->BoxValue(pre, 0);
  if (cube_->num_measures() > 1) v.count = cube_->BoxValue(pre, 1);
  if (cube_->num_measures() > 2) v.sum_sq = cube_->BoxValue(pre, 2);
  return v;
}

// Legacy single-candidate scorer (ScoreBatch is the production path). Its
// predicate evaluation rides the chunked kernel layer transitively through
// RangePredicate::EvaluateMask, so it stays a faithful-but-slower oracle for
// the batched scorer without any separate scan code.
Result<double> AggregateIdentifier::ScoreCandidate(const RangeQuery& query,
                                                   const PreAggregate& pre,
                                                   Rng& rng) const {
  SampleEstimator estimator(&scoring_sample_,
                            {.confidence_level = options_.confidence_level,
                             .bootstrap_resamples = 40});
  RangePredicate pre_pred = pre.ToPredicate(cube_->scheme());
  PreValues values = ReadPreValues(pre);
  AQPP_ASSIGN_OR_RETURN(
      auto ci, estimator.EstimateWithPre(query, pre_pred, values, rng));
  return ci.half_width;
}

Result<std::vector<double>> AggregateIdentifier::ScoreBatch(
    const RangeQuery& query, const BatchCandidateScorer::QueryContext* ctx,
    const std::vector<PreAggregate>& cands, uint64_t base_seed,
    ScoreMemo* memo) const {
  std::vector<double> scores(cands.size(), 0.0);

  // Collapse memo hits and intra-batch duplicates down to one scoring job
  // per distinct box. With memo == nullptr (caller guarantees the batch is
  // already deduplicated, e.g. EnumerateCandidates output) the key/map
  // machinery is skipped entirely and every candidate is one job.
  struct Job {
    size_t cand;
    uint64_t seed;
  };
  std::vector<Job> jobs;
  std::vector<size_t> job_of(cands.size(), kNoJob);
  std::map<std::vector<size_t>, size_t> pending;
  if (memo == nullptr) {
    jobs.reserve(cands.size());
    for (size_t i = 0; i < cands.size(); ++i) {
      job_of[i] = jobs.size();
      jobs.push_back({i, CandidateSeed(base_seed, cands[i])});
    }
  } else {
    for (size_t i = 0; i < cands.size(); ++i) {
      std::vector<size_t> key = MemoKey(cands[i]);
      auto hit = memo->find(key);
      if (hit != memo->end()) {
        scores[i] = hit->second;
        continue;
      }
      auto [it, fresh] = pending.emplace(std::move(key), jobs.size());
      job_of[i] = it->second;
      if (fresh) jobs.push_back({i, CandidateSeed(base_seed, cands[i])});
    }
  }

  std::vector<double> job_scores(jobs.size(), 0.0);
  if (ctx != nullptr) {
    // Hull of the batch's non-empty boxes: a row outside both the query and
    // the hull has an exactly-zero difference for every job, so one sweep
    // here lets each Score call walk only the rows that can matter.
    PreAggregate hull;
    bool have_hull = false;
    for (const Job& job : jobs) {
      const PreAggregate& pre = cands[job.cand];
      bool box_empty = false;
      for (size_t i = 0; i < pre.lo.size(); ++i) {
        if (pre.lo[i] >= pre.hi[i]) {
          box_empty = true;
          break;
        }
      }
      if (box_empty) continue;
      if (!have_hull) {
        hull = pre;
        have_hull = true;
      } else {
        for (size_t i = 0; i < pre.lo.size(); ++i) {
          hull.lo[i] = std::min(hull.lo[i], pre.lo[i]);
          hull.hi[i] = std::max(hull.hi[i], pre.hi[i]);
        }
      }
    }
    // Cell grouping costs one sort of the active rows; it only pays for
    // itself once enough candidates reuse the groups.
    constexpr size_t kGroupMinJobs = 12;
    const BatchCandidateScorer::ActiveSet active =
        jobs.empty() ? BatchCandidateScorer::ActiveSet{}
                     : scorer_->ActiveRows(*ctx, have_hull ? &hull : nullptr,
                                           /*group=*/jobs.size() >= kGroupMinJobs);

    // Batched path: each job derives its candidate mask from the cell-id
    // matrix and accumulates moments in one fused sweep over the active
    // rows, in parallel on the pool. Seeding is per-job, so the schedule
    // cannot change any score.
    std::mutex err_mu;
    Status status = Status::OK();
    ParallelForEach(
        jobs.size(),
        [&](size_t j) {
          const PreAggregate& pre = cands[jobs[j].cand];
          Rng job_rng(jobs[j].seed);
          PreValues values = ReadPreValues(pre);
          auto score = scorer_->Score(*ctx, pre, values, job_rng, &active);
          if (score.ok()) {
            job_scores[j] = *score;
          } else {
            std::lock_guard<std::mutex> lock(err_mu);
            if (status.ok()) status = score.status();
          }
        },
        options_.scoring_pool);
    AQPP_RETURN_NOT_OK(status);
  } else {
    // Legacy reference path: per-candidate predicate re-evaluation through
    // the estimator, same per-job seeds (bit-identical scores).
    for (size_t j = 0; j < jobs.size(); ++j) {
      Rng job_rng(jobs[j].seed);
      AQPP_ASSIGN_OR_RETURN(
          job_scores[j], ScoreCandidate(query, cands[jobs[j].cand], job_rng));
    }
  }

  if (memo != nullptr) {
    for (const auto& [key, j] : pending) memo->emplace(key, job_scores[j]);
  }
  for (size_t i = 0; i < cands.size(); ++i) {
    if (job_of[i] != kNoJob) scores[i] = job_scores[job_of[i]];
  }
  return scores;
}

Result<IdentifiedAggregate> AggregateIdentifier::IdentifyGreedy(
    const RangeQuery& query, Rng& rng, obs::QueryTrace* trace) const {
  const size_t d = cube_->scheme().num_dims();
  std::vector<std::vector<size_t>> u_cands, v_cands;
  BracketQuery(query, &u_cands, &v_cands);

  const uint64_t base_seed = rng.Next();
  ScoreMemo memo;
  BatchCandidateScorer::QueryContext ctx_storage;
  const BatchCandidateScorer::QueryContext* ctx = nullptr;
  if (options_.use_batched_scorer) {
    AQPP_ASSIGN_OR_RETURN(ctx_storage, scorer_->Prepare(query));
    ctx = &ctx_storage;
  }

  // Start from the loosest box (every dimension at its outer brackets) and
  // refine one dimension at a time, keeping the subsample-scored best.
  PreAggregate current;
  current.lo.resize(d);
  current.hi.resize(d);
  for (size_t i = 0; i < d; ++i) {
    current.lo[i] = u_cands[i].front();
    current.hi[i] = v_cands[i].back();
    if (current.lo[i] >= current.hi[i]) {
      current.lo[i] = 0;
      current.hi[i] = cube_->scheme().dim(i).num_cuts();
    }
  }
  for (size_t i = 0; i < d; ++i) {
    std::vector<PreAggregate> trials;
    std::vector<std::pair<size_t, size_t>> pairs;
    for (size_t u : u_cands[i]) {
      for (size_t v : v_cands[i]) {
        if (u >= v) continue;
        PreAggregate trial = current;
        trial.lo[i] = u;
        trial.hi[i] = v;
        trials.push_back(std::move(trial));
        pairs.emplace_back(u, v);
      }
    }
    if (trials.empty()) continue;
    obs::SpanTimer score_span(obs::Phase::kScoring, trace);
    AQPP_ASSIGN_OR_RETURN(std::vector<double> errs,
                          ScoreBatch(query, ctx, trials, base_seed, &memo));
    score_span.Stop();
    double best_err = std::numeric_limits<double>::infinity();
    std::pair<size_t, size_t> best_pair{current.lo[i], current.hi[i]};
    for (size_t t = 0; t < trials.size(); ++t) {
      if (errs[t] < best_err) {
        best_err = errs[t];
        best_pair = pairs[t];
      }
    }
    current.lo[i] = best_pair.first;
    current.hi[i] = best_pair.second;
  }
  // Final sanity comparison against phi (both usually memo hits by now).
  obs::SpanTimer final_span(obs::Phase::kScoring, trace);
  AQPP_ASSIGN_OR_RETURN(
      std::vector<double> finals,
      ScoreBatch(query, ctx, {current, MakePhi(d)}, base_seed, &memo));
  final_span.Stop();

  IdentifiedAggregate best;
  best.pre = finals[1] < finals[0] ? MakePhi(d) : current;
  best.scored_error = std::min(finals[0], finals[1]);
  {
    obs::SpanTimer probe_span(obs::Phase::kCubeProbe, trace);
    best.values = ReadPreValues(best.pre);
  }
  best.num_candidates = memo.size();
  return best;
}

Result<IdentifiedAggregate> AggregateIdentifier::Identify(
    const RangeQuery& query, Rng& rng, obs::QueryTrace* trace) const {
  {
    // Candidate-count guard: 4^d blows up around d ~ 6; use the greedy
    // per-dimension refinement there instead.
    std::vector<std::vector<size_t>> u_cands, v_cands;
    BracketQuery(query, &u_cands, &v_cands);
    size_t total = 1;
    bool overflow = false;
    for (size_t i = 0; i < u_cands.size(); ++i) {
      size_t arity = u_cands[i].size() * v_cands[i].size();
      if (total > options_.max_enumerated_candidates / std::max<size_t>(1, arity)) {
        overflow = true;
        break;
      }
      total *= arity;
    }
    if (overflow || total > options_.max_enumerated_candidates) {
      return IdentifyGreedy(query, rng, trace);
    }
  }
  std::vector<PreAggregate> candidates = EnumerateCandidates(query);
  AQPP_CHECK(!candidates.empty());

  const uint64_t base_seed = rng.Next();
  BatchCandidateScorer::QueryContext ctx_storage;
  const BatchCandidateScorer::QueryContext* ctx = nullptr;
  if (options_.use_batched_scorer) {
    AQPP_ASSIGN_OR_RETURN(ctx_storage, scorer_->Prepare(query));
    ctx = &ctx_storage;
  }
  // EnumerateCandidates output is already deduplicated; no memo needed.
  obs::SpanTimer score_span(obs::Phase::kScoring, trace);
  AQPP_ASSIGN_OR_RETURN(
      std::vector<double> scores,
      ScoreBatch(query, ctx, candidates, base_seed, /*memo=*/nullptr));
  score_span.Stop();

  // Sequential argmin with first-wins ties: deterministic regardless of how
  // the scoring jobs were scheduled.
  IdentifiedAggregate best;
  double best_error = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (scores[i] < best_error) {
      best_error = scores[i];
      best.pre = candidates[i];
    }
  }
  {
    obs::SpanTimer probe_span(obs::Phase::kCubeProbe, trace);
    best.values = ReadPreValues(best.pre);
  }
  best.scored_error = best_error;
  best.num_candidates = candidates.size();
  return best;
}

Result<std::vector<ScoredCandidate>> AggregateIdentifier::ScoreAll(
    const RangeQuery& query, Rng& rng) const {
  std::vector<ScoredCandidate> scored;
  std::vector<std::vector<size_t>> u_cands, v_cands;
  BracketQuery(query, &u_cands, &v_cands);
  size_t total = 1;
  bool overflow = false;
  for (size_t i = 0; i < u_cands.size(); ++i) {
    size_t arity = u_cands[i].size() * v_cands[i].size();
    if (arity == 0 ||
        total > options_.max_enumerated_candidates / arity) {
      overflow = true;
      break;
    }
    total *= arity;
  }
  if (overflow || total > options_.max_enumerated_candidates) {
    // High d: report only the greedy winner and phi.
    AQPP_ASSIGN_OR_RETURN(auto greedy,
                          IdentifyGreedy(query, rng, /*trace=*/nullptr));
    scored.push_back({greedy.pre, greedy.scored_error});
    if (!greedy.pre.IsEmpty()) {
      const uint64_t base_seed = rng.Next();
      BatchCandidateScorer::QueryContext ctx_storage;
      const BatchCandidateScorer::QueryContext* ctx = nullptr;
      if (options_.use_batched_scorer) {
        AQPP_ASSIGN_OR_RETURN(ctx_storage, scorer_->Prepare(query));
        ctx = &ctx_storage;
      }
      PreAggregate phi = MakePhi(cube_->scheme().num_dims());
      AQPP_ASSIGN_OR_RETURN(
          std::vector<double> phi_err,
          ScoreBatch(query, ctx, {phi}, base_seed, /*memo=*/nullptr));
      scored.push_back({phi, phi_err[0]});
    }
  } else {
    std::vector<PreAggregate> candidates = EnumerateCandidates(query);
    const uint64_t base_seed = rng.Next();
    BatchCandidateScorer::QueryContext ctx_storage;
    const BatchCandidateScorer::QueryContext* ctx = nullptr;
    if (options_.use_batched_scorer) {
      AQPP_ASSIGN_OR_RETURN(ctx_storage, scorer_->Prepare(query));
      ctx = &ctx_storage;
    }
    AQPP_ASSIGN_OR_RETURN(
        std::vector<double> errs,
        ScoreBatch(query, ctx, candidates, base_seed, /*memo=*/nullptr));
    for (size_t i = 0; i < candidates.size(); ++i) {
      scored.push_back({candidates[i], errs[i]});
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              return a.scored_error < b.scored_error;
            });
  return scored;
}

Result<IdentifiedAggregate> AggregateIdentifier::IdentifyBruteForce(
    const RangeQuery& query, Rng& rng) const {
  const PartitionScheme& scheme = cube_->scheme();
  const size_t d = scheme.num_dims();
  // All index pairs (u <= v) per dimension, i.e. the whole of P+.
  std::vector<std::vector<std::pair<size_t, size_t>>> per_dim(d);
  for (size_t i = 0; i < d; ++i) {
    size_t k = scheme.dim(i).num_cuts();
    for (size_t u = 0; u <= k; ++u) {
      for (size_t v = u + 1; v <= k; ++v) {
        per_dim[i].push_back({u, v});
      }
    }
    AQPP_CHECK(!per_dim[i].empty());
  }
  // Score candidates on the *full* sample for an exact comparison.
  SampleEstimator estimator(sample_,
                            {.confidence_level = options_.confidence_level,
                             .bootstrap_resamples = 40});
  auto score = [&](const PreAggregate& pre) -> Result<double> {
    RangePredicate pre_pred = pre.ToPredicate(scheme);
    PreValues values = ReadPreValues(pre);
    AQPP_ASSIGN_OR_RETURN(
        auto ci, estimator.EstimateWithPre(query, pre_pred, values, rng));
    return ci.half_width;
  };

  IdentifiedAggregate best;
  best.pre = MakePhi(d);
  AQPP_ASSIGN_OR_RETURN(double phi_err, score(best.pre));
  double best_error = phi_err;
  size_t count = 1;

  std::vector<size_t> idx(d, 0);
  while (true) {
    PreAggregate pre;
    pre.lo.resize(d);
    pre.hi.resize(d);
    for (size_t i = 0; i < d; ++i) {
      pre.lo[i] = per_dim[i][idx[i]].first;
      pre.hi[i] = per_dim[i][idx[i]].second;
    }
    AQPP_ASSIGN_OR_RETURN(double err, score(pre));
    ++count;
    if (err < best_error) {
      best_error = err;
      best.pre = pre;
    }
    // Advance the mixed-radix counter.
    size_t i = 0;
    while (i < d && ++idx[i] == per_dim[i].size()) {
      idx[i] = 0;
      ++i;
    }
    if (i == d) break;
  }
  best.values = ReadPreValues(best.pre);
  best.scored_error = best_error;
  best.num_candidates = count;
  return best;
}

}  // namespace aqpp
