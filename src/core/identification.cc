#include "core/identification.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/logging.h"

namespace aqpp {

namespace {

// Canonical phi: an all-empty box.
PreAggregate MakePhi(size_t d) {
  PreAggregate p;
  p.lo.assign(d, 0);
  p.hi.assign(d, 0);
  return p;
}

bool LessPre(const PreAggregate& a, const PreAggregate& b) {
  if (a.lo != b.lo) return a.lo < b.lo;
  return a.hi < b.hi;
}

}  // namespace

AggregateIdentifier::AggregateIdentifier(const PrefixCube* cube,
                                         const Sample* sample,
                                         IdentificationOptions options,
                                         Rng& rng)
    : cube_(cube), sample_(sample), options_(options) {
  AQPP_CHECK(cube != nullptr);
  AQPP_CHECK(sample != nullptr);
  const size_t d = cube_->scheme().num_dims();
  double rate = options_.subsample_rate;
  if (rate <= 0) {
    // Section 5.2: keep the total scoring work (|P-| * subsample rows) below
    // one pass over the full sample: rate <= 1/4^d. Keep at least ~512 rows
    // so the variance estimates stay usable.
    rate = 1.0 / std::pow(4.0, static_cast<double>(d));
    double min_rows = 512.0;
    rate = std::max(rate, min_rows / static_cast<double>(sample_->size()));
    rate = std::min(rate, 1.0);
  }
  if (options_.score_on_full_sample || rate >= 1.0) {
    scoring_sample_ = *sample_;
  } else {
    auto sub = Subsample(*sample_, rate, rng);
    AQPP_CHECK(sub.ok()) << sub.status().ToString();
    scoring_sample_ = std::move(sub).value();
  }
}

void AggregateIdentifier::BracketQuery(
    const RangeQuery& query, std::vector<std::vector<size_t>>* u_cands,
    std::vector<std::vector<size_t>>* v_cands) const {
  const PartitionScheme& scheme = cube_->scheme();
  const size_t d = scheme.num_dims();
  u_cands->resize(d);
  v_cands->resize(d);
  for (size_t i = 0; i < d; ++i) {
    const DimensionPartition& dim = scheme.dim(i);
    // Intersect all query conditions on this column.
    int64_t lo = std::numeric_limits<int64_t>::min();
    int64_t hi = std::numeric_limits<int64_t>::max();
    for (const auto& c : query.predicate.conditions()) {
      if (c.column == dim.column) {
        lo = std::max(lo, c.lo);
        hi = std::min(hi, c.hi);
      }
    }
    if (lo == std::numeric_limits<int64_t>::min()) {
      (*u_cands)[i] = {0};
    } else {
      int64_t b_lo = lo - 1;  // exclusive lower boundary of the query box
      size_t l = dim.LowerBracket(b_lo);
      size_t h = dim.UpperBracket(b_lo);
      (*u_cands)[i] =
          l == h ? std::vector<size_t>{l} : std::vector<size_t>{l, h};
    }
    if (hi == std::numeric_limits<int64_t>::max()) {
      (*v_cands)[i] = {dim.num_cuts()};
    } else {
      size_t l = dim.LowerBracket(hi);
      size_t h = dim.UpperBracket(hi);
      (*v_cands)[i] =
          l == h ? std::vector<size_t>{l} : std::vector<size_t>{l, h};
    }
  }
}

std::vector<PreAggregate> AggregateIdentifier::EnumerateCandidates(
    const RangeQuery& query) const {
  const size_t d = cube_->scheme().num_dims();
  std::vector<std::vector<size_t>> u_cands, v_cands;
  BracketQuery(query, &u_cands, &v_cands);

  // Cartesian product across dimensions (Equation 7).
  std::vector<PreAggregate> out;
  std::vector<size_t> arity(d);
  size_t total = 1;
  for (size_t i = 0; i < d; ++i) {
    arity[i] = u_cands[i].size() * v_cands[i].size();
    total *= arity[i];
  }
  std::set<std::vector<size_t>> seen;  // dedup on (lo || hi) concatenation
  for (size_t combo = 0; combo < total; ++combo) {
    size_t rem = combo;
    PreAggregate pre;
    pre.lo.resize(d);
    pre.hi.resize(d);
    bool empty = false;
    for (size_t i = 0; i < d; ++i) {
      size_t c = rem % arity[i];
      rem /= arity[i];
      size_t u = u_cands[i][c % u_cands[i].size()];
      size_t v = v_cands[i][c / u_cands[i].size()];
      if (u >= v) empty = true;
      pre.lo[i] = u;
      pre.hi[i] = v;
    }
    if (empty) continue;  // normalized into the single phi below
    std::vector<size_t> key = pre.lo;
    key.insert(key.end(), pre.hi.begin(), pre.hi.end());
    if (seen.insert(std::move(key)).second) {
      out.push_back(std::move(pre));
    }
  }
  out.push_back(MakePhi(d));
  return out;
}

PreValues AggregateIdentifier::ReadPreValues(const PreAggregate& pre) const {
  PreValues v;
  // Cube planes are laid out per the engine convention:
  // plane 0 = SUM(A), plane 1 = COUNT, plane 2 = SUM(A^2) (if present).
  if (cube_->num_measures() > 0) v.sum = cube_->BoxValue(pre, 0);
  if (cube_->num_measures() > 1) v.count = cube_->BoxValue(pre, 1);
  if (cube_->num_measures() > 2) v.sum_sq = cube_->BoxValue(pre, 2);
  return v;
}

Result<double> AggregateIdentifier::ScoreCandidate(const RangeQuery& query,
                                                   const PreAggregate& pre,
                                                   Rng& rng) const {
  SampleEstimator estimator(&scoring_sample_,
                            {.confidence_level = options_.confidence_level,
                             .bootstrap_resamples = 40});
  RangePredicate pre_pred = pre.ToPredicate(cube_->scheme());
  PreValues values = ReadPreValues(pre);
  AQPP_ASSIGN_OR_RETURN(
      auto ci, estimator.EstimateWithPre(query, pre_pred, values, rng));
  return ci.half_width;
}

Result<IdentifiedAggregate> AggregateIdentifier::IdentifyGreedy(
    const RangeQuery& query, Rng& rng) const {
  const size_t d = cube_->scheme().num_dims();
  std::vector<std::vector<size_t>> u_cands, v_cands;
  BracketQuery(query, &u_cands, &v_cands);

  // Start from the loosest box (every dimension at its outer brackets) and
  // refine one dimension at a time, keeping the subsample-scored best.
  PreAggregate current;
  current.lo.resize(d);
  current.hi.resize(d);
  for (size_t i = 0; i < d; ++i) {
    current.lo[i] = u_cands[i].front();
    current.hi[i] = v_cands[i].back();
    if (current.lo[i] >= current.hi[i]) {
      current.lo[i] = 0;
      current.hi[i] = cube_->scheme().dim(i).num_cuts();
    }
  }
  size_t scored = 0;
  for (size_t i = 0; i < d; ++i) {
    double best_err = std::numeric_limits<double>::infinity();
    std::pair<size_t, size_t> best_pair{current.lo[i], current.hi[i]};
    for (size_t u : u_cands[i]) {
      for (size_t v : v_cands[i]) {
        if (u >= v) continue;
        PreAggregate trial = current;
        trial.lo[i] = u;
        trial.hi[i] = v;
        AQPP_ASSIGN_OR_RETURN(double err, ScoreCandidate(query, trial, rng));
        ++scored;
        if (err < best_err) {
          best_err = err;
          best_pair = {u, v};
        }
      }
    }
    current.lo[i] = best_pair.first;
    current.hi[i] = best_pair.second;
  }
  // Final sanity comparison against phi.
  AQPP_ASSIGN_OR_RETURN(double final_err, ScoreCandidate(query, current, rng));
  PreAggregate phi = MakePhi(d);
  AQPP_ASSIGN_OR_RETURN(double phi_err, ScoreCandidate(query, phi, rng));
  scored += 2;

  IdentifiedAggregate best;
  best.pre = phi_err < final_err ? phi : current;
  best.scored_error = std::min(phi_err, final_err);
  best.values = ReadPreValues(best.pre);
  best.num_candidates = scored;
  return best;
}

Result<IdentifiedAggregate> AggregateIdentifier::Identify(
    const RangeQuery& query, Rng& rng) const {
  {
    // Candidate-count guard: 4^d blows up around d ~ 6; use the greedy
    // per-dimension refinement there instead.
    std::vector<std::vector<size_t>> u_cands, v_cands;
    BracketQuery(query, &u_cands, &v_cands);
    size_t total = 1;
    bool overflow = false;
    for (size_t i = 0; i < u_cands.size(); ++i) {
      size_t arity = u_cands[i].size() * v_cands[i].size();
      if (total > options_.max_enumerated_candidates / std::max<size_t>(1, arity)) {
        overflow = true;
        break;
      }
      total *= arity;
    }
    if (overflow || total > options_.max_enumerated_candidates) {
      return IdentifyGreedy(query, rng);
    }
  }
  std::vector<PreAggregate> candidates = EnumerateCandidates(query);
  AQPP_CHECK(!candidates.empty());
  IdentifiedAggregate best;
  double best_error = std::numeric_limits<double>::infinity();
  for (const auto& pre : candidates) {
    AQPP_ASSIGN_OR_RETURN(double err, ScoreCandidate(query, pre, rng));
    if (err < best_error) {
      best_error = err;
      best.pre = pre;
    }
  }
  best.values = ReadPreValues(best.pre);
  best.scored_error = best_error;
  best.num_candidates = candidates.size();
  return best;
}

Result<std::vector<ScoredCandidate>> AggregateIdentifier::ScoreAll(
    const RangeQuery& query, Rng& rng) const {
  std::vector<ScoredCandidate> scored;
  std::vector<std::vector<size_t>> u_cands, v_cands;
  BracketQuery(query, &u_cands, &v_cands);
  size_t total = 1;
  bool overflow = false;
  for (size_t i = 0; i < u_cands.size(); ++i) {
    size_t arity = u_cands[i].size() * v_cands[i].size();
    if (arity == 0 ||
        total > options_.max_enumerated_candidates / arity) {
      overflow = true;
      break;
    }
    total *= arity;
  }
  if (overflow || total > options_.max_enumerated_candidates) {
    // High d: report only the greedy winner and phi.
    AQPP_ASSIGN_OR_RETURN(auto greedy, IdentifyGreedy(query, rng));
    scored.push_back({greedy.pre, greedy.scored_error});
    PreAggregate phi = MakePhi(cube_->scheme().num_dims());
    AQPP_ASSIGN_OR_RETURN(double phi_err, ScoreCandidate(query, phi, rng));
    if (!greedy.pre.IsEmpty()) scored.push_back({phi, phi_err});
  } else {
    for (const auto& pre : EnumerateCandidates(query)) {
      AQPP_ASSIGN_OR_RETURN(double err, ScoreCandidate(query, pre, rng));
      scored.push_back({pre, err});
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              return a.scored_error < b.scored_error;
            });
  return scored;
}

Result<IdentifiedAggregate> AggregateIdentifier::IdentifyBruteForce(
    const RangeQuery& query, Rng& rng) const {
  const PartitionScheme& scheme = cube_->scheme();
  const size_t d = scheme.num_dims();
  // All index pairs (u <= v) per dimension, i.e. the whole of P+.
  std::vector<std::vector<std::pair<size_t, size_t>>> per_dim(d);
  for (size_t i = 0; i < d; ++i) {
    size_t k = scheme.dim(i).num_cuts();
    for (size_t u = 0; u <= k; ++u) {
      for (size_t v = u + 1; v <= k; ++v) {
        per_dim[i].push_back({u, v});
      }
    }
    AQPP_CHECK(!per_dim[i].empty());
  }
  // Score candidates on the *full* sample for an exact comparison.
  SampleEstimator estimator(sample_,
                            {.confidence_level = options_.confidence_level,
                             .bootstrap_resamples = 40});
  auto score = [&](const PreAggregate& pre) -> Result<double> {
    RangePredicate pre_pred = pre.ToPredicate(scheme);
    PreValues values = ReadPreValues(pre);
    AQPP_ASSIGN_OR_RETURN(
        auto ci, estimator.EstimateWithPre(query, pre_pred, values, rng));
    return ci.half_width;
  };

  IdentifiedAggregate best;
  best.pre = MakePhi(d);
  AQPP_ASSIGN_OR_RETURN(double phi_err, score(best.pre));
  double best_error = phi_err;
  size_t count = 1;

  std::vector<size_t> idx(d, 0);
  while (true) {
    PreAggregate pre;
    pre.lo.resize(d);
    pre.hi.resize(d);
    for (size_t i = 0; i < d; ++i) {
      pre.lo[i] = per_dim[i][idx[i]].first;
      pre.hi[i] = per_dim[i][idx[i]].second;
    }
    AQPP_ASSIGN_OR_RETURN(double err, score(pre));
    ++count;
    if (err < best_error) {
      best_error = err;
      best.pre = pre;
    }
    // Advance the mixed-radix counter.
    size_t i = 0;
    while (i < d && ++idx[i] == per_dim[i].size()) {
      idx[i] = 0;
      ++i;
    }
    if (i == d) break;
  }
  best.values = ReadPreValues(best.pre);
  best.scored_error = best_error;
  best.num_candidates = count;
  return best;
}

}  // namespace aqpp
