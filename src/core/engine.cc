#include "core/engine.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>

#include "common/logging.h"
#include "sampling/sample_io.h"
#include "sampling/workload_sampler.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace aqpp {

std::string QueryTemplate::ToString(const Schema& schema) const {
  std::string out = "[";
  out += AggregateFunctionToString(func);
  out += "(";
  out += schema.column(agg_column).name;
  out += ")";
  for (size_t c : condition_columns) {
    out += ", ";
    out += schema.column(c).name;
  }
  for (size_t g : group_columns) {
    out += ", GROUP ";
    out += schema.column(g).name;
  }
  out += "]";
  return out;
}

Result<std::unique_ptr<AqppEngine>> AqppEngine::Create(
    std::shared_ptr<Table> table, EngineOptions options) {
  if (table == nullptr || table->num_rows() == 0) {
    return Status::InvalidArgument("table must be non-empty");
  }
  if (options.sample_rate <= 0 || options.sample_rate > 1) {
    return Status::InvalidArgument("sample_rate must be in (0, 1]");
  }
  if (options.cube_budget == 0) {
    return Status::InvalidArgument("cube_budget must be > 0");
  }
  return std::unique_ptr<AqppEngine>(
      new AqppEngine(std::move(table), std::move(options)));
}

Status AqppEngine::EnsureSample() {
  if (has_sample_) return Status::OK();
  Timer timer;
  Result<Sample> sample = Status::Internal("unset");
  switch (options_.sampling) {
    case SamplingMethod::kUniform:
      sample = CreateUniformSample(*table_, options_.sample_rate, rng_);
      break;
    case SamplingMethod::kBernoulli:
      sample = CreateBernoulliSample(*table_, options_.sample_rate, rng_);
      break;
    case SamplingMethod::kStratified:
      if (options_.stratify_columns.empty()) {
        return Status::InvalidArgument(
            "stratified sampling requires stratify_columns");
      }
      sample = CreateStratifiedSample(*table_, options_.stratify_columns,
                                      options_.sample_rate, rng_);
      break;
    case SamplingMethod::kMeasureBiased:
      if (!template_.has_value()) {
        return Status::FailedPrecondition(
            "measure-biased sampling requires a prepared template (the "
            "measure attribute)");
      }
      sample = CreateMeasureBiasedSample(*table_, template_->agg_column,
                                         options_.sample_rate, rng_);
      break;
    case SamplingMethod::kWorkloadAware:
      sample = CreateWorkloadAwareSample(*table_, options_.workload_history,
                                         options_.sample_rate, rng_);
      break;
  }
  if (!sample.ok()) return sample.status();
  sample_ = std::move(sample).value();
  has_sample_ = true;
  measure_cache_ = std::make_unique<MeasureCache>(sample_.rows.get());
  prepare_stats_.sample_seconds = timer.ElapsedSeconds();
  prepare_stats_.sample_bytes = sample_.MemoryUsage();
  return Status::OK();
}

Status AqppEngine::Prepare(const QueryTemplate& tmpl) {
  if (tmpl.condition_columns.empty() && tmpl.group_columns.empty()) {
    return Status::InvalidArgument("template has no condition attributes");
  }
  template_ = tmpl;
  AQPP_RETURN_NOT_OK(EnsureSample());
  if (!options_.enable_precompute) {
    cube_.reset();
    identifier_.reset();
    return RefreshSynopsis();
  }

  // Group-by attributes become exhaustive cube dimensions (Appendix C).
  PrecomputeOptions popts = options_.precompute;
  popts.shape.hill_climb.confidence_level = options_.confidence_level;
  std::vector<size_t> all_columns = tmpl.condition_columns;
  for (size_t g : tmpl.group_columns) {
    if (std::find(all_columns.begin(), all_columns.end(), g) ==
        all_columns.end()) {
      all_columns.push_back(g);
    }
    popts.exhaustive_columns.push_back(g);
  }

  Precomputer precomputer(table_.get(), &sample_, tmpl.agg_column, popts);
  AQPP_ASSIGN_OR_RETURN(auto pre,
                        precomputer.Precompute(all_columns,
                                               options_.cube_budget));
  cube_ = pre.cube;
  prepare_stats_.stage1_seconds = pre.stage1_seconds;
  prepare_stats_.stage2_seconds = pre.stage2_seconds;
  prepare_stats_.cube_bytes = cube_->MemoryUsage();
  prepare_stats_.cube_cells = cube_->NumCells();
  prepare_stats_.shape.clear();
  for (const auto& dim : cube_->scheme().dims()) {
    prepare_stats_.shape.push_back(dim.num_cuts());
  }

  IdentificationOptions iopts = options_.identification;
  iopts.confidence_level = options_.confidence_level;
  identifier_ = std::make_unique<AggregateIdentifier>(cube_.get(), &sample_,
                                                      iopts, rng_);

  if (options_.enable_extrema) {
    AQPP_ASSIGN_OR_RETURN(
        extrema_, ExtremaGrid::Build(*table_, cube_->scheme(),
                                     tmpl.agg_column));
    prepare_stats_.cube_bytes += extrema_->MemoryUsage();
  } else {
    extrema_.reset();
  }
  return RefreshSynopsis();
}

Status AqppEngine::SetSynopsis(const std::string& kind) {
  if (kind.empty() || kind == "off") {
    std::lock_guard<std::mutex> lock(synopsis_mu_);
    synopsis_.reset();
    return Status::OK();
  }
  if (!synopsis::IsSynopsisRegistered(kind)) {
    return Status::NotFound("unknown synopsis kind '" + kind + "'");
  }
  AQPP_RETURN_NOT_OK(EnsureSample());
  synopsis::SynopsisOptions sopts;
  sopts.confidence_level = options_.confidence_level;
  sopts.bootstrap_resamples = options_.bootstrap_resamples;
  sopts.sample_rate = options_.sample_rate;
  sopts.seed = options_.seed;
  // Key columns: explicit stratification wins, else the template's condition
  // attributes (the columns queries actually constrain).
  if (!options_.stratify_columns.empty()) {
    sopts.key_columns = options_.stratify_columns;
  } else if (template_.has_value()) {
    sopts.key_columns = template_->condition_columns;
  }
  if (template_.has_value()) sopts.measure_column = template_->agg_column;
  AQPP_ASSIGN_OR_RETURN(auto syn, synopsis::CreateSynopsis(kind, sopts));
  // Adopt the engine's sample when the kind supports it (keeps the legacy
  // draws bit-identical for "reservoir"); otherwise build from the table.
  Status adopted = syn->BuildFromSample(sample_);
  if (adopted.code() == StatusCode::kUnimplemented) {
    AQPP_RETURN_NOT_OK(syn->BuildFromTable(*table_));
  } else if (!adopted.ok()) {
    return adopted;
  }
  std::lock_guard<std::mutex> lock(synopsis_mu_);
  synopsis_ = std::move(syn);
  return Status::OK();
}

Status AqppEngine::RefreshSynopsis() {
  std::string kind = options_.synopsis;
  {
    std::lock_guard<std::mutex> lock(synopsis_mu_);
    if (synopsis_ != nullptr) kind = synopsis_->kind();
  }
  if (kind.empty()) return Status::OK();
  return SetSynopsis(kind);
}

void AqppEngine::RecordQuery(const RangeQuery& query) {
  constexpr size_t kMaxRecorded = 1024;
  std::lock_guard<std::mutex> lock(workload_mu_);
  if (recorded_workload_.size() >= kMaxRecorded) {
    recorded_workload_.erase(recorded_workload_.begin());
  }
  recorded_workload_.push_back(query);
}

std::vector<RangeQuery> AqppEngine::recorded_workload() const {
  std::lock_guard<std::mutex> lock(workload_mu_);
  return recorded_workload_;
}

Status AqppEngine::AdaptToWorkload() {
  if (!template_.has_value()) {
    return Status::FailedPrecondition("no prepared template to adapt");
  }
  std::vector<RangeQuery> history = recorded_workload();
  if (history.empty()) {
    return Status::FailedPrecondition("no recorded workload to adapt to");
  }
  options_.sampling = SamplingMethod::kWorkloadAware;
  options_.workload_history = std::move(history);
  has_sample_ = false;  // force a redraw with the boosted probabilities
  return Prepare(*template_);
}

Result<ApproximateResult> AqppEngine::Execute(const RangeQuery& query) {
  return Execute(query, ExecuteControl{});
}

Result<ApproximateResult> AqppEngine::Execute(const RangeQuery& query,
                                              const ExecuteControl& control) {
  if (!query.group_by.empty()) {
    return Status::InvalidArgument("use ExecuteGroupBy for group-by queries");
  }
  AQPP_RETURN_NOT_OK(EnsureSample());
  if (control.record) RecordQuery(query);
  AQPP_RETURN_IF_STOPPED(control.cancel);
  // A seeded call runs on its own RNG (thread-safe, replayable); an
  // unseeded one consumes the engine's session RNG as before.
  Rng local_rng(control.seed.value_or(0));
  Rng& rng = control.seed.has_value() ? local_rng : rng_;
  ApproximateResult out;

  // MIN/MAX: sampling cannot estimate extrema; the extrema grid returns
  // deterministic bounds instead (Section 8 extension).
  if (query.func == AggregateFunction::kMin ||
      query.func == AggregateFunction::kMax) {
    if (extrema_ == nullptr) {
      return Status::Unimplemented(
          "MIN/MAX require enable_extrema (deterministic block bounds); "
          "sampling cannot estimate extrema");
    }
    Timer timer;
    auto bounds = query.func == AggregateFunction::kMax
                      ? extrema_->MaxBounds(query.predicate)
                      : extrema_->MinBounds(query.predicate);
    if (!bounds.ok()) return bounds.status();
    if (!bounds->has_lower) {
      return Status::FailedPrecondition(
          "query narrower than one block: no two-sided extrema bound "
          "available at this cube granularity");
    }
    out.ci.level = 1.0;  // deterministic interval
    out.ci.estimate = (bounds->lower + bounds->upper) / 2.0;
    out.ci.half_width = (bounds->upper - bounds->lower) / 2.0;
    out.used_pre = true;
    out.pre_description = bounds->exact ? "extrema grid (exact)"
                                        : "extrema grid (bounds)";
    out.estimation_seconds = timer.ElapsedSeconds();
    return out;
  }

  // Synopsis arm: when a synopsis is selected, it answers every scalar
  // estimate (direct and difference). The snapshot keeps a concurrent
  // SET SYNOPSIS from swapping the object mid-query.
  std::shared_ptr<synopsis::Synopsis> syn;
  {
    std::lock_guard<std::mutex> lock(synopsis_mu_);
    syn = synopsis_;
  }
  if (syn != nullptr) {
    return ExecuteWithSynopsis(query, control, *syn, rng);
  }

  SampleEstimator estimator(
      &sample_, {.confidence_level = options_.confidence_level,
                 .bootstrap_resamples = options_.bootstrap_resamples});
  if (measure_cache_ != nullptr) {
    estimator.set_measure_cache(measure_cache_.get());
  }
  estimator.set_trace(control.trace);

  if (cube_ == nullptr || identifier_ == nullptr) {
    Timer timer;
    obs::SpanTimer est_span(obs::Phase::kSampleEstimation, control.trace);
    // EstimateDirect is exactly Mask + EstimateDirectMasked, so handing in a
    // precomputed mask changes where the mask pass ran, never the bits.
    if (control.query_mask != nullptr) {
      AQPP_ASSIGN_OR_RETURN(
          out.ci,
          estimator.EstimateDirectMasked(query, *control.query_mask, rng));
    } else {
      AQPP_ASSIGN_OR_RETURN(out.ci, estimator.EstimateDirect(query, rng));
    }
    est_span.Stop();
    out.estimation_seconds = timer.ElapsedSeconds();
    return out;
  }

  Timer ident_timer;
  obs::SpanTimer ident_span(obs::Phase::kIdentification, control.trace);
  AQPP_ASSIGN_OR_RETURN(auto identified,
                        identifier_->Identify(query, rng, control.trace));
  ident_span.Stop();
  out.identification_seconds = ident_timer.ElapsedSeconds();
  out.candidates_considered = identified.num_candidates;
  AQPP_RETURN_IF_STOPPED(control.cancel);

  // Final estimation reuses precomputed masks: the query mask is evaluated
  // once here, and the winning box's mask comes straight from the
  // identifier's cached cell-id matrix (no predicate re-evaluation).
  Timer est_timer;
  obs::SpanTimer est_span(obs::Phase::kSampleEstimation, control.trace);
  std::vector<uint8_t> q_mask_storage;
  if (control.query_mask == nullptr) {
    AQPP_ASSIGN_OR_RETURN(q_mask_storage, estimator.Mask(query.predicate));
  }
  const std::vector<uint8_t>& q_mask =
      control.query_mask != nullptr ? *control.query_mask : q_mask_storage;
  if (identified.pre.IsEmpty()) {
    AQPP_ASSIGN_OR_RETURN(out.ci,
                          estimator.EstimateDirectMasked(query, q_mask, rng));
    out.used_pre = false;
    out.pre_description = "phi";
  } else {
    std::vector<uint8_t> pre_mask =
        identifier_->PreMaskOnSample(identified.pre);
    AQPP_ASSIGN_OR_RETURN(
        out.ci, estimator.EstimateWithPreMasked(query, q_mask, pre_mask,
                                                identified.values, rng));
    out.used_pre = true;
    out.pre_description =
        identified.pre.ToString(cube_->scheme(), table_->schema());
  }
  est_span.Stop();
  out.estimation_seconds = est_timer.ElapsedSeconds();
  return out;
}

Result<ApproximateResult> AqppEngine::ExecuteWithSynopsis(
    const RangeQuery& query, const ExecuteControl& control,
    const synopsis::Synopsis& syn, Rng& rng) {
  ApproximateResult out;
  if (cube_ == nullptr || identifier_ == nullptr) {
    Timer timer;
    obs::SpanTimer est_span(obs::Phase::kSampleEstimation, control.trace);
    AQPP_ASSIGN_OR_RETURN(out.ci, syn.Estimate(query, control, rng));
    est_span.Stop();
    out.estimation_seconds = timer.ElapsedSeconds();
    return out;
  }

  Timer ident_timer;
  obs::SpanTimer ident_span(obs::Phase::kIdentification, control.trace);
  AQPP_ASSIGN_OR_RETURN(auto identified,
                        identifier_->Identify(query, rng, control.trace));
  ident_span.Stop();
  out.identification_seconds = ident_timer.ElapsedSeconds();
  out.candidates_considered = identified.num_candidates;
  AQPP_RETURN_IF_STOPPED(control.cancel);

  Timer est_timer;
  obs::SpanTimer est_span(obs::Phase::kSampleEstimation, control.trace);
  if (identified.pre.IsEmpty()) {
    AQPP_ASSIGN_OR_RETURN(out.ci, syn.Estimate(query, control, rng));
    out.used_pre = false;
    out.pre_description = "phi";
  } else {
    Result<ConfidenceInterval> ci = Status::Internal("unset");
    if (syn.engine_aligned()) {
      // The synopsis rows mirror the engine sample row-for-row, so the
      // identifier's cached masks apply unchanged (no re-evaluation).
      std::vector<uint8_t> q_mask_storage;
      if (control.query_mask == nullptr) {
        SampleEstimator masker(
            &sample_, {.confidence_level = options_.confidence_level,
                       .bootstrap_resamples = options_.bootstrap_resamples});
        AQPP_ASSIGN_OR_RETURN(q_mask_storage, masker.Mask(query.predicate));
      }
      const std::vector<uint8_t>& q_mask = control.query_mask != nullptr
                                               ? *control.query_mask
                                               : q_mask_storage;
      std::vector<uint8_t> pre_mask =
          identifier_->PreMaskOnSample(identified.pre);
      ci = syn.EstimateWithPreMasked(query, q_mask, pre_mask,
                                     identified.values, control, rng);
    } else {
      ci = syn.EstimateWithPre(query,
                               identified.pre.ToPredicate(cube_->scheme()),
                               identified.values, control, rng);
    }
    if (ci.ok()) {
      out.ci = std::move(ci).value();
      out.used_pre = true;
      out.pre_description =
          identified.pre.ToString(cube_->scheme(), table_->schema());
    } else if (ci.status().code() == StatusCode::kUnimplemented) {
      // Synopses without a difference path answer directly; the pre is
      // dropped, not mis-applied.
      AQPP_ASSIGN_OR_RETURN(out.ci, syn.Estimate(query, control, rng));
      out.used_pre = false;
      out.pre_description = "phi (synopsis)";
    } else {
      return ci.status();
    }
  }
  est_span.Stop();
  out.estimation_seconds = est_timer.ElapsedSeconds();
  return out;
}

namespace {

constexpr char kStateMagic[8] = {'A', 'Q', 'P', 'P', 'E', 'N', 'G', '1'};

template <typename T>
void WritePod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return in.good();
}

void WriteIndexVector(std::ofstream& out, const std::vector<size_t>& v) {
  WritePod<uint64_t>(out, v.size());
  for (size_t x : v) WritePod<uint64_t>(out, x);
}

bool ReadIndexVector(std::ifstream& in, std::vector<size_t>* v) {
  uint64_t size = 0;
  if (!ReadPod(in, &size)) return false;
  v->resize(size);
  for (auto& x : *v) {
    uint64_t value = 0;
    if (!ReadPod(in, &value)) return false;
    x = value;
  }
  return true;
}

}  // namespace

Status AqppEngine::SaveState(const std::string& dir) const {
  if (!has_sample_ || !template_.has_value()) {
    return Status::FailedPrecondition("nothing prepared to save");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  AQPP_RETURN_NOT_OK(SaveSample(sample_, dir + "/sample"));
  if (cube_ != nullptr) {
    AQPP_RETURN_NOT_OK(cube_->WriteTo(dir + "/cube.bin"));
  }
  std::ofstream out(dir + "/template.bin", std::ios::binary);
  if (!out) return Status::IOError("cannot write template state");
  out.write(kStateMagic, sizeof(kStateMagic));
  WritePod<int32_t>(out, static_cast<int32_t>(template_->func));
  WritePod<uint64_t>(out, template_->agg_column);
  WriteIndexVector(out, template_->condition_columns);
  WriteIndexVector(out, template_->group_columns);
  WritePod<uint8_t>(out, cube_ != nullptr ? 1 : 0);
  if (!out) return Status::IOError("write failed for template state");
  return Status::OK();
}

Status AqppEngine::LoadState(const std::string& dir) {
  std::ifstream in(dir + "/template.bin", std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + dir + "/template.bin'");
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kStateMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("not an engine state directory");
  }
  QueryTemplate tmpl;
  int32_t func = 0;
  uint64_t agg_column = 0;
  uint8_t has_cube = 0;
  if (!ReadPod(in, &func) || !ReadPod(in, &agg_column) ||
      !ReadIndexVector(in, &tmpl.condition_columns) ||
      !ReadIndexVector(in, &tmpl.group_columns) || !ReadPod(in, &has_cube)) {
    return Status::IOError("truncated template state");
  }
  tmpl.func = static_cast<AggregateFunction>(func);
  tmpl.agg_column = agg_column;

  AQPP_ASSIGN_OR_RETURN(auto sample, LoadSample(dir + "/sample"));
  if (sample.rows->schema().ToString() != table_->schema().ToString()) {
    return Status::InvalidArgument(
        "saved sample schema does not match the engine's table");
  }
  sample_ = std::move(sample);
  has_sample_ = true;
  measure_cache_ = std::make_unique<MeasureCache>(sample_.rows.get());
  prepare_stats_.sample_bytes = sample_.MemoryUsage();
  template_ = tmpl;

  if (has_cube != 0) {
    AQPP_ASSIGN_OR_RETURN(cube_, PrefixCube::ReadFrom(dir + "/cube.bin"));
    prepare_stats_.cube_bytes = cube_->MemoryUsage();
    prepare_stats_.cube_cells = cube_->NumCells();
    prepare_stats_.shape.clear();
    for (const auto& dim : cube_->scheme().dims()) {
      prepare_stats_.shape.push_back(dim.num_cuts());
    }
    IdentificationOptions iopts = options_.identification;
    iopts.confidence_level = options_.confidence_level;
    identifier_ = std::make_unique<AggregateIdentifier>(cube_.get(), &sample_,
                                                        iopts, rng_);
  } else {
    cube_.reset();
    identifier_.reset();
  }
  return RefreshSynopsis();
}

Status AqppEngine::AdoptPrepared(const QueryTemplate& tmpl, Sample sample,
                                 std::shared_ptr<PrefixCube> cube) {
  if (sample.rows == nullptr || sample.size() == 0) {
    return Status::InvalidArgument("cannot adopt an empty sample");
  }
  if (sample.rows->schema().ToString() != table_->schema().ToString()) {
    return Status::InvalidArgument(
        "adopted sample schema does not match the engine's table");
  }
  sample_ = std::move(sample);
  has_sample_ = true;
  measure_cache_ = std::make_unique<MeasureCache>(sample_.rows.get());
  prepare_stats_.sample_bytes = sample_.MemoryUsage();
  template_ = tmpl;

  if (cube != nullptr) {
    cube_ = std::move(cube);
    prepare_stats_.cube_bytes = cube_->MemoryUsage();
    prepare_stats_.cube_cells = cube_->NumCells();
    prepare_stats_.shape.clear();
    for (const auto& dim : cube_->scheme().dims()) {
      prepare_stats_.shape.push_back(dim.num_cuts());
    }
    IdentificationOptions iopts = options_.identification;
    iopts.confidence_level = options_.confidence_level;
    identifier_ = std::make_unique<AggregateIdentifier>(cube_.get(), &sample_,
                                                        iopts, rng_);
  } else {
    cube_.reset();
    identifier_.reset();
  }
  return RefreshSynopsis();
}

Status AqppEngine::PublishMaintained(Sample sample,
                                     std::shared_ptr<PrefixCube> cube) {
  if (sample.rows == nullptr || sample.size() == 0) {
    return Status::InvalidArgument("cannot publish an empty sample");
  }
  if (sample.rows->schema().ToString() != table_->schema().ToString()) {
    return Status::InvalidArgument(
        "published sample schema does not match the engine's table");
  }
  sample_ = std::move(sample);
  has_sample_ = true;
  measure_cache_ = std::make_unique<MeasureCache>(sample_.rows.get());
  prepare_stats_.sample_bytes = sample_.MemoryUsage();

  if (cube != nullptr) {
    cube_ = std::move(cube);
    prepare_stats_.cube_bytes = cube_->MemoryUsage();
    prepare_stats_.cube_cells = cube_->NumCells();
    IdentificationOptions iopts = options_.identification;
    iopts.confidence_level = options_.confidence_level;
    identifier_ = std::make_unique<AggregateIdentifier>(cube_.get(), &sample_,
                                                        iopts, rng_);
  } else {
    cube_.reset();
    identifier_.reset();
  }
  return Status::OK();
}

Result<std::string> AqppEngine::Explain(const RangeQuery& query) {
  AQPP_RETURN_NOT_OK(EnsureSample());
  std::string out = "query: " + query.ToString(table_->schema()) + "\n";
  out += StrFormat("sample: %zu rows (%s, rate %.4g%%)\n", sample_.size(),
                   SamplingMethodToString(sample_.method),
                   sample_.sampling_fraction * 100);
  if (cube_ == nullptr || identifier_ == nullptr) {
    out += "plan: direct AQP estimate (no BP-Cube prepared)\n";
    return out;
  }
  out += StrFormat("cube: %zu cells, shape", cube_->NumCells());
  for (const auto& dim : cube_->scheme().dims()) {
    out += StrFormat(" %zu", dim.num_cuts());
  }
  out += "\ncandidates (P-, best first):\n";
  AQPP_ASSIGN_OR_RETURN(auto scored, identifier_->ScoreAll(query, rng_));
  for (size_t i = 0; i < scored.size(); ++i) {
    out += StrFormat(
        "  %2zu. %-50s est. error %.6g%s\n", i + 1,
        scored[i].pre.ToString(cube_->scheme(), table_->schema()).c_str(),
        scored[i].scored_error, i == 0 ? "  <- chosen" : "");
  }
  if (!scored.empty()) {
    out += scored.front().pre.IsEmpty()
               ? "plan: direct AQP estimate (phi won)\n"
               : "plan: difference estimate against the chosen pre "
                 "(Equation 4)\n";
  }
  return out;
}

Result<std::vector<GroupApproximateResult>> AqppEngine::ExecuteGroupBy(
    const RangeQuery& query) {
  return ExecuteGroupBy(query, ExecuteControl{});
}

Result<std::vector<GroupApproximateResult>> AqppEngine::ExecuteGroupBy(
    const RangeQuery& query, const ExecuteControl& control) {
  if (query.group_by.empty()) {
    return Status::InvalidArgument("query has no group-by columns");
  }
  for (size_t g : query.group_by) {
    if (g >= table_->num_columns() ||
        table_->column(g).type() == DataType::kDouble) {
      return Status::InvalidArgument("group-by column must be ordinal");
    }
  }
  AQPP_RETURN_NOT_OK(EnsureSample());
  if (control.record) RecordQuery(query);
  AQPP_RETURN_IF_STOPPED(control.cancel);
  Rng local_rng(control.seed.value_or(0));
  Rng& rng = control.seed.has_value() ? local_rng : rng_;

  // Locate each group-by column as a cube dimension (when a cube exists).
  std::vector<size_t> group_dims(query.group_by.size(),
                                 std::numeric_limits<size_t>::max());
  bool cube_covers_groups = cube_ != nullptr;
  if (cube_ != nullptr) {
    for (size_t g = 0; g < query.group_by.size(); ++g) {
      for (size_t i = 0; i < cube_->scheme().num_dims(); ++i) {
        if (cube_->scheme().dim(i).column == query.group_by[g]) {
          group_dims[g] = i;
        }
      }
      if (group_dims[g] == std::numeric_limits<size_t>::max()) {
        cube_covers_groups = false;
      }
    }
  }

  // Enumerate the groups observed in the sample (raw ordinal spans; the
  // group-by columns were validated ordinal above).
  std::vector<const int64_t*> group_data(query.group_by.size());
  for (size_t g = 0; g < query.group_by.size(); ++g) {
    group_data[g] = sample_.rows->column(query.group_by[g]).Int64Data().data();
  }
  std::set<std::vector<int64_t>> group_values;
  std::vector<int64_t> vals(query.group_by.size());
  for (size_t r = 0; r < sample_.rows->num_rows(); ++r) {
    for (size_t g = 0; g < query.group_by.size(); ++g) {
      vals[g] = group_data[g][r];
    }
    group_values.insert(vals);
  }

  SampleEstimator estimator(
      &sample_, {.confidence_level = options_.confidence_level,
                 .bootstrap_resamples = options_.bootstrap_resamples});
  if (measure_cache_ != nullptr) {
    estimator.set_measure_cache(measure_cache_.get());
  }
  estimator.set_trace(control.trace);

  // Identify once on the group-stripped query (Appendix C's heuristic).
  RangeQuery scalar = query;
  scalar.group_by.clear();
  IdentifiedAggregate identified;
  bool have_pre = false;
  double ident_seconds = 0;
  if (cube_covers_groups && identifier_ != nullptr) {
    Timer t;
    obs::SpanTimer ident_span(obs::Phase::kIdentification, control.trace);
    AQPP_ASSIGN_OR_RETURN(identified,
                          identifier_->Identify(scalar, rng, control.trace));
    ident_span.Stop();
    ident_seconds = t.ElapsedSeconds();
    have_pre = !identified.pre.IsEmpty();
  }

  obs::SpanTimer groups_span(obs::Phase::kSampleEstimation, control.trace);
  std::vector<GroupApproximateResult> results;
  for (const auto& vals : group_values) {
    GroupApproximateResult gr;
    gr.key.values = vals;

    // The per-group query pins every group column to its value.
    RangeQuery group_query = scalar;
    for (size_t g = 0; g < query.group_by.size(); ++g) {
      RangeCondition c;
      c.column = query.group_by[g];
      c.lo = c.hi = vals[g];
      group_query.predicate.Add(c);
    }

    Timer est_timer;
    IdentifiedAggregate group_identified = identified;
    bool group_have_pre = have_pre;
    if (options_.per_group_identification && cube_covers_groups &&
        identifier_ != nullptr) {
      // Appendix C's "more effective" variant: identify against the
      // group-pinned query itself. The group dimensions are exhaustive, so
      // the group value's slice is always exactly bracketable.
      auto per_group = identifier_->Identify(group_query, rng);
      if (per_group.ok()) {
        group_identified = std::move(*per_group);
        group_have_pre = !group_identified.pre.IsEmpty();
      }
    }
    if (group_have_pre) {
      // Pin the pre box to the group's cube slice on each group dimension.
      PreAggregate pre = group_identified.pre;
      bool sliceable = true;
      for (size_t g = 0; g < query.group_by.size(); ++g) {
        const auto& dim = cube_->scheme().dim(group_dims[g]);
        // The slice (v-1, v] exists iff v is a cut and its predecessor
        // boundary is the previous cut (exhaustive dims guarantee this).
        size_t upper = dim.UpperBracket(vals[g]);
        if (upper == 0 || upper > dim.num_cuts() ||
            dim.CutValue(upper) != vals[g]) {
          sliceable = false;
          break;
        }
        pre.lo[group_dims[g]] = upper - 1;
        pre.hi[group_dims[g]] = upper;
      }
      if (sliceable && !pre.IsEmpty()) {
        PreValues values;
        values.sum = cube_->BoxValue(pre, 0);
        values.count = cube_->num_measures() > 1 ? cube_->BoxValue(pre, 1) : 0;
        values.sum_sq =
            cube_->num_measures() > 2 ? cube_->BoxValue(pre, 2) : 0;
        AQPP_ASSIGN_OR_RETURN(auto gq_mask,
                              estimator.Mask(group_query.predicate));
        std::vector<uint8_t> pre_mask = identifier_->PreMaskOnSample(pre);
        AQPP_ASSIGN_OR_RETURN(
            gr.result.ci, estimator.EstimateWithPreMasked(group_query, gq_mask,
                                                          pre_mask, values,
                                                          rng));
        gr.result.used_pre = true;
        gr.result.pre_description =
            pre.ToString(cube_->scheme(), table_->schema());
      } else {
        AQPP_ASSIGN_OR_RETURN(gr.result.ci,
                              estimator.EstimateDirect(group_query, rng));
      }
    } else {
      AQPP_ASSIGN_OR_RETURN(gr.result.ci,
                            estimator.EstimateDirect(group_query, rng));
    }
    gr.result.estimation_seconds = est_timer.ElapsedSeconds();
    gr.result.identification_seconds =
        ident_seconds / static_cast<double>(group_values.size());
    gr.result.candidates_considered = identified.num_candidates;
    results.push_back(std::move(gr));
  }
  groups_span.Stop();
  std::sort(results.begin(), results.end(),
            [](const GroupApproximateResult& a,
               const GroupApproximateResult& b) {
              return a.key.values < b.key.values;
            });
  return results;
}

}  // namespace aqpp
