// Single-pass batched candidate scoring for aggregate identification
// (Problem 1, Section 5).
//
// Scoring a candidate pre-aggregate means estimating the query's CI width
// against it on a (sub)sample. The naive path re-evaluates the candidate's
// RangePredicate, re-materializes the measure column, and allocates fresh
// contribution vectors for every one of the up-to 4^d + 1 candidates. This
// module removes all of that redundant work:
//
//  * CellIndex buckets every sample row into its per-dimension partition
//    cell ONCE (one binary search per row per dimension), stored as a
//    row-major uint32 matrix. A candidate box (lo, hi] then contains row r
//    iff lo_i < cell[r][i] <= hi_i on every dimension — two integer
//    compares per dimension instead of a predicate evaluation.
//  * The query mask and measure column are computed once per query
//    (QueryContext) and shared by all candidates (and scoring threads).
//  * Candidate scoring fuses mask derivation with the moment accumulation
//    (RunningMoments directly; no per-candidate y/mask vectors). AVG/VAR
//    bootstrap scratch lives in thread-local buffers reused across
//    candidates and queries.
//  * The per-candidate sweep can be restricted to an active-row list (rows
//    inside the query or inside the hull of all candidate boxes, computed
//    once per batch): every excluded row has difference 0 for every
//    candidate, and the zero block is folded into the moments in closed
//    form instead of being walked row by row.
//
// AVG/VAR scores are bit-identical to SampleEstimator::EstimateWithPre on
// the same sample and RNG state (identical contribution vectors and RNG
// consumption); SUM/COUNT scores are algebraically identical with the zero
// rows folded in closed form, equal to the legacy path within ~1 ulp of the
// moment arithmetic (the equivalence suite asserts 1e-9 relative). Either
// way the batched scorer changes identification cost, not identification
// decisions.

#ifndef AQPP_CORE_SCORING_H_
#define AQPP_CORE_SCORING_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/estimator.h"
#include "cube/partition.h"
#include "expr/query.h"
#include "sampling/sample.h"

namespace aqpp {

// Row-major matrix of per-dimension partition cell ids for all rows of one
// table: cell (r, i) is the smallest cut index j >= 1 with
// value(r, dim_i) <= cut_i[j], i.e. row r lies in the half-open slab
// (cut_i[j-1], cut_i[j]]. Values beyond the last cut (impossible for a
// validated scheme, kept defensive) get the sentinel num_cuts + 1, which no
// box contains.
class CellIndex {
 public:
  // Buckets every row of `rows` against `scheme` (one binary search per row
  // per dimension).
  CellIndex(const Table& rows, const PartitionScheme& scheme);

  size_t num_rows() const { return num_dims_ == 0 ? 0 : cells_.size() / num_dims_; }
  size_t num_dims() const { return num_dims_; }
  const uint32_t* row(size_t r) const { return cells_.data() + r * num_dims_; }

  // True iff row r lies inside the box `pre` (two integer compares per
  // dimension). An empty box (lo >= hi anywhere) contains nothing.
  bool Contains(size_t r, const PreAggregate& pre) const {
    const uint32_t* c = row(r);
    for (size_t i = 0; i < num_dims_; ++i) {
      if (c[i] <= pre.lo[i] || c[i] > pre.hi[i]) return false;
    }
    return true;
  }

  // 0/1 membership mask of `pre` over all indexed rows — the batched
  // replacement for RangePredicate::EvaluateMask on a pre-box predicate.
  std::vector<uint8_t> BoxMask(const PreAggregate& pre) const;

 private:
  size_t num_dims_ = 0;
  std::vector<uint32_t> cells_;
};

// Scores identification candidates for one (sub)sample against one scheme.
// Thread-compatible: Score() is const and safe to call concurrently from
// pool workers once a QueryContext has been prepared.
class BatchCandidateScorer {
 public:
  // `sample` and `scheme` must outlive the scorer. `bootstrap_resamples`
  // applies to the AVG/VAR bootstrap scoring paths.
  BatchCandidateScorer(const Sample* sample, const PartitionScheme* scheme,
                       double confidence_level, size_t bootstrap_resamples);

  // Query-scoped shared state: the query's row mask and measure column,
  // computed once and read by every candidate scoring call.
  struct QueryContext {
    AggregateFunction func = AggregateFunction::kSum;
    std::vector<uint8_t> q_mask;
    // Null for COUNT (implicit all-ones measure).
    const std::vector<double>* measure = nullptr;
  };

  Result<QueryContext> Prepare(const RangeQuery& query) const;

  // Rows that can contribute a nonzero difference for some candidate box,
  // grouped by distinct partition cell: all rows of a group share one cell
  // id tuple, so a candidate's membership is decided once per group (two
  // integer compares per dimension) instead of once per row.
  struct ActiveSet {
    // Active row indices, grouped by cell; group g occupies
    // rows[starts[g] .. starts[g + 1]) and has cell tuple
    // cells[g * num_dims .. (g + 1) * num_dims).
    std::vector<uint32_t> rows;
    std::vector<uint32_t> starts;
    std::vector<uint32_t> cells;
    size_t num_groups() const {
      return starts.empty() ? 0 : starts.size() - 1;
    }
  };

  // Builds the active set for one batch: rows matching the query plus rows
  // inside `hull` (the elementwise hull of the batch's non-empty candidate
  // boxes; pass nullptr when every candidate is empty). Every excluded row
  // has an exactly-zero difference for every candidate in the batch. One
  // sweep per batch, shared by all of the batch's Score calls. With `group`
  // the rows are additionally sorted into cell groups (one extra O(a log a)
  // pass that pays off once the batch has enough candidates to amortize
  // it); without it Score tests membership per row.
  ActiveSet ActiveRows(const QueryContext& ctx, const PreAggregate* hull,
                       bool group) const;

  // CI half-width of the query (in `ctx`) estimated against `pre` with the
  // candidate's exact cube values. Equal to
  // SampleEstimator::EstimateWithPre(query, pre.ToPredicate(scheme), values,
  // rng).half_width for the same rng state — bit-identical for AVG/VAR,
  // within ~1 ulp for SUM/COUNT (closed-form zero folding). `active`, when
  // non-null, must cover every row with a nonzero difference for `pre`
  // (see ActiveRows); null sweeps all rows.
  Result<double> Score(const QueryContext& ctx, const PreAggregate& pre,
                       const PreValues& values, Rng& rng,
                       const ActiveSet* active = nullptr) const;

  const CellIndex& cell_index() const { return cells_; }

 private:
  const Sample* sample_;
  const PartitionScheme* scheme_;
  double confidence_level_;
  size_t bootstrap_resamples_;
  double lambda_;
  CellIndex cells_;
  // Row count per stratum of the scoring sample (empty when the sample is
  // not stratified); lets the sparse sweep recover full-stratum moments.
  std::vector<double> stratum_rows_;
  mutable MeasureCache measures_;
};

}  // namespace aqpp

#endif  // AQPP_CORE_SCORING_H_
