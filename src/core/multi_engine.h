// Multi-template sessions (Appendix C, "Multiple Query Templates").
//
// A warehouse rarely serves one query template. MultiTemplateEngine draws a
// single shared sample, splits the total cube budget across templates with
// the error-equalizing allocator, precomputes one BP-Cube per template, and
// routes each incoming query to the best-matching cube (fully covering
// templates first, then maximal overlap; plain AQP when nothing fits).

#ifndef AQPP_CORE_MULTI_ENGINE_H_
#define AQPP_CORE_MULTI_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/allocation.h"
#include "core/engine.h"
#include "core/estimator.h"
#include "core/identification.h"
#include "core/precompute.h"

namespace aqpp {

struct MultiEngineOptions {
  double sample_rate = 0.01;
  // Total cell budget shared by all templates.
  size_t total_cube_budget = 50'000;
  double confidence_level = 0.95;
  IdentificationOptions identification;
  ShapeOptions shape;
  size_t bootstrap_resamples = 120;
  uint64_t seed = 42;
  // Synopsis kind routed queries estimate with ("" = legacy estimator,
  // bit-identical to the pre-synopsis engine). Overridable per template.
  std::string default_synopsis;
  // Per-template override of default_synopsis, indexed like the Prepare()
  // template list; "" entries (or a short vector) fall back to the default.
  std::vector<std::string> synopsis_per_template;
};

class MultiTemplateEngine {
 public:
  static Result<std::unique_ptr<MultiTemplateEngine>> Create(
      std::shared_ptr<Table> table, MultiEngineOptions options);

  // Draws the shared sample (once), allocates the budget across `templates`
  // (error-equalizing), and precomputes one cube per template. Replaces any
  // previously prepared set.
  Status Prepare(const std::vector<QueryTemplate>& templates);

  // Routes to the best-matching template's cube; plain AQP when no template
  // covers any of the query's condition columns.
  Result<ApproximateResult> Execute(const RangeQuery& query);

  // Per-call control (cancellation, deterministic seed) — same contract as
  // AqppEngine::Execute: seeded calls are safe to run concurrently.
  Result<ApproximateResult> Execute(const RangeQuery& query,
                                    const ExecuteControl& control);

  // Index of the template Execute() would route `query` to, or -1 for the
  // direct AQP path.
  int RouteFor(const RangeQuery& query) const;

  size_t num_templates() const { return prepared_.size(); }
  const Table& table() const { return *table_; }
  const MultiEngineOptions& options() const { return options_; }
  const Sample& sample() const { return sample_; }
  // Budget actually allocated to template t.
  size_t budget_of(size_t t) const { return prepared_[t].budget; }
  const PrefixCube& cube_of(size_t t) const { return *prepared_[t].cube; }
  // Template t's synopsis, or nullptr when it runs the legacy estimator.
  const synopsis::Synopsis* synopsis_of(size_t t) const {
    return prepared_[t].synopsis.get();
  }

 private:
  MultiTemplateEngine(std::shared_ptr<Table> table, MultiEngineOptions options)
      : table_(std::move(table)), options_(std::move(options)),
        rng_(options_.seed) {}

  struct PreparedTemplate {
    QueryTemplate tmpl;
    size_t budget = 0;
    std::shared_ptr<PrefixCube> cube;
    std::unique_ptr<AggregateIdentifier> identifier;
    // Per-template synopsis (MultiEngineOptions::default_synopsis /
    // synopsis_per_template); nullptr = legacy estimator.
    std::shared_ptr<synopsis::Synopsis> synopsis;
  };

  std::shared_ptr<Table> table_;
  MultiEngineOptions options_;
  Rng rng_;
  Sample sample_;
  bool has_sample_ = false;
  // Shared double-materialized measure columns over the session sample.
  std::unique_ptr<MeasureCache> measure_cache_;
  std::vector<PreparedTemplate> prepared_;
};

}  // namespace aqpp

#endif  // AQPP_CORE_MULTI_ENGINE_H_
