#include "core/scoring.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "stats/descriptive.h"

namespace aqpp {

CellIndex::CellIndex(const Table& rows, const PartitionScheme& scheme) {
  num_dims_ = scheme.num_dims();
  const size_t n = rows.num_rows();
  cells_.resize(n * num_dims_);
  for (size_t i = 0; i < num_dims_; ++i) {
    const DimensionPartition& dim = scheme.dim(i);
    const std::vector<int64_t>& values = rows.column(dim.column).Int64Data();
    const auto begin = dim.cuts.begin();
    const auto end = dim.cuts.end();
    const uint32_t sentinel = static_cast<uint32_t>(dim.num_cuts() + 1);
    for (size_t r = 0; r < n; ++r) {
      auto it = std::lower_bound(begin, end, values[r]);
      cells_[r * num_dims_ + i] =
          it == end ? sentinel : static_cast<uint32_t>(it - begin) + 1;
    }
  }
}

std::vector<uint8_t> CellIndex::BoxMask(const PreAggregate& pre) const {
  const size_t n = num_rows();
  std::vector<uint8_t> mask(n);
  for (size_t r = 0; r < n; ++r) {
    mask[r] = Contains(r, pre) ? 1 : 0;
  }
  return mask;
}

BatchCandidateScorer::BatchCandidateScorer(const Sample* sample,
                                           const PartitionScheme* scheme,
                                           double confidence_level,
                                           size_t bootstrap_resamples)
    : sample_(sample),
      scheme_(scheme),
      confidence_level_(confidence_level),
      bootstrap_resamples_(bootstrap_resamples),
      lambda_(NormalCriticalValue(confidence_level)),
      cells_(*sample->rows, *scheme),
      measures_(sample->rows.get()) {
  AQPP_CHECK(sample != nullptr);
  AQPP_CHECK_GT(sample->size(), 0u);
  if (sample_->stratified()) {
    stratum_rows_.assign(sample_->stratum_info.size(), 0.0);
    for (size_t i = 0; i < sample_->size(); ++i) {
      stratum_rows_[static_cast<size_t>(sample_->strata[i])] += 1.0;
    }
  }
}

BatchCandidateScorer::ActiveSet BatchCandidateScorer::ActiveRows(
    const QueryContext& ctx, const PreAggregate* hull, bool group) const {
  const size_t n = sample_->size();
  const size_t d = cells_.num_dims();
  ActiveSet set;
  set.rows.reserve(n / 4);
  for (size_t i = 0; i < n; ++i) {
    if (ctx.q_mask[i] != 0 || (hull != nullptr && cells_.Contains(i, *hull))) {
      set.rows.push_back(static_cast<uint32_t>(i));
    }
  }
  if (!group) return set;

  // Group by cell tuple, rows ascending within a group — a deterministic
  // order, so scores cannot depend on how the set was built. Fast path:
  // flatten the tuple into the high bits of one uint64 above the row index,
  // so a plain integer sort produces the grouping.
  uint64_t total_cells = 1;
  bool flat_ok = true;
  std::vector<uint64_t> strides(d);
  for (size_t i = 0; i < d; ++i) {
    const uint64_t s = static_cast<uint64_t>(scheme_->dim(i).num_cuts()) + 2;
    strides[i] = s;
    if (total_cells > (uint64_t{1} << 32) / s) {
      flat_ok = false;
      break;
    }
    total_cells *= s;
  }
  if (flat_ok) {
    std::vector<uint64_t> keys(set.rows.size());
    for (size_t k = 0; k < set.rows.size(); ++k) {
      const uint32_t* c = cells_.row(set.rows[k]);
      uint64_t flat = 0;
      for (size_t i = 0; i < d; ++i) flat = flat * strides[i] + c[i];
      keys[k] = (flat << 32) | set.rows[k];
    }
    std::sort(keys.begin(), keys.end());
    for (size_t k = 0; k < keys.size(); ++k) {
      set.rows[k] = static_cast<uint32_t>(keys[k]);
    }
  } else {
    std::sort(set.rows.begin(), set.rows.end(), [&](uint32_t a, uint32_t b) {
      const uint32_t* ca = cells_.row(a);
      const uint32_t* cb = cells_.row(b);
      for (size_t i = 0; i < d; ++i) {
        if (ca[i] != cb[i]) return ca[i] < cb[i];
      }
      return a < b;
    });
  }
  for (size_t k = 0; k < set.rows.size(); ++k) {
    const uint32_t* c = cells_.row(set.rows[k]);
    if (k == 0 ||
        !std::equal(c, c + d, cells_.row(set.rows[k - 1]))) {
      set.starts.push_back(static_cast<uint32_t>(k));
      set.cells.insert(set.cells.end(), c, c + d);
    }
  }
  set.starts.push_back(static_cast<uint32_t>(set.rows.size()));
  return set;
}

Result<BatchCandidateScorer::QueryContext> BatchCandidateScorer::Prepare(
    const RangeQuery& query) const {
  if (!query.group_by.empty()) {
    return Status::InvalidArgument("candidate scoring covers scalar queries");
  }
  QueryContext ctx;
  ctx.func = query.func;
  AQPP_ASSIGN_OR_RETURN(ctx.q_mask,
                        query.predicate.EvaluateMask(*sample_->rows));
  if (query.func != AggregateFunction::kCount) {
    AQPP_ASSIGN_OR_RETURN(ctx.measure, measures_.Get(query.agg_column));
  }
  return ctx;
}

namespace {

// Per-thread scratch for the bootstrap scoring paths, reused across
// candidates and queries (pool workers are persistent, so these buffers are
// allocated once per thread for the process lifetime).
struct BootstrapScratch {
  std::vector<double> s2_contrib;
  std::vector<double> s_contrib;
  std::vector<double> c_contrib;
};

BootstrapScratch& ThreadScratch() {
  static thread_local BootstrapScratch scratch;
  return scratch;
}

// Per-thread per-stratum moment accumulators (stratified SumCI).
std::vector<RunningMoments>& StratumScratch(size_t num_strata) {
  static thread_local std::vector<RunningMoments> moments;
  moments.assign(num_strata, RunningMoments());
  return moments;
}

// Sample variance of the multiset formed by the values accumulated in `z`
// plus (n - z.count()) exact zeros, folded in closed form: the zero block
// shifts the mean to mean * m/n and contributes (n - m) * mean_all^2 to the
// centered second moment. Equal to walking the zeros through Welford up to
// the rounding of the moment arithmetic (~1 ulp).
double SparseVarianceSample(const RunningMoments& z, double n) {
  if (n <= 1.0) return 0.0;
  const double m = z.count();
  if (m <= 0.0) return 0.0;
  if (m >= n) return z.variance_sample();
  const double mean_nz = z.mean();
  const double mean_all = mean_nz * (m / n);
  const double shift = mean_nz - mean_all;
  const double m2_all = z.variance_population() * m + m * shift * shift +
                        (n - m) * mean_all * mean_all;
  return m2_all / (n - 1.0);
}

// Ensures `v` is an all-zero vector of size n. Callers that write sparse
// entries must restore the zeros afterwards (cheap: same active list).
void EnsureZeroed(std::vector<double>& v, size_t n) {
  if (v.size() != n) v.assign(n, 0.0);
}

}  // namespace

Result<double> BatchCandidateScorer::Score(
    const QueryContext& ctx, const PreAggregate& pre, const PreValues& values,
    Rng& rng, const ActiveSet* active) const {
  const size_t n = sample_->size();
  const std::vector<uint8_t>& q_mask = ctx.q_mask;
  const std::vector<double>* measure = ctx.measure;
  const std::vector<double>& weights = sample_->weights;

  // Invokes fn(i, diff) for every row whose query-vs-box difference is
  // nonzero (diff is exactly +1.0 or -1.0); every skipped row contributes
  // an exact zero. With an active set, box membership is decided once per
  // cell group; without one, the whole sample is swept row by row.
  auto for_nonzero = [&](auto&& fn) {
    if (active != nullptr && active->starts.empty()) {
      // Ungrouped active set: membership test per row.
      for (uint32_t r : active->rows) {
        const size_t i = r;
        const uint8_t inside = cells_.Contains(i, pre) ? 1 : 0;
        if (q_mask[i] == inside) continue;
        fn(i, static_cast<double>(q_mask[i]) - static_cast<double>(inside));
      }
    } else if (active != nullptr) {
      const size_t d = cells_.num_dims();
      const size_t groups = active->num_groups();
      for (size_t g = 0; g < groups; ++g) {
        const uint32_t* cell = active->cells.data() + g * d;
        uint8_t inside = 1;
        for (size_t i = 0; i < d; ++i) {
          if (cell[i] <= pre.lo[i] || cell[i] > pre.hi[i]) {
            inside = 0;
            break;
          }
        }
        for (uint32_t k = active->starts[g]; k < active->starts[g + 1]; ++k) {
          const size_t i = active->rows[k];
          if (q_mask[i] == inside) continue;
          fn(i, static_cast<double>(q_mask[i]) - static_cast<double>(inside));
        }
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const uint8_t inside = cells_.Contains(i, pre) ? 1 : 0;
        if (q_mask[i] == inside) continue;
        fn(i, static_cast<double>(q_mask[i]) - static_cast<double>(inside));
      }
    }
  };

  switch (ctx.func) {
    case AggregateFunction::kSum:
    case AggregateFunction::kCount: {
      // Fused SumDifferenceCI: y_i = A_i * (cond_q - cond_pre) accumulated
      // straight into the moment sums. Rows with zero difference are not
      // walked; their (exactly zero) contributions are folded back in closed
      // form by SparseVarianceSample.
      if (sample_->stratified()) {
        std::vector<RunningMoments>& per_stratum =
            StratumScratch(sample_->stratum_info.size());
        for_nonzero([&](size_t i, double diff) {
          double y = measure != nullptr ? (*measure)[i] * diff : 1.0 * diff;
          per_stratum[static_cast<size_t>(sample_->strata[i])].Add(y);
        });
        double var = 0;
        for (size_t h = 0; h < per_stratum.size(); ++h) {
          const double n_h = stratum_rows_[h];
          if (n_h <= 0.0) continue;
          double num_pop =
              static_cast<double>(sample_->stratum_info[h].population_rows);
          var += num_pop * num_pop *
                 SparseVarianceSample(per_stratum[h], n_h) / n_h;
        }
        return lambda_ * std::sqrt(std::max(0.0, var));
      }
      RunningMoments z;
      const double dn = static_cast<double>(n);
      for_nonzero([&](size_t i, double diff) {
        double y = measure != nullptr ? (*measure)[i] * diff : 1.0 * diff;
        z.Add(dn * weights[i] * y);
      });
      return lambda_ * std::sqrt(SparseVarianceSample(z, dn) / dn);
    }
    case AggregateFunction::kAvg: {
      AQPP_CHECK(measure != nullptr);
      BootstrapScratch& scratch = ThreadScratch();
      EnsureZeroed(scratch.s_contrib, n);
      EnsureZeroed(scratch.c_contrib, n);
      for_nonzero([&](size_t i, double diff) {
        double w = weights[i];
        scratch.s_contrib[i] = w * (*measure)[i] * diff;
        scratch.c_contrib[i] = w * diff;
      });
      double half_width =
          AvgDifferenceBootstrapCI(scratch.s_contrib, scratch.c_contrib,
                                   values, confidence_level_,
                                   bootstrap_resamples_, rng)
              .half_width;
      for_nonzero([&](size_t i, double diff) {
        (void)diff;
        scratch.s_contrib[i] = 0.0;
        scratch.c_contrib[i] = 0.0;
      });
      return half_width;
    }
    case AggregateFunction::kVar: {
      AQPP_CHECK(measure != nullptr);
      BootstrapScratch& scratch = ThreadScratch();
      EnsureZeroed(scratch.s2_contrib, n);
      EnsureZeroed(scratch.s_contrib, n);
      EnsureZeroed(scratch.c_contrib, n);
      for_nonzero([&](size_t i, double diff) {
        double w = weights[i];
        scratch.s2_contrib[i] = w * (*measure)[i] * (*measure)[i] * diff;
        scratch.s_contrib[i] = w * (*measure)[i] * diff;
        scratch.c_contrib[i] = w * diff;
      });
      double half_width =
          VarDifferenceBootstrapCI(scratch.s2_contrib, scratch.s_contrib,
                                   scratch.c_contrib, values,
                                   confidence_level_, bootstrap_resamples_,
                                   rng)
              .half_width;
      for_nonzero([&](size_t i, double diff) {
        (void)diff;
        scratch.s2_contrib[i] = 0.0;
        scratch.s_contrib[i] = 0.0;
        scratch.c_contrib[i] = 0.0;
      });
      return half_width;
    }
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      return Status::Unimplemented(
          "AQP++ inherits AQP's aggregate support; MIN/MAX unsupported");
  }
  return Status::Internal("unreachable");
}

}  // namespace aqpp
