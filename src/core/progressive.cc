#include "core/progressive.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "kernels/elementwise.h"
#include "stats/confidence.h"
#include "stats/descriptive.h"

namespace aqpp {

ProgressiveExecutor::ProgressiveExecutor(const Sample* sample,
                                         const PrefixCube* cube,
                                         ProgressiveOptions options)
    : sample_(sample), cube_(cube), options_(std::move(options)) {
  AQPP_CHECK(sample != nullptr);
}

Result<std::vector<ProgressiveStep>> ProgressiveExecutor::Run(
    const RangeQuery& query, Rng& rng, const CancellationToken* cancel) {
  if (!query.group_by.empty()) {
    return Status::InvalidArgument("progressive mode covers scalar queries");
  }
  if (query.func != AggregateFunction::kSum &&
      query.func != AggregateFunction::kCount) {
    return Status::Unimplemented("progressive mode covers SUM and COUNT");
  }
  if (sample_->method != SamplingMethod::kUniform &&
      sample_->method != SamplingMethod::kBernoulli) {
    return Status::InvalidArgument(
        "progressive mode requires a uniform/Bernoulli sample");
  }
  const size_t n = sample_->size();
  if (n == 0) return Status::FailedPrecondition("empty sample");

  // Consumption order: a fixed random permutation of the sample.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Shuffle(order, rng);

  // Identify the pre once on the full sample (when a cube is present).
  PreValues pre_values;
  RangePredicate pre_predicate;
  bool have_pre = false;
  if (cube_ != nullptr) {
    IdentificationOptions iopts;
    iopts.confidence_level = options_.confidence_level;
    AggregateIdentifier identifier(cube_, sample_, iopts, rng);
    AQPP_ASSIGN_OR_RETURN(auto identified, identifier.Identify(query, rng));
    if (!identified.pre.IsEmpty()) {
      have_pre = true;
      pre_values = identified.values;
      pre_predicate = identified.pre.ToPredicate(cube_->scheme());
    }
  }

  // Per-row population-sum contributions y_i (difference form when a pre is
  // in play).
  AQPP_ASSIGN_OR_RETURN(auto q_mask, query.predicate.EvaluateMask(*sample_->rows));
  std::vector<uint8_t> pre_mask(n, 0);
  if (have_pre) {
    AQPP_ASSIGN_OR_RETURN(pre_mask, pre_predicate.EvaluateMask(*sample_->rows));
  }
  const bool is_count = query.func == AggregateFunction::kCount;
  const Column* measure =
      is_count ? nullptr : &sample_->rows->column(query.agg_column);
  const double pre_constant = is_count ? pre_values.count : pre_values.sum;
  const double population = static_cast<double>(sample_->population_size);

  // Difference series over the measure's raw double view (borrowed for
  // kDouble columns, materialized once otherwise).
  Column::DoubleView view;
  if (!is_count) view = measure->AsDoubleView();
  std::vector<double> y(n);
  kernels::DifferenceSeries(is_count ? nullptr : view.data, q_mask.data(),
                            have_pre ? pre_mask.data() : nullptr, n, y.data());

  // Checkpoint schedule.
  std::vector<double> fractions = options_.checkpoints;
  if (fractions.empty()) {
    for (double f = 1.0 / 64; f < 1.0; f *= 2) fractions.push_back(f);
    fractions.push_back(1.0);
  }
  std::sort(fractions.begin(), fractions.end());

  const double lambda = NormalCriticalValue(options_.confidence_level);
  std::vector<ProgressiveStep> steps;
  RunningMoments z;  // streaming moments of N * y over the consumed prefix
  size_t consumed = 0;
  for (double f : fractions) {
    size_t target = std::clamp<size_t>(
        static_cast<size_t>(std::llround(f * static_cast<double>(n))), 1, n);
    while (consumed < target) {
      z.Add(population * y[order[consumed]]);
      ++consumed;
    }
    ProgressiveStep step;
    step.rows_used = consumed;
    step.ci.level = options_.confidence_level;
    step.ci.estimate = pre_constant + z.mean();
    step.ci.half_width =
        lambda * std::sqrt(z.variance_sample() / static_cast<double>(consumed));
    steps.push_back(step);
    if (cancel != nullptr && cancel->ShouldStop()) break;
  }
  return steps;
}

}  // namespace aqpp
