// Budget allocation policies (Appendix C: "Multiple Query Templates" and
// "Space Allocation").

#ifndef AQPP_CORE_ALLOCATION_H_
#define AQPP_CORE_ALLOCATION_H_

#include <vector>

#include "common/status.h"
#include "core/precompute.h"
#include "storage/table.h"

namespace aqpp {

// One query template to provision for.
struct TemplateSpec {
  size_t agg_column = 0;
  std::vector<size_t> condition_columns;
};

struct TemplateAllocation {
  // k_t per template; sums to <= the total budget.
  std::vector<size_t> budgets;
  // Predicted query-template error at the allocated budget (the common
  // error level the binary search converged to, per template).
  std::vector<double> predicted_errors;
};

// Splits a total cell budget across several query templates by equalizing
// their predicted errors, the Appendix C generalization of the Section 6.2
// per-dimension binary search. Template error is modeled from the
// per-dimension profile fits: with balanced dimensions,
//   error_t(k) = (prod_i c_i^2 / k)^(1 / (2 d_t)).
class MultiTemplateAllocator {
 public:
  // `sample_table` is the shared sample all templates are profiled on.
  MultiTemplateAllocator(const Table* sample_table, size_t population_size,
                         ShapeOptions options = {});

  Result<TemplateAllocation> Allocate(const std::vector<TemplateSpec>& specs,
                                      size_t total_budget) const;

 private:
  const Table* sample_table_;
  size_t population_size_;
  ShapeOptions options_;
};

// Appendix C's sample-vs-cube space split: sample size dominates response
// time while the BP-Cube does not, so pick the largest sample that meets
// the response-time requirement, then spend the remaining bytes on cube
// cells.
struct SpaceSplit {
  size_t sample_rows = 0;
  size_t cube_cells = 0;
};

// `bytes_per_sample_row` / `bytes_per_cell`: storage costs (a cell is one
// double per measure plane). `sample_rows_per_second`: estimation
// throughput used to convert the response-time budget into a row cap.
Result<SpaceSplit> SplitSpaceBudget(size_t total_bytes,
                                    size_t bytes_per_sample_row,
                                    size_t bytes_per_cell,
                                    double max_response_seconds,
                                    double sample_rows_per_second);

}  // namespace aqpp

#endif  // AQPP_CORE_ALLOCATION_H_
