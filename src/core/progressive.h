// Progressive (online-aggregation-style) execution.
//
// The paper's related work discusses online aggregation and names the
// online-sampling setting an interesting direction for AQP++ (Section 2).
// This module provides that mode: the sample's rows are consumed in a fixed
// random order, and after every checkpoint the AQP++ difference estimator
// (or plain AQP when no pre is supplied) emits a confidence interval — so a
// dashboard can render an answer that tightens as 1/sqrt(rows consumed),
// with the precomputed aggregate shrinking the interval at every step.
//
// Supported aggregates: SUM and COUNT (closed-form intervals per prefix).

#ifndef AQPP_CORE_PROGRESSIVE_H_
#define AQPP_CORE_PROGRESSIVE_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/cancellation.h"
#include "core/estimator.h"
#include "core/identification.h"
#include "cube/prefix_cube.h"
#include "expr/query.h"
#include "sampling/sample.h"

namespace aqpp {

struct ProgressiveStep {
  // Sample rows consumed at this checkpoint.
  size_t rows_used = 0;
  ConfidenceInterval ci;
};

struct ProgressiveOptions {
  double confidence_level = 0.95;
  // Checkpoint schedule as fractions of the sample; empty = geometric
  // doubling from 1/64 to 1.
  std::vector<double> checkpoints;
};

class ProgressiveExecutor {
 public:
  // `sample` must be a uniform (or Bernoulli) sample; stratified and
  // measure-biased samples are rejected (their per-row weights are not
  // exchangeable under prefix truncation). `cube` may be null (plain AQP).
  ProgressiveExecutor(const Sample* sample, const PrefixCube* cube,
                      ProgressiveOptions options = {});

  // Runs `query` through the checkpoint schedule. When a cube is present,
  // the pre is identified once (on the full sample) and reused at every
  // checkpoint, so the stream is monotone in information, not in choices.
  //
  // `cancel` (optional) is polled after every checkpoint: a stopped run
  // returns the steps produced so far instead of an error, so a timed-out
  // service request still gets a (wide) partial estimate. The first
  // checkpoint is always produced, even when the token is already stopped
  // on entry — "some answer with an honest interval" is the contract.
  Result<std::vector<ProgressiveStep>> Run(const RangeQuery& query, Rng& rng,
                                           const CancellationToken* cancel =
                                               nullptr);

 private:
  const Sample* sample_;
  const PrefixCube* cube_;
  ProgressiveOptions options_;
};

}  // namespace aqpp

#endif  // AQPP_CORE_PROGRESSIVE_H_
