// AqppEngine: the public session API of the library.
//
// Usage mirrors the paper's workflow:
//   1. Create(table, options)          — registers the data
//   2. Prepare(template)               — draws the sample and precomputes the
//                                        BP-Cube for the template (Section 6)
//   3. Execute(query)                  — aggregate identification (Section 5)
//                                        + difference estimation (Section 4)
//
// With `enable_precompute = false` (or without Prepare) the engine degrades
// to plain AQP — the `pre = phi` special case of Equation 4.

#ifndef AQPP_CORE_ENGINE_H_
#define AQPP_CORE_ENGINE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/cancellation.h"
#include "core/estimator.h"
#include "core/execute_control.h"
#include "core/identification.h"
#include "core/precompute.h"
#include "cube/extrema_grid.h"
#include "cube/prefix_cube.h"
#include "expr/query.h"
#include "obs/trace.h"
#include "sampling/sample.h"
#include "sampling/samplers.h"
#include "storage/table.h"
#include "synopsis/synopsis.h"

namespace aqpp {

// The paper's query template (Definition 1): which aggregate over which
// measure, restricted by which condition attributes, optionally grouped.
struct QueryTemplate {
  AggregateFunction func = AggregateFunction::kSum;
  size_t agg_column = 0;
  std::vector<size_t> condition_columns;
  // Group-by attributes become exhaustive cube dimensions (Appendix C).
  std::vector<size_t> group_columns;

  std::string ToString(const Schema& schema) const;
};

struct EngineOptions {
  // Sampling configuration.
  double sample_rate = 0.01;
  SamplingMethod sampling = SamplingMethod::kUniform;
  // Stratification columns (only for kStratified; usually the group-by
  // attributes per Section 7.4).
  std::vector<size_t> stratify_columns;
  // Recorded query log (only for kWorkloadAware; predicates drive the
  // per-row inclusion boost).
  std::vector<RangeQuery> workload_history;

  // BP-Cube budget |P| <= k.
  size_t cube_budget = 10000;

  double confidence_level = 0.95;
  IdentificationOptions identification;
  PrecomputeOptions precompute;
  size_t bootstrap_resamples = 120;

  // When false, Prepare() skips precomputation: the engine is plain AQP.
  bool enable_precompute = true;

  // Build a block extrema grid alongside the cube so MIN/MAX queries get
  // deterministic bounds (the Section 8 future-work extension).
  bool enable_extrema = false;

  // Group-by identification policy (Appendix C): false = identify once on
  // the group-stripped query and reuse the range for every group (the
  // paper's cheap heuristic); true = run identification per group (more
  // accurate, costs one identification per group).
  bool per_group_identification = false;

  // Pluggable synopsis kind for scalar estimation ("" = legacy path,
  // bit-identical to the pre-synopsis engine; see synopsis/synopsis.h for
  // the registered kinds). Non-empty values make Prepare build that synopsis
  // and route Execute's estimates through it.
  std::string synopsis;

  uint64_t seed = 42;
};

struct PrepareStats {
  double sample_seconds = 0.0;
  double stage1_seconds = 0.0;  // shape search + hill climbing (sample-side)
  double stage2_seconds = 0.0;  // full-scan cube construction
  size_t sample_bytes = 0;
  size_t cube_bytes = 0;
  size_t cube_cells = 0;
  std::vector<size_t> shape;

  double total_seconds() const {
    return sample_seconds + stage1_seconds + stage2_seconds;
  }
  size_t total_bytes() const { return sample_bytes + cube_bytes; }
};

struct ApproximateResult {
  ConfidenceInterval ci;
  // True when a non-phi precomputed aggregate was used.
  bool used_pre = false;
  std::string pre_description;
  size_t candidates_considered = 0;
  double identification_seconds = 0.0;
  double estimation_seconds = 0.0;

  double response_seconds() const {
    return identification_seconds + estimation_seconds;
  }
};

struct GroupApproximateResult {
  GroupKey key;
  ApproximateResult result;
};

class AqppEngine {
 public:
  static Result<std::unique_ptr<AqppEngine>> Create(
      std::shared_ptr<Table> table, EngineOptions options);

  // Draws the sample (first call only) and precomputes the BP-Cube for
  // `tmpl`. May be called again with a different template; the cube is
  // replaced, the sample is kept.
  Status Prepare(const QueryTemplate& tmpl);

  // Scalar query: identification + estimation. Works with or without a
  // prepared cube (without, it is plain AQP).
  Result<ApproximateResult> Execute(const RangeQuery& query);

  // Scalar query with per-call control (cancellation, deterministic seed,
  // log opt-out). Calls that set `control.seed` are safe to run
  // concurrently with each other from multiple threads once the engine is
  // prepared; calls without a seed share the session RNG and must stay
  // single-threaded.
  Result<ApproximateResult> Execute(const RangeQuery& query,
                                    const ExecuteControl& control);

  // Group-by query (Appendix C): one identification pass on the
  // group-stripped query, then per-group difference estimation against the
  // group-pinned cube slice.
  Result<std::vector<GroupApproximateResult>> ExecuteGroupBy(
      const RangeQuery& query);

  // Group-by with per-call control; same concurrency contract as the
  // scalar overload.
  Result<std::vector<GroupApproximateResult>> ExecuteGroupBy(
      const RangeQuery& query, const ExecuteControl& control);

  // Human-readable plan: the candidate set P- with per-candidate scored
  // errors (best first) and the execution strategy the engine would pick.
  Result<std::string> Explain(const RangeQuery& query);

  // The query log recorded by Execute/ExecuteGroupBy (bounded; newest
  // last). Feeds AdaptToWorkload(). Returns a snapshot copy: the ring is
  // mutex-guarded so concurrent Execute calls (service workers) cannot race
  // it, and a reference would dangle under concurrent eviction.
  std::vector<RangeQuery> recorded_workload() const;

  // Redraws the sample with workload-aware boosting from the recorded log
  // and re-prepares the cube for the current template — the Section 8
  // "workload-driven sample creation" loop, closed. Requires a prepared
  // template and a non-empty log.
  Status AdaptToWorkload();

  // Warm-start support: persists the prepared state (sample + cube +
  // template) into `dir`, and restores it without re-sampling or
  // re-precomputing. LoadState requires the engine to have been created
  // over the same table contents.
  Status SaveState(const std::string& dir) const;
  Status LoadState(const std::string& dir);

  // Adopts already-built prepared state (e.g. from the one-pass streaming
  // builder) instead of re-sampling and re-precomputing — the shard-worker
  // path, where cube and sample come out of BuildCubeAndSampleFromSource
  // over the shard's slab. Wiring matches LoadState: the sample's schema
  // must match the engine's table, and a null cube leaves the engine in
  // plain-AQP mode.
  Status AdoptPrepared(const QueryTemplate& tmpl, Sample sample,
                       std::shared_ptr<PrefixCube> cube);

  // Publishes maintained state (the streaming-ingest absorber's commit): the
  // absorbed sample and cube replace the current ones, the measure cache and
  // identifier are rebuilt, and the prepared template is kept. Unlike
  // AdoptPrepared this never rebuilds the synopsis — the absorber publishes
  // its own absorbed clone via AdoptSynopsis. NOT internally synchronized:
  // the caller serializes against concurrent Execute (IngestManager holds
  // its state mutex exclusively here while queries hold it shared).
  // Validation happens before any member is assigned, so a failed publish
  // leaves the engine untouched.
  Status PublishMaintained(Sample sample, std::shared_ptr<PrefixCube> cube);

  // Swaps the live synopsis pointer (thread-safe, never rebuilds). The
  // ingest absorber publishes its absorbed clone through this.
  void AdoptSynopsis(std::shared_ptr<synopsis::Synopsis> s) {
    std::lock_guard<std::mutex> lock(synopsis_mu_);
    synopsis_ = std::move(s);
  }

  // Shared handles for maintenance (CubeMaintainer wants shared ownership;
  // the ingest absorber clones through these).
  std::shared_ptr<PrefixCube> shared_cube() const { return cube_; }
  std::shared_ptr<Table> shared_table() const { return table_; }

  // Selects the synopsis that answers scalar estimates: builds a registered
  // kind over the engine's state ("" or "off" restores the legacy path).
  // Sample-backed kinds adopt the engine's sample (a deep copy — the
  // "reservoir" kind then reproduces the legacy estimator RNG-step-for-step);
  // kinds that cannot fall back to a build over the full table.
  Status SetSynopsis(const std::string& kind);

  // The live synopsis, or nullptr when the engine runs the legacy path.
  // Shared ownership: SetSynopsis may swap the synopsis while a maintainer
  // still holds the old one.
  std::shared_ptr<synopsis::Synopsis> active_synopsis() const {
    std::lock_guard<std::mutex> lock(synopsis_mu_);
    return synopsis_;
  }

  const Table& table() const { return *table_; }
  const Sample& sample() const { return sample_; }
  bool has_cube() const { return cube_ != nullptr; }
  const PrefixCube* cube() const { return cube_.get(); }
  const ExtremaGrid* extrema_grid() const { return extrema_.get(); }
  const PrepareStats& prepare_stats() const { return prepare_stats_; }
  const EngineOptions& options() const { return options_; }
  const std::optional<QueryTemplate>& prepared_template() const {
    return template_;
  }

 private:
  AqppEngine(std::shared_ptr<Table> table, EngineOptions options)
      : table_(std::move(table)), options_(std::move(options)),
        rng_(options_.seed) {}

  Status EnsureSample();

  // Re-builds the active synopsis (or options_.synopsis) after the sample /
  // prepared state changed underneath it.
  Status RefreshSynopsis();

  // Synopsis-routed scalar estimation (Execute's non-legacy arm).
  Result<ApproximateResult> ExecuteWithSynopsis(const RangeQuery& query,
                                                const ExecuteControl& control,
                                                const synopsis::Synopsis& syn,
                                                Rng& rng);

  std::shared_ptr<Table> table_;
  EngineOptions options_;
  Rng rng_;
  Sample sample_;
  bool has_sample_ = false;
  // Engine-level measure cache: double-materialized measure columns over the
  // current sample, shared by every estimator the engine creates. Rebuilt
  // whenever the sample changes.
  std::unique_ptr<MeasureCache> measure_cache_;
  std::optional<QueryTemplate> template_;
  std::shared_ptr<PrefixCube> cube_;
  std::shared_ptr<ExtremaGrid> extrema_;
  std::unique_ptr<AggregateIdentifier> identifier_;
  PrepareStats prepare_stats_;
  // Active synopsis; nullptr = legacy estimator path, bit-identical to the
  // pre-synopsis engine. Guarded: SET SYNOPSIS may arrive from a service
  // admin connection while seeded Executes run on worker threads.
  mutable std::mutex synopsis_mu_;
  std::shared_ptr<synopsis::Synopsis> synopsis_;
  // Bounded query-log ring, guarded: Execute may be called concurrently
  // from service workers (with per-call seeds), and all of them record here.
  mutable std::mutex workload_mu_;
  std::vector<RangeQuery> recorded_workload_;

  // Appends to the bounded query log (thread-safe).
  void RecordQuery(const RangeQuery& query);
};

}  // namespace aqpp

#endif  // AQPP_CORE_ENGINE_H_
