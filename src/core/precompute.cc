#include "core/precompute.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>

#include "common/logging.h"
#include "common/timer.h"
#include "stats/confidence.h"

namespace aqpp {

namespace {

constexpr size_t kNoBoundary = std::numeric_limits<size_t>::max();

}  // namespace

HillClimbOptimizer::HillClimbOptimizer(const Table* sample_table,
                                       size_t column, size_t measure_column,
                                       size_t population_size,
                                       HillClimbOptions options)
    : sample_table_(sample_table),
      column_(column),
      measure_column_(measure_column),
      population_size_(population_size),
      options_(options),
      lambda_(NormalCriticalValue(options.confidence_level)) {
  AQPP_CHECK(sample_table != nullptr);
  AQPP_CHECK_LT(column, sample_table->num_columns());
  AQPP_CHECK_LT(measure_column, sample_table->num_columns());
  const size_t n = sample_table->num_rows();
  AQPP_CHECK_GT(n, 0u);

  // Sort rows by the condition attribute (the paper's view of D as the list
  // of A ordered by C).
  const Column& cond = sample_table->column(column_);
  AQPP_CHECK(cond.type() != DataType::kDouble);
  const Column& measure = sample_table->column(measure_column_);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return cond.GetInt64(a) < cond.GetInt64(b);
  });
  sorted_values_.resize(n);
  sorted_measure_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    sorted_values_[i] = cond.GetInt64(order[i]);
    sorted_measure_[i] = measure.GetDouble(order[i]);
  }
  pa_.resize(n + 1);
  pa2_.resize(n + 1);
  pa_[0] = pa2_[0] = 0;
  for (size_t i = 0; i < n; ++i) {
    pa_[i + 1] = pa_[i] + sorted_measure_[i];
    pa2_[i + 1] = pa2_[i] + sorted_measure_[i] * sorted_measure_[i];
  }
  // Feasible boundaries: after the last row of each run of equal values.
  for (size_t i = 0; i + 1 < n; ++i) {
    if (sorted_values_[i] != sorted_values_[i + 1]) {
      boundary_row_.push_back(i);
      boundary_value_.push_back(sorted_values_[i]);
    }
  }
  boundary_row_.push_back(n - 1);
  boundary_value_.push_back(sorted_values_[n - 1]);
}

double HillClimbOptimizer::BoundaryError(size_t b, size_t prev,
                                         size_t next) const {
  const double n = static_cast<double>(sorted_values_.size());
  // Row index bounds: segment L = rows (s_prev, s_b], Lbar = (s_b, s_next].
  auto seg_sd = [&](size_t row_lo_excl, size_t row_hi_incl) {
    // Variance over the WHOLE sample of A * 1[row in segment]
    // (Lemma 6's Var(A_{L}) with A_L = A * cond(C in L)).
    double lo = row_lo_excl == kNoBoundary
                    ? 0.0
                    : pa_[row_lo_excl + 1];
    double lo2 = row_lo_excl == kNoBoundary ? 0.0 : pa2_[row_lo_excl + 1];
    double sum = pa_[row_hi_incl + 1] - lo;
    double ss = pa2_[row_hi_incl + 1] - lo2;
    double mean = sum / n;
    double var = ss / n - mean * mean;
    return std::sqrt(std::max(0.0, var));
  };
  size_t s_prev = prev == kNoBoundary ? kNoBoundary : boundary_row_[prev];
  size_t s_b = boundary_row_[b];
  size_t s_next = boundary_row_[next];
  double sd_l = seg_sd(s_prev, s_b);
  double sd_lbar = seg_sd(s_b, s_next);
  double scale = lambda_ * static_cast<double>(population_size_) /
                 std::sqrt(n);
  return scale * std::min(sd_l, sd_lbar);
}

void HillClimbOptimizer::Evaluate(const std::vector<size_t>& cut_b,
                                  std::vector<double>* errors, size_t* worst1,
                                  size_t* worst2, double* error_up) const {
  const size_t num_b = boundary_row_.size();
  errors->assign(num_b, 0.0);
  double e1 = -1, e2 = -1;
  size_t i1 = kNoBoundary, i2 = kNoBoundary;
  size_t cut_pos = 0;  // index into cut_b of the next cut >= current boundary
  size_t prev_cut = kNoBoundary;
  for (size_t b = 0; b < num_b; ++b) {
    while (cut_pos < cut_b.size() && cut_b[cut_pos] < b) {
      prev_cut = cut_b[cut_pos];
      ++cut_pos;
    }
    double err = 0.0;
    if (cut_pos < cut_b.size() && cut_b[cut_pos] == b) {
      err = 0.0;  // b is itself a cut
    } else {
      AQPP_DCHECK(cut_pos < cut_b.size());  // last boundary is always a cut
      err = BoundaryError(b, prev_cut, cut_b[cut_pos]);
    }
    (*errors)[b] = err;
    if (err > e1) {
      e2 = e1;
      i2 = i1;
      e1 = err;
      i1 = b;
    } else if (err > e2) {
      e2 = err;
      i2 = b;
    }
  }
  *worst1 = i1;
  *worst2 = i2;
  *error_up = std::max(0.0, e1) + std::max(0.0, e2);
}

Result<HillClimbResult> HillClimbOptimizer::Optimize(size_t k) const {
  if (k == 0) return Status::InvalidArgument("k must be > 0");
  const size_t num_b = boundary_row_.size();
  const size_t last_b = num_b - 1;

  // ---- Initialization: equal-depth cuts (P_eq, Section 6.1.2 step 1) ----
  std::vector<size_t> cuts;
  {
    const double n = static_cast<double>(sorted_values_.size());
    size_t kk = std::min(k, num_b);
    std::set<size_t> picked;
    for (size_t i = 1; i <= kk; ++i) {
      double target =
          n * static_cast<double>(i) / static_cast<double>(kk) - 1.0;
      // Boundary whose row index is closest to the target depth: the
      // "closest feasible point" rule for infeasible equal-partition points.
      auto it = std::lower_bound(boundary_row_.begin(), boundary_row_.end(),
                                 static_cast<size_t>(std::max(0.0, target)));
      size_t idx = static_cast<size_t>(it - boundary_row_.begin());
      if (idx >= num_b) {
        idx = last_b;
      } else if (idx > 0) {
        double above = static_cast<double>(boundary_row_[idx]) - target;
        double below = target - static_cast<double>(boundary_row_[idx - 1]);
        if (below < above) idx -= 1;
      }
      picked.insert(idx);
    }
    picked.insert(last_b);
    cuts.assign(picked.begin(), picked.end());
    // Deduplication may have freed budget; spend it greedily on the largest
    // remaining gaps so |cuts| == min(k, num_b).
    while (cuts.size() < std::min(k, num_b)) {
      size_t best_gap = 0, best_mid = kNoBoundary;
      size_t prev = kNoBoundary;
      for (size_t c : cuts) {
        size_t lo = prev == kNoBoundary ? 0 : prev + 1;
        if (c > lo && c - lo > best_gap) {
          best_gap = c - lo;
          best_mid = lo + (c - lo) / 2;
        }
        prev = c;
      }
      if (best_mid == kNoBoundary) break;
      cuts.insert(std::lower_bound(cuts.begin(), cuts.end(), best_mid),
                  best_mid);
    }
  }

  HillClimbResult result;
  std::vector<double> errors;
  size_t i1, i2;
  double error_up;
  Evaluate(cuts, &errors, &i1, &i2, &error_up);
  if (options_.record_history) result.history.push_back(error_up);

  if (!options_.equal_partition_only && cuts.size() > 1) {
    for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
      if (error_up <= 0) break;
      // ---- Choose the cut to move away -------------------------------
      // Candidates: every cut except the pinned last one (global policy) or
      // only the cuts adjacent to i1/i2 (local policy, Figure 8).
      std::vector<size_t> removal_candidates;
      if (options_.global_adjustment) {
        for (size_t j = 0; j + 1 < cuts.size(); ++j) {
          removal_candidates.push_back(j);
        }
      } else {
        std::set<size_t> cand;
        for (size_t target : {i1, i2}) {
          if (target == kNoBoundary) continue;
          auto it = std::lower_bound(cuts.begin(), cuts.end(), target);
          if (it != cuts.begin()) {
            size_t j = static_cast<size_t>(it - cuts.begin()) - 1;
            if (j + 1 < cuts.size()) cand.insert(j);
          }
          if (it != cuts.end()) {
            size_t j = static_cast<size_t>(it - cuts.begin());
            if (j + 1 < cuts.size()) cand.insert(j);
          }
        }
        removal_candidates.assign(cand.begin(), cand.end());
      }
      if (removal_candidates.empty()) break;

      // For each removal candidate, the max error_i among the boundaries
      // whose bracket changes (those between the neighbors of the removed
      // cut).
      size_t best_removal = kNoBoundary;
      double best_window_max = std::numeric_limits<double>::infinity();
      for (size_t j : removal_candidates) {
        size_t prev = j == 0 ? kNoBoundary : cuts[j - 1];
        size_t next = cuts[j + 1];
        double window_max = 0.0;
        size_t b_begin = prev == kNoBoundary ? 0 : prev + 1;
        for (size_t b = b_begin; b < next; ++b) {
          window_max = std::max(window_max, BoundaryError(b, prev, next));
        }
        if (window_max < best_window_max) {
          best_window_max = window_max;
          best_removal = j;
        }
      }
      if (best_removal == kNoBoundary) break;

      // ---- Try moving it to i1 or i2 ---------------------------------
      double best_eu = error_up;
      std::vector<size_t> best_cuts;
      for (size_t target : {i1, i2}) {
        if (target == kNoBoundary) continue;
        if (std::binary_search(cuts.begin(), cuts.end(), target)) continue;
        std::vector<size_t> trial = cuts;
        trial.erase(trial.begin() + static_cast<ptrdiff_t>(best_removal));
        trial.insert(std::lower_bound(trial.begin(), trial.end(), target),
                     target);
        std::vector<double> trial_errors;
        size_t t1, t2;
        double eu;
        Evaluate(trial, &trial_errors, &t1, &t2, &eu);
        if (eu < best_eu - 1e-12) {
          best_eu = eu;
          best_cuts = std::move(trial);
        }
      }
      if (best_cuts.empty()) break;  // no improving move: converged

      cuts = std::move(best_cuts);
      Evaluate(cuts, &errors, &i1, &i2, &error_up);
      ++result.iterations;
      if (options_.record_history) result.history.push_back(error_up);
    }
  }

  result.partition.column = column_;
  result.partition.cuts.reserve(cuts.size());
  for (size_t b : cuts) result.partition.cuts.push_back(boundary_value_[b]);
  result.error_up = error_up;
  return result;
}

Result<double> HillClimbOptimizer::EvaluateErrorUp(
    const std::vector<int64_t>& cut_values) const {
  std::set<size_t> cut_set;
  for (int64_t v : cut_values) {
    // Largest boundary with value <= v (a cut between sample values acts as
    // a cut at the previous feasible position).
    auto it = std::upper_bound(boundary_value_.begin(), boundary_value_.end(),
                               v);
    if (it == boundary_value_.begin()) continue;  // cut before all data
    cut_set.insert(static_cast<size_t>(it - boundary_value_.begin()) - 1);
  }
  cut_set.insert(boundary_row_.size() - 1);
  std::vector<size_t> cuts(cut_set.begin(), cut_set.end());
  std::vector<double> errors;
  size_t i1, i2;
  double error_up;
  Evaluate(cuts, &errors, &i1, &i2, &error_up);
  return error_up;
}

ShapeOptimizer::ShapeOptimizer(const Table* sample_table,
                               size_t measure_column, size_t population_size,
                               ShapeOptions options)
    : sample_table_(sample_table),
      measure_column_(measure_column),
      population_size_(population_size),
      options_(options) {}

Result<ShapeResult> ShapeOptimizer::DetermineShape(
    const std::vector<size_t>& condition_columns, size_t k) const {
  const size_t d = condition_columns.size();
  if (d == 0) return Status::InvalidArgument("no condition columns");
  if (k == 0) return Status::InvalidArgument("k must be > 0");

  ShapeResult result;
  result.shape.assign(d, 1);
  result.profiles.resize(d);
  result.fitted_coefficients.assign(d, 0.0);

  std::vector<size_t> max_k(d);
  std::vector<std::unique_ptr<HillClimbOptimizer>> optimizers;
  for (size_t i = 0; i < d; ++i) {
    optimizers.push_back(std::make_unique<HillClimbOptimizer>(
        sample_table_, condition_columns[i], measure_column_,
        population_size_, options_.hill_climb));
    max_k[i] = std::max<size_t>(1, optimizers[i]->num_boundaries());
  }

  // ---- Error profiles (Figure 6): error_up(k_i) on a geometric k grid ----
  for (size_t i = 0; i < d; ++i) {
    size_t hi = std::min(max_k[i], k);
    std::set<size_t> grid;
    size_t points = std::max<size_t>(2, options_.profile_points);
    for (size_t p = 0; p < points; ++p) {
      double frac = static_cast<double>(p) / static_cast<double>(points - 1);
      double kv = std::exp(std::log(2.0) +
                           frac * (std::log(static_cast<double>(hi)) -
                                   std::log(2.0)));
      grid.insert(std::max<size_t>(2, static_cast<size_t>(std::llround(kv))));
    }
    double num = 0, den = 0;
    for (size_t kv : grid) {
      AQPP_ASSIGN_OR_RETURN(auto hc, optimizers[i]->Optimize(kv));
      result.profiles[i].push_back({kv, hc.error_up});
      // Least-squares fit of error = c / sqrt(k):
      // c = sum(e_j / sqrt(k_j)) / sum(1 / k_j).
      double inv_sqrt = 1.0 / std::sqrt(static_cast<double>(kv));
      num += hc.error_up * inv_sqrt;
      den += inv_sqrt * inv_sqrt;
    }
    result.fitted_coefficients[i] = den > 0 ? num / den : 0.0;
  }

  // One dimension: no shape search needed, the whole budget is its.
  if (d == 1) {
    result.shape[0] = std::min(k, max_k[0]);
    return result;
  }

  // ---- Binary search on the common error level (Figure 6) ---------------
  auto shape_for = [&](double eps) {
    std::vector<size_t> shape(d);
    for (size_t i = 0; i < d; ++i) {
      double c = result.fitted_coefficients[i];
      if (c <= 0) {
        shape[i] = 1;
        continue;
      }
      double ki = (c / eps) * (c / eps);
      shape[i] = std::clamp<size_t>(
          static_cast<size_t>(std::ceil(ki)), 1, max_k[i]);
    }
    return shape;
  };
  auto product_of = [](const std::vector<size_t>& shape) {
    double p = 1;
    for (size_t s : shape) p *= static_cast<double>(s);
    return p;
  };

  double eps_hi = 0.0;
  for (double c : result.fitted_coefficients) eps_hi = std::max(eps_hi, c);
  if (eps_hi <= 0) {
    // All dimensions flat: spread the budget evenly.
    size_t per_dim = std::max<size_t>(
        1, static_cast<size_t>(std::pow(static_cast<double>(k),
                                        1.0 / static_cast<double>(d))));
    for (size_t i = 0; i < d; ++i) result.shape[i] = std::min(per_dim, max_k[i]);
    return result;
  }
  double eps_lo = eps_hi * 1e-6;
  std::vector<size_t> best = shape_for(eps_hi);
  for (int iter = 0; iter < 60; ++iter) {
    double mid = std::sqrt(eps_lo * eps_hi);  // bisect on log scale
    auto shape = shape_for(mid);
    if (product_of(shape) <= static_cast<double>(k)) {
      if (product_of(shape) >= product_of(best)) best = shape;
      eps_hi = mid;  // feasible: try smaller error (bigger cube)
    } else {
      eps_lo = mid;
    }
  }
  result.shape = best;
  return result;
}

Precomputer::Precomputer(const Table* table, const Sample* sample,
                         size_t measure_column, PrecomputeOptions options)
    : table_(table),
      sample_(sample),
      measure_column_(measure_column),
      options_(std::move(options)) {
  AQPP_CHECK(table != nullptr);
  AQPP_CHECK(sample != nullptr);
}

Result<PrecomputeResult> Precomputer::Precompute(
    const std::vector<size_t>& condition_columns, size_t k) const {
  if (condition_columns.empty()) {
    return Status::InvalidArgument("no condition columns");
  }
  const size_t d = condition_columns.size();
  PrecomputeResult result;
  Timer stage1;

  // Exhaustive dimensions (group-by columns, Appendix C) get a cut at every
  // distinct value and consume budget first.
  std::vector<bool> exhaustive(d, false);
  size_t exhaustive_budget = 1;
  std::vector<std::vector<int64_t>> exhaustive_cuts(d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t c : options_.exhaustive_columns) {
      if (condition_columns[i] == c) exhaustive[i] = true;
    }
    if (exhaustive[i]) {
      AQPP_ASSIGN_OR_RETURN(exhaustive_cuts[i],
                            DistinctSorted(*table_, condition_columns[i]));
      exhaustive_budget *= std::max<size_t>(1, exhaustive_cuts[i].size());
    }
  }
  size_t free_budget = std::max<size_t>(1, k / std::max<size_t>(1, exhaustive_budget));

  // ---- Stage 1: shape + cuts on the sample ------------------------------
  std::vector<size_t> free_columns;
  for (size_t i = 0; i < d; ++i) {
    if (!exhaustive[i]) free_columns.push_back(condition_columns[i]);
  }
  std::vector<size_t> shape(d, 1);
  if (!options_.forced_shape.empty()) {
    if (options_.forced_shape.size() != d) {
      return Status::InvalidArgument("forced_shape arity mismatch");
    }
    shape = options_.forced_shape;
  } else if (!free_columns.empty()) {
    ShapeOptimizer shaper(sample_->rows.get(), measure_column_,
                          sample_->population_size, options_.shape);
    AQPP_ASSIGN_OR_RETURN(result.shape,
                          shaper.DetermineShape(free_columns, free_budget));
    size_t fi = 0;
    for (size_t i = 0; i < d; ++i) {
      if (!exhaustive[i]) shape[i] = result.shape.shape[fi++];
    }
  }

  std::vector<DimensionPartition> dims(d);
  for (size_t i = 0; i < d; ++i) {
    if (exhaustive[i]) {
      dims[i].column = condition_columns[i];
      dims[i].cuts = exhaustive_cuts[i];
      HillClimbResult hc;
      hc.partition = dims[i];
      result.per_dimension.push_back(std::move(hc));
      continue;
    }
    HillClimbOptimizer optimizer(sample_->rows.get(), condition_columns[i],
                                 measure_column_, sample_->population_size,
                                 options_.shape.hill_climb);
    AQPP_ASSIGN_OR_RETURN(auto hc, optimizer.Optimize(shape[i]));
    dims[i] = hc.partition;
    result.per_dimension.push_back(std::move(hc));
    // The sample may not contain the column max; pin the last cut to the
    // full-table max so the cube always covers the domain. Replace (not
    // append) when the dimension is already at its budget so the cell count
    // stays within k.
    AQPP_ASSIGN_OR_RETURN(int64_t max_v,
                          table_->column(condition_columns[i]).MaxInt64());
    if (dims[i].cuts.empty()) {
      dims[i].cuts.push_back(max_v);
    } else if (dims[i].cuts.back() < max_v) {
      if (dims[i].cuts.size() >= shape[i]) {
        dims[i].cuts.back() = max_v;
      } else {
        dims[i].cuts.push_back(max_v);
      }
    }
  }
  result.scheme = PartitionScheme(std::move(dims));
  result.stage1_seconds = stage1.ElapsedSeconds();

  // ---- Stage 2: build the cube on the full table -------------------------
  Timer stage2;
  std::vector<MeasureSpec> measures = {
      MeasureSpec::Sum(measure_column_), MeasureSpec::Count(),
      MeasureSpec::SumSquares(measure_column_)};
  AQPP_ASSIGN_OR_RETURN(result.cube,
                        PrefixCube::Build(*table_, result.scheme, measures));
  result.stage2_seconds = stage2.ElapsedSeconds();
  return result;
}

}  // namespace aqpp
