#include "core/stream_build.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "kernels/binning.h"
#include "kernels/kernels.h"

namespace aqpp {

namespace {

// Mirror of PartitionScheme::Validate against a ColumnSource: ordinal
// columns, strictly increasing cuts, last cut covering the column max. The
// max comes from ColumnMinMax, which extent-backed sources answer from the
// footer zone maps without reading any data.
Status ValidateScheme(ColumnSource& source, const PartitionScheme& scheme) {
  if (scheme.num_dims() == 0) return Status::InvalidArgument("no dimensions");
  const Schema& schema = source.schema();
  for (const auto& d : scheme.dims()) {
    if (d.column >= schema.num_columns()) {
      return Status::InvalidArgument("partition column out of range");
    }
    if (schema.column(d.column).type == DataType::kDouble) {
      return Status::InvalidArgument("partition column '" +
                                     schema.column(d.column).name +
                                     "' must be ordinal");
    }
    if (d.cuts.empty()) {
      return Status::InvalidArgument("dimension has no cuts");
    }
    for (size_t j = 1; j < d.cuts.size(); ++j) {
      if (d.cuts[j] <= d.cuts[j - 1]) {
        return Status::InvalidArgument("cuts must be strictly increasing");
      }
    }
    int64_t mn = 0, mx = 0;
    if (source.ColumnMinMax(d.column, &mn, &mx) && d.cuts.back() < mx) {
      return Status::InvalidArgument(StrFormat(
          "last cut (%lld) of column '%s' below column max (%lld)",
          static_cast<long long>(d.cuts.back()),
          schema.column(d.column).name.c_str(), static_cast<long long>(mx)));
    }
  }
  return Status::OK();
}

}  // namespace

Result<StreamBuildResult> BuildCubeAndSampleFromSource(
    ColumnSource& source, PartitionScheme scheme,
    const std::vector<MeasureSpec>& measures, Rng& rng,
    const StreamBuildOptions& options) {
  AQPP_RETURN_NOT_OK(ValidateScheme(source, scheme));
  if (measures.empty()) {
    return Status::InvalidArgument("at least one measure required");
  }
  const Schema& schema = source.schema();
  const size_t num_cols = schema.num_columns();
  for (const auto& m : measures) {
    if (!m.is_count()) {
      if (m.column < 0 || static_cast<size_t>(m.column) >= num_cols) {
        return Status::InvalidArgument("measure column out of range");
      }
    }
  }

  const uint64_t n = source.num_rows();
  const size_t ns =
      static_cast<size_t>(std::min<uint64_t>(options.sample_size, n));
  if (options.sample_size > 0 && n == 0) {
    return Status::FailedPrecondition("empty table");
  }

  Timer timer;
  AQPP_ASSIGN_OR_RETURN(PrefixCube::Layout layout, PrefixCube::LayoutFor(scheme));
  const size_t total = layout.total_cells;
  const size_t d = scheme.num_dims();

  // Same partial-plane grid as the in-memory build; merged in shard-index
  // order below, so the raw planes come out bit-identical.
  const PrefixCube::AccumulationPlan plan =
      PrefixCube::PlanFor(static_cast<size_t>(n), total, measures.size());
  std::vector<std::vector<std::vector<double>>> partials(
      std::max<size_t>(plan.num_shards, 1));
  for (auto& p : partials) {
    p.assign(measures.size(), std::vector<double>(total, 0.0));
  }

  // Reservoir state: slot -> global row id, plus the staged row values of
  // each slot's current winner (overwritten whenever the slot is re-won).
  std::vector<uint64_t> slot_row(ns);
  std::vector<std::vector<int64_t>> staged_ints(num_cols);
  std::vector<std::vector<double>> staged_dbls(num_cols);
  if (ns > 0) {
    for (size_t c = 0; c < num_cols; ++c) {
      if (schema.column(c).type == DataType::kDouble) {
        staged_dbls[c].resize(ns);
      } else {
        staged_ints[c].resize(ns);
      }
    }
  }
  std::vector<size_t> touched;  // slots won during the current extent

  // Per-extent pin cache so a column shared between dimensions, measures and
  // the sampler decodes once.
  std::vector<ColumnSource::PinnedColumn> pins(num_cols);
  std::vector<uint8_t> have_pin(num_cols, 0);
  auto pin_col = [&](size_t e,
                     size_t c) -> Result<const ColumnSource::PinnedColumn*> {
    if (!have_pin[c]) {
      AQPP_ASSIGN_OR_RETURN(pins[c], source.Pin(e, c));
      have_pin[c] = 1;
    }
    return &pins[c];
  };

  std::vector<kernels::BinDimension> bin_dims(d);
  for (size_t i = 0; i < d; ++i) {
    bin_dims[i].cuts = scheme.dim(i).cuts.data();
    bin_dims[i].num_cuts = scheme.dim(i).cuts.size();
    bin_dims[i].stride = layout.strides[i];
  }
  std::vector<kernels::BinMeasure> bound(measures.size());
  for (size_t m = 0; m < measures.size(); ++m) {
    bound[m].squared = measures[m].squared;
  }

  const size_t num_extents = source.num_extents();
  alignas(64) uint32_t flat[kernels::kChunkRows];
  for (size_t e = 0; e < num_extents; ++e) {
    const uint64_t base = static_cast<uint64_t>(e) * kExtentRows;
    const size_t rows = source.ExtentRows(e);
    std::fill(have_pin.begin(), have_pin.end(), 0);

    // Bind this extent's raw spans.
    for (size_t i = 0; i < d; ++i) {
      AQPP_ASSIGN_OR_RETURN(const ColumnSource::PinnedColumn* p,
                            pin_col(e, scheme.dim(i).column));
      bin_dims[i].codes = p->ints;
    }
    for (size_t m = 0; m < measures.size(); ++m) {
      bound[m].dbl = nullptr;
      bound[m].i64 = nullptr;
      if (measures[m].is_count()) continue;
      AQPP_ASSIGN_OR_RETURN(
          const ColumnSource::PinnedColumn* p,
          pin_col(e, static_cast<size_t>(measures[m].column)));
      if (p->type == DataType::kDouble) {
        bound[m].dbl = p->dbls;
      } else {
        bound[m].i64 = p->ints;
      }
    }

    // Accumulate chunk by chunk. kExtentRows is a multiple of kChunkRows and
    // rows_per_shard is chunk-aligned, so every chunk lands wholly inside
    // one partial plane — the same chunk -> shard assignment the in-memory
    // build's per-shard loops produce.
    for (size_t local = 0; local < rows; local += kernels::kChunkRows) {
      const size_t stop = std::min(rows, local + kernels::kChunkRows);
      const size_t shard =
          plan.num_shards > 1
              ? static_cast<size_t>((base + local) / plan.rows_per_shard)
              : 0;
      AQPP_DCHECK_LT(shard, partials.size());
      kernels::ComputeCellIds(bin_dims, local, stop, flat);
      for (size_t m = 0; m < measures.size(); ++m) {
        bound[m].plane = partials[shard][m].data();
      }
      kernels::ScatterAddMeasures(bound, flat, local, stop);
    }

    // Reservoir pass over the same rows: identical draw sequence to
    // CreateReservoirSample (one NextBounded(i + 1) per row i >= ns).
    if (ns > 0) {
      touched.clear();
      const uint64_t ext_end = base + rows;
      uint64_t i = base;
      for (const uint64_t seed_stop = std::min<uint64_t>(ns, ext_end);
           i < seed_stop; ++i) {
        slot_row[static_cast<size_t>(i)] = i;
        touched.push_back(static_cast<size_t>(i));
      }
      for (; i < ext_end; ++i) {
        const uint64_t j = rng.NextBounded(i + 1);
        if (j < ns) {
          slot_row[static_cast<size_t>(j)] = i;
          touched.push_back(static_cast<size_t>(j));
        }
      }
      if (!touched.empty()) {
        std::sort(touched.begin(), touched.end());
        touched.erase(std::unique(touched.begin(), touched.end()),
                      touched.end());
        for (size_t c = 0; c < num_cols; ++c) {
          AQPP_ASSIGN_OR_RETURN(const ColumnSource::PinnedColumn* p,
                                pin_col(e, c));
          if (p->type == DataType::kDouble) {
            for (size_t j : touched) {
              staged_dbls[c][j] =
                  p->dbls[static_cast<size_t>(slot_row[j] - base)];
            }
          } else {
            for (size_t j : touched) {
              staged_ints[c][j] =
                  p->ints[static_cast<size_t>(slot_row[j] - base)];
            }
          }
        }
      }
    }

    std::fill(pins.begin(), pins.end(), ColumnSource::PinnedColumn());
    if (options.release_consumed_extents) source.ReleaseBefore(e + 1);
  }

  // Merge in shard-index order (bit-identical to the in-memory build: with a
  // single shard Build accumulates directly into the final planes, so the
  // lone partial IS the raw plane set).
  std::vector<std::vector<double>> planes;
  if (plan.num_shards > 1) {
    planes.assign(measures.size(), std::vector<double>(total, 0.0));
    for (size_t s = 0; s < plan.num_shards; ++s) {
      for (size_t m = 0; m < measures.size(); ++m) {
        for (size_t c = 0; c < total; ++c) {
          planes[m][c] += partials[s][m][c];
        }
      }
    }
  } else {
    planes = std::move(partials[0]);
  }
  partials.clear();

  StreamBuildResult result;
  result.extents_streamed = num_extents;
  AQPP_ASSIGN_OR_RETURN(
      result.cube,
      PrefixCube::FromRawPlanes(std::move(scheme), measures, std::move(planes),
                                timer.ElapsedSeconds()));

  if (ns > 0) {
    // Materialize slots in ascending row order — the order TakeRows sees
    // after CreateReservoirSample sorts the reservoir.
    std::vector<size_t> order(ns);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return slot_row[a] < slot_row[b];
    });
    auto rows_tbl = std::make_shared<Table>(schema);
    for (size_t c = 0; c < num_cols; ++c) {
      Column& dst = rows_tbl->mutable_column(c);
      if (schema.column(c).type == DataType::kDouble) {
        auto& data = dst.MutableDoubleData();
        data.reserve(ns);
        for (size_t k : order) data.push_back(staged_dbls[c][k]);
      } else {
        auto& data = dst.MutableInt64Data();
        data.reserve(ns);
        for (size_t k : order) data.push_back(staged_ints[c][k]);
        if (schema.column(c).type == DataType::kString) {
          dst.SetDictionary(source.dictionary(c));
        }
      }
    }
    rows_tbl->SetRowCountFromColumns();
    result.sample.rows = std::move(rows_tbl);
    result.sample.weights.assign(
        ns, static_cast<double>(n) / static_cast<double>(ns));
    result.sample.population_size = static_cast<size_t>(n);
    result.sample.sampling_fraction =
        static_cast<double>(ns) / static_cast<double>(n);
    result.sample.method = SamplingMethod::kUniform;
  }

  if (!options.synopsis_kind.empty()) {
    AQPP_ASSIGN_OR_RETURN(
        auto syn, synopsis::CreateSynopsis(options.synopsis_kind,
                                           options.synopsis_options));
    // The streamed reservoir doubles as the synopsis sample when the kind is
    // sample-backed; otherwise the synopsis streams the source itself.
    Status adopted = result.sample.rows != nullptr
                         ? syn->BuildFromSample(result.sample)
                         : Status::Unimplemented("no streamed sample");
    if (adopted.code() == StatusCode::kUnimplemented) {
      AQPP_RETURN_NOT_OK(syn->Build(source));
    } else if (!adopted.ok()) {
      return adopted;
    }
    result.synopsis = std::move(syn);
  }
  return result;
}

}  // namespace aqpp
