#include "core/maintenance.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace aqpp {

namespace {

// Checks name/type equality between two schemas.
Status SchemasMatch(const Schema& a, const Schema& b) {
  if (a.num_columns() != b.num_columns()) {
    return Status::InvalidArgument("batch schema arity mismatch");
  }
  for (size_t i = 0; i < a.num_columns(); ++i) {
    if (a.column(i).name != b.column(i).name ||
        a.column(i).type != b.column(i).type) {
      return Status::InvalidArgument(
          "batch schema mismatch at column '" + a.column(i).name + "'");
    }
  }
  return Status::OK();
}

// Translates a batch row value of column `c` into the reference coding.
// For STRING columns the batch's own dictionary is consulted, then the
// string is looked up in the reference dictionary.
Result<int64_t> TranslateOrdinal(const Table& reference, const Table& batch,
                                 size_t c, size_t row) {
  const Column& ref_col = reference.column(c);
  const Column& batch_col = batch.column(c);
  if (ref_col.type() == DataType::kString) {
    const std::string& value = batch_col.GetString(row);
    auto code = ref_col.LookupDictionary(value);
    if (!code.ok()) {
      return Status::InvalidArgument(
          "appended value '" + value + "' is not in column '" +
          reference.schema().column(c).name +
          "'s dictionary; new categories require re-preparation");
    }
    return *code;
  }
  return batch_col.GetInt64(row);
}

}  // namespace

CubeMaintainer::CubeMaintainer(std::shared_ptr<PrefixCube> cube,
                               std::shared_ptr<Table> reference_table,
                               CubeMaintainerOptions options)
    : cube_(std::move(cube)),
      reference_(std::move(reference_table)),
      options_(options) {
  AQPP_CHECK(cube_ != nullptr);
  AQPP_CHECK(reference_ != nullptr);
}

Status CubeMaintainer::Absorb(const Table& batch) {
  AQPP_RETURN_NOT_OK(SchemasMatch(reference_->schema(), batch.schema()));
  AQPP_FAILPOINT_RETURN_STATUS("core/maintenance/cube_absorb");
  // Domain-coverage guard: every partition-column value must fall under the
  // dimension's last cut (footnote 5's t_k = |dom(C)| invariant).
  for (const auto& dim : cube_->scheme().dims()) {
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      AQPP_ASSIGN_OR_RETURN(int64_t v,
                            TranslateOrdinal(*reference_, batch, dim.column, r));
      if (v > dim.cuts.back()) {
        return Status::OutOfRange(StrFormat(
            "appended value %lld on column '%s' exceeds the cube's last cut "
            "%lld; rebuild the cube to extend the domain",
            static_cast<long long>(v),
            reference_->schema().column(dim.column).name.c_str(),
            static_cast<long long>(dim.cuts.back())));
      }
    }
  }

  // Stage every ordinal translation before touching pending_: a failure on
  // any column (e.g. a string value missing from a non-dimension column's
  // dictionary) must reject the whole batch, not leave pending_ with ragged
  // columns that abort the next SetRowCountFromColumns.
  std::vector<std::vector<int64_t>> staged(batch.num_columns());
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    if (batch.column(c).type() == DataType::kDouble) continue;
    staged[c].reserve(batch.num_rows());
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      AQPP_ASSIGN_OR_RETURN(int64_t v,
                            TranslateOrdinal(*reference_, batch, c, r));
      staged[c].push_back(v);
    }
  }

  if (pending_ == nullptr) {
    pending_ = std::make_shared<Table>(reference_->schema());
    // Share the reference dictionaries so ordinal codes line up.
    for (size_t c = 0; c < reference_->num_columns(); ++c) {
      if (reference_->column(c).type() == DataType::kString) {
        pending_->mutable_column(c).SetDictionary(
            reference_->column(c).dictionary());
      }
    }
  }
  // Commit phase: nothing below can fail.
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    Column& dst = pending_->mutable_column(c);
    const Column& src = batch.column(c);
    if (src.type() == DataType::kDouble) {
      auto& data = dst.MutableDoubleData();
      const auto& sdata = src.DoubleData();
      data.insert(data.end(), sdata.begin(), sdata.end());
    } else {
      auto& data = dst.MutableInt64Data();
      data.insert(data.end(), staged[c].begin(), staged[c].end());
    }
  }
  pending_->SetRowCountFromColumns();
  total_absorbed_ += batch.num_rows();

  if (pending_->num_rows() >= options_.compact_threshold) {
    AQPP_RETURN_NOT_OK(Compact());
  }
  if (observer_) observer_();
  return Status::OK();
}

double CubeMaintainer::BoxValue(const PreAggregate& pre,
                                size_t measure) const {
  double value = cube_->BoxValue(pre, measure);
  if (pending_ == nullptr || pending_->num_rows() == 0) return value;
  // Exact scan of the (small) pending buffer.
  RangePredicate pred = pre.ToPredicate(cube_->scheme());
  const MeasureSpec& spec = cube_->measures()[measure];
  for (size_t r = 0; r < pending_->num_rows(); ++r) {
    if (!pred.Matches(*pending_, r)) continue;
    double v = spec.is_count()
                   ? 1.0
                   : pending_->column(static_cast<size_t>(spec.column))
                         .GetDouble(r);
    if (spec.squared) v *= v;
    value += v;
  }
  return value;
}

Status CubeMaintainer::Compact() {
  if (pending_ == nullptr || pending_->num_rows() == 0) return Status::OK();
  AQPP_ASSIGN_OR_RETURN(
      auto delta,
      PrefixCube::Build(*pending_, cube_->scheme(), cube_->measures()));
  AQPP_RETURN_NOT_OK(cube_->MergeFrom(*delta));
  pending_.reset();
  return Status::OK();
}

ReservoirMaintainer::ReservoirMaintainer(Sample sample, uint64_t seed)
    : sample_(std::move(sample)),
      rows_seen_(sample_.population_size),
      rng_(seed) {
  AQPP_CHECK(sample_.rows != nullptr);
  AQPP_CHECK(sample_.method == SamplingMethod::kUniform)
      << "reservoir maintenance requires a uniform sample";
}

Status ReservoirMaintainer::OverwriteRow(size_t slot, const Table& batch,
                                         size_t row) {
  Table& rows = *sample_.rows;
  for (size_t c = 0; c < rows.num_columns(); ++c) {
    Column& dst = rows.mutable_column(c);
    const Column& src = batch.column(c);
    if (dst.type() == DataType::kDouble) {
      dst.MutableDoubleData()[slot] = src.GetDouble(row);
    } else if (dst.type() == DataType::kString) {
      auto code = dst.LookupDictionary(src.GetString(row));
      if (!code.ok()) {
        return Status::InvalidArgument(
            "appended value '" + src.GetString(row) +
            "' is not in the sample dictionary of column '" +
            rows.schema().column(c).name + "'");
      }
      dst.MutableInt64Data()[slot] = *code;
    } else {
      dst.MutableInt64Data()[slot] = src.GetInt64(row);
    }
  }
  return Status::OK();
}

Status ReservoirMaintainer::Absorb(const Table& batch) {
  AQPP_RETURN_NOT_OK(SchemasMatch(sample_.rows->schema(), batch.schema()));
  AQPP_FAILPOINT_RETURN_STATUS("core/maintenance/reservoir_absorb");
  const size_t n = sample_.size();
  AQPP_CHECK_GT(n, 0u);
  // Pre-validate every string value against the sample dictionaries so the
  // sampling loop below cannot fail: an unknown category used to surface
  // mid-batch from OverwriteRow, leaving a half-overwritten sample row and
  // rows_seen_ advanced past rows that were never absorbed.
  const Table& rows = *sample_.rows;
  for (size_t c = 0; c < rows.num_columns(); ++c) {
    if (rows.column(c).type() != DataType::kString) continue;
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      if (!rows.column(c).LookupDictionary(batch.column(c).GetString(r)).ok()) {
        return Status::InvalidArgument(
            "appended value '" + batch.column(c).GetString(r) +
            "' is not in the sample dictionary of column '" +
            rows.schema().column(c).name +
            "'; new categories require re-preparation");
      }
    }
  }
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    ++rows_seen_;
    // Algorithm R: the new row replaces a uniformly random slot with
    // probability n / rows_seen.
    size_t j = static_cast<size_t>(rng_.NextBounded(rows_seen_));
    if (j < n) {
      AQPP_RETURN_NOT_OK(OverwriteRow(j, batch, r));
    }
  }
  sample_.population_size = rows_seen_;
  double w = static_cast<double>(rows_seen_) / static_cast<double>(n);
  std::fill(sample_.weights.begin(), sample_.weights.end(), w);
  sample_.sampling_fraction =
      static_cast<double>(n) / static_cast<double>(rows_seen_);
  if (observer_) observer_();
  return Status::OK();
}

}  // namespace aqpp
