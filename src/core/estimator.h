// Forwarding shim: the sample-based estimators moved into the synopsis
// library (src/synopsis/estimator.h) so Synopsis implementations can reuse
// them without a core <-> synopsis dependency cycle. Existing includers of
// core/estimator.h keep compiling unchanged.

#ifndef AQPP_CORE_ESTIMATOR_H_
#define AQPP_CORE_ESTIMATOR_H_

#include "synopsis/estimator.h"

#endif  // AQPP_CORE_ESTIMATOR_H_
