// Sample-based estimators: the AQP path (Equation 3, Example 1) and the
// AQP++ difference path (Equation 4, Example 3).
//
// Both are built on one primitive: given per-row values y_i on the sample,
// sum_i w_i * y_i estimates the population sum of y, with a CLT confidence
// interval from the per-row expansion contributions. For AQP the row value
// is A_i * cond_q(i); for AQP++ it is A_i * (cond_q(i) - cond_pre(i)) and
// the precomputed pre(D) is added back as a constant — which is exactly why
// a highly correlated pre shrinks the interval (Section 4.2's
// back-of-the-envelope analysis).

#ifndef AQPP_CORE_ESTIMATOR_H_
#define AQPP_CORE_ESTIMATOR_H_

#include <functional>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "expr/query.h"
#include "sampling/sample.h"
#include "stats/confidence.h"

namespace aqpp {

struct EstimatorOptions {
  double confidence_level = 0.95;
  // Resamples used for bootstrap CIs (AVG/VAR paths).
  size_t bootstrap_resamples = 120;
};

// Precomputed aggregate values of one `pre` box, read from the cube planes.
struct PreValues {
  double sum = 0.0;       // SUM(A) over the box
  double count = 0.0;     // COUNT(*) over the box
  double sum_sq = 0.0;    // SUM(A^2) over the box
};

class SampleEstimator {
 public:
  // `sample` must outlive the estimator.
  SampleEstimator(const Sample* sample, EstimatorOptions options = {});

  const Sample& sample() const { return *sample_; }
  const EstimatorOptions& options() const { return options_; }

  // ---- Generic primitive --------------------------------------------------

  // CI for the population sum of y, where y_values[i] is y evaluated on
  // sample row i. Handles stratified samples per stratum.
  ConfidenceInterval SumCI(const std::vector<double>& y_values) const;

  // ---- AQP (direct) path ---------------------------------------------------

  // Estimates `query` (scalar, no group-by) directly from the sample.
  // SUM/COUNT: closed-form CLT interval. AVG: linearized ratio estimator.
  // VAR: plug-in estimate with bootstrap CI. MIN/MAX: Unimplemented (the
  // paper notes AQP cannot handle them; see Section 8).
  Result<ConfidenceInterval> EstimateDirect(const RangeQuery& query,
                                            Rng& rng) const;

  // ---- AQP++ (difference) path ---------------------------------------------

  // Estimates `query` as pre(D) + (q̂(S) - p̂re(S)). `pre_predicate` is the
  // sample-side predicate of the precomputed box; `pre` carries its exact
  // precomputed values. Supports SUM/COUNT/AVG/VAR.
  Result<ConfidenceInterval> EstimateWithPre(const RangeQuery& query,
                                             const RangePredicate& pre_predicate,
                                             const PreValues& pre,
                                             Rng& rng) const;

  // ---- Row-mask helpers (exposed for identification & tests) --------------

  // 0/1 mask of sample rows matching `predicate`.
  Result<std::vector<uint8_t>> Mask(const RangePredicate& predicate) const;

  // Aggregation-attribute values of all sample rows.
  Result<std::vector<double>> MeasureValues(size_t column) const;

 private:
  // Shared implementation of the SUM/COUNT closed-form difference CI.
  ConfidenceInterval SumDifferenceCI(const std::vector<double>& measure,
                                     const std::vector<uint8_t>& q_mask,
                                     const std::vector<uint8_t>& pre_mask,
                                     double pre_value) const;

  const Sample* sample_;
  EstimatorOptions options_;
  double lambda_;
};

}  // namespace aqpp

#endif  // AQPP_CORE_ESTIMATOR_H_
