#include "storage/extent.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_set>

#include "common/string_util.h"

namespace aqpp {

namespace {

// Dictionary encoding is only probed up to this many distinct values; past
// it the value table stops paying for itself against FOR.
constexpr size_t kMaxDictValues = 4096;

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

// Bytes needed to hold an unsigned delta range; 8 means "doesn't fit any
// packed width" (caller falls back to raw).
uint8_t WidthForRange(uint64_t range) {
  if (range == 0) return 0;
  if (range <= 0xFFull) return 1;
  if (range <= 0xFFFFull) return 2;
  if (range <= 0xFFFFFFFFull) return 4;
  return 8;
}

// Packed little-endian writes/reads, independent of host struct layout.
void AppendPackedU64(std::string* out, uint64_t v, uint8_t width) {
  for (uint8_t b = 0; b < width; ++b) {
    out->push_back(static_cast<char>((v >> (8 * b)) & 0xFFu));
  }
}

uint64_t LoadPackedU64(const uint8_t* p, uint8_t width) {
  uint64_t v = 0;
  for (uint8_t b = 0; b < width; ++b) {
    v |= static_cast<uint64_t>(p[b]) << (8 * b);
  }
  return v;
}

void AppendHeader(std::string* out, const ExtentHeader& h) {
  out->append(reinterpret_cast<const char*>(&h), sizeof(h));
}

Status CorruptExtent(const char* what) {
  return Status::IOError(std::string("corrupt extent: ") + what);
}

}  // namespace

const char* ExtentEncodingName(ExtentEncoding e) {
  switch (e) {
    case ExtentEncoding::kInt64Raw:
      return "int64_raw";
    case ExtentEncoding::kInt64For:
      return "int64_for";
    case ExtentEncoding::kInt64DeltaFor:
      return "int64_delta_for";
    case ExtentEncoding::kInt64Dict:
      return "int64_dict";
    case ExtentEncoding::kDoubleRaw:
      return "double_raw";
  }
  return "unknown";
}

uint32_t Crc32(const void* data, size_t n) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Status EncodeExtent(const int64_t* values, size_t rows, DataType type,
                    std::string* out, ExtentHeader* header) {
  if (rows == 0 || rows > kExtentRows) {
    return Status::InvalidArgument("extent rows must be in [1, 65536]");
  }
  if (type == DataType::kDouble) {
    return Status::InvalidArgument("int64 encoder given a double column");
  }

  int64_t mn = values[0];
  int64_t mx = values[0];
  for (size_t i = 1; i < rows; ++i) {
    mn = std::min(mn, values[i]);
    mx = std::max(mx, values[i]);
  }
  // Two's-complement subtraction in uint64 gives the exact range even when
  // (mx - mn) would overflow int64.
  const uint64_t range =
      static_cast<uint64_t>(mx) - static_cast<uint64_t>(mn);
  const uint8_t for_width = WidthForRange(range);

  constexpr size_t kNoFit = std::numeric_limits<size_t>::max();
  size_t for_bytes = kNoFit;
  if (for_width <= 4) for_bytes = 1 + 8 + rows * for_width;

  // Delta-FOR: only when the value range fits int64, so every successive
  // delta is exactly representable.
  size_t delta_bytes = kNoFit;
  uint8_t delta_width = 8;
  int64_t delta_ref = 0;
  if (rows >= 2 &&
      range <= static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    int64_t dmn = values[1] - values[0];
    int64_t dmx = dmn;
    for (size_t i = 2; i < rows; ++i) {
      int64_t d = values[i] - values[i - 1];
      dmn = std::min(dmn, d);
      dmx = std::max(dmx, d);
    }
    delta_width = WidthForRange(static_cast<uint64_t>(dmx) -
                                static_cast<uint64_t>(dmn));
    if (delta_width >= 1 && delta_width <= 4) {
      delta_bytes = 1 + 8 + 8 + (rows - 1) * delta_width;
      delta_ref = dmn;
    }
  }

  // Dictionary: probed only when FOR needs > 1 byte/row (a 1-byte FOR is
  // already at the dictionary index floor, so the value table can't win).
  size_t dict_bytes = kNoFit;
  std::vector<int64_t> dict_values;
  if (for_width > 1) {
    std::unordered_set<int64_t> distinct;
    distinct.reserve(kMaxDictValues * 2);
    for (size_t i = 0; i < rows; ++i) {
      distinct.insert(values[i]);
      if (distinct.size() > kMaxDictValues) break;
    }
    if (distinct.size() <= kMaxDictValues) {
      dict_values.assign(distinct.begin(), distinct.end());
      std::sort(dict_values.begin(), dict_values.end());
      const uint8_t idx_width = dict_values.size() <= 256 ? 1 : 2;
      dict_bytes = 1 + 4 + dict_values.size() * 8 + rows * idx_width;
    }
  }

  const size_t raw_bytes = rows * 8;

  ExtentEncoding enc = ExtentEncoding::kInt64Raw;
  size_t best = raw_bytes;
  // Priority on ties: FOR (cheapest decode) > delta-FOR > dict > raw.
  if (dict_bytes < best) {
    enc = ExtentEncoding::kInt64Dict;
    best = dict_bytes;
  }
  if (delta_bytes < best) {
    enc = ExtentEncoding::kInt64DeltaFor;
    best = delta_bytes;
  }
  if (for_bytes <= best) {
    enc = ExtentEncoding::kInt64For;
    best = for_bytes;
  }

  std::string payload;
  payload.reserve(best);
  switch (enc) {
    case ExtentEncoding::kInt64For: {
      payload.push_back(static_cast<char>(for_width));
      AppendPackedU64(&payload, static_cast<uint64_t>(mn), 8);
      for (size_t i = 0; i < rows; ++i) {
        AppendPackedU64(&payload,
                        static_cast<uint64_t>(values[i]) -
                            static_cast<uint64_t>(mn),
                        for_width);
      }
      break;
    }
    case ExtentEncoding::kInt64DeltaFor: {
      payload.push_back(static_cast<char>(delta_width));
      AppendPackedU64(&payload, static_cast<uint64_t>(values[0]), 8);
      AppendPackedU64(&payload, static_cast<uint64_t>(delta_ref), 8);
      for (size_t i = 1; i < rows; ++i) {
        int64_t d = values[i] - values[i - 1];
        AppendPackedU64(&payload,
                        static_cast<uint64_t>(d) -
                            static_cast<uint64_t>(delta_ref),
                        delta_width);
      }
      break;
    }
    case ExtentEncoding::kInt64Dict: {
      const uint8_t idx_width = dict_values.size() <= 256 ? 1 : 2;
      payload.push_back(static_cast<char>(idx_width));
      AppendPackedU64(&payload, dict_values.size(), 4);
      for (int64_t v : dict_values) {
        AppendPackedU64(&payload, static_cast<uint64_t>(v), 8);
      }
      for (size_t i = 0; i < rows; ++i) {
        auto it = std::lower_bound(dict_values.begin(), dict_values.end(),
                                   values[i]);
        AppendPackedU64(
            &payload,
            static_cast<uint64_t>(it - dict_values.begin()), idx_width);
      }
      break;
    }
    case ExtentEncoding::kInt64Raw:
    default:
      payload.assign(reinterpret_cast<const char*>(values), rows * 8);
      break;
  }

  ExtentHeader h;
  h.encoding = static_cast<uint8_t>(enc);
  h.type = static_cast<uint8_t>(type);
  h.rows = static_cast<uint32_t>(rows);
  h.encoded_bytes = static_cast<uint32_t>(payload.size());
  h.checksum = Crc32(payload.data(), payload.size());
  h.min_bits = mn;
  h.max_bits = mx;
  AppendHeader(out, h);
  out->append(payload);
  if (header != nullptr) *header = h;
  return Status::OK();
}

Status EncodeExtent(const double* values, size_t rows, std::string* out,
                    ExtentHeader* header) {
  if (rows == 0 || rows > kExtentRows) {
    return Status::InvalidArgument("extent rows must be in [1, 65536]");
  }
  // Zone map over non-NaN values (an all-NaN extent keeps NaN bounds, which
  // no range predicate matches anyway).
  double mn = std::numeric_limits<double>::quiet_NaN();
  double mx = std::numeric_limits<double>::quiet_NaN();
  for (size_t i = 0; i < rows; ++i) {
    double v = values[i];
    if (std::isnan(v)) continue;
    if (std::isnan(mn) || v < mn) mn = v;
    if (std::isnan(mx) || v > mx) mx = v;
  }

  ExtentHeader h;
  h.encoding = static_cast<uint8_t>(ExtentEncoding::kDoubleRaw);
  h.type = static_cast<uint8_t>(DataType::kDouble);
  h.rows = static_cast<uint32_t>(rows);
  h.encoded_bytes = static_cast<uint32_t>(rows * 8);
  h.checksum = Crc32(values, rows * 8);
  std::memcpy(&h.min_bits, &mn, 8);
  std::memcpy(&h.max_bits, &mx, 8);
  AppendHeader(out, h);
  out->append(reinterpret_cast<const char*>(values), rows * 8);
  if (header != nullptr) *header = h;
  return Status::OK();
}

Status ValidateExtentHeader(const ExtentHeader& h,
                            uint64_t max_payload_bytes) {
  if (h.magic != ExtentHeader::kMagic) {
    return Status::InvalidArgument("bad extent magic (not an AQPP extent)");
  }
  if (h.encoding > static_cast<uint8_t>(ExtentEncoding::kDoubleRaw)) {
    return CorruptExtent("unknown encoding");
  }
  if (h.type > static_cast<uint8_t>(DataType::kString)) {
    return CorruptExtent("unknown column type");
  }
  const bool is_double = h.type == static_cast<uint8_t>(DataType::kDouble);
  const bool double_enc =
      h.encoding == static_cast<uint8_t>(ExtentEncoding::kDoubleRaw);
  if (is_double != double_enc) {
    return CorruptExtent("encoding does not match column type");
  }
  if (h.rows == 0 || h.rows > kExtentRows) {
    return CorruptExtent("row count out of range");
  }
  if (h.encoded_bytes > max_payload_bytes) {
    return Status::IOError(StrFormat(
        "corrupt extent: payload length %u exceeds available %llu bytes",
        h.encoded_bytes,
        static_cast<unsigned long long>(max_payload_bytes)));
  }
  if (h.null_count > h.rows) {
    return CorruptExtent("null count exceeds row count");
  }
  return Status::OK();
}

Status DecodeExtent(const ExtentHeader& h, const uint8_t* payload,
                    std::vector<int64_t>* ints, std::vector<double>* dbls) {
  AQPP_RETURN_NOT_OK(ValidateExtentHeader(h, h.encoded_bytes));
  const uint32_t crc = Crc32(payload, h.encoded_bytes);
  if (crc != h.checksum) {
    return Status::IOError(StrFormat(
        "extent checksum mismatch: payload crc32 %08x, header says %08x",
        crc, h.checksum));
  }
  const size_t rows = h.rows;
  const size_t n = h.encoded_bytes;

  switch (static_cast<ExtentEncoding>(h.encoding)) {
    case ExtentEncoding::kInt64Raw: {
      if (n != rows * 8) return CorruptExtent("raw int payload size");
      ints->resize(rows);
      std::memcpy(ints->data(), payload, n);
      return Status::OK();
    }
    case ExtentEncoding::kInt64For: {
      if (n < 9) return CorruptExtent("FOR payload too short");
      const uint8_t width = payload[0];
      if (width != 0 && width != 1 && width != 2 && width != 4) {
        return CorruptExtent("FOR width");
      }
      if (n != 9 + rows * width) return CorruptExtent("FOR payload size");
      const uint64_t ref = LoadPackedU64(payload + 1, 8);
      ints->resize(rows);
      int64_t* out = ints->data();
      const uint8_t* p = payload + 9;
      if (width == 0) {
        std::fill(out, out + rows, static_cast<int64_t>(ref));
      } else {
        for (size_t i = 0; i < rows; ++i) {
          out[i] = static_cast<int64_t>(ref + LoadPackedU64(p, width));
          p += width;
        }
      }
      return Status::OK();
    }
    case ExtentEncoding::kInt64DeltaFor: {
      if (n < 17) return CorruptExtent("delta-FOR payload too short");
      const uint8_t width = payload[0];
      if (width != 1 && width != 2 && width != 4) {
        return CorruptExtent("delta-FOR width");
      }
      if (n != 17 + (rows - 1) * width) {
        return CorruptExtent("delta-FOR payload size");
      }
      const uint64_t first = LoadPackedU64(payload + 1, 8);
      const uint64_t ref = LoadPackedU64(payload + 9, 8);
      ints->resize(rows);
      int64_t* out = ints->data();
      out[0] = static_cast<int64_t>(first);
      uint64_t acc = first;
      const uint8_t* p = payload + 17;
      for (size_t i = 1; i < rows; ++i) {
        acc += ref + LoadPackedU64(p, width);
        p += width;
        out[i] = static_cast<int64_t>(acc);
      }
      return Status::OK();
    }
    case ExtentEncoding::kInt64Dict: {
      if (n < 5) return CorruptExtent("dict payload too short");
      const uint8_t idx_width = payload[0];
      if (idx_width != 1 && idx_width != 2) {
        return CorruptExtent("dict index width");
      }
      const uint64_t k = LoadPackedU64(payload + 1, 4);
      if (k == 0 || k > kMaxDictValues) {
        return CorruptExtent("dict value count");
      }
      if (idx_width == 1 && k > 256) {
        return CorruptExtent("dict value count vs index width");
      }
      if (n != 5 + k * 8 + rows * idx_width) {
        return CorruptExtent("dict payload size");
      }
      const uint8_t* vals = payload + 5;
      const uint8_t* idx = vals + k * 8;
      ints->resize(rows);
      int64_t* out = ints->data();
      for (size_t i = 0; i < rows; ++i) {
        const uint64_t j = LoadPackedU64(idx + i * idx_width, idx_width);
        if (j >= k) return CorruptExtent("dict index out of range");
        out[i] = static_cast<int64_t>(LoadPackedU64(vals + j * 8, 8));
      }
      return Status::OK();
    }
    case ExtentEncoding::kDoubleRaw: {
      if (n != rows * 8) return CorruptExtent("raw double payload size");
      dbls->resize(rows);
      std::memcpy(dbls->data(), payload, n);
      return Status::OK();
    }
  }
  return CorruptExtent("unknown encoding");
}

}  // namespace aqpp
