// Compressed column extents: the unit of out-of-core storage.
//
// An extent holds up to kExtentRows values of one column, encoded with a
// lightweight scheme chosen per extent (frame-of-reference, delta-FOR,
// dictionary, or raw), preceded by a fixed 40-byte header carrying the
// min/max/count/null-count zone maps and a CRC-32 of the payload. All
// encodings are exactly lossless — a decoded extent is bit-identical to the
// values that went in, which is what lets the extent scan path reproduce the
// in-memory aggregation results bit for bit.
//
// kExtentRows equals the scan-kernel shard (32 x 2048-row chunks), so one
// decoded extent is exactly one shard of the fixed aggregation grid.

#ifndef AQPP_STORAGE_EXTENT_H_
#define AQPP_STORAGE_EXTENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/types.h"

namespace aqpp {

// Rows per (full) extent; the last extent of a column may be ragged. Must
// stay a multiple of the 2048-row kernel chunk: src/kernels asserts it
// matches the shard size so extent boundaries never split a chunk.
inline constexpr size_t kExtentRows = 65536;

enum class ExtentEncoding : uint8_t {
  // rows * 8 bytes, native order.
  kInt64Raw = 0,
  // u8 width(0|1|2|4) + i64 ref + rows*width packed (v - ref). width 0 means
  // a constant extent: every value equals ref, no packed bytes.
  kInt64For = 1,
  // u8 width(1|2|4) + i64 first + i64 ref + (rows-1)*width packed deltas
  // (v[i] - v[i-1] - ref). Wins on sorted / clustered keys.
  kInt64DeltaFor = 2,
  // u8 idx_width(1|2) + u32 k + k * i64 sorted distinct + rows*idx_width
  // indices. Wins on low-cardinality columns with a wide value range.
  kInt64Dict = 3,
  // rows * 8 bytes, native order (IEEE-754 bit patterns preserved).
  kDoubleRaw = 4,
};

const char* ExtentEncodingName(ExtentEncoding e);

// CRC-32 (reflected 0xEDB88320, the IEEE 802.3 polynomial).
uint32_t Crc32(const void* data, size_t n);

// Fixed 40-byte on-disk extent header. Field order gives natural alignment
// with no padding; serialized by memcpy in native order like the rest of the
// binary formats.
struct ExtentHeader {
  static constexpr uint32_t kMagic = 0x58455141u;  // "AQEX"

  uint32_t magic = kMagic;
  uint8_t encoding = 0;       // ExtentEncoding
  uint8_t type = 0;           // DataType
  uint16_t reserved = 0;
  uint32_t rows = 0;
  uint32_t encoded_bytes = 0; // payload bytes following this header
  uint32_t null_count = 0;    // always 0 today; kept for format evolution
  uint32_t checksum = 0;      // CRC-32 of the payload
  int64_t min_bits = 0;       // zone map: int64 value, or double bit pattern
  int64_t max_bits = 0;
};
static_assert(sizeof(ExtentHeader) == 40, "on-disk header must stay packed");

// Encodes one ordinal (kInt64 / kString-code) extent: appends header +
// payload to `out` and reports the header written. Picks the smallest
// candidate encoding; ties break toward the cheaper decoder.
Status EncodeExtent(const int64_t* values, size_t rows, DataType type,
                    std::string* out, ExtentHeader* header);

// Encodes one kDouble extent (raw IEEE-754; NaNs are excluded from the zone
// map unless the extent is all-NaN).
Status EncodeExtent(const double* values, size_t rows, std::string* out,
                    ExtentHeader* header);

// Structural validation of a header read from (possibly corrupt) bytes:
// magic, enum ranges, row count, and payload length against
// `max_payload_bytes`. Wrong magic is InvalidArgument; everything else is
// IOError.
Status ValidateExtentHeader(const ExtentHeader& header,
                            uint64_t max_payload_bytes);

// Decodes one extent payload into `ints` (ordinal types) or `dbls`
// (kDouble), resizing the destination to header.rows. Verifies the checksum
// and every embedded length/index before touching the destination; corrupt
// input yields a typed IOError, never a crash or silently wrong data.
Status DecodeExtent(const ExtentHeader& header, const uint8_t* payload,
                    std::vector<int64_t>* ints, std::vector<double>* dbls);

}  // namespace aqpp

#endif  // AQPP_STORAGE_EXTENT_H_
