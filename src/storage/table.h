// Columnar table and catalog.

#ifndef AQPP_STORAGE_TABLE_H_
#define AQPP_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/column.h"
#include "storage/types.h"

namespace aqpp {

// An immutable-after-build, in-memory columnar table.
class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return *columns_[i]; }
  Column& mutable_column(size_t i) { return *columns_[i]; }

  // Column access by name.
  Result<const Column*> GetColumn(const std::string& name) const;
  Result<size_t> GetColumnIndex(const std::string& name) const;

  // ---- Row-oriented construction -----------------------------------------
  // Values must be passed in schema order; ints are accepted for kInt64,
  // doubles for kDouble, strings for kString. For bulk loads prefer writing
  // into MutableInt64Data()/MutableDoubleData() directly and calling
  // SetRowCountFromColumns().

  class RowBuilder {
   public:
    explicit RowBuilder(Table* table) : table_(table) {}
    // Commits the row on destruction; aborts if values were appended but the
    // arity does not match the schema.
    ~RowBuilder() { Done(); }
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

    RowBuilder& Int64(int64_t v);
    RowBuilder& Double(double v);
    RowBuilder& String(const std::string& v);
    // Commits the row explicitly (idempotent).
    void Done();

   private:
    Table* table_;
    size_t next_col_ = 0;
    bool committed_ = false;
  };

  RowBuilder AddRow() { return RowBuilder(this); }

  void Reserve(size_t rows);

  // Recomputes num_rows after direct column mutation; aborts if columns
  // disagree on length.
  void SetRowCountFromColumns();

  // Finalizes all string dictionaries (alphabetical code order).
  void FinalizeDictionaries();

  // Sum of column footprints in bytes.
  size_t MemoryUsage() const;

 private:
  friend class RowBuilder;
  Schema schema_;
  std::vector<std::unique_ptr<Column>> columns_;
  size_t num_rows_ = 0;
};

// Materializes the given rows of `table` (in the given order, duplicates
// allowed) into a new table with the same schema. String dictionaries are
// copied so codes remain valid.
Result<std::shared_ptr<Table>> TakeRows(const Table& table,
                                        const std::vector<size_t>& rows);

// Name -> table registry shared by the engines.
class Catalog {
 public:
  Status Register(const std::string& name, std::shared_ptr<Table> table);
  Result<std::shared_ptr<Table>> Get(const std::string& name) const;
  bool Contains(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  Status Drop(const std::string& name);
  std::vector<std::string> TableNames() const;

 private:
  std::unordered_map<std::string, std::shared_ptr<Table>> tables_;
};

}  // namespace aqpp

#endif  // AQPP_STORAGE_TABLE_H_
