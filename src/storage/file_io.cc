#include "storage/file_io.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace aqpp {

std::string ErrnoDetail() {
  return errno != 0 ? std::string(": ") + std::strerror(errno)
                    : std::string();
}

CheckedWriter::~CheckedWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status CheckedWriter::Open(const std::string& path) {
  errno = 0;
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot open '" + path + "' for writing" +
                           ErrnoDetail());
  }
  path_ = path;
  bytes_written_ = 0;
  return Status::OK();
}

Status CheckedWriter::Write(const void* data, size_t n) {
  if (n == 0) return Status::OK();
  size_t want = n;
  if (auto fired = AQPP_FAILPOINT_EVAL("storage/io/write")) {
    if (fired->kind == fail::ActionKind::kReturnError) return fired->error;
    // Partial I/O: transfer only a fraction, then report the short write
    // exactly as a full disk would.
    want = static_cast<size_t>(static_cast<double>(n) * fired->io_fraction);
  }
  errno = 0;
  size_t wrote = std::fwrite(data, 1, want, file_);
  bytes_written_ += wrote;
  if (wrote != n) {
    return Status::IOError(StrFormat(
        "short write to '%s': wrote %zu of %zu bytes%s", path_.c_str(),
        wrote, n, ErrnoDetail().c_str()));
  }
  return Status::OK();
}

Status CheckedWriter::WriteLengthPrefixed(const std::string& s) {
  AQPP_RETURN_NOT_OK(WritePod<uint64_t>(s.size()));
  return Write(s.data(), s.size());
}

Status CheckedWriter::Sync() {
  AQPP_FAILPOINT_RETURN_STATUS("storage/io/fsync");
  errno = 0;
  if (std::fflush(file_) != 0) {
    return Status::IOError("flush failed for '" + path_ + "'" +
                           ErrnoDetail());
  }
  errno = 0;
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IOError("fsync failed for '" + path_ + "'" +
                           ErrnoDetail());
  }
  return Status::OK();
}

Status CheckedWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  errno = 0;
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) {
    return Status::IOError("close failed for '" + path_ + "'" +
                           ErrnoDetail());
  }
  return Status::OK();
}

CheckedReader::~CheckedReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status CheckedReader::Open(const std::string& path) {
  errno = 0;
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IOError("cannot open '" + path + "'" + ErrnoDetail());
  }
  path_ = path;
  struct stat st{};
  if (::fstat(::fileno(file_), &st) != 0) {
    return Status::IOError("cannot stat '" + path + "'" + ErrnoDetail());
  }
  file_size_ = static_cast<uint64_t>(st.st_size);
  return Status::OK();
}

Status CheckedReader::Seek(uint64_t offset) {
  errno = 0;
  if (::fseeko(file_, static_cast<off_t>(offset), SEEK_SET) != 0) {
    return Status::IOError(StrFormat("seek to %llu failed in '%s'%s",
                                     static_cast<unsigned long long>(offset),
                                     path_.c_str(), ErrnoDetail().c_str()));
  }
  return Status::OK();
}

Status CheckedReader::Read(void* data, size_t n) {
  if (n == 0) return Status::OK();
  size_t want = n;
  if (auto fired = AQPP_FAILPOINT_EVAL("storage/io/read")) {
    if (fired->kind == fail::ActionKind::kReturnError) return fired->error;
    want = static_cast<size_t>(static_cast<double>(n) * fired->io_fraction);
  }
  errno = 0;
  size_t got = std::fread(data, 1, want, file_);
  if (got != n) {
    return Status::IOError(StrFormat(
        "short read from '%s': got %zu of %zu bytes%s (truncated file?)",
        path_.c_str(), got, n, ErrnoDetail().c_str()));
  }
  return Status::OK();
}

Status CheckedReader::ReadLength(uint64_t* len, uint64_t limit,
                                 const char* what) {
  AQPP_RETURN_NOT_OK(ReadPod(len));
  if (*len > limit || *len > file_size_) {
    return Status::IOError(StrFormat(
        "corrupt %s length %llu in '%s' (file is %llu bytes)", what,
        static_cast<unsigned long long>(*len), path_.c_str(),
        static_cast<unsigned long long>(file_size_)));
  }
  return Status::OK();
}

Status CheckedReader::ReadLengthPrefixed(std::string* s) {
  uint64_t len = 0;
  AQPP_RETURN_NOT_OK(ReadLength(&len, file_size_, "string"));
  s->resize(len);
  return Read(s->data(), len);
}

Status CommitRename(const std::string& tmp_path, const std::string& path) {
  errno = 0;
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    Status st = Status::IOError("rename '" + tmp_path + "' -> '" + path +
                                "' failed" + ErrnoDetail());
    std::remove(tmp_path.c_str());
    return st;
  }
  return Status::OK();
}

}  // namespace aqpp
