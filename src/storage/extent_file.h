// On-disk extent file: a whole table as compressed column extents, built for
// streaming writes and bounded-memory scans.
//
// Layout (all integers native-order, like the other binary formats):
//
//   +--------------------------------------------------------------+
//   | magic "AQPPEXT1" (8 bytes)                                   |
//   +--------------------------------------------------------------+
//   | row group 0:  col 0 extent | col 1 extent | ... | col C-1    |
//   | row group 1:  col 0 extent | col 1 extent | ...              |
//   | ...            (each extent = 40-byte header + payload)      |
//   +--------------------------------------------------------------+
//   | footer: schema + dictionaries + per-extent directory         |
//   |         (offset / length / encoding / zone maps / checksum)  |
//   +--------------------------------------------------------------+
//   | trailer: u64 footer offset + magic "AQPPEXT1" (16 bytes)     |
//   +--------------------------------------------------------------+
//
// Row-group-major blob order means the writer streams with one extent of
// buffering per column and a single-pass reader touches the file once, in
// offset order. The footer duplicates every extent's zone maps so predicate
// pruning never has to fault in the extents it is about to skip.
//
// Durability: the writer targets `path.tmp`, fsyncs, then renames — a crash
// or injected fault leaves the destination absent or previously-complete,
// never torn (same contract as WriteBinary, same storage/io/* failpoints).

#ifndef AQPP_STORAGE_EXTENT_FILE_H_
#define AQPP_STORAGE_EXTENT_FILE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/extent.h"
#include "storage/file_io.h"
#include "storage/table.h"

namespace aqpp {

// One footer directory entry: where a column's extent lives and everything
// pruning needs to know about it without reading it.
struct ExtentBlobInfo {
  uint64_t offset = 0;        // file offset of the 40-byte extent header
  uint32_t encoded_bytes = 0; // payload bytes (header not included)
  ExtentEncoding encoding = ExtentEncoding::kInt64Raw;
  DataType type = DataType::kInt64;
  uint32_t rows = 0;
  uint32_t null_count = 0;
  uint32_t checksum = 0;
  int64_t min_bits = 0;       // zone map (int64 value / double bit pattern)
  int64_t max_bits = 0;
};

// Streaming writer: append row batches in any sizes; every kExtentRows
// buffered rows are encoded and flushed, so peak memory is one extent per
// column plus the caller's batch regardless of total table size.
class ExtentFileWriter {
 public:
  static Result<std::unique_ptr<ExtentFileWriter>> Create(
      const std::string& path, const Schema& schema);
  ~ExtentFileWriter();
  ExtentFileWriter(const ExtentFileWriter&) = delete;
  ExtentFileWriter& operator=(const ExtentFileWriter&) = delete;

  // Sets the (final) dictionary for a kString column. Must be called before
  // Finish(); codes appended for this column must already index into `dict`
  // (e.g. from FinalizeDictionaries on the source, or a generator that
  // assigns final codes up front).
  Status SetDictionary(size_t col, std::vector<std::string> dict);

  // Appends all rows of `batch`, whose schema must match column-for-column.
  Status Append(const Table& batch);

  // Flushes the ragged tail extent, writes footer + trailer, fsyncs, and
  // atomically renames into place. No-op file methods after this.
  Status Finish();

  uint64_t rows_appended() const { return rows_appended_; }

 private:
  ExtentFileWriter(std::string path, Schema schema);

  Status FlushBufferedExtent();
  Status Fail(Status st);  // abandons the tmp file, remembers the error

  std::string path_;
  std::string tmp_path_;
  Schema schema_;
  CheckedWriter out_;
  std::vector<std::vector<int64_t>> int_buf_;  // per ordinal column
  std::vector<std::vector<double>> dbl_buf_;   // per double column
  std::vector<std::vector<std::string>> dicts_;
  std::vector<char> dict_set_;
  std::vector<int64_t> max_code_;  // per kString column, for code validation
  size_t buffered_rows_ = 0;
  uint64_t rows_appended_ = 0;
  std::vector<ExtentBlobInfo> blobs_;  // row-group-major
  bool finished_ = false;
  bool failed_ = false;
};

// mmap-backed reader. Opening parses and validates the footer only; extents
// are decoded on demand through Pin(), with a small LRU of decoded extents
// so repeated scans over the same hot columns stay cheap while resident
// memory stays bounded.
//
// Thread safety: Pin() and the cache are mutex-guarded (decode itself runs
// outside the lock); everything else is immutable after Open.
class ExtentFileReader {
 public:
  struct Options {
    // Decoded extents kept alive by the cache (~0.5 MB each per column).
    size_t cache_capacity = 48;
  };

  static Result<std::shared_ptr<ExtentFileReader>> Open(
      const std::string& path, const Options& options);
  static Result<std::shared_ptr<ExtentFileReader>> Open(
      const std::string& path) {
    return Open(path, Options());
  }
  ~ExtentFileReader();
  ExtentFileReader(const ExtentFileReader&) = delete;
  ExtentFileReader& operator=(const ExtentFileReader&) = delete;

  const std::string& path() const { return path_; }
  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return schema_.num_columns(); }
  size_t num_extents() const { return num_extents_; }

  // Rows in extent `e` (kExtentRows except possibly the last).
  size_t ExtentRows(size_t e) const;
  const ExtentBlobInfo& blob(size_t e, size_t col) const {
    return blobs_[e * schema_.num_columns() + col];
  }
  const std::vector<std::string>& dictionary(size_t col) const {
    return dicts_[col];
  }

  // A decoded column extent. The shared_ptr keeps the buffer alive for as
  // long as the caller needs it, independent of cache eviction.
  struct DecodedColumn {
    DataType type = DataType::kInt64;
    size_t rows = 0;
    std::shared_ptr<const std::vector<int64_t>> ints;  // ordinal types
    std::shared_ptr<const std::vector<double>> dbls;   // kDouble
    const int64_t* int_data() const { return ints ? ints->data() : nullptr; }
    const double* dbl_data() const { return dbls ? dbls->data() : nullptr; }
  };

  // Decodes (or returns the cached copy of) extent `e` of column `col`.
  // Verifies header-vs-footer consistency and the payload checksum; corrupt
  // bytes yield IOError, never a crash.
  Result<DecodedColumn> Pin(size_t e, size_t col);

  // Sequential-streaming helper: drops cached decodes for extents before `e`
  // and advises the kernel to release their file pages, keeping the resident
  // set proportional to the read-ahead window rather than the file.
  void ReleaseBefore(size_t e);

  uint64_t cache_hits() const;
  uint64_t cache_misses() const;

  // Materializes the whole file as an in-memory Table (tests, small files,
  // `table_pack --verify`).
  Result<std::shared_ptr<Table>> ReadTable();

 private:
  ExtentFileReader() = default;

  std::string path_;
  Schema schema_;
  std::vector<std::vector<std::string>> dicts_;
  uint64_t num_rows_ = 0;
  size_t num_extents_ = 0;
  std::vector<ExtentBlobInfo> blobs_;

  const uint8_t* map_ = nullptr;
  uint64_t map_size_ = 0;

  mutable std::mutex mu_;
  // LRU over (extent, column) -> decoded buffer; front is most recent.
  struct CacheEntry {
    uint64_t key;
    DecodedColumn value;
  };
  std::list<CacheEntry> lru_;
  std::unordered_map<uint64_t, std::list<CacheEntry>::iterator> index_;
  size_t cache_capacity_ = 48;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

// Convenience: pack an in-memory table into an extent file (dictionaries
// must already be finalized).
Status WriteExtentFile(const Table& table, const std::string& path);

}  // namespace aqpp

#endif  // AQPP_STORAGE_EXTENT_FILE_H_
