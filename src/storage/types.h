// Core type definitions for the columnar storage layer.

#ifndef AQPP_STORAGE_TYPES_H_
#define AQPP_STORAGE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace aqpp {

// Physical column types.
//
// kString columns are dictionary-encoded: the column stores int64 codes and
// the dictionary maps code -> string. Codes are assigned in lexicographic
// order when the column is finalized, which realizes the paper's rule that
// attributes without a natural ordering are ordered alphabetically
// (footnote 3 in Section 3).
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

const char* DataTypeToString(DataType t);

// Width in bytes of one value of type `t` (dictionary codes for kString).
size_t DataTypeWidth(DataType t);

struct ColumnSchema {
  std::string name;
  DataType type;
};

// An ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSchema> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnSchema& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnSchema>& columns() const { return columns_; }

  // Index of the column named `name`, or -1 if absent. Name lookup is
  // case-sensitive.
  int FindColumn(const std::string& name) const;

  bool HasColumn(const std::string& name) const {
    return FindColumn(name) >= 0;
  }

  std::string ToString() const;

 private:
  std::vector<ColumnSchema> columns_;
};

}  // namespace aqpp

#endif  // AQPP_STORAGE_TYPES_H_
