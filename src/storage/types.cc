#include "storage/types.h"

#include "common/logging.h"

namespace aqpp {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

size_t DataTypeWidth(DataType t) {
  switch (t) {
    case DataType::kInt64:
    case DataType::kString:
      return 8;
    case DataType::kDouble:
      return 8;
  }
  return 8;
}

Schema::Schema(std::vector<ColumnSchema> columns)
    : columns_(std::move(columns)) {}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ": ";
    out += DataTypeToString(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace aqpp
