#include "storage/table.h"

#include <algorithm>

#include "common/logging.h"

namespace aqpp {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    columns_.push_back(std::make_unique<Column>(schema_.column(i).type));
  }
}

Result<const Column*> Table::GetColumn(const std::string& name) const {
  int idx = schema_.FindColumn(name);
  if (idx < 0) return Status::NotFound("no column named '" + name + "'");
  return columns_[static_cast<size_t>(idx)].get();
}

Result<size_t> Table::GetColumnIndex(const std::string& name) const {
  int idx = schema_.FindColumn(name);
  if (idx < 0) return Status::NotFound("no column named '" + name + "'");
  return static_cast<size_t>(idx);
}

Table::RowBuilder& Table::RowBuilder::Int64(int64_t v) {
  AQPP_CHECK_LT(next_col_, table_->num_columns());
  table_->columns_[next_col_++]->AppendInt64(v);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::Double(double v) {
  AQPP_CHECK_LT(next_col_, table_->num_columns());
  table_->columns_[next_col_++]->AppendDouble(v);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::String(const std::string& v) {
  AQPP_CHECK_LT(next_col_, table_->num_columns());
  table_->columns_[next_col_++]->AppendString(v);
  return *this;
}

void Table::RowBuilder::Done() {
  if (committed_ || next_col_ == 0) return;
  AQPP_CHECK_EQ(next_col_, table_->num_columns());
  committed_ = true;
  ++table_->num_rows_;
}

void Table::Reserve(size_t rows) {
  for (auto& col : columns_) col->Reserve(rows);
}

void Table::SetRowCountFromColumns() {
  if (columns_.empty()) {
    num_rows_ = 0;
    return;
  }
  size_t n = columns_[0]->size();
  for (const auto& col : columns_) AQPP_CHECK_EQ(col->size(), n);
  num_rows_ = n;
}

void Table::FinalizeDictionaries() {
  for (auto& col : columns_) col->FinalizeDictionary();
}

size_t Table::MemoryUsage() const {
  size_t bytes = 0;
  for (const auto& col : columns_) bytes += col->MemoryUsage();
  return bytes;
}

Result<std::shared_ptr<Table>> TakeRows(const Table& table,
                                        const std::vector<size_t>& rows) {
  for (size_t r : rows) {
    if (r >= table.num_rows()) {
      return Status::OutOfRange("row index out of range");
    }
  }
  auto out = std::make_shared<Table>(table.schema());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& src = table.column(c);
    Column& dst = out->mutable_column(c);
    if (src.type() == DataType::kDouble) {
      auto& data = dst.MutableDoubleData();
      data.reserve(rows.size());
      const auto& sdata = src.DoubleData();
      for (size_t r : rows) data.push_back(sdata[r]);
    } else {
      auto& data = dst.MutableInt64Data();
      data.reserve(rows.size());
      const auto& sdata = src.Int64Data();
      for (size_t r : rows) data.push_back(sdata[r]);
      if (src.type() == DataType::kString) {
        dst.SetDictionary(src.dictionary());
      }
    }
  }
  out->SetRowCountFromColumns();
  return out;
}

Status Catalog::Register(const std::string& name,
                         std::shared_ptr<Table> table) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already registered");
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

Result<std::shared_ptr<Table>> Catalog::Get(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second;
}

Status Catalog::Drop(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace aqpp
