// In-memory column representation.
//
// Columns are append-only during construction and immutable afterwards.
// Numeric access is uniform: `AsDoubleView` lets aggregation code treat any
// column as a double sequence, while `Int64Data` exposes the ordinal codes
// used for range conditions and cube partitioning.

#ifndef AQPP_STORAGE_COLUMN_H_
#define AQPP_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "storage/types.h"

namespace aqpp {

class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const {
    return type_ == DataType::kDouble ? DoubleData().size() : ints_.size();
  }

  // ---- Construction -------------------------------------------------------

  void AppendInt64(int64_t v) {
    AQPP_DCHECK(type_ == DataType::kInt64);
    ints_.push_back(v);
  }
  void AppendDouble(double v) {
    AQPP_DCHECK(type_ == DataType::kDouble);
    MutableDoubleData().push_back(v);
  }
  // Appends a string value, interning it in the dictionary. Codes are
  // provisional until FinalizeDictionary() re-assigns them alphabetically.
  void AppendString(const std::string& v);

  void Reserve(size_t n) {
    if (type_ == DataType::kDouble) {
      MutableDoubleData().reserve(n);
    } else {
      ints_.reserve(n);
    }
  }

  // Adopts externally owned contiguous doubles as this column's storage
  // without copying — e.g. the decode buffer of an extent (kDouble columns
  // only, replaces any existing values). The column borrows until a mutation
  // forces a private copy; AsDoubleView hands the shared buffer on so views
  // stay valid even past the column's lifetime.
  void AdoptDoubleData(std::shared_ptr<const std::vector<double>> data);

  // Re-encodes dictionary codes so that code order == lexicographic order.
  // No-op for non-string columns. Must be called before ordinal use.
  void FinalizeDictionary();

  // ---- Access -------------------------------------------------------------

  int64_t GetInt64(size_t i) const {
    AQPP_DCHECK(type_ != DataType::kDouble);
    return ints_[i];
  }
  double GetDouble(size_t i) const {
    return type_ == DataType::kDouble ? DoubleData()[i]
                                      : static_cast<double>(ints_[i]);
  }
  // String value for row i (kString columns only).
  const std::string& GetString(size_t i) const {
    AQPP_DCHECK(type_ == DataType::kString);
    return dictionary_[static_cast<size_t>(ints_[i])];
  }

  // Raw storage views. Int64Data is valid for kInt64/kString; DoubleData for
  // kDouble.
  const std::vector<int64_t>& Int64Data() const { return ints_; }
  const std::vector<double>& DoubleData() const {
    return adopted_dbls_ ? *adopted_dbls_ : doubles_;
  }
  std::vector<int64_t>& MutableInt64Data() { return ints_; }
  // Mutable access detaches adopted storage (copy-on-write).
  std::vector<double>& MutableDoubleData() {
    if (adopted_dbls_) {
      doubles_ = *adopted_dbls_;
      adopted_dbls_.reset();
    }
    return doubles_;
  }

  // Dictionary for kString columns (code -> value, alphabetical after
  // FinalizeDictionary).
  const std::vector<std::string>& dictionary() const { return dictionary_; }

  // Replaces the dictionary wholesale (deserialization); codes in the column
  // must already refer to positions in `dict`. Rebuilds the lookup index.
  void SetDictionary(std::vector<std::string> dict);

  // Code of `value` in the dictionary, or error if absent.
  Result<int64_t> LookupDictionary(const std::string& value) const;

  // Materializes the whole column as doubles (copies for int columns).
  std::vector<double> ToDoubleVector() const;

  // A double view of the column: kDouble columns are borrowed in place (no
  // copy, valid while the column lives); ordinal columns are materialized
  // once into a buffer owned by the view.
  struct DoubleView {
    const double* data = nullptr;
    size_t size = 0;
    std::shared_ptr<const std::vector<double>> owned;  // null when borrowed
  };
  DoubleView AsDoubleView() const;

  // Minimum / maximum value as int64 (ordinal columns). Errors on empty.
  Result<int64_t> MinInt64() const;
  Result<int64_t> MaxInt64() const;

  // Approximate heap footprint in bytes.
  size_t MemoryUsage() const;

 private:
  DataType type_;
  std::vector<int64_t> ints_;     // kInt64 values or kString codes
  std::vector<double> doubles_;   // kDouble values (unless adopted)
  // Borrowed contiguous storage (AdoptDoubleData); when set, doubles_ is
  // empty and all reads go through DoubleData().
  std::shared_ptr<const std::vector<double>> adopted_dbls_;
  std::vector<std::string> dictionary_;
  std::unordered_map<std::string, int64_t> dict_index_;
};

}  // namespace aqpp

#endif  // AQPP_STORAGE_COLUMN_H_
