// Checked low-level file I/O shared by the binary table format (io.cc) and
// the extent format (extent_file.cc).
//
// Every Write/Read verifies the full byte count (fwrite/fread short transfers
// are real failure modes on full disks and truncated files), length fields
// are validated before any allocation, and Sync() forces data to stable
// storage before an atomic-rename commit. The storage/io/{read,write,fsync}
// failpoints land here, so fault tests exercise exactly the code paths a
// failing disk would, for every on-disk format at once.

#ifndef AQPP_STORAGE_FILE_IO_H_
#define AQPP_STORAGE_FILE_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/status.h"

namespace aqpp {

// ": <strerror>" when errno is set, empty otherwise.
std::string ErrnoDetail();

// Checked binary writer over cstdio. See file comment for guarantees.
class CheckedWriter {
 public:
  CheckedWriter() = default;
  ~CheckedWriter();
  CheckedWriter(const CheckedWriter&) = delete;
  CheckedWriter& operator=(const CheckedWriter&) = delete;

  Status Open(const std::string& path);
  Status Write(const void* data, size_t n);

  template <typename T>
  Status WritePod(const T& v) {
    return Write(&v, sizeof(T));
  }

  Status WriteLengthPrefixed(const std::string& s);

  // Bytes successfully written so far (the current file offset).
  uint64_t bytes_written() const { return bytes_written_; }

  // Flushes libc buffers and fsyncs the fd: after OK, the bytes are on
  // stable storage (the precondition for the atomic-rename commit).
  Status Sync();
  Status Close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t bytes_written_ = 0;
};

// Checked binary reader: every Read verifies the full byte count and length
// fields are validated against the file's actual size before any allocation,
// so truncated or corrupt files fail loudly instead of crashing.
class CheckedReader {
 public:
  CheckedReader() = default;
  ~CheckedReader();
  CheckedReader(const CheckedReader&) = delete;
  CheckedReader& operator=(const CheckedReader&) = delete;

  Status Open(const std::string& path);
  uint64_t file_size() const { return file_size_; }

  // Repositions the read cursor (absolute byte offset).
  Status Seek(uint64_t offset);

  Status Read(void* data, size_t n);

  template <typename T>
  Status ReadPod(T* v) {
    return Read(v, sizeof(T));
  }

  // Reads a u64 length field and validates it against `limit` and the file
  // size, so a corrupt length can never drive a huge allocation.
  Status ReadLength(uint64_t* len, uint64_t limit, const char* what);
  Status ReadLengthPrefixed(std::string* s);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t file_size_ = 0;
};

// Commits `tmp_path` over `path` (atomic on POSIX). The caller has already
// synced tmp_path, so after OK the destination holds the complete new
// contents; on any earlier failure the destination still holds its previous
// contents — never a torn mix.
Status CommitRename(const std::string& tmp_path, const std::string& path);

}  // namespace aqpp

#endif  // AQPP_STORAGE_FILE_IO_H_
