#include "storage/extent_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace aqpp {

namespace {

constexpr char kExtentFileMagic[8] = {'A', 'Q', 'P', 'P',
                                      'E', 'X', 'T', '1'};
constexpr uint64_t kMaxColumns = 1u << 20;
constexpr uint64_t kMaxDictEntries = 1u << 28;
// Encoded extents can be far smaller than their logical size, so row counts
// cannot be bounded by file size; this explicit ceiling still rejects a
// bit-flipped count before any sizing math can overflow.
constexpr uint64_t kMaxRows = 1ull << 42;

// Hot-path storage metrics, registered once (same idiom as the executor's
// ScanMetrics).
struct ExtentMetrics {
  obs::Counter* read;
  obs::Counter* decoded_bytes;
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;
  obs::Gauge* cache_hit_rate;

  static ExtentMetrics& Get() {
    static ExtentMetrics m = [] {
      auto& reg = obs::Registry::Global();
      ExtentMetrics n;
      n.read = reg.GetCounter("aqpp_extents_read_total", "",
                              "Column extents decoded from extent files");
      n.decoded_bytes =
          reg.GetCounter("aqpp_extent_decoded_bytes_total", "",
                         "Logical bytes produced by extent decoding");
      n.cache_hits =
          reg.GetCounter("aqpp_extent_cache_hits_total", "",
                         "Pin() requests served from the decoded-extent LRU");
      n.cache_misses =
          reg.GetCounter("aqpp_extent_cache_misses_total", "",
                         "Pin() requests that had to decode from disk");
      n.cache_hit_rate = reg.GetGauge(
          "aqpp_extent_cache_hit_rate_percent", "",
          "Decoded-extent cache hit rate since process start (percent)");
      return n;
    }();
    return m;
  }
};

// Gauge-safe hit rate: 0 before the first Pin() instead of a division by
// zero (the gauge is also published as 0 at reader open, so scrapes that
// race the first read see a defined value).
int64_t HitRatePercent(uint64_t hits, uint64_t misses) {
  const uint64_t total = hits + misses;
  if (total == 0) return 0;
  return static_cast<int64_t>(hits * 100 / total);
}

uint64_t CacheKey(size_t e, size_t col) {
  return (static_cast<uint64_t>(e) << 20) | static_cast<uint64_t>(col);
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

ExtentFileWriter::ExtentFileWriter(std::string path, Schema schema)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      schema_(std::move(schema)) {
  const size_t c = schema_.num_columns();
  int_buf_.resize(c);
  dbl_buf_.resize(c);
  dicts_.resize(c);
  dict_set_.assign(c, 0);
  max_code_.assign(c, -1);
  for (size_t i = 0; i < c; ++i) {
    if (schema_.column(i).type == DataType::kDouble) {
      dbl_buf_[i].reserve(kExtentRows);
    } else {
      int_buf_[i].reserve(kExtentRows);
    }
  }
}

ExtentFileWriter::~ExtentFileWriter() {
  if (!finished_) {
    (void)out_.Close();
    std::remove(tmp_path_.c_str());
  }
}

Result<std::unique_ptr<ExtentFileWriter>> ExtentFileWriter::Create(
    const std::string& path, const Schema& schema) {
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("extent file needs at least one column");
  }
  if (schema.num_columns() > kMaxColumns) {
    return Status::InvalidArgument("too many columns for extent file");
  }
  std::unique_ptr<ExtentFileWriter> w(new ExtentFileWriter(path, schema));
  AQPP_RETURN_NOT_OK(w->out_.Open(w->tmp_path_));
  AQPP_RETURN_NOT_OK(
      w->out_.Write(kExtentFileMagic, sizeof(kExtentFileMagic)));
  return w;
}

Status ExtentFileWriter::Fail(Status st) {
  if (!st.ok()) failed_ = true;
  return st;
}

Status ExtentFileWriter::SetDictionary(size_t col,
                                       std::vector<std::string> dict) {
  if (col >= schema_.num_columns() ||
      schema_.column(col).type != DataType::kString) {
    return Status::InvalidArgument("SetDictionary: not a string column");
  }
  if (finished_) return Status::FailedPrecondition("writer already finished");
  dicts_[col] = std::move(dict);
  dict_set_[col] = 1;
  return Status::OK();
}

Status ExtentFileWriter::Append(const Table& batch) {
  if (finished_ || failed_) {
    return Status::FailedPrecondition("extent writer is closed");
  }
  if (batch.num_columns() != schema_.num_columns()) {
    return Status::InvalidArgument("batch schema does not match");
  }
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    if (batch.schema().column(c).type != schema_.column(c).type) {
      return Status::InvalidArgument(
          "batch column type does not match: " + schema_.column(c).name);
    }
  }
  size_t row = 0;
  const size_t n = batch.num_rows();
  while (row < n) {
    const size_t take = std::min(n - row, kExtentRows - buffered_rows_);
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      const Column& col = batch.column(c);
      if (col.type() == DataType::kDouble) {
        const double* src = col.DoubleData().data() + row;
        dbl_buf_[c].insert(dbl_buf_[c].end(), src, src + take);
      } else {
        const int64_t* src = col.Int64Data().data() + row;
        int_buf_[c].insert(int_buf_[c].end(), src, src + take);
        if (col.type() == DataType::kString) {
          for (size_t i = 0; i < take; ++i) {
            max_code_[c] = std::max(max_code_[c], src[i]);
          }
        }
      }
    }
    buffered_rows_ += take;
    rows_appended_ += take;
    row += take;
    if (buffered_rows_ == kExtentRows) {
      AQPP_RETURN_NOT_OK(FlushBufferedExtent());
    }
  }
  return Status::OK();
}

Status ExtentFileWriter::FlushBufferedExtent() {
  const size_t rows = buffered_rows_;
  if (rows == 0) return Status::OK();
  std::string blob;
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    blob.clear();
    ExtentHeader header;
    const DataType type = schema_.column(c).type;
    if (type == DataType::kDouble) {
      AQPP_RETURN_NOT_OK(
          Fail(EncodeExtent(dbl_buf_[c].data(), rows, &blob, &header)));
      dbl_buf_[c].clear();
    } else {
      AQPP_RETURN_NOT_OK(
          Fail(EncodeExtent(int_buf_[c].data(), rows, type, &blob, &header)));
      int_buf_[c].clear();
    }
    ExtentBlobInfo info;
    info.offset = out_.bytes_written();
    info.encoded_bytes = header.encoded_bytes;
    info.encoding = static_cast<ExtentEncoding>(header.encoding);
    info.type = type;
    info.rows = header.rows;
    info.null_count = header.null_count;
    info.checksum = header.checksum;
    info.min_bits = header.min_bits;
    info.max_bits = header.max_bits;
    AQPP_RETURN_NOT_OK(Fail(out_.Write(blob.data(), blob.size())));
    blobs_.push_back(info);
  }
  buffered_rows_ = 0;
  return Status::OK();
}

Status ExtentFileWriter::Finish() {
  if (finished_ || failed_) {
    return Status::FailedPrecondition("extent writer is closed");
  }
  AQPP_RETURN_NOT_OK(FlushBufferedExtent());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    if (schema_.column(c).type != DataType::kString) continue;
    if (!dict_set_[c] && rows_appended_ > 0) {
      return Fail(Status::FailedPrecondition(
          "no dictionary set for string column '" + schema_.column(c).name +
          "'"));
    }
    if (max_code_[c] >= static_cast<int64_t>(dicts_[c].size())) {
      return Fail(Status::InvalidArgument(
          StrFormat("column '%s' has code %lld but dictionary holds only "
                    "%zu entries",
                    schema_.column(c).name.c_str(),
                    static_cast<long long>(max_code_[c]),
                    dicts_[c].size())));
    }
  }

  const uint64_t footer_offset = out_.bytes_written();
  AQPP_RETURN_NOT_OK(
      Fail(out_.WritePod<uint64_t>(schema_.num_columns())));
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    AQPP_RETURN_NOT_OK(
        Fail(out_.WriteLengthPrefixed(schema_.column(c).name)));
    AQPP_RETURN_NOT_OK(Fail(out_.WritePod<int32_t>(
        static_cast<int32_t>(schema_.column(c).type))));
    AQPP_RETURN_NOT_OK(Fail(out_.WritePod<uint64_t>(dicts_[c].size())));
    for (const auto& s : dicts_[c]) {
      AQPP_RETURN_NOT_OK(Fail(out_.WriteLengthPrefixed(s)));
    }
  }
  AQPP_RETURN_NOT_OK(Fail(out_.WritePod<uint64_t>(rows_appended_)));
  const uint64_t num_extents = blobs_.size() / schema_.num_columns();
  AQPP_RETURN_NOT_OK(Fail(out_.WritePod<uint64_t>(num_extents)));
  for (const ExtentBlobInfo& b : blobs_) {
    AQPP_RETURN_NOT_OK(Fail(out_.WritePod<uint64_t>(b.offset)));
    AQPP_RETURN_NOT_OK(Fail(out_.WritePod<uint32_t>(b.encoded_bytes)));
    AQPP_RETURN_NOT_OK(Fail(out_.WritePod<uint8_t>(
        static_cast<uint8_t>(b.encoding))));
    AQPP_RETURN_NOT_OK(
        Fail(out_.WritePod<uint8_t>(static_cast<uint8_t>(b.type))));
    AQPP_RETURN_NOT_OK(Fail(out_.WritePod<uint16_t>(0)));
    AQPP_RETURN_NOT_OK(Fail(out_.WritePod<uint32_t>(b.rows)));
    AQPP_RETURN_NOT_OK(Fail(out_.WritePod<uint32_t>(b.null_count)));
    AQPP_RETURN_NOT_OK(Fail(out_.WritePod<uint32_t>(b.checksum)));
    AQPP_RETURN_NOT_OK(Fail(out_.WritePod<int64_t>(b.min_bits)));
    AQPP_RETURN_NOT_OK(Fail(out_.WritePod<int64_t>(b.max_bits)));
  }
  AQPP_RETURN_NOT_OK(Fail(out_.WritePod<uint64_t>(footer_offset)));
  AQPP_RETURN_NOT_OK(
      Fail(out_.Write(kExtentFileMagic, sizeof(kExtentFileMagic))));
  AQPP_RETURN_NOT_OK(Fail(out_.Sync()));
  AQPP_RETURN_NOT_OK(Fail(out_.Close()));
  AQPP_RETURN_NOT_OK(Fail(CommitRename(tmp_path_, path_)));
  finished_ = true;
  return Status::OK();
}

Status WriteExtentFile(const Table& table, const std::string& path) {
  AQPP_ASSIGN_OR_RETURN(auto writer,
                        ExtentFileWriter::Create(path, table.schema()));
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (table.column(c).type() == DataType::kString) {
      AQPP_RETURN_NOT_OK(
          writer->SetDictionary(c, table.column(c).dictionary()));
    }
  }
  AQPP_RETURN_NOT_OK(writer->Append(table));
  return writer->Finish();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

ExtentFileReader::~ExtentFileReader() {
  if (map_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(map_), map_size_);
  }
}

Result<std::shared_ptr<ExtentFileReader>> ExtentFileReader::Open(
    const std::string& path, const Options& options) {
  // The footer is parsed through CheckedReader so it flows through the
  // storage/io/read failpoint and the usual length validation; only the
  // extent payloads themselves are served from the mapping.
  CheckedReader in;
  AQPP_RETURN_NOT_OK(in.Open(path));
  const uint64_t file_size = in.file_size();
  if (file_size < sizeof(kExtentFileMagic) + 16) {
    return Status::IOError("'" + path +
                           "' is too small to be an extent file");
  }
  char magic[8];
  AQPP_RETURN_NOT_OK(in.Read(magic, sizeof(magic)));
  if (std::memcmp(magic, kExtentFileMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not an AQPP extent file");
  }
  AQPP_RETURN_NOT_OK(in.Seek(file_size - 16));
  uint64_t footer_offset = 0;
  AQPP_RETURN_NOT_OK(in.ReadPod(&footer_offset));
  AQPP_RETURN_NOT_OK(in.Read(magic, sizeof(magic)));
  if (std::memcmp(magic, kExtentFileMagic, sizeof(magic)) != 0) {
    return Status::IOError("corrupt extent trailer in '" + path +
                           "' (truncated file?)");
  }
  if (footer_offset < sizeof(kExtentFileMagic) ||
      footer_offset > file_size - 16) {
    return Status::IOError("corrupt footer offset in '" + path + "'");
  }

  auto reader = std::shared_ptr<ExtentFileReader>(new ExtentFileReader());
  reader->path_ = path;
  reader->cache_capacity_ = std::max<size_t>(1, options.cache_capacity);

  AQPP_RETURN_NOT_OK(in.Seek(footer_offset));
  uint64_t num_cols = 0;
  AQPP_RETURN_NOT_OK(in.ReadLength(&num_cols, kMaxColumns, "column count"));
  if (num_cols == 0) {
    return Status::IOError("corrupt extent footer: zero columns");
  }
  std::vector<ColumnSchema> cols;
  cols.reserve(num_cols);
  reader->dicts_.resize(num_cols);
  for (uint64_t c = 0; c < num_cols; ++c) {
    std::string name;
    int32_t type = 0;
    AQPP_RETURN_NOT_OK(in.ReadLengthPrefixed(&name));
    AQPP_RETURN_NOT_OK(in.ReadPod(&type));
    if (type < 0 || type > static_cast<int32_t>(DataType::kString)) {
      return Status::IOError(
          StrFormat("corrupt column type %d in '%s'", type, path.c_str()));
    }
    uint64_t dict_size = 0;
    AQPP_RETURN_NOT_OK(
        in.ReadLength(&dict_size, kMaxDictEntries, "dictionary"));
    auto& dict = reader->dicts_[c];
    dict.reserve(dict_size);
    for (uint64_t d = 0; d < dict_size; ++d) {
      std::string s;
      AQPP_RETURN_NOT_OK(in.ReadLengthPrefixed(&s));
      dict.push_back(std::move(s));
    }
    cols.push_back({std::move(name), static_cast<DataType>(type)});
  }
  reader->schema_ = Schema(std::move(cols));

  uint64_t num_rows = 0;
  AQPP_RETURN_NOT_OK(in.ReadPod(&num_rows));
  if (num_rows > kMaxRows) {
    return Status::IOError("corrupt row count in '" + path + "'");
  }
  uint64_t num_extents = 0;
  AQPP_RETURN_NOT_OK(in.ReadPod(&num_extents));
  const uint64_t expect_extents = (num_rows + kExtentRows - 1) / kExtentRows;
  if (num_extents != expect_extents) {
    return Status::IOError(StrFormat(
        "corrupt extent count in '%s': %llu extents for %llu rows",
        path.c_str(), static_cast<unsigned long long>(num_extents),
        static_cast<unsigned long long>(num_rows)));
  }
  reader->num_rows_ = num_rows;
  reader->num_extents_ = num_extents;

  reader->blobs_.resize(num_extents * num_cols);
  for (uint64_t e = 0; e < num_extents; ++e) {
    const uint32_t expect_rows =
        e + 1 < num_extents || num_rows % kExtentRows == 0
            ? kExtentRows
            : static_cast<uint32_t>(num_rows % kExtentRows);
    for (uint64_t c = 0; c < num_cols; ++c) {
      ExtentBlobInfo& b = reader->blobs_[e * num_cols + c];
      uint8_t encoding = 0, type = 0;
      uint16_t reserved = 0;
      AQPP_RETURN_NOT_OK(in.ReadPod(&b.offset));
      AQPP_RETURN_NOT_OK(in.ReadPod(&b.encoded_bytes));
      AQPP_RETURN_NOT_OK(in.ReadPod(&encoding));
      AQPP_RETURN_NOT_OK(in.ReadPod(&type));
      AQPP_RETURN_NOT_OK(in.ReadPod(&reserved));
      AQPP_RETURN_NOT_OK(in.ReadPod(&b.rows));
      AQPP_RETURN_NOT_OK(in.ReadPod(&b.null_count));
      AQPP_RETURN_NOT_OK(in.ReadPod(&b.checksum));
      AQPP_RETURN_NOT_OK(in.ReadPod(&b.min_bits));
      AQPP_RETURN_NOT_OK(in.ReadPod(&b.max_bits));
      if (encoding > static_cast<uint8_t>(ExtentEncoding::kDoubleRaw) ||
          type != static_cast<uint8_t>(reader->schema_.column(c).type)) {
        return Status::IOError("corrupt extent directory in '" + path + "'");
      }
      b.encoding = static_cast<ExtentEncoding>(encoding);
      b.type = static_cast<DataType>(type);
      if (b.rows != expect_rows ||
          b.offset < sizeof(kExtentFileMagic) ||
          b.offset + sizeof(ExtentHeader) + b.encoded_bytes > footer_offset) {
        return Status::IOError("corrupt extent directory in '" + path + "'");
      }
    }
  }

  // Map the whole file read-only; extents decode straight out of the page
  // cache with no buffer copies.
  errno = 0;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path + "'" + ErrnoDetail());
  }
  void* map =
      ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    return Status::IOError("mmap failed for '" + path + "'" + ErrnoDetail());
  }
  reader->map_ = static_cast<const uint8_t*>(map);
  reader->map_size_ = file_size;
  ExtentMetrics::Get().cache_hit_rate->Set(
      HitRatePercent(reader->hits_, reader->misses_));
  return reader;
}

size_t ExtentFileReader::ExtentRows(size_t e) const {
  if (e + 1 < num_extents_ || num_rows_ % kExtentRows == 0) {
    return kExtentRows;
  }
  return num_rows_ % kExtentRows;
}

Result<ExtentFileReader::DecodedColumn> ExtentFileReader::Pin(size_t e,
                                                              size_t col) {
  if (e >= num_extents_ || col >= schema_.num_columns()) {
    return Status::InvalidArgument("extent index out of range");
  }
  auto& metrics = ExtentMetrics::Get();
  const uint64_t key = CacheKey(e, col);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      metrics.cache_hits->Increment();
      metrics.cache_hit_rate->Set(HitRatePercent(hits_, misses_));
      return it->second->value;
    }
  }

  // The decode itself runs outside the lock so parallel shard scans pin
  // different extents concurrently. A racing double-decode is possible and
  // harmless (idempotent; last one wins the cache slot).
  if (auto fired = AQPP_FAILPOINT_EVAL("storage/io/read")) {
    if (fired->kind == fail::ActionKind::kReturnError) return fired->error;
    return Status::IOError(StrFormat(
        "short read from '%s': extent %zu truncated", path_.c_str(), e));
  }
  const ExtentBlobInfo& b = blob(e, col);
  ExtentHeader header;
  std::memcpy(&header, map_ + b.offset, sizeof(header));
  // Cross-check header against the footer directory: a torn or bit-flipped
  // region fails here even when both halves are internally consistent.
  if (header.magic != ExtentHeader::kMagic ||
      header.encoding != static_cast<uint8_t>(b.encoding) ||
      header.type != static_cast<uint8_t>(b.type) ||
      header.rows != b.rows || header.encoded_bytes != b.encoded_bytes ||
      header.checksum != b.checksum) {
    return Status::IOError(StrFormat(
        "extent %zu of column %zu in '%s' disagrees with the footer "
        "directory (corrupt file)",
        e, col, path_.c_str()));
  }
  DecodedColumn decoded;
  decoded.type = b.type;
  decoded.rows = b.rows;
  const uint8_t* payload = map_ + b.offset + sizeof(ExtentHeader);
  if (b.type == DataType::kDouble) {
    auto dbls = std::make_shared<std::vector<double>>();
    std::vector<int64_t> unused;
    AQPP_RETURN_NOT_OK(DecodeExtent(header, payload, &unused, dbls.get()));
    decoded.dbls = std::move(dbls);
  } else {
    auto ints = std::make_shared<std::vector<int64_t>>();
    std::vector<double> unused;
    AQPP_RETURN_NOT_OK(DecodeExtent(header, payload, ints.get(), &unused));
    decoded.ints = std::move(ints);
  }
  metrics.read->Increment();
  metrics.decoded_bytes->Increment(static_cast<uint64_t>(b.rows) * 8);

  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  metrics.cache_misses->Increment();
  metrics.cache_hit_rate->Set(HitRatePercent(hits_, misses_));
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->value = decoded;
    return decoded;
  }
  lru_.push_front(CacheEntry{key, decoded});
  index_[key] = lru_.begin();
  while (lru_.size() > cache_capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return decoded;
}

void ExtentFileReader::ReleaseBefore(size_t e) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = lru_.begin(); it != lru_.end();) {
      if ((it->key >> 20) < e) {
        index_.erase(it->key);
        it = lru_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (map_ == nullptr || e == 0) return;
  // Everything before extent e's first blob is finished with; let the kernel
  // reclaim those page-cache-backed pages so a streaming pass stays at a
  // bounded resident set. (Re-reading later just faults them back in.)
  const uint64_t end = e < num_extents_ ? blob(e, 0).offset : map_size_;
  const long page = ::sysconf(_SC_PAGESIZE);
  const uint64_t aligned = end - end % static_cast<uint64_t>(page);
  if (aligned > 0) {
    ::madvise(const_cast<uint8_t*>(map_), aligned, MADV_DONTNEED);
  }
}

uint64_t ExtentFileReader::cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ExtentFileReader::cache_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

Result<std::shared_ptr<Table>> ExtentFileReader::ReadTable() {
  auto table = std::make_shared<Table>(schema_);
  table->Reserve(num_rows_);
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    Column& col = table->mutable_column(c);
    for (size_t e = 0; e < num_extents_; ++e) {
      AQPP_ASSIGN_OR_RETURN(DecodedColumn d, Pin(e, c));
      if (d.type == DataType::kDouble) {
        if (num_extents_ == 1) {
          // The decode buffer IS the whole column: adopt it, no copy.
          col.AdoptDoubleData(d.dbls);
          continue;
        }
        auto& dst = col.MutableDoubleData();
        dst.insert(dst.end(), d.dbls->begin(), d.dbls->end());
      } else {
        auto& dst = col.MutableInt64Data();
        dst.insert(dst.end(), d.ints->begin(), d.ints->end());
      }
    }
    if (col.type() == DataType::kString) {
      col.SetDictionary(dicts_[c]);
    }
  }
  table->SetRowCountFromColumns();
  return table;
}

}  // namespace aqpp
