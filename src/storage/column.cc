#include "storage/column.h"

#include <algorithm>
#include <numeric>

namespace aqpp {

void Column::AppendString(const std::string& v) {
  AQPP_DCHECK(type_ == DataType::kString);
  auto it = dict_index_.find(v);
  if (it == dict_index_.end()) {
    int64_t code = static_cast<int64_t>(dictionary_.size());
    dictionary_.push_back(v);
    it = dict_index_.emplace(v, code).first;
  }
  ints_.push_back(it->second);
}

void Column::FinalizeDictionary() {
  if (type_ != DataType::kString || dictionary_.empty()) return;
  // Sort dictionary entries; build old-code -> new-code remap.
  std::vector<int64_t> order(dictionary_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](int64_t a, int64_t b) {
    return dictionary_[static_cast<size_t>(a)] <
           dictionary_[static_cast<size_t>(b)];
  });
  std::vector<int64_t> remap(dictionary_.size());
  std::vector<std::string> sorted_dict(dictionary_.size());
  for (size_t new_code = 0; new_code < order.size(); ++new_code) {
    int64_t old_code = order[new_code];
    remap[static_cast<size_t>(old_code)] = static_cast<int64_t>(new_code);
    sorted_dict[new_code] = std::move(dictionary_[static_cast<size_t>(old_code)]);
  }
  dictionary_ = std::move(sorted_dict);
  dict_index_.clear();
  for (size_t code = 0; code < dictionary_.size(); ++code) {
    dict_index_.emplace(dictionary_[code], static_cast<int64_t>(code));
  }
  for (int64_t& code : ints_) code = remap[static_cast<size_t>(code)];
}

void Column::SetDictionary(std::vector<std::string> dict) {
  AQPP_DCHECK(type_ == DataType::kString);
  dictionary_ = std::move(dict);
  dict_index_.clear();
  for (size_t code = 0; code < dictionary_.size(); ++code) {
    dict_index_.emplace(dictionary_[code], static_cast<int64_t>(code));
  }
}

Result<int64_t> Column::LookupDictionary(const std::string& value) const {
  auto it = dict_index_.find(value);
  if (it == dict_index_.end()) {
    return Status::NotFound("dictionary value not found: " + value);
  }
  return it->second;
}

void Column::AdoptDoubleData(std::shared_ptr<const std::vector<double>> data) {
  AQPP_DCHECK(type_ == DataType::kDouble);
  doubles_.clear();
  doubles_.shrink_to_fit();
  adopted_dbls_ = std::move(data);
}

std::vector<double> Column::ToDoubleVector() const {
  if (type_ == DataType::kDouble) return DoubleData();
  std::vector<double> out(ints_.size());
  for (size_t i = 0; i < ints_.size(); ++i) {
    out[i] = static_cast<double>(ints_[i]);
  }
  return out;
}

Column::DoubleView Column::AsDoubleView() const {
  DoubleView view;
  if (type_ == DataType::kDouble) {
    // Contiguous already (in place or adopted from a decoded extent):
    // borrow, don't convert. Adopted storage is handed on as the owner so
    // the view cannot dangle.
    const std::vector<double>& data = DoubleData();
    view.data = data.data();
    view.size = data.size();
    view.owned = adopted_dbls_;
    return view;
  }
  auto owned = std::make_shared<std::vector<double>>(ToDoubleVector());
  view.data = owned->data();
  view.size = owned->size();
  view.owned = std::move(owned);
  return view;
}

Result<int64_t> Column::MinInt64() const {
  if (ints_.empty()) return Status::FailedPrecondition("empty column");
  return *std::min_element(ints_.begin(), ints_.end());
}

Result<int64_t> Column::MaxInt64() const {
  if (ints_.empty()) return Status::FailedPrecondition("empty column");
  return *std::max_element(ints_.begin(), ints_.end());
}

size_t Column::MemoryUsage() const {
  size_t bytes = ints_.capacity() * sizeof(int64_t) +
                 doubles_.capacity() * sizeof(double);
  if (adopted_dbls_) bytes += adopted_dbls_->capacity() * sizeof(double);
  for (const auto& s : dictionary_) bytes += s.capacity() + sizeof(s);
  return bytes;
}

}  // namespace aqpp
