#include "storage/column_source.h"

#include <algorithm>
#include <cstring>

namespace aqpp {

Result<ColumnSource::PinnedColumn> TableColumnSource::Pin(size_t extent,
                                                          size_t col) {
  if (extent >= num_extents() || col >= table_->num_columns()) {
    return Status::InvalidArgument("extent index out of range");
  }
  const Column& c = table_->column(col);
  const size_t begin = extent * kExtentRows;
  PinnedColumn out;
  out.type = c.type();
  out.rows = ExtentRows(extent);
  if (c.type() == DataType::kDouble) {
    out.dbls = c.DoubleData().data() + begin;
  } else {
    out.ints = c.Int64Data().data() + begin;
  }
  return out;
}

bool TableColumnSource::ColumnMinMax(size_t col, int64_t* mn, int64_t* mx) {
  if (col >= table_->num_columns()) return false;
  const Column& c = table_->column(col);
  if (c.type() == DataType::kDouble || c.size() == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = minmax_.find(col);
  if (it == minmax_.end()) {
    const std::vector<int64_t>& data = c.Int64Data();
    int64_t lo = data[0], hi = data[0];
    for (int64_t v : data) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    it = minmax_.emplace(col, std::make_pair(lo, hi)).first;
  }
  *mn = it->second.first;
  *mx = it->second.second;
  return true;
}

Result<ColumnSource::PinnedColumn> ExtentColumnSource::Pin(size_t extent,
                                                           size_t col) {
  AQPP_ASSIGN_OR_RETURN(ExtentFileReader::DecodedColumn d,
                        reader_->Pin(extent, col));
  PinnedColumn out;
  out.type = d.type;
  out.rows = d.rows;
  if (d.type == DataType::kDouble) {
    out.dbls = d.dbl_data();
    out.owner = d.dbls;
  } else {
    out.ints = d.int_data();
    out.owner = d.ints;
  }
  return out;
}

bool ExtentColumnSource::ZoneMap(size_t extent, size_t col, int64_t* mn,
                                 int64_t* mx) const {
  if (extent >= reader_->num_extents() || col >= reader_->num_columns()) {
    return false;
  }
  const ExtentBlobInfo& b = reader_->blob(extent, col);
  if (b.type == DataType::kDouble) return false;
  *mn = b.min_bits;
  *mx = b.max_bits;
  return true;
}

bool ExtentColumnSource::ColumnMinMax(size_t col, int64_t* mn, int64_t* mx) {
  if (col >= reader_->num_columns() || reader_->num_extents() == 0) {
    return false;
  }
  if (reader_->schema().column(col).type == DataType::kDouble) return false;
  // Fold of the footer zone maps: exact (each zone map is the exact min/max
  // of its extent) and free of extent reads.
  int64_t lo = reader_->blob(0, col).min_bits;
  int64_t hi = reader_->blob(0, col).max_bits;
  for (size_t e = 1; e < reader_->num_extents(); ++e) {
    const ExtentBlobInfo& b = reader_->blob(e, col);
    lo = std::min(lo, b.min_bits);
    hi = std::max(hi, b.max_bits);
  }
  *mn = lo;
  *mx = hi;
  return true;
}

}  // namespace aqpp
