// Table import/export: CSV (interchange) and a raw binary format (fast
// reload of generated benchmark datasets).

#ifndef AQPP_STORAGE_IO_H_
#define AQPP_STORAGE_IO_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace aqpp {

struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
};

// Parses `path` into a table with the given schema. When
// `options.has_header` is set the first line is validated against the schema
// column names. String dictionaries are finalized before returning.
Result<std::shared_ptr<Table>> ReadCsv(const std::string& path,
                                       const Schema& schema,
                                       const CsvOptions& options = {});

// Writes `table` to `path` with a header row.
Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options = {});

// Binary format: magic, schema, row count, then raw column arrays and
// dictionaries. Not portable across endianness; intended for local caching.
Status WriteBinary(const Table& table, const std::string& path);
Result<std::shared_ptr<Table>> ReadBinary(const std::string& path);

}  // namespace aqpp

#endif  // AQPP_STORAGE_IO_H_
