#include "storage/io.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "storage/file_io.h"

namespace aqpp {

namespace {

constexpr char kBinaryMagic[8] = {'A', 'Q', 'P', 'P', 'T', 'B', 'L', '1'};

// Sanity bounds for length fields read from (possibly corrupt) files. A
// truncated or bit-flipped header must produce a clean IOError, never a
// multi-gigabyte resize or a crash.
constexpr uint64_t kMaxColumns = 1u << 20;
constexpr uint64_t kMaxDictEntries = 1u << 28;

Status ParseField(const std::string& field, DataType type, Column* col) {
  switch (type) {
    case DataType::kInt64: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("cannot parse int64: '" + field + "'");
      }
      col->AppendInt64(static_cast<int64_t>(v));
      return Status::OK();
    }
    case DataType::kDouble: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("cannot parse double: '" + field + "'");
      }
      col->AppendDouble(v);
      return Status::OK();
    }
    case DataType::kString:
      col->AppendString(field);
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status WriteBinaryImpl(const Table& table, CheckedWriter& out) {
  AQPP_RETURN_NOT_OK(out.Write(kBinaryMagic, sizeof(kBinaryMagic)));
  const Schema& schema = table.schema();
  AQPP_RETURN_NOT_OK(out.WritePod<uint64_t>(schema.num_columns()));
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    AQPP_RETURN_NOT_OK(out.WriteLengthPrefixed(schema.column(c).name));
    AQPP_RETURN_NOT_OK(
        out.WritePod<int32_t>(static_cast<int32_t>(schema.column(c).type)));
  }
  AQPP_RETURN_NOT_OK(out.WritePod<uint64_t>(table.num_rows()));
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const Column& col = table.column(c);
    if (col.type() == DataType::kDouble) {
      AQPP_RETURN_NOT_OK(out.Write(col.DoubleData().data(),
                                   table.num_rows() * sizeof(double)));
    } else {
      AQPP_RETURN_NOT_OK(out.Write(col.Int64Data().data(),
                                   table.num_rows() * sizeof(int64_t)));
      if (col.type() == DataType::kString) {
        AQPP_RETURN_NOT_OK(out.WritePod<uint64_t>(col.dictionary().size()));
        for (const auto& s : col.dictionary()) {
          AQPP_RETURN_NOT_OK(out.WriteLengthPrefixed(s));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<Table>> ReadCsv(const std::string& path,
                                       const Schema& schema,
                                       const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  auto table = std::make_shared<Table>(schema);
  std::string line;
  size_t line_no = 0;
  if (options.has_header) {
    if (!std::getline(in, line)) {
      return Status::IOError("empty file: '" + path + "'");
    }
    ++line_no;
    auto names = SplitString(line, options.delimiter);
    if (names.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          StrFormat("header has %zu fields, schema has %zu columns",
                    names.size(), schema.num_columns()));
    }
    for (size_t i = 0; i < names.size(); ++i) {
      if (std::string(TrimWhitespace(names[i])) != schema.column(i).name) {
        return Status::InvalidArgument(
            "header column '" + names[i] + "' does not match schema column '" +
            schema.column(i).name + "'");
      }
    }
  }
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fields = SplitString(line, options.delimiter);
    if (fields.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu fields, expected %zu", line_no,
                    fields.size(), schema.num_columns()));
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      Status st = ParseField(std::string(TrimWhitespace(fields[c])),
                             schema.column(c).type, &table->mutable_column(c));
      if (!st.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %zu, column '%s': %s", line_no,
                      schema.column(c).name.c_str(), st.message().c_str()));
      }
    }
  }
  if (in.bad()) {
    return Status::IOError("read failed for '" + path + "'" + ErrnoDetail());
  }
  table->SetRowCountFromColumns();
  table->FinalizeDictionaries();
  return table;
}

Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options) {
  AQPP_FAILPOINT_RETURN_STATUS("storage/io/write");
  errno = 0;
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing" +
                           ErrnoDetail());
  }
  const Schema& schema = table.schema();
  if (options.has_header) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      out << schema.column(c).name;
    }
    out << '\n';
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      const Column& col = table.column(c);
      switch (col.type()) {
        case DataType::kInt64:
          out << col.GetInt64(r);
          break;
        case DataType::kDouble:
          out << col.GetDouble(r);
          break;
        case DataType::kString:
          out << col.GetString(r);
          break;
      }
    }
    out << '\n';
  }
  out.flush();
  if (!out) {
    return Status::IOError("write failed for '" + path + "'" + ErrnoDetail());
  }
  return Status::OK();
}

Status WriteBinary(const Table& table, const std::string& path) {
  // Write-to-temp, fsync, rename: a crash or injected fault mid-write leaves
  // the destination either absent or holding its previous complete contents
  // — a reader can never observe a torn table.
  const std::string tmp_path = path + ".tmp";
  CheckedWriter out;
  AQPP_RETURN_NOT_OK(out.Open(tmp_path));
  Status st = WriteBinaryImpl(table, out);
  if (st.ok()) st = out.Sync();
  if (st.ok()) st = out.Close();
  if (!st.ok()) {
    (void)out.Close();
    std::remove(tmp_path.c_str());
    return st;
  }
  return CommitRename(tmp_path, path);
}

Result<std::shared_ptr<Table>> ReadBinary(const std::string& path) {
  CheckedReader in;
  AQPP_RETURN_NOT_OK(in.Open(path));
  char magic[8];
  // An I/O failure reading the header is not the same condition as a
  // well-read header that isn't ours; keep the error codes distinct.
  AQPP_RETURN_NOT_OK(in.Read(magic, sizeof(magic)));
  if (std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not an AQPP table file");
  }
  uint64_t num_cols = 0;
  AQPP_RETURN_NOT_OK(in.ReadLength(&num_cols, kMaxColumns, "column count"));
  std::vector<ColumnSchema> cols;
  cols.reserve(num_cols);
  for (uint64_t c = 0; c < num_cols; ++c) {
    std::string name;
    int32_t type = 0;
    AQPP_RETURN_NOT_OK(in.ReadLengthPrefixed(&name));
    AQPP_RETURN_NOT_OK(in.ReadPod(&type));
    if (type < 0 || type > static_cast<int32_t>(DataType::kString)) {
      return Status::IOError(
          StrFormat("corrupt column type %d in '%s'", type, path.c_str()));
    }
    cols.push_back({std::move(name), static_cast<DataType>(type)});
  }
  uint64_t num_rows = 0;
  // Each row needs at least 8 bytes in some column; bounding by file size
  // rejects corrupt row counts before the resize below can explode.
  AQPP_RETURN_NOT_OK(in.ReadLength(&num_rows, in.file_size() / sizeof(int64_t),
                                   "row count"));
  auto table = std::make_shared<Table>(Schema(std::move(cols)));
  for (size_t c = 0; c < table->num_columns(); ++c) {
    Column& col = table->mutable_column(c);
    if (col.type() == DataType::kDouble) {
      col.MutableDoubleData().resize(num_rows);
      AQPP_RETURN_NOT_OK(in.Read(col.MutableDoubleData().data(),
                                 num_rows * sizeof(double)));
    } else {
      col.MutableInt64Data().resize(num_rows);
      AQPP_RETURN_NOT_OK(in.Read(col.MutableInt64Data().data(),
                                 num_rows * sizeof(int64_t)));
      if (col.type() == DataType::kString) {
        uint64_t dict_size = 0;
        AQPP_RETURN_NOT_OK(
            in.ReadLength(&dict_size, kMaxDictEntries, "dictionary"));
        std::vector<std::string> dict;
        dict.reserve(dict_size);
        for (uint64_t d = 0; d < dict_size; ++d) {
          std::string s;
          AQPP_RETURN_NOT_OK(in.ReadLengthPrefixed(&s));
          dict.push_back(std::move(s));
        }
        col.SetDictionary(std::move(dict));
      }
    }
  }
  table->SetRowCountFromColumns();
  return table;
}

}  // namespace aqpp
