#include "storage/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace aqpp {

namespace {

constexpr char kBinaryMagic[8] = {'A', 'Q', 'P', 'P', 'T', 'B', 'L', '1'};

// Sanity bounds for length fields read from (possibly corrupt) files. A
// truncated or bit-flipped header must produce a clean IOError, never a
// multi-gigabyte resize or a crash.
constexpr uint64_t kMaxColumns = 1u << 20;
constexpr uint64_t kMaxDictEntries = 1u << 28;

std::string ErrnoDetail() {
  return errno != 0 ? std::string(": ") + std::strerror(errno)
                    : std::string();
}

Status ParseField(const std::string& field, DataType type, Column* col) {
  switch (type) {
    case DataType::kInt64: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("cannot parse int64: '" + field + "'");
      }
      col->AppendInt64(static_cast<int64_t>(v));
      return Status::OK();
    }
    case DataType::kDouble: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("cannot parse double: '" + field + "'");
      }
      col->AppendDouble(v);
      return Status::OK();
    }
    case DataType::kString:
      col->AppendString(field);
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

// Checked binary writer over cstdio. Every Write verifies the full byte
// count (fwrite's short-write case is a real failure mode on full disks);
// Sync() forces the data to stable storage before the commit rename. The
// storage/io/write and storage/io/fsync failpoints land here so fault tests
// exercise exactly the code paths a failing disk would.
class CheckedWriter {
 public:
  ~CheckedWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Open(const std::string& path) {
    errno = 0;
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr) {
      return Status::IOError("cannot open '" + path + "' for writing" +
                             ErrnoDetail());
    }
    path_ = path;
    return Status::OK();
  }

  Status Write(const void* data, size_t n) {
    if (n == 0) return Status::OK();
    size_t want = n;
    if (auto fired = AQPP_FAILPOINT_EVAL("storage/io/write")) {
      if (fired->kind == fail::ActionKind::kReturnError) return fired->error;
      // Partial I/O: transfer only a fraction, then report the short write
      // exactly as a full disk would.
      want = static_cast<size_t>(static_cast<double>(n) * fired->io_fraction);
    }
    errno = 0;
    size_t wrote = std::fwrite(data, 1, want, file_);
    if (wrote != n) {
      return Status::IOError(StrFormat(
          "short write to '%s': wrote %zu of %zu bytes%s", path_.c_str(),
          wrote, n, ErrnoDetail().c_str()));
    }
    return Status::OK();
  }

  template <typename T>
  Status WritePod(const T& v) {
    return Write(&v, sizeof(T));
  }

  Status WriteLengthPrefixed(const std::string& s) {
    AQPP_RETURN_NOT_OK(WritePod<uint64_t>(s.size()));
    return Write(s.data(), s.size());
  }

  // Flushes libc buffers and fsyncs the fd: after OK, the bytes are on
  // stable storage (the precondition for the atomic-rename commit).
  Status Sync() {
    AQPP_FAILPOINT_RETURN_STATUS("storage/io/fsync");
    errno = 0;
    if (std::fflush(file_) != 0) {
      return Status::IOError("flush failed for '" + path_ + "'" +
                             ErrnoDetail());
    }
    errno = 0;
    if (::fsync(::fileno(file_)) != 0) {
      return Status::IOError("fsync failed for '" + path_ + "'" +
                             ErrnoDetail());
    }
    return Status::OK();
  }

  Status Close() {
    if (file_ == nullptr) return Status::OK();
    errno = 0;
    int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) {
      return Status::IOError("close failed for '" + path_ + "'" +
                             ErrnoDetail());
    }
    return Status::OK();
  }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

// Checked binary reader: every Read verifies the full byte count and length
// fields are validated against the file's actual size before any allocation,
// so truncated or corrupt files fail loudly instead of crashing.
class CheckedReader {
 public:
  ~CheckedReader() {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Open(const std::string& path) {
    errno = 0;
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr) {
      return Status::IOError("cannot open '" + path + "'" + ErrnoDetail());
    }
    path_ = path;
    struct stat st{};
    if (::fstat(::fileno(file_), &st) != 0) {
      return Status::IOError("cannot stat '" + path + "'" + ErrnoDetail());
    }
    file_size_ = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  uint64_t file_size() const { return file_size_; }

  Status Read(void* data, size_t n) {
    if (n == 0) return Status::OK();
    size_t want = n;
    if (auto fired = AQPP_FAILPOINT_EVAL("storage/io/read")) {
      if (fired->kind == fail::ActionKind::kReturnError) return fired->error;
      want = static_cast<size_t>(static_cast<double>(n) * fired->io_fraction);
    }
    errno = 0;
    size_t got = std::fread(data, 1, want, file_);
    if (got != n) {
      return Status::IOError(StrFormat(
          "short read from '%s': got %zu of %zu bytes%s (truncated file?)",
          path_.c_str(), got, n, ErrnoDetail().c_str()));
    }
    return Status::OK();
  }

  template <typename T>
  Status ReadPod(T* v) {
    return Read(v, sizeof(T));
  }

  // Reads a u64 length field and validates it against `limit` and the file
  // size, so a corrupt length can never drive a huge allocation.
  Status ReadLength(uint64_t* len, uint64_t limit, const char* what) {
    AQPP_RETURN_NOT_OK(ReadPod(len));
    if (*len > limit || *len > file_size_) {
      return Status::IOError(StrFormat(
          "corrupt %s length %llu in '%s' (file is %llu bytes)", what,
          static_cast<unsigned long long>(*len), path_.c_str(),
          static_cast<unsigned long long>(file_size_)));
    }
    return Status::OK();
  }

  Status ReadLengthPrefixed(std::string* s) {
    uint64_t len = 0;
    AQPP_RETURN_NOT_OK(ReadLength(&len, file_size_, "string"));
    s->resize(len);
    return Read(s->data(), len);
  }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t file_size_ = 0;
};

// Commits `tmp_path` over `path` (atomic on POSIX). The caller has already
// synced tmp_path, so after OK the destination holds the complete new
// contents; on any earlier failure the destination still holds its previous
// contents — never a torn mix.
Status CommitRename(const std::string& tmp_path, const std::string& path) {
  errno = 0;
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    Status st = Status::IOError("rename '" + tmp_path + "' -> '" + path +
                                "' failed" + ErrnoDetail());
    std::remove(tmp_path.c_str());
    return st;
  }
  return Status::OK();
}

Status WriteBinaryImpl(const Table& table, CheckedWriter& out) {
  AQPP_RETURN_NOT_OK(out.Write(kBinaryMagic, sizeof(kBinaryMagic)));
  const Schema& schema = table.schema();
  AQPP_RETURN_NOT_OK(out.WritePod<uint64_t>(schema.num_columns()));
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    AQPP_RETURN_NOT_OK(out.WriteLengthPrefixed(schema.column(c).name));
    AQPP_RETURN_NOT_OK(
        out.WritePod<int32_t>(static_cast<int32_t>(schema.column(c).type)));
  }
  AQPP_RETURN_NOT_OK(out.WritePod<uint64_t>(table.num_rows()));
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const Column& col = table.column(c);
    if (col.type() == DataType::kDouble) {
      AQPP_RETURN_NOT_OK(out.Write(col.DoubleData().data(),
                                   table.num_rows() * sizeof(double)));
    } else {
      AQPP_RETURN_NOT_OK(out.Write(col.Int64Data().data(),
                                   table.num_rows() * sizeof(int64_t)));
      if (col.type() == DataType::kString) {
        AQPP_RETURN_NOT_OK(out.WritePod<uint64_t>(col.dictionary().size()));
        for (const auto& s : col.dictionary()) {
          AQPP_RETURN_NOT_OK(out.WriteLengthPrefixed(s));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<Table>> ReadCsv(const std::string& path,
                                       const Schema& schema,
                                       const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  auto table = std::make_shared<Table>(schema);
  std::string line;
  size_t line_no = 0;
  if (options.has_header) {
    if (!std::getline(in, line)) {
      return Status::IOError("empty file: '" + path + "'");
    }
    ++line_no;
    auto names = SplitString(line, options.delimiter);
    if (names.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          StrFormat("header has %zu fields, schema has %zu columns",
                    names.size(), schema.num_columns()));
    }
    for (size_t i = 0; i < names.size(); ++i) {
      if (std::string(TrimWhitespace(names[i])) != schema.column(i).name) {
        return Status::InvalidArgument(
            "header column '" + names[i] + "' does not match schema column '" +
            schema.column(i).name + "'");
      }
    }
  }
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fields = SplitString(line, options.delimiter);
    if (fields.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu fields, expected %zu", line_no,
                    fields.size(), schema.num_columns()));
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      Status st = ParseField(std::string(TrimWhitespace(fields[c])),
                             schema.column(c).type, &table->mutable_column(c));
      if (!st.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %zu, column '%s': %s", line_no,
                      schema.column(c).name.c_str(), st.message().c_str()));
      }
    }
  }
  if (in.bad()) {
    return Status::IOError("read failed for '" + path + "'" + ErrnoDetail());
  }
  table->SetRowCountFromColumns();
  table->FinalizeDictionaries();
  return table;
}

Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options) {
  AQPP_FAILPOINT_RETURN_STATUS("storage/io/write");
  errno = 0;
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing" +
                           ErrnoDetail());
  }
  const Schema& schema = table.schema();
  if (options.has_header) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      out << schema.column(c).name;
    }
    out << '\n';
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      const Column& col = table.column(c);
      switch (col.type()) {
        case DataType::kInt64:
          out << col.GetInt64(r);
          break;
        case DataType::kDouble:
          out << col.GetDouble(r);
          break;
        case DataType::kString:
          out << col.GetString(r);
          break;
      }
    }
    out << '\n';
  }
  out.flush();
  if (!out) {
    return Status::IOError("write failed for '" + path + "'" + ErrnoDetail());
  }
  return Status::OK();
}

Status WriteBinary(const Table& table, const std::string& path) {
  // Write-to-temp, fsync, rename: a crash or injected fault mid-write leaves
  // the destination either absent or holding its previous complete contents
  // — a reader can never observe a torn table.
  const std::string tmp_path = path + ".tmp";
  CheckedWriter out;
  AQPP_RETURN_NOT_OK(out.Open(tmp_path));
  Status st = WriteBinaryImpl(table, out);
  if (st.ok()) st = out.Sync();
  if (st.ok()) st = out.Close();
  if (!st.ok()) {
    (void)out.Close();
    std::remove(tmp_path.c_str());
    return st;
  }
  return CommitRename(tmp_path, path);
}

Result<std::shared_ptr<Table>> ReadBinary(const std::string& path) {
  CheckedReader in;
  AQPP_RETURN_NOT_OK(in.Open(path));
  char magic[8];
  // An I/O failure reading the header is not the same condition as a
  // well-read header that isn't ours; keep the error codes distinct.
  AQPP_RETURN_NOT_OK(in.Read(magic, sizeof(magic)));
  if (std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not an AQPP table file");
  }
  uint64_t num_cols = 0;
  AQPP_RETURN_NOT_OK(in.ReadLength(&num_cols, kMaxColumns, "column count"));
  std::vector<ColumnSchema> cols;
  cols.reserve(num_cols);
  for (uint64_t c = 0; c < num_cols; ++c) {
    std::string name;
    int32_t type = 0;
    AQPP_RETURN_NOT_OK(in.ReadLengthPrefixed(&name));
    AQPP_RETURN_NOT_OK(in.ReadPod(&type));
    if (type < 0 || type > static_cast<int32_t>(DataType::kString)) {
      return Status::IOError(
          StrFormat("corrupt column type %d in '%s'", type, path.c_str()));
    }
    cols.push_back({std::move(name), static_cast<DataType>(type)});
  }
  uint64_t num_rows = 0;
  // Each row needs at least 8 bytes in some column; bounding by file size
  // rejects corrupt row counts before the resize below can explode.
  AQPP_RETURN_NOT_OK(in.ReadLength(&num_rows, in.file_size() / sizeof(int64_t),
                                   "row count"));
  auto table = std::make_shared<Table>(Schema(std::move(cols)));
  for (size_t c = 0; c < table->num_columns(); ++c) {
    Column& col = table->mutable_column(c);
    if (col.type() == DataType::kDouble) {
      col.MutableDoubleData().resize(num_rows);
      AQPP_RETURN_NOT_OK(in.Read(col.MutableDoubleData().data(),
                                 num_rows * sizeof(double)));
    } else {
      col.MutableInt64Data().resize(num_rows);
      AQPP_RETURN_NOT_OK(in.Read(col.MutableInt64Data().data(),
                                 num_rows * sizeof(int64_t)));
      if (col.type() == DataType::kString) {
        uint64_t dict_size = 0;
        AQPP_RETURN_NOT_OK(
            in.ReadLength(&dict_size, kMaxDictEntries, "dictionary"));
        std::vector<std::string> dict;
        dict.reserve(dict_size);
        for (uint64_t d = 0; d < dict_size; ++d) {
          std::string s;
          AQPP_RETURN_NOT_OK(in.ReadLengthPrefixed(&s));
          dict.push_back(std::move(s));
        }
        col.SetDictionary(std::move(dict));
      }
    }
  }
  table->SetRowCountFromColumns();
  return table;
}

}  // namespace aqpp
