#include "storage/io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace aqpp {

namespace {

constexpr char kBinaryMagic[8] = {'A', 'Q', 'P', 'P', 'T', 'B', 'L', '1'};

Status ParseField(const std::string& field, DataType type, Column* col) {
  switch (type) {
    case DataType::kInt64: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("cannot parse int64: '" + field + "'");
      }
      col->AppendInt64(static_cast<int64_t>(v));
      return Status::OK();
    }
    case DataType::kDouble: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("cannot parse double: '" + field + "'");
      }
      col->AppendDouble(v);
      return Status::OK();
    }
    case DataType::kString:
      col->AppendString(field);
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

template <typename T>
void WritePod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return in.good();
}

void WriteString(std::ofstream& out, const std::string& s) {
  WritePod<uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::ifstream& in, std::string* s) {
  uint64_t len = 0;
  if (!ReadPod(in, &len)) return false;
  s->resize(len);
  in.read(s->data(), static_cast<std::streamsize>(len));
  return in.good() || len == 0;
}

}  // namespace

Result<std::shared_ptr<Table>> ReadCsv(const std::string& path,
                                       const Schema& schema,
                                       const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  auto table = std::make_shared<Table>(schema);
  std::string line;
  size_t line_no = 0;
  if (options.has_header) {
    if (!std::getline(in, line)) {
      return Status::IOError("empty file: '" + path + "'");
    }
    ++line_no;
    auto names = SplitString(line, options.delimiter);
    if (names.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          StrFormat("header has %zu fields, schema has %zu columns",
                    names.size(), schema.num_columns()));
    }
    for (size_t i = 0; i < names.size(); ++i) {
      if (std::string(TrimWhitespace(names[i])) != schema.column(i).name) {
        return Status::InvalidArgument(
            "header column '" + names[i] + "' does not match schema column '" +
            schema.column(i).name + "'");
      }
    }
  }
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fields = SplitString(line, options.delimiter);
    if (fields.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu fields, expected %zu", line_no,
                    fields.size(), schema.num_columns()));
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      Status st = ParseField(std::string(TrimWhitespace(fields[c])),
                             schema.column(c).type, &table->mutable_column(c));
      if (!st.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %zu, column '%s': %s", line_no,
                      schema.column(c).name.c_str(), st.message().c_str()));
      }
    }
  }
  table->SetRowCountFromColumns();
  table->FinalizeDictionaries();
  return table;
}

Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  const Schema& schema = table.schema();
  if (options.has_header) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      out << schema.column(c).name;
    }
    out << '\n';
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      const Column& col = table.column(c);
      switch (col.type()) {
        case DataType::kInt64:
          out << col.GetInt64(r);
          break;
        case DataType::kDouble:
          out << col.GetDouble(r);
          break;
        case DataType::kString:
          out << col.GetString(r);
          break;
      }
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

Status WriteBinary(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  const Schema& schema = table.schema();
  WritePod<uint64_t>(out, schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    WriteString(out, schema.column(c).name);
    WritePod<int32_t>(out, static_cast<int32_t>(schema.column(c).type));
  }
  WritePod<uint64_t>(out, table.num_rows());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const Column& col = table.column(c);
    if (col.type() == DataType::kDouble) {
      out.write(reinterpret_cast<const char*>(col.DoubleData().data()),
                static_cast<std::streamsize>(table.num_rows() * sizeof(double)));
    } else {
      out.write(reinterpret_cast<const char*>(col.Int64Data().data()),
                static_cast<std::streamsize>(table.num_rows() * sizeof(int64_t)));
      if (col.type() == DataType::kString) {
        WritePod<uint64_t>(out, col.dictionary().size());
        for (const auto& s : col.dictionary()) WriteString(out, s);
      }
    }
  }
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

Result<std::shared_ptr<Table>> ReadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not an AQPP table file");
  }
  uint64_t num_cols = 0;
  if (!ReadPod(in, &num_cols)) return Status::IOError("truncated file");
  std::vector<ColumnSchema> cols;
  cols.reserve(num_cols);
  for (uint64_t c = 0; c < num_cols; ++c) {
    std::string name;
    int32_t type = 0;
    if (!ReadString(in, &name) || !ReadPod(in, &type)) {
      return Status::IOError("truncated schema");
    }
    cols.push_back({std::move(name), static_cast<DataType>(type)});
  }
  uint64_t num_rows = 0;
  if (!ReadPod(in, &num_rows)) return Status::IOError("truncated file");
  auto table = std::make_shared<Table>(Schema(std::move(cols)));
  for (size_t c = 0; c < table->num_columns(); ++c) {
    Column& col = table->mutable_column(c);
    if (col.type() == DataType::kDouble) {
      col.MutableDoubleData().resize(num_rows);
      in.read(reinterpret_cast<char*>(col.MutableDoubleData().data()),
              static_cast<std::streamsize>(num_rows * sizeof(double)));
    } else {
      col.MutableInt64Data().resize(num_rows);
      in.read(reinterpret_cast<char*>(col.MutableInt64Data().data()),
              static_cast<std::streamsize>(num_rows * sizeof(int64_t)));
      if (col.type() == DataType::kString) {
        uint64_t dict_size = 0;
        if (!ReadPod(in, &dict_size)) return Status::IOError("truncated dict");
        std::vector<std::string> dict;
        dict.reserve(dict_size);
        for (uint64_t d = 0; d < dict_size; ++d) {
          std::string s;
          if (!ReadString(in, &s)) return Status::IOError("truncated dict");
          dict.push_back(std::move(s));
        }
        col.SetDictionary(std::move(dict));
      }
    }
    if (!in) return Status::IOError("truncated column data");
  }
  table->SetRowCountFromColumns();
  return table;
}

}  // namespace aqpp
