// Extent-granular access to a table's columns, independent of where the
// bytes live.
//
// A ColumnSource presents a table as a sequence of fixed-size extents
// (kExtentRows rows each, last one ragged) whose column data can be pinned
// one (extent, column) pair at a time. Two implementations exist:
//
//   * TableColumnSource — zero-copy views into an in-memory Table,
//   * ExtentColumnSource — decode-on-demand views over an extent file.
//
// The scan layer (kernels/source_scan.h) consumes this interface to run the
// same chunk/shard/lane aggregation grid over either, which is what makes
// out-of-core scans bit-identical to in-memory ones. Zone maps (per-extent
// min/max for ordinal columns) let that layer skip whole extents before
// pinning them.

#ifndef AQPP_STORAGE_COLUMN_SOURCE_H_
#define AQPP_STORAGE_COLUMN_SOURCE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/extent_file.h"
#include "storage/table.h"

namespace aqpp {

class ColumnSource {
 public:
  virtual ~ColumnSource() = default;

  virtual const Schema& schema() const = 0;
  virtual uint64_t num_rows() const = 0;

  size_t num_extents() const {
    return static_cast<size_t>((num_rows() + kExtentRows - 1) / kExtentRows);
  }
  size_t ExtentRows(size_t e) const {
    const uint64_t begin = static_cast<uint64_t>(e) * kExtentRows;
    return static_cast<size_t>(
        std::min<uint64_t>(kExtentRows, num_rows() - begin));
  }

  // A pinned view of one column over one extent. `owner` keeps any backing
  // decode buffer alive; in-memory sources leave it null (the Table outlives
  // the scan by contract).
  struct PinnedColumn {
    DataType type = DataType::kInt64;
    size_t rows = 0;
    const int64_t* ints = nullptr;  // ordinal types (kInt64 / kString codes)
    const double* dbls = nullptr;   // kDouble
    std::shared_ptr<const void> owner;
  };

  virtual Result<PinnedColumn> Pin(size_t extent, size_t col) = 0;

  // Per-extent zone map for an ordinal column: true and [*mn, *mx] when
  // known, false when unavailable (double columns; in-memory tables).
  virtual bool ZoneMap(size_t extent, size_t col, int64_t* mn,
                      int64_t* mx) const = 0;

  // Exact whole-column [min, max] for an ordinal column; false for double
  // or empty columns. May compute lazily; thread-safe.
  virtual bool ColumnMinMax(size_t col, int64_t* mn, int64_t* mx) = 0;

  virtual const std::vector<std::string>& dictionary(size_t col) const = 0;

  // Hint that extents before `e` will not be revisited (sequential streaming
  // passes); sources backed by caches/mappings release them. Default no-op.
  virtual void ReleaseBefore(size_t e) { (void)e; }
};

// In-memory adapter: extents are windows into the Table's contiguous column
// vectors. The table must outlive the source.
class TableColumnSource : public ColumnSource {
 public:
  explicit TableColumnSource(const Table* table) : table_(table) {}

  const Schema& schema() const override { return table_->schema(); }
  uint64_t num_rows() const override { return table_->num_rows(); }
  Result<PinnedColumn> Pin(size_t extent, size_t col) override;
  bool ZoneMap(size_t, size_t, int64_t*, int64_t*) const override {
    return false;  // whole-column stats only; scans touch every extent
  }
  bool ColumnMinMax(size_t col, int64_t* mn, int64_t* mx) override;
  const std::vector<std::string>& dictionary(size_t col) const override {
    return table_->column(col).dictionary();
  }

 private:
  const Table* table_;
  std::mutex mu_;
  std::unordered_map<size_t, std::pair<int64_t, int64_t>> minmax_;
};

// Out-of-core adapter over an extent file. Zone maps and column min/max come
// from the footer directory, so pruning decisions read no extent data.
class ExtentColumnSource : public ColumnSource {
 public:
  explicit ExtentColumnSource(std::shared_ptr<ExtentFileReader> reader)
      : reader_(std::move(reader)) {}

  const Schema& schema() const override { return reader_->schema(); }
  uint64_t num_rows() const override { return reader_->num_rows(); }
  Result<PinnedColumn> Pin(size_t extent, size_t col) override;
  bool ZoneMap(size_t extent, size_t col, int64_t* mn,
               int64_t* mx) const override;
  bool ColumnMinMax(size_t col, int64_t* mn, int64_t* mx) override;
  const std::vector<std::string>& dictionary(size_t col) const override {
    return reader_->dictionary(col);
  }
  void ReleaseBefore(size_t e) override { reader_->ReleaseBefore(e); }

  const std::shared_ptr<ExtentFileReader>& reader() const { return reader_; }

 private:
  std::shared_ptr<ExtentFileReader> reader_;
};

}  // namespace aqpp

#endif  // AQPP_STORAGE_COLUMN_SOURCE_H_
