// Partition schemes: per-dimension cut points defining a blocked prefix
// cube (Definition 3 in the paper).
//
// A cut value t on dimension C denotes the prefix "C <= t". Cut *indices*
// extend the cut array with a virtual index 0 meaning the empty prefix, so
// every precomputable aggregate is a half-open box
//   (cut[a_1], cut[b_1]] x ... x (cut[a_d], cut[b_d]]
// identified by index pairs a_i <= b_i.

#ifndef AQPP_CUBE_PARTITION_H_
#define AQPP_CUBE_PARTITION_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/query.h"
#include "storage/table.h"

namespace aqpp {

// Cuts for one condition attribute.
struct DimensionPartition {
  // Column index of the condition attribute in the base table.
  size_t column = 0;
  // Strictly increasing cut values. The last cut must be >= the column's
  // maximum so the full prefix is always available (the paper fixes
  // t_k = |dom(C)|, footnote 5).
  std::vector<int64_t> cuts;

  size_t num_cuts() const { return cuts.size(); }

  // Value of cut index idx (1-based; idx in [1, num_cuts()]).
  int64_t CutValue(size_t idx) const { return cuts[idx - 1]; }

  // Largest cut index whose value is <= bound; 0 if none (the empty prefix).
  // `bound` is an exclusive lower bound or inclusive upper bound of a range
  // expressed in "prefix boundary" space.
  size_t LowerBracket(int64_t bound) const;

  // Smallest cut index whose value is >= bound; num_cuts() if bound exceeds
  // all cuts (clamped to the full prefix).
  size_t UpperBracket(int64_t bound) const;

  // Bucket of a row value v: the smallest cut index j >= 1 with
  // v <= CutValue(j). Requires v <= cuts.back().
  size_t BucketOf(int64_t v) const;
};

// A complete scheme over d dimensions.
class PartitionScheme {
 public:
  PartitionScheme() = default;
  explicit PartitionScheme(std::vector<DimensionPartition> dims)
      : dims_(std::move(dims)) {}

  size_t num_dims() const { return dims_.size(); }
  const DimensionPartition& dim(size_t i) const { return dims_[i]; }
  const std::vector<DimensionPartition>& dims() const { return dims_; }

  // Number of stored cells, prod_i num_cuts_i (the paper's |P| <= k budget).
  size_t NumCells() const;

  // Validates against a table: columns ordinal, cuts strictly increasing and
  // covering the column max.
  Status Validate(const Table& table) const;

  std::string ToString(const Schema& schema) const;

  // Builds the equal-depth initialization P_eq (Section 6.1.2 step 1): cut
  // values are the feasible attribute values closest to the i*N/k row-count
  // quantiles. `k` is the number of cuts for this dimension.
  static Result<DimensionPartition> EqualDepthPartition(const Table& table,
                                                        size_t column,
                                                        size_t k);

 private:
  std::vector<DimensionPartition> dims_;
};

// Sorted distinct values of an ordinal column (the feasible cut positions).
Result<std::vector<int64_t>> DistinctSorted(const Table& table, size_t column);

// A precomputed aggregate query identified by cut-index bounds: the half-open
// box prod_i (cut[lo_i], cut[hi_i]]. lo_i == hi_i on every dimension encodes
// the empty query phi.
struct PreAggregate {
  std::vector<size_t> lo;  // exclusive lower cut index per dimension
  std::vector<size_t> hi;  // inclusive upper cut index per dimension

  bool IsEmpty() const;
  bool operator==(const PreAggregate& other) const {
    return lo == other.lo && hi == other.hi;
  }

  // The equivalent predicate on the base/sample table (for evaluating
  // p̂re(S)). Dimensions with lo==0 use an open lower bound.
  RangePredicate ToPredicate(const PartitionScheme& scheme) const;

  std::string ToString(const PartitionScheme& scheme,
                       const Schema& schema) const;
};

}  // namespace aqpp

#endif  // AQPP_CUBE_PARTITION_H_
