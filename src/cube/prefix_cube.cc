#include "cube/prefix_cube.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "kernels/binning.h"
#include "kernels/kernels.h"

namespace aqpp {

Result<PrefixCube::Layout> PrefixCube::LayoutFor(const PartitionScheme& scheme) {
  if (scheme.num_dims() == 0) return Status::InvalidArgument("no dimensions");
  Layout layout;
  const size_t d = scheme.num_dims();
  layout.extents.resize(d);
  layout.strides.resize(d);
  layout.total_cells = 1;
  for (size_t i = 0; i < d; ++i) {
    layout.extents[i] = scheme.dim(i).num_cuts() + 1;
    // Overflow / memory guard: refuse cubes over ~256M cells.
    if (layout.total_cells > (size_t{1} << 28) / layout.extents[i]) {
      return Status::InvalidArgument(
          StrFormat("cube too large (> 2^28 cells)"));
    }
    layout.total_cells *= layout.extents[i];
  }
  // Row-major strides, last dimension fastest.
  size_t stride = 1;
  for (size_t i = d; i-- > 0;) {
    layout.strides[i] = stride;
    stride *= layout.extents[i];
  }
  return layout;
}

PrefixCube::AccumulationPlan PrefixCube::PlanFor(size_t rows, size_t cells,
                                                 size_t num_measures) {
  // Partial-plane count bounded by a 64 MiB scratch budget (and 16 shards);
  // huge cubes degrade to one shard, i.e. direct sequential accumulation.
  AccumulationPlan plan;
  const size_t partial_bytes = cells * num_measures * sizeof(double);
  const size_t max_partials =
      std::clamp<size_t>((size_t{64} << 20) / partial_bytes, 1, 16);
  const size_t row_shards =
      rows == 0 ? 0 : (rows + kernels::kShardRows - 1) / kernels::kShardRows;
  plan.num_shards = std::min(row_shards, max_partials);
  if (plan.num_shards > 1) {
    plan.rows_per_shard =
        ((rows + plan.num_shards - 1) / plan.num_shards +
         kernels::kChunkRows - 1) /
        kernels::kChunkRows * kernels::kChunkRows;
  }
  return plan;
}

void PrefixCube::PrefixSweepAll() {
  // After sweeping dimension i, each cell holds the sum over all bucket
  // indices <= its index along dimensions swept so far.
  const size_t d = scheme_.num_dims();
  for (size_t m = 0; m < planes_.size(); ++m) {
    auto& plane = planes_[m];
    for (size_t i = 0; i < d; ++i) {
      const size_t stride_i = strides_[i];
      const size_t extent_i = extents_[i];
      // Iterate over all cells whose index along dim i is >= 1 and add the
      // predecessor along dim i.
      const size_t block = stride_i * extent_i;
      for (size_t base = 0; base < plane.size(); base += block) {
        for (size_t j = 1; j < extent_i; ++j) {
          size_t row_start = base + j * stride_i;
          size_t prev_start = row_start - stride_i;
          for (size_t off = 0; off < stride_i; ++off) {
            plane[row_start + off] += plane[prev_start + off];
          }
        }
      }
    }
  }
}

Result<std::shared_ptr<PrefixCube>> PrefixCube::FromRawPlanes(
    PartitionScheme scheme, std::vector<MeasureSpec> measures,
    std::vector<std::vector<double>> raw_planes, double accumulate_seconds) {
  if (measures.empty()) {
    return Status::InvalidArgument("at least one measure required");
  }
  if (raw_planes.size() != measures.size()) {
    return Status::InvalidArgument("one raw plane per measure required");
  }
  AQPP_ASSIGN_OR_RETURN(Layout layout, LayoutFor(scheme));
  for (const auto& plane : raw_planes) {
    if (plane.size() != layout.total_cells) {
      return Status::InvalidArgument("plane size does not match the scheme");
    }
  }
  Timer timer;
  auto cube = std::shared_ptr<PrefixCube>(new PrefixCube());
  cube->scheme_ = std::move(scheme);
  cube->measures_ = std::move(measures);
  cube->extents_ = std::move(layout.extents);
  cube->strides_ = std::move(layout.strides);
  cube->planes_ = std::move(raw_planes);
  cube->PrefixSweepAll();
  cube->build_seconds_ = accumulate_seconds + timer.ElapsedSeconds();
  return cube;
}

Result<std::shared_ptr<PrefixCube>> PrefixCube::Build(
    const Table& table, PartitionScheme scheme,
    const std::vector<MeasureSpec>& measures) {
  AQPP_RETURN_NOT_OK(scheme.Validate(table));
  if (measures.empty()) {
    return Status::InvalidArgument("at least one measure required");
  }
  for (const auto& m : measures) {
    if (!m.is_count()) {
      if (m.column < 0 ||
          static_cast<size_t>(m.column) >= table.num_columns()) {
        return Status::InvalidArgument("measure column out of range");
      }
    }
  }

  Timer timer;
  auto cube = std::shared_ptr<PrefixCube>(new PrefixCube());
  cube->scheme_ = std::move(scheme);
  cube->measures_ = measures;

  const size_t d = cube->scheme_.num_dims();
  AQPP_ASSIGN_OR_RETURN(Layout layout, LayoutFor(cube->scheme_));
  cube->extents_ = std::move(layout.extents);
  cube->strides_ = std::move(layout.strides);
  const size_t total = layout.total_cells;

  cube->planes_.assign(measures.size(), std::vector<double>(total, 0.0));

  // Pass 1: one binning scan, accumulating each row into its bucket cell
  // chunk by chunk through the cell-id kernels. The scan shards the table on
  // a grid derived only from (rows, plane memory) — never the thread count —
  // and per-shard partial planes (prefix sums are linear, so partials simply
  // add) merge in shard-index order, so the cube's cells are bit-identical
  // however many threads run the build.
  const size_t n = table.num_rows();
  std::vector<kernels::BinDimension> bin_dims(d);
  for (size_t i = 0; i < d; ++i) {
    const auto& dim = cube->scheme_.dim(i);
    bin_dims[i].codes = table.column(dim.column).Int64Data().data();
    bin_dims[i].cuts = dim.cuts.data();
    bin_dims[i].num_cuts = dim.cuts.size();
    bin_dims[i].stride = cube->strides_[i];
  }
  auto bind_measures = [&](std::vector<std::vector<double>>& planes) {
    std::vector<kernels::BinMeasure> bound(measures.size());
    for (size_t m = 0; m < measures.size(); ++m) {
      bound[m].squared = measures[m].squared;
      bound[m].plane = planes[m].data();
      if (measures[m].is_count()) continue;
      const Column& col = table.column(static_cast<size_t>(measures[m].column));
      if (col.type() == DataType::kDouble) {
        bound[m].dbl = col.DoubleData().data();
      } else {
        bound[m].i64 = col.Int64Data().data();
      }
    }
    return bound;
  };
  auto accumulate = [&](std::vector<std::vector<double>>& planes,
                        size_t begin, size_t end) {
    std::vector<kernels::BinMeasure> bound = bind_measures(planes);
    alignas(64) uint32_t flat[kernels::kChunkRows];
    for (size_t base = begin; base < end; base += kernels::kChunkRows) {
      const size_t stop = std::min(end, base + kernels::kChunkRows);
      kernels::ComputeCellIds(bin_dims, base, stop, flat);
      kernels::ScatterAddMeasures(bound, flat, base, stop);
    }
  };

  const AccumulationPlan plan = PlanFor(n, total, measures.size());
  if (plan.num_shards > 1) {
    const size_t per_shard = plan.rows_per_shard;
    std::vector<std::vector<std::vector<double>>> partials(plan.num_shards);
    ParallelForEach(plan.num_shards, [&](size_t s) {
      partials[s].assign(measures.size(), std::vector<double>(total, 0.0));
      const size_t begin = s * per_shard;
      const size_t end = std::min(n, begin + per_shard);
      if (begin < end) accumulate(partials[s], begin, end);
    });
    for (size_t s = 0; s < plan.num_shards; ++s) {  // shard-index order
      for (size_t m = 0; m < measures.size(); ++m) {
        for (size_t c = 0; c < total; ++c) {
          cube->planes_[m][c] += partials[s][m][c];
        }
      }
    }
  } else {
    accumulate(cube->planes_, 0, n);
  }

  // Pass 2: d prefix-sum sweeps.
  cube->PrefixSweepAll();

  cube->build_seconds_ = timer.ElapsedSeconds();
  return cube;
}

size_t PrefixCube::FlatIndex(const std::vector<size_t>& idx) const {
  AQPP_DCHECK_EQ(idx.size(), strides_.size());
  size_t flat = 0;
  for (size_t i = 0; i < idx.size(); ++i) {
    AQPP_DCHECK_LT(idx[i], extents_[i]);
    flat += idx[i] * strides_[i];
  }
  return flat;
}

double PrefixCube::PrefixValue(const std::vector<size_t>& idx,
                               size_t m) const {
  for (size_t v : idx) {
    if (v == 0) return 0.0;
  }
  return planes_[m][FlatIndex(idx)];
}

double PrefixCube::BoxValue(const PreAggregate& pre, size_t m) const {
  AQPP_CHECK_EQ(pre.lo.size(), scheme_.num_dims());
  if (pre.IsEmpty()) return 0.0;
  const size_t d = scheme_.num_dims();
  // Inclusion-exclusion over the 2^d corners.
  double total = 0.0;
  const size_t corners = size_t{1} << d;
  std::vector<size_t> idx(d);
  for (size_t mask = 0; mask < corners; ++mask) {
    int sign = 1;
    for (size_t i = 0; i < d; ++i) {
      if (mask & (size_t{1} << i)) {
        idx[i] = pre.lo[i];
        sign = -sign;
      } else {
        idx[i] = pre.hi[i];
      }
    }
    total += sign * PrefixValue(idx, m);
  }
  return total;
}

std::shared_ptr<PrefixCube> PrefixCube::Clone() const {
  return std::shared_ptr<PrefixCube>(new PrefixCube(*this));
}

Status PrefixCube::MergeFrom(const PrefixCube& other) {
  if (other.scheme_.num_dims() != scheme_.num_dims() ||
      other.planes_.size() != planes_.size()) {
    return Status::InvalidArgument("cube structure mismatch");
  }
  for (size_t i = 0; i < scheme_.num_dims(); ++i) {
    if (scheme_.dim(i).column != other.scheme_.dim(i).column ||
        scheme_.dim(i).cuts != other.scheme_.dim(i).cuts) {
      return Status::InvalidArgument("partition scheme mismatch");
    }
  }
  for (size_t m = 0; m < measures_.size(); ++m) {
    if (measures_[m].column != other.measures_[m].column ||
        measures_[m].squared != other.measures_[m].squared) {
      return Status::InvalidArgument("measure list mismatch");
    }
  }
  for (size_t m = 0; m < planes_.size(); ++m) {
    AQPP_CHECK_EQ(planes_[m].size(), other.planes_[m].size());
    for (size_t i = 0; i < planes_[m].size(); ++i) {
      planes_[m][i] += other.planes_[m][i];
    }
  }
  return Status::OK();
}

size_t PrefixCube::MemoryUsage() const {
  size_t bytes = 0;
  for (const auto& plane : planes_) bytes += plane.capacity() * sizeof(double);
  return bytes;
}

namespace {

constexpr char kCubeMagic[8] = {'A', 'Q', 'P', 'P', 'C', 'U', 'B', '1'};

template <typename T>
void WritePod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return in.good();
}

}  // namespace

Status PrefixCube::WriteTo(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out.write(kCubeMagic, sizeof(kCubeMagic));
  WritePod<uint64_t>(out, scheme_.num_dims());
  for (const auto& dim : scheme_.dims()) {
    WritePod<uint64_t>(out, dim.column);
    WritePod<uint64_t>(out, dim.cuts.size());
    out.write(reinterpret_cast<const char*>(dim.cuts.data()),
              static_cast<std::streamsize>(dim.cuts.size() * sizeof(int64_t)));
  }
  WritePod<uint64_t>(out, measures_.size());
  for (const auto& m : measures_) {
    WritePod<int64_t>(out, m.column);
    WritePod<uint8_t>(out, m.squared ? 1 : 0);
  }
  WritePod<double>(out, build_seconds_);
  for (const auto& plane : planes_) {
    WritePod<uint64_t>(out, plane.size());
    out.write(reinterpret_cast<const char*>(plane.data()),
              static_cast<std::streamsize>(plane.size() * sizeof(double)));
  }
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

Result<std::shared_ptr<PrefixCube>> PrefixCube::ReadFrom(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kCubeMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not an AQPP cube file");
  }
  auto cube = std::shared_ptr<PrefixCube>(new PrefixCube());
  uint64_t num_dims = 0;
  if (!ReadPod(in, &num_dims)) return Status::IOError("truncated cube file");
  std::vector<DimensionPartition> dims(num_dims);
  for (auto& dim : dims) {
    uint64_t column = 0, num_cuts = 0;
    if (!ReadPod(in, &column) || !ReadPod(in, &num_cuts)) {
      return Status::IOError("truncated cube scheme");
    }
    dim.column = column;
    dim.cuts.resize(num_cuts);
    in.read(reinterpret_cast<char*>(dim.cuts.data()),
            static_cast<std::streamsize>(num_cuts * sizeof(int64_t)));
    if (!in) return Status::IOError("truncated cube cuts");
  }
  cube->scheme_ = PartitionScheme(std::move(dims));
  uint64_t num_measures = 0;
  if (!ReadPod(in, &num_measures)) return Status::IOError("truncated cube");
  cube->measures_.resize(num_measures);
  for (auto& m : cube->measures_) {
    uint8_t squared = 0;
    if (!ReadPod(in, &m.column) || !ReadPod(in, &squared)) {
      return Status::IOError("truncated measures");
    }
    m.squared = squared != 0;
  }
  if (!ReadPod(in, &cube->build_seconds_)) {
    return Status::IOError("truncated cube");
  }
  // Reconstruct extents/strides from the scheme.
  const size_t d = cube->scheme_.num_dims();
  cube->extents_.resize(d);
  cube->strides_.resize(d);
  size_t total = 1;
  for (size_t i = 0; i < d; ++i) {
    cube->extents_[i] = cube->scheme_.dim(i).num_cuts() + 1;
    total *= cube->extents_[i];
  }
  size_t stride = 1;
  for (size_t i = d; i-- > 0;) {
    cube->strides_[i] = stride;
    stride *= cube->extents_[i];
  }
  cube->planes_.resize(num_measures);
  for (auto& plane : cube->planes_) {
    uint64_t size = 0;
    if (!ReadPod(in, &size)) return Status::IOError("truncated plane");
    if (size != total) {
      return Status::InvalidArgument("plane size does not match the scheme");
    }
    plane.resize(size);
    in.read(reinterpret_cast<char*>(plane.data()),
            static_cast<std::streamsize>(size * sizeof(double)));
    if (!in) return Status::IOError("truncated plane data");
  }
  return cube;
}

}  // namespace aqpp
