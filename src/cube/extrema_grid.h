// Block extrema grid: deterministic MIN/MAX bounds for range queries.
//
// Section 8 of the paper lists MIN/MAX as future work: sampling cannot
// estimate them, but precomputation handles them naturally. This module is
// that extension. Extrema are not invertible, so no prefix trick applies;
// instead we store the raw per-block min/max (same bucketing as the
// BP-Cube) and answer a range query with *deterministic* bounds:
//
//   max over blocks fully inside the query   <=  MAX(q)  <=
//   max over blocks intersecting the query
//
// (dually for MIN). When every intersecting block is fully inside, the
// bound pair collapses and the answer is exact. The bounds get tighter as
// k grows — the same precision-for-space dial as the BP-Cube.

#ifndef AQPP_CUBE_EXTREMA_GRID_H_
#define AQPP_CUBE_EXTREMA_GRID_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "cube/partition.h"
#include "expr/query.h"
#include "storage/table.h"

namespace aqpp {

// Deterministic interval for an extremum. `exact` when lower == upper is
// guaranteed; `has_lower` is false when no block lies fully inside the
// query (the inner bound is then vacuous).
struct ExtremaBounds {
  double lower = 0.0;
  double upper = 0.0;
  bool has_lower = false;
  bool exact = false;
};

class ExtremaGrid {
 public:
  // One scan of `table`; grid cells follow `scheme`'s bucketing.
  static Result<std::shared_ptr<ExtremaGrid>> Build(const Table& table,
                                                    PartitionScheme scheme,
                                                    size_t measure_column);

  const PartitionScheme& scheme() const { return scheme_; }
  size_t measure_column() const { return measure_column_; }
  size_t NumCells() const;
  size_t MemoryUsage() const;

  // Bounds on MAX / MIN of the measure over the conjunctive range
  // `predicate` (conditions on non-scheme columns are rejected — the grid
  // cannot bound them). Errors if no data can match (all intersecting
  // blocks empty).
  Result<ExtremaBounds> MaxBounds(const RangePredicate& predicate) const;
  Result<ExtremaBounds> MinBounds(const RangePredicate& predicate) const;

 private:
  ExtremaGrid() = default;

  // Per-dimension block index ranges: blocks fully inside / intersecting.
  struct DimRange {
    size_t inner_lo = 1, inner_hi = 0;  // empty when inner_lo > inner_hi
    size_t outer_lo = 1, outer_hi = 0;
  };
  Result<std::vector<DimRange>> ComputeRanges(
      const RangePredicate& predicate) const;

  Result<ExtremaBounds> Bounds(const RangePredicate& predicate,
                               bool want_max) const;

  size_t FlatIndex(const std::vector<size_t>& block) const;

  PartitionScheme scheme_;
  size_t measure_column_ = 0;
  std::vector<size_t> extents_;  // blocks per dimension (num_cuts)
  std::vector<size_t> strides_;
  std::vector<double> min_;      // +inf for empty blocks
  std::vector<double> max_;      // -inf for empty blocks
  std::vector<int64_t> domain_min_;  // per-dim minimum value (block 1's floor)
};

}  // namespace aqpp

#endif  // AQPP_CUBE_EXTREMA_GRID_H_
