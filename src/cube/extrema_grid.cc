#include "cube/extrema_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace aqpp {

Result<std::shared_ptr<ExtremaGrid>> ExtremaGrid::Build(
    const Table& table, PartitionScheme scheme, size_t measure_column) {
  AQPP_RETURN_NOT_OK(scheme.Validate(table));
  if (measure_column >= table.num_columns()) {
    return Status::InvalidArgument("measure column out of range");
  }
  auto grid = std::shared_ptr<ExtremaGrid>(new ExtremaGrid());
  grid->scheme_ = std::move(scheme);
  grid->measure_column_ = measure_column;

  const size_t d = grid->scheme_.num_dims();
  grid->extents_.resize(d);
  grid->strides_.resize(d);
  grid->domain_min_.resize(d);
  size_t total = 1;
  for (size_t i = 0; i < d; ++i) {
    grid->extents_[i] = grid->scheme_.dim(i).num_cuts();
    if (total > (size_t{1} << 28) / std::max<size_t>(1, grid->extents_[i])) {
      return Status::InvalidArgument("grid too large (> 2^28 cells)");
    }
    total *= grid->extents_[i];
    AQPP_ASSIGN_OR_RETURN(
        grid->domain_min_[i],
        table.column(grid->scheme_.dim(i).column).MinInt64());
  }
  size_t stride = 1;
  for (size_t i = d; i-- > 0;) {
    grid->strides_[i] = stride;
    stride *= grid->extents_[i];
  }
  grid->min_.assign(total, std::numeric_limits<double>::infinity());
  grid->max_.assign(total, -std::numeric_limits<double>::infinity());

  const Column& measure = table.column(measure_column);
  std::vector<const std::vector<int64_t>*> dim_data(d);
  for (size_t i = 0; i < d; ++i) {
    dim_data[i] = &table.column(grid->scheme_.dim(i).column).Int64Data();
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    size_t flat = 0;
    for (size_t i = 0; i < d; ++i) {
      // Blocks are 1-based buckets; the grid stores them 0-based.
      flat += (grid->scheme_.dim(i).BucketOf((*dim_data[i])[r]) - 1) *
              grid->strides_[i];
    }
    double v = measure.GetDouble(r);
    grid->min_[flat] = std::min(grid->min_[flat], v);
    grid->max_[flat] = std::max(grid->max_[flat], v);
  }
  return grid;
}

size_t ExtremaGrid::NumCells() const { return min_.size(); }

size_t ExtremaGrid::MemoryUsage() const {
  return (min_.capacity() + max_.capacity()) * sizeof(double);
}

size_t ExtremaGrid::FlatIndex(const std::vector<size_t>& block) const {
  size_t flat = 0;
  for (size_t i = 0; i < block.size(); ++i) {
    flat += block[i] * strides_[i];
  }
  return flat;
}

Result<std::vector<ExtremaGrid::DimRange>> ExtremaGrid::ComputeRanges(
    const RangePredicate& predicate) const {
  const size_t d = scheme_.num_dims();
  // Reject conditions on columns outside the grid: their restriction cannot
  // be bounded by block extrema.
  for (const auto& c : predicate.conditions()) {
    bool covered = false;
    for (size_t i = 0; i < d; ++i) {
      if (scheme_.dim(i).column == c.column) covered = true;
    }
    if (!covered) {
      return Status::InvalidArgument(
          "extrema bounds require every condition column to be a grid "
          "dimension");
    }
  }
  std::vector<DimRange> ranges(d);
  for (size_t i = 0; i < d; ++i) {
    const DimensionPartition& dim = scheme_.dim(i);
    int64_t lo = std::numeric_limits<int64_t>::min();
    int64_t hi = std::numeric_limits<int64_t>::max();
    for (const auto& c : predicate.conditions()) {
      if (c.column == dim.column) {
        lo = std::max(lo, c.lo);
        hi = std::min(hi, c.hi);
      }
    }
    if (lo > hi) return Status::FailedPrecondition("empty predicate");

    DimRange r;
    const size_t k = dim.num_cuts();
    // Block j (1-based) spans (floor_j, cut_j] with floor_1 = domain_min - 1
    // and floor_j = cut_{j-1}.
    auto block_floor = [&](size_t j) {
      return j == 1 ? domain_min_[i] - 1 : dim.CutValue(j - 1);
    };
    // Outer: blocks intersecting [lo, hi]: cut_j >= lo and floor_j < hi+1.
    size_t outer_lo = lo == std::numeric_limits<int64_t>::min()
                          ? 1
                          : dim.UpperBracket(lo);
    size_t outer_hi = hi == std::numeric_limits<int64_t>::max()
                          ? k
                          : dim.UpperBracket(hi);
    // UpperBracket clamps to k; verify the last block actually intersects.
    if (outer_lo > k) return Status::FailedPrecondition("query beyond domain");
    r.outer_lo = outer_lo;
    r.outer_hi = std::max(outer_lo, outer_hi);
    // Inner: blocks fully inside: floor_j >= lo - 1 and cut_j <= hi.
    // (An unbounded lo makes every block's floor admissible.)
    size_t inner_lo = outer_lo;
    if (lo != std::numeric_limits<int64_t>::min()) {
      while (inner_lo <= r.outer_hi && block_floor(inner_lo) < lo - 1) {
        ++inner_lo;
      }
    }
    size_t inner_hi = r.outer_hi;
    while (inner_hi >= inner_lo && dim.CutValue(inner_hi) > hi) {
      --inner_hi;
    }
    r.inner_lo = inner_lo;
    r.inner_hi = inner_hi;  // may be < inner_lo: empty inner range
    ranges[i] = r;
  }
  return ranges;
}

Result<ExtremaBounds> ExtremaGrid::Bounds(const RangePredicate& predicate,
                                          bool want_max) const {
  AQPP_ASSIGN_OR_RETURN(auto ranges, ComputeRanges(predicate));
  const size_t d = scheme_.num_dims();
  const auto& plane = want_max ? max_ : min_;
  const double empty_marker = want_max
                                  ? -std::numeric_limits<double>::infinity()
                                  : std::numeric_limits<double>::infinity();
  auto better = [&](double a, double b) {
    return want_max ? std::max(a, b) : std::min(a, b);
  };

  // Iterate the outer box; track outer and inner extrema simultaneously.
  double outer = empty_marker;
  double inner = empty_marker;
  bool outer_seen = false, inner_seen = false;
  bool all_outer_inside = true;
  std::vector<size_t> block(d);
  for (size_t i = 0; i < d; ++i) block[i] = ranges[i].outer_lo;
  while (true) {
    bool inside = true;
    for (size_t i = 0; i < d; ++i) {
      if (block[i] < ranges[i].inner_lo || block[i] > ranges[i].inner_hi) {
        inside = false;
        break;
      }
    }
    std::vector<size_t> zero_based(d);
    for (size_t i = 0; i < d; ++i) zero_based[i] = block[i] - 1;
    double v = plane[FlatIndex(zero_based)];
    bool empty = v == empty_marker;
    if (!empty) {
      outer = better(outer, v);
      outer_seen = true;
      if (inside) {
        inner = better(inner, v);
        inner_seen = true;
      }
    }
    if (!inside && !empty) all_outer_inside = false;

    // Advance the outer-box counter.
    size_t i = 0;
    while (i < d) {
      if (++block[i] <= ranges[i].outer_hi) break;
      block[i] = ranges[i].outer_lo;
      ++i;
    }
    if (i == d) break;
  }
  if (!outer_seen) {
    return Status::FailedPrecondition("no data intersects the query range");
  }
  ExtremaBounds bounds;
  bounds.upper = want_max ? outer : (inner_seen ? inner : outer);
  bounds.lower = want_max ? (inner_seen ? inner : outer) : outer;
  bounds.has_lower = inner_seen;
  // Exact when every nonempty intersecting block is fully inside (the outer
  // extremum is then attained by an inside row).
  bounds.exact = inner_seen && all_outer_inside;
  if (!inner_seen) {
    // No fully-covered block: only the one-sided (outer) bound is valid.
    if (want_max) {
      bounds.lower = -std::numeric_limits<double>::infinity();
    } else {
      bounds.upper = std::numeric_limits<double>::infinity();
    }
  }
  return bounds;
}

Result<ExtremaBounds> ExtremaGrid::MaxBounds(
    const RangePredicate& predicate) const {
  return Bounds(predicate, /*want_max=*/true);
}

Result<ExtremaBounds> ExtremaGrid::MinBounds(
    const RangePredicate& predicate) const {
  return Bounds(predicate, /*want_max=*/false);
}

}  // namespace aqpp
