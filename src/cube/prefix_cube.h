// Blocked prefix cube (BP-Cube, Definition 3) with the Ho et al. [34]
// construction: one scan of the data to bucket-accumulate, then d prefix-sum
// passes over the cell array. Any aligned range aggregate is then answered
// from at most 2^d cells by inclusion–exclusion (Figure 1).
//
// A cube can carry several measures (e.g. SUM(A) and COUNT) built in the
// same scan, which is how AVG support is realized (Appendix C).

#ifndef AQPP_CUBE_PREFIX_CUBE_H_
#define AQPP_CUBE_PREFIX_CUBE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "cube/partition.h"
#include "storage/table.h"

namespace aqpp {

// Measure specification: COUNT(*), SUM(column), or SUM(column^2) — the
// latter powers VAR reconstruction (Appendix C).
struct MeasureSpec {
  static constexpr int64_t kCountMeasure = -1;
  int64_t column = kCountMeasure;
  bool squared = false;

  static MeasureSpec Count() { return MeasureSpec{kCountMeasure, false}; }
  static MeasureSpec Sum(size_t column) {
    return MeasureSpec{static_cast<int64_t>(column), false};
  }
  static MeasureSpec SumSquares(size_t column) {
    return MeasureSpec{static_cast<int64_t>(column), true};
  }
  bool is_count() const { return column == kCountMeasure; }
};

class PrefixCube {
 public:
  // Builds the cube for `scheme` over `table`, one measure plane per entry
  // of `measures`. Cost: one full scan + d prefix passes (Appendix B).
  static Result<std::shared_ptr<PrefixCube>> Build(
      const Table& table, PartitionScheme scheme,
      const std::vector<MeasureSpec>& measures);

  // Cell-array geometry of a scheme: per-dimension extents (num_cuts + 1),
  // row-major strides (last dimension fastest), and the total cell count.
  // Errors on empty schemes and on cubes over the 2^28-cell budget.
  struct Layout {
    std::vector<size_t> extents;
    std::vector<size_t> strides;
    size_t total_cells = 1;
  };
  static Result<Layout> LayoutFor(const PartitionScheme& scheme);

  // The pass-1 shard plan Build uses: how many partial planes to accumulate
  // into and how many (kChunkRows-aligned) rows each covers. The grid depends
  // only on (rows, cells, measures) — never the thread count — so any
  // accumulator that bins chunk `[b, b + kChunkRows)` into partial
  // `b / rows_per_shard` and merges partials in shard-index order produces
  // bit-identical raw planes. The out-of-core build (core/stream_build.h)
  // replicates this plan while streaming extents.
  struct AccumulationPlan {
    size_t num_shards = 1;
    // Rows per partial plane; 0 when num_shards <= 1 (direct accumulation).
    size_t rows_per_shard = 0;
  };
  static AccumulationPlan PlanFor(size_t rows, size_t cells,
                                  size_t num_measures);

  // Assembles a cube from already-accumulated *raw* (pre-prefix-sum) measure
  // planes and runs the d prefix sweeps — the second half of Build. The
  // caller vouches that the planes were accumulated under `scheme`'s layout
  // and that the cuts cover the data (PartitionScheme::Validate semantics).
  // `accumulate_seconds` is added to the sweep time for build_seconds().
  static Result<std::shared_ptr<PrefixCube>> FromRawPlanes(
      PartitionScheme scheme, std::vector<MeasureSpec> measures,
      std::vector<std::vector<double>> raw_planes, double accumulate_seconds);

  const PartitionScheme& scheme() const { return scheme_; }
  size_t num_measures() const { return measures_.size(); }
  const std::vector<MeasureSpec>& measures() const { return measures_; }

  // Exact aggregate of measure `m` over the half-open box `pre`.
  // O(2^d) cell reads.
  double BoxValue(const PreAggregate& pre, size_t m = 0) const;

  // Prefix cell value: measure m over prod_i (-inf, cut[idx_i]].
  // idx_i in [0, num_cuts_i]; any idx_i == 0 yields 0.
  double PrefixValue(const std::vector<size_t>& idx, size_t m = 0) const;

  // Deep copy (scheme + measures + planes). The streaming-ingest absorber
  // clones the live cube, absorbs a delta batch into the clone, and swaps it
  // in atomically — readers of the original never observe the merge.
  std::shared_ptr<PrefixCube> Clone() const;

  // Adds `other`'s planes cell-wise. Because prefix summation is linear,
  // merging the cube of an appended batch yields exactly the cube of the
  // combined data — the basis of incremental maintenance (Appendix C).
  // `other` must have an identical scheme and measure list.
  Status MergeFrom(const PrefixCube& other);

  // Number of stored cells per measure (the budget |P|).
  size_t NumCells() const { return scheme_.NumCells(); }

  // Bytes used by the cell planes.
  size_t MemoryUsage() const;

  // Persists the cube (scheme + measures + planes) to a binary file so a
  // prepared engine can warm-start without rebuilding. Not portable across
  // endianness.
  Status WriteTo(const std::string& path) const;
  static Result<std::shared_ptr<PrefixCube>> ReadFrom(const std::string& path);

  // Seconds spent building (scan + prefix passes), for cost reporting.
  double build_seconds() const { return build_seconds_; }

 private:
  PrefixCube() = default;

  size_t FlatIndex(const std::vector<size_t>& idx) const;

  // Pass 2: in-place prefix-sum sweep of every plane along every dimension.
  void PrefixSweepAll();

  PartitionScheme scheme_;
  std::vector<MeasureSpec> measures_;
  // Per-dimension extent = num_cuts + 1 (index 0 is the empty prefix).
  std::vector<size_t> extents_;
  std::vector<size_t> strides_;
  // planes_[m] is the flattened prefix-sum array of measure m.
  std::vector<std::vector<double>> planes_;
  double build_seconds_ = 0.0;
};

}  // namespace aqpp

#endif  // AQPP_CUBE_PREFIX_CUBE_H_
