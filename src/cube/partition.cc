#include "cube/partition.h"

#include <algorithm>
#include <climits>

#include "common/logging.h"
#include "common/string_util.h"

namespace aqpp {

size_t DimensionPartition::LowerBracket(int64_t bound) const {
  // Largest index j with cuts[j-1] <= bound.
  auto it = std::upper_bound(cuts.begin(), cuts.end(), bound);
  return static_cast<size_t>(it - cuts.begin());
}

size_t DimensionPartition::UpperBracket(int64_t bound) const {
  auto it = std::lower_bound(cuts.begin(), cuts.end(), bound);
  if (it == cuts.end()) return cuts.size();  // clamp to full prefix
  return static_cast<size_t>(it - cuts.begin()) + 1;
}

size_t DimensionPartition::BucketOf(int64_t v) const {
  auto it = std::lower_bound(cuts.begin(), cuts.end(), v);
  AQPP_CHECK(it != cuts.end());
  return static_cast<size_t>(it - cuts.begin()) + 1;
}

size_t PartitionScheme::NumCells() const {
  size_t cells = 1;
  for (const auto& d : dims_) {
    cells *= d.num_cuts();
  }
  return dims_.empty() ? 0 : cells;
}

Status PartitionScheme::Validate(const Table& table) const {
  if (dims_.empty()) return Status::InvalidArgument("no dimensions");
  for (const auto& d : dims_) {
    if (d.column >= table.num_columns()) {
      return Status::InvalidArgument("partition column out of range");
    }
    const Column& col = table.column(d.column);
    if (col.type() == DataType::kDouble) {
      return Status::InvalidArgument(
          "partition column '" + table.schema().column(d.column).name +
          "' must be ordinal");
    }
    if (d.cuts.empty()) {
      return Status::InvalidArgument("dimension has no cuts");
    }
    for (size_t j = 1; j < d.cuts.size(); ++j) {
      if (d.cuts[j] <= d.cuts[j - 1]) {
        return Status::InvalidArgument("cuts must be strictly increasing");
      }
    }
    AQPP_ASSIGN_OR_RETURN(int64_t max_v, col.MaxInt64());
    if (d.cuts.back() < max_v) {
      return Status::InvalidArgument(StrFormat(
          "last cut (%lld) of column '%s' below column max (%lld)",
          static_cast<long long>(d.cuts.back()),
          table.schema().column(d.column).name.c_str(),
          static_cast<long long>(max_v)));
    }
  }
  return Status::OK();
}

std::string PartitionScheme::ToString(const Schema& schema) const {
  std::string out = "{";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.column(dims_[i].column).name;
    out += StrFormat(": %zu cuts", dims_[i].num_cuts());
  }
  out += "}";
  return out;
}

Result<std::vector<int64_t>> DistinctSorted(const Table& table,
                                            size_t column) {
  if (column >= table.num_columns()) {
    return Status::InvalidArgument("column out of range");
  }
  const Column& col = table.column(column);
  if (col.type() == DataType::kDouble) {
    return Status::InvalidArgument("column must be ordinal");
  }
  std::vector<int64_t> values = col.Int64Data();
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

Result<DimensionPartition> PartitionScheme::EqualDepthPartition(
    const Table& table, size_t column, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be > 0");
  AQPP_ASSIGN_OR_RETURN(auto distinct, DistinctSorted(table, column));
  if (distinct.empty()) return Status::FailedPrecondition("empty column");

  // Row counts per distinct value -> cumulative depth at each feasible cut.
  const auto& data = table.column(column).Int64Data();
  std::vector<size_t> counts(distinct.size(), 0);
  for (int64_t v : data) {
    size_t idx = static_cast<size_t>(
        std::lower_bound(distinct.begin(), distinct.end(), v) -
        distinct.begin());
    ++counts[idx];
  }
  std::vector<size_t> cum(distinct.size());
  size_t acc = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    acc += counts[i];
    cum[i] = acc;
  }
  const double N = static_cast<double>(table.num_rows());

  DimensionPartition dim;
  dim.column = column;
  k = std::min(k, distinct.size());
  dim.cuts.reserve(k);
  for (size_t i = 1; i <= k; ++i) {
    double target = N * static_cast<double>(i) / static_cast<double>(k);
    // Feasible cut with cumulative depth closest to the target.
    auto it = std::lower_bound(cum.begin(), cum.end(),
                               static_cast<size_t>(target));
    size_t idx = static_cast<size_t>(it - cum.begin());
    if (idx >= cum.size()) {
      idx = cum.size() - 1;
    } else if (idx > 0) {
      double above = static_cast<double>(cum[idx]) - target;
      double below = target - static_cast<double>(cum[idx - 1]);
      if (below < above) idx -= 1;
    }
    int64_t cut = distinct[idx];
    if (!dim.cuts.empty() && cut <= dim.cuts.back()) continue;  // dedupe
    dim.cuts.push_back(cut);
  }
  // Guarantee full-prefix coverage.
  if (dim.cuts.empty() || dim.cuts.back() < distinct.back()) {
    dim.cuts.push_back(distinct.back());
  }
  return dim;
}

bool PreAggregate::IsEmpty() const {
  for (size_t i = 0; i < lo.size(); ++i) {
    if (lo[i] >= hi[i]) return true;
  }
  return lo.empty();
}

RangePredicate PreAggregate::ToPredicate(const PartitionScheme& scheme) const {
  RangePredicate pred;
  AQPP_CHECK_EQ(lo.size(), scheme.num_dims());
  for (size_t i = 0; i < lo.size(); ++i) {
    const auto& dim = scheme.dim(i);
    RangeCondition c;
    c.column = dim.column;
    if (lo[i] >= hi[i]) {
      // Empty box: encode an always-false condition.
      c.lo = 1;
      c.hi = 0;
    } else {
      c.lo = lo[i] == 0 ? std::numeric_limits<int64_t>::min()
                        : dim.CutValue(lo[i]) + 1;
      c.hi = dim.CutValue(hi[i]);
    }
    pred.Add(c);
  }
  return pred;
}

std::string PreAggregate::ToString(const PartitionScheme& scheme,
                                   const Schema& schema) const {
  if (IsEmpty()) return "phi";
  std::string out = "PRE[";
  bool first = true;
  for (size_t i = 0; i < lo.size(); ++i) {
    const auto& dim = scheme.dim(i);
    // Skip dimensions the box does not restrict (full prefix).
    if (lo[i] == 0 && hi[i] == dim.num_cuts()) continue;
    if (!first) out += ", ";
    first = false;
    std::string lo_s =
        lo[i] == 0 ? "-inf"
                   : StrFormat("%lld",
                               static_cast<long long>(dim.CutValue(lo[i])));
    out += StrFormat("%s in (%s, %lld]",
                     schema.column(dim.column).name.c_str(), lo_s.c_str(),
                     static_cast<long long>(dim.CutValue(hi[i])));
  }
  if (first) out += "ALL";
  out += "]";
  return out;
}

}  // namespace aqpp
