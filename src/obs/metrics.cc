#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace aqpp {
namespace obs {

namespace {

std::atomic<bool> g_enabled{true};

}  // namespace

bool Enabled() {
  if constexpr (!kCompiledIn) return false;
  return g_enabled.load(std::memory_order_relaxed);
}

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  AQPP_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::ObserveAlways(double v) {
  // First bucket whose upper bound is >= v; everything past the last bound
  // lands in the implicit +Inf bucket.
  size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t old_bits = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    double updated = std::bit_cast<double>(old_bits) + v;
    if (sum_bits_.compare_exchange_weak(old_bits,
                                        std::bit_cast<uint64_t>(updated),
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

uint64_t Histogram::bucket_count(size_t i) const {
  AQPP_CHECK_LE(i, bounds_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  return {1e-6,   2.5e-6, 5e-6,   1e-5,   2.5e-5, 5e-5,   1e-4,
          2.5e-4, 5e-4,   1e-3,   2.5e-3, 5e-3,   1e-2,   2.5e-2,
          5e-2,   1e-1,   2.5e-1, 5e-1,   1.0,    2.5,    5.0,
          10.0};
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();
  return *instance;
}

Registry::Entry* Registry::FindOrCreateLocked(const std::string& name,
                                              const std::string& labels,
                                              Kind kind,
                                              const std::string& help) {
  auto& family = families_[name];
  auto it = family.find(labels);
  if (it != family.end()) {
    AQPP_CHECK(it->second.kind == kind);
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  // One help string per family; adopt the first non-empty one offered.
  entry.help = help;
  if (help.empty() && !family.empty()) {
    entry.help = family.begin()->second.help;
  }
  it = family.emplace(labels, std::move(entry)).first;
  return &it->second;
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& labels,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindOrCreateLocked(name, labels, Kind::kCounter, help);
  if (e->counter == nullptr) e->counter = std::make_unique<Counter>();
  return e->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& labels,
                          const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindOrCreateLocked(name, labels, Kind::kGauge, help);
  if (e->gauge == nullptr) e->gauge = std::make_unique<Gauge>();
  return e->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& labels,
                                  std::vector<double> upper_bounds,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindOrCreateLocked(name, labels, Kind::kHistogram, help);
  if (e->histogram == nullptr) {
    if (upper_bounds.empty()) {
      upper_bounds = Histogram::DefaultLatencyBounds();
    }
    e->histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return e->histogram.get();
}

namespace {

// %.17g — shortest text that round-trips binary64 exactly (the same
// convention the service protocol uses for doubles).
std::string ExactDouble(double v) { return StrFormat("%.17g", v); }

std::string Labeled(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

std::string LabeledWith(const std::string& name, const std::string& labels,
                        const std::string& extra) {
  std::string merged = labels.empty() ? extra : labels + "," + extra;
  return name + "{" + merged + "}";
}

}  // namespace

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (family.empty()) continue;
    const Entry& first = family.begin()->second;
    if (!first.help.empty()) {
      out += "# HELP " + name + " " + first.help + "\n";
    }
    const char* type = first.kind == Kind::kCounter   ? "counter"
                       : first.kind == Kind::kGauge   ? "gauge"
                                                      : "histogram";
    out += "# TYPE " + name + " " + type + "\n";
    for (const auto& [labels, entry] : family) {
      switch (entry.kind) {
        case Kind::kCounter:
          out += Labeled(name, labels) + " " +
                 StrFormat("%llu", static_cast<unsigned long long>(
                                       entry.counter->value())) +
                 "\n";
          break;
        case Kind::kGauge:
          out += Labeled(name, labels) + " " +
                 StrFormat("%lld",
                           static_cast<long long>(entry.gauge->value())) +
                 "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *entry.histogram;
          uint64_t cumulative = 0;
          for (size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += h.bucket_count(i);
            out += LabeledWith(name + "_bucket", labels,
                               "le=\"" + ExactDouble(h.bounds()[i]) + "\"") +
                   " " +
                   StrFormat("%llu",
                             static_cast<unsigned long long>(cumulative)) +
                   "\n";
          }
          cumulative += h.bucket_count(h.bounds().size());
          out += LabeledWith(name + "_bucket", labels, "le=\"+Inf\"") + " " +
                 StrFormat("%llu",
                           static_cast<unsigned long long>(cumulative)) +
                 "\n";
          out += Labeled(name + "_sum", labels) + " " +
                 ExactDouble(h.sum()) + "\n";
          out += Labeled(name + "_count", labels) + " " +
                 StrFormat("%llu",
                           static_cast<unsigned long long>(h.count())) +
                 "\n";
          break;
        }
      }
    }
  }
  return out;
}

void Registry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, family] : families_) {
    for (auto& [labels, entry] : family) {
      if (entry.counter != nullptr) entry.counter->Reset();
      if (entry.gauge != nullptr) entry.gauge->Reset();
      if (entry.histogram != nullptr) entry.histogram->Reset();
    }
  }
}

}  // namespace obs
}  // namespace aqpp
