// Bounded in-memory log of queries whose total execution time exceeded a
// threshold, capturing the full per-phase breakdown so "where did the time
// go" is answerable after the fact without re-running the query.

#ifndef AQPP_OBS_SLOW_QUERY_LOG_H_
#define AQPP_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace aqpp {
namespace obs {

struct SlowQueryEntry {
  std::string session_id;
  std::string sql;
  double total_seconds = 0.0;
  // Seconds per phase, indexed by static_cast<size_t>(Phase).
  std::vector<double> phase_seconds;
  uint64_t sequence = 0;  // monotonically increasing across the log lifetime
};

// Thread-safe ring of the most recent slow queries. Recording a fast query
// is a single comparison; only entries over the threshold take the lock.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(double threshold_seconds, size_t capacity = 64);

  double threshold_seconds() const { return threshold_seconds_; }

  // Records the query if total_seconds >= threshold. Returns true if logged.
  bool MaybeRecord(const std::string& session_id, const std::string& sql,
                   double total_seconds, const QueryTrace& trace);

  // Number of queries ever recorded (not bounded by capacity).
  uint64_t total_recorded() const;

  std::vector<SlowQueryEntry> Snapshot() const;

  // Human-readable rendering, newest first.
  std::string Render() const;

  void Clear();

 private:
  const double threshold_seconds_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<SlowQueryEntry> entries_;
  uint64_t total_recorded_ = 0;
};

}  // namespace obs
}  // namespace aqpp

#endif  // AQPP_OBS_SLOW_QUERY_LOG_H_
