#include "obs/slow_query_log.h"

#include "common/string_util.h"

namespace aqpp {
namespace obs {

SlowQueryLog::SlowQueryLog(double threshold_seconds, size_t capacity)
    : threshold_seconds_(threshold_seconds), capacity_(capacity) {}

bool SlowQueryLog::MaybeRecord(const std::string& session_id,
                               const std::string& sql, double total_seconds,
                               const QueryTrace& trace) {
  if (total_seconds < threshold_seconds_) return false;
  SlowQueryEntry entry;
  entry.session_id = session_id;
  entry.sql = sql;
  entry.total_seconds = total_seconds;
  entry.phase_seconds.resize(kNumPhases, 0.0);
  for (size_t i = 0; i < kNumPhases; ++i) {
    entry.phase_seconds[i] = trace.PhaseSeconds(static_cast<Phase>(i));
  }
  std::lock_guard<std::mutex> lock(mu_);
  entry.sequence = total_recorded_++;
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) entries_.pop_front();
  return true;
}

uint64_t SlowQueryLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_recorded_;
}

std::vector<SlowQueryEntry> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowQueryEntry>(entries_.begin(), entries_.end());
}

std::string SlowQueryLog::Render() const {
  std::vector<SlowQueryEntry> snapshot = Snapshot();
  std::string out;
  for (auto it = snapshot.rbegin(); it != snapshot.rend(); ++it) {
    out += StrFormat("#%llu session=%s total=%.3fms",
                     static_cast<unsigned long long>(it->sequence),
                     it->session_id.c_str(), it->total_seconds * 1e3);
    for (size_t i = 0; i < it->phase_seconds.size(); ++i) {
      if (it->phase_seconds[i] <= 0.0) continue;
      out += StrFormat(" %s=%.3fms", PhaseName(static_cast<Phase>(i)),
                       it->phase_seconds[i] * 1e3);
    }
    out += " sql=" + it->sql + "\n";
  }
  return out;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace obs
}  // namespace aqpp
