// Low-overhead engine metrics: atomic counters, gauges and fixed-bucket
// histograms behind a process-global registry with Prometheus text
// exposition.
//
// Design constraints (this layer sits on the query hot path):
//
//  * Recording is lock-free: counters/gauges are single relaxed atomic RMWs,
//    a histogram observation is one bounded search over a fixed bucket table
//    plus three relaxed atomic RMWs. No allocation, no locks, ever.
//  * Registration (name -> metric) is mutex-guarded and expected to happen
//    once at startup; callers cache the returned pointer, which stays valid
//    for the registry's lifetime.
//  * A runtime kill switch (`SetEnabled(false)`) turns every recording call
//    into a single relaxed load + branch, and a compile-time switch
//    (-DAQPP_OBS_DISABLED, CMake option AQPP_DISABLE_OBS) compiles the
//    recording bodies out entirely so the disabled path costs nothing on
//    kernel-adjacent hot loops.
//
// The disabled path performs zero heap allocations per query — enforced by
// the instrumented-allocator guard in tests/obs_test.cc.

#ifndef AQPP_OBS_METRICS_H_
#define AQPP_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace aqpp {
namespace obs {

#ifdef AQPP_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

// Runtime kill switch (default on). With AQPP_OBS_DISABLED the compile-time
// constant wins and Enabled() folds to false.
bool Enabled();
void SetEnabled(bool enabled);

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    if constexpr (!kCompiledIn) return;
    if (!Enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous signed level (queue depth, active sessions).
class Gauge {
 public:
  void Set(int64_t v) {
    if constexpr (!kCompiledIn) return;
    if (!Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if constexpr (!kCompiledIn) return;
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram. Bucket i counts observations v <= bounds[i]
// (Prometheus `le` semantics); one implicit +Inf bucket catches the rest.
// Bounds are fixed at registration, so recording never allocates.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v) {
    if constexpr (!kCompiledIn) return;
    if (!Enabled()) return;
    ObserveAlways(v);
  }
  // Recording body without the enable check (tests exercise it directly).
  void ObserveAlways(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  // Non-cumulative count of bucket i; i == bounds().size() is +Inf.
  uint64_t bucket_count(size_t i) const;
  size_t num_buckets() const { return bounds_.size() + 1; }
  const std::vector<double>& bounds() const { return bounds_; }
  void Reset();

  // 1us .. 10s, roughly 1-2.5-5 per decade — wide enough for both kernel
  // scans and full service round-trips.
  static std::vector<double> DefaultLatencyBounds();

 private:
  std::vector<double> bounds_;  // sorted ascending, immutable
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  // Sum kept as an atomic bit pattern; updated with a CAS loop (portable
  // alternative to C++20 atomic<double>::fetch_add).
  std::atomic<uint64_t> sum_bits_{0};
};

// Name + rendered label set, e.g. {"aqpp_query_phase_seconds",
// "phase=\"identification\""}. Labels are preformatted because the registry
// never needs to match on individual label values.
class Registry {
 public:
  // The process-global registry every subsystem records into.
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Get-or-create; the returned pointer is stable for the registry's
  // lifetime. `help` is kept from the first registration of `name`.
  Counter* GetCounter(const std::string& name, const std::string& labels = "",
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& labels = "",
                  const std::string& help = "");
  // Bounds are fixed by the first registration of (name, labels).
  Histogram* GetHistogram(const std::string& name,
                          const std::string& labels = "",
                          std::vector<double> upper_bounds = {},
                          const std::string& help = "");

  // Prometheus text exposition (one # HELP/# TYPE block per family, then
  // one sample line per labeled instance, histograms expanded into
  // _bucket/_sum/_count). Deterministically ordered by name then labels.
  std::string RenderPrometheus() const;

  // Zeroes every registered metric, keeping registrations (and therefore
  // cached pointers) intact. Test isolation only.
  void ResetAllForTest();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreateLocked(const std::string& name, const std::string& labels,
                            Kind kind, const std::string& help);

  mutable std::mutex mu_;
  // name -> labels -> entry; std::map keeps the exposition deterministic.
  std::map<std::string, std::map<std::string, Entry>> families_;
};

}  // namespace obs
}  // namespace aqpp

#endif  // AQPP_OBS_METRICS_H_
