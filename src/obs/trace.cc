#include "obs/trace.h"

#include <array>

#include "common/logging.h"
#include "common/string_util.h"

namespace aqpp {
namespace obs {

namespace {

// Enough for the straight-line pipeline plus nested scoring/probe/CI spans;
// the vector still grows (and allocates) in the unlikely overflow case.
constexpr size_t kReservedSpans = 24;

}  // namespace

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kParse:
      return "parse";
    case Phase::kQueue:
      return "queue";
    case Phase::kIdentification:
      return "identification";
    case Phase::kScoring:
      return "scoring";
    case Phase::kCubeProbe:
      return "cube_probe";
    case Phase::kSampleEstimation:
      return "sample_estimation";
    case Phase::kCiConstruction:
      return "ci_construction";
    case Phase::kProgressive:
      return "progressive";
    case Phase::kTotal:
      return "total";
  }
  return "unknown";
}

QueryTrace::QueryTrace() : epoch_(SteadyNow()) {
  spans_.reserve(kReservedSpans);
}

double QueryTrace::PhaseSeconds(Phase phase) const {
  double total = 0.0;
  for (const Span& s : spans_) {
    if (s.phase == phase) total += s.duration_seconds;
  }
  return total;
}

size_t QueryTrace::PhaseCount(Phase phase) const {
  size_t n = 0;
  for (const Span& s : spans_) {
    if (s.phase == phase) ++n;
  }
  return n;
}

std::string QueryTrace::ToString() const {
  std::string out;
  for (const Span& s : spans_) {
    for (int d = 0; d < s.depth; ++d) out += "  ";
    out += StrFormat("%s start=%.6fms dur=%.6fms\n", PhaseName(s.phase),
                     s.start_seconds * 1e3, s.duration_seconds * 1e3);
  }
  return out;
}

void QueryTrace::Clear() {
  spans_.clear();
  open_depth_ = 0;
  epoch_ = SteadyNow();
}

Histogram* PhaseHistogram(Phase phase) {
  // One pointer per phase, resolved on first use; the registry keeps the
  // histograms alive for the process lifetime, so caching is safe.
  static const std::array<Histogram*, kNumPhases>* table = [] {
    auto* t = new std::array<Histogram*, kNumPhases>();
    for (size_t i = 0; i < kNumPhases; ++i) {
      Phase p = static_cast<Phase>(i);
      (*t)[i] = Registry::Global().GetHistogram(
          "aqpp_query_phase_seconds",
          std::string("phase=\"") + PhaseName(p) + "\"", {},
          "Wall-clock seconds spent per query-execution phase.");
    }
    return t;
  }();
  return (*table)[static_cast<size_t>(phase)];
}

SpanTimer::SpanTimer(Phase phase, QueryTrace* trace)
    : phase_(phase), trace_(trace), start_(SteadyNow()) {
  if (trace_ != nullptr) depth_ = trace_->open_depth_++;
}

double SpanTimer::Stop() {
  if (stopped_) return 0.0;
  stopped_ = true;
  double duration = SecondsBetween(start_, SteadyNow());
  PhaseHistogram(phase_)->Observe(duration);
  if (trace_ != nullptr) {
    trace_->open_depth_--;
    AQPP_CHECK_GE(trace_->open_depth_, 0);
    Span s;
    s.phase = phase_;
    s.start_seconds = SecondsBetween(trace_->epoch_, start_);
    s.duration_seconds = duration;
    s.depth = depth_;
    trace_->spans_.push_back(s);
  }
  return duration;
}

void QueryTrace::Record(Phase phase, double seconds) {
  Span s;
  s.phase = phase;
  s.start_seconds = Elapsed() - seconds;
  s.duration_seconds = seconds;
  s.depth = 0;
  spans_.push_back(s);
}

void RecordPhase(QueryTrace* trace, Phase phase, double seconds) {
  PhaseHistogram(phase)->Observe(seconds);
  if (trace != nullptr) trace->Record(phase, seconds);
}

}  // namespace obs
}  // namespace aqpp
