// Per-query phase tracing: a QueryTrace collects timed spans for one query's
// journey through the engine (parse -> identification -> candidate scoring ->
// cube probe -> sample estimation -> CI construction), threaded through
// ExecuteControl the same way CancellationToken is.
//
// SpanTimer is the sole recording primitive: an RAII scope that, on close,
// (a) appends a Span to the trace (if one is attached) and (b) observes the
// global per-phase latency histogram aqpp_query_phase_seconds{phase="..."}.
// The histogram pointers are resolved once per process and cached, so a span
// costs two clock reads plus one lock-free histogram observation.
//
// QueryTrace pre-reserves span storage at construction, so recording into an
// attached trace performs no heap allocation (guarded by obs_test.cc).

#ifndef AQPP_OBS_TRACE_H_
#define AQPP_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"

namespace aqpp {
namespace obs {

// Phases of one query's execution, in rough pipeline order. kTotal covers the
// whole service-side execution (queue wait excluded; that is kQueue).
enum class Phase : uint8_t {
  kParse = 0,
  kQueue,
  kIdentification,
  kScoring,
  kCubeProbe,
  kSampleEstimation,
  kCiConstruction,
  kProgressive,
  kTotal,
};

inline constexpr size_t kNumPhases = static_cast<size_t>(Phase::kTotal) + 1;

// Stable lowercase snake_case name used as the `phase` label value.
const char* PhaseName(Phase phase);

// One closed timed region. `start_seconds` is relative to the trace epoch,
// `depth` is the nesting level at open time (0 = top-level).
struct Span {
  Phase phase;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  int depth = 0;
};

// Ordered record of the spans recorded for a single query. Spans are appended
// when they CLOSE, so a nested span precedes its enclosing span; order within
// a depth level follows completion time. Not thread-safe: a trace belongs to
// the one thread executing its query (the service worker blocks the caller,
// so a stack-allocated trace is safe to hand across the queue).
class QueryTrace {
 public:
  QueryTrace();

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  const std::vector<Span>& spans() const { return spans_; }

  // Sum of recorded durations for `phase` (0.0 if never recorded).
  double PhaseSeconds(Phase phase) const;
  // Number of closed spans recorded for `phase`.
  size_t PhaseCount(Phase phase) const;

  // Seconds since the trace was constructed.
  double Elapsed() const { return SecondsBetween(epoch_, SteadyNow()); }

  // Human-readable one-line-per-span breakdown, indented by depth.
  std::string ToString() const;

  // Append an already-measured top-level span (e.g. queue wait timed by the
  // admission layer). Does NOT touch the global histograms; see RecordPhase.
  void Record(Phase phase, double seconds);

  void Clear();

 private:
  friend class SpanTimer;

  SteadyTime epoch_;
  std::vector<Span> spans_;
  int open_depth_ = 0;
};

// RAII span scope. Opens on construction, closes (and records) on
// destruction or on an explicit Stop(). Always observes the global per-phase
// histogram (subject to the usual Enabled()/kCompiledIn gating inside
// Histogram::Observe); additionally appends to `trace` when non-null.
class SpanTimer {
 public:
  explicit SpanTimer(Phase phase, QueryTrace* trace = nullptr);
  ~SpanTimer() { Stop(); }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  // Close the span now; idempotent. Returns the span duration in seconds.
  double Stop();

 private:
  Phase phase_;
  QueryTrace* trace_;
  SteadyTime start_;
  int depth_ = 0;
  bool stopped_ = false;
};

// The global per-phase latency histogram for `phase`
// (aqpp_query_phase_seconds{phase="<name>"}). Resolved once and cached.
Histogram* PhaseHistogram(Phase phase);

// Record a duration against a phase without a SpanTimer scope (used when the
// duration was measured externally, e.g. queue wait).
void RecordPhase(QueryTrace* trace, Phase phase, double seconds);

}  // namespace obs
}  // namespace aqpp

#endif  // AQPP_OBS_TRACE_H_
