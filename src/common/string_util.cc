#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace aqpp {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 5) {
    bytes /= 1024.0;
    ++u;
  }
  return StrFormat("%.1f %s", bytes, units[u]);
}

std::string FormatDuration(double seconds) {
  if (seconds < 1e-3) return StrFormat("%.0f us", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.0f ms", seconds * 1e3);
  if (seconds < 120.0) return StrFormat("%.2f sec", seconds);
  if (seconds < 7200.0) return StrFormat("%.1f min", seconds / 60.0);
  if (seconds < 86400.0 * 2) return StrFormat("%.1f hr", seconds / 3600.0);
  return StrFormat("%.1f day", seconds / 86400.0);
}

}  // namespace aqpp
