// Pooled data-parallel helpers for scan-heavy operators and candidate
// scoring.
//
// A ThreadPool owns a fixed set of persistent worker threads; parallel
// regions are dispatched to it without spawning (or detaching) any thread
// per call. The calling thread always participates, so a pool of size 1 runs
// everything inline and a region never deadlocks on an exhausted pool.
// Nested regions (a ParallelFor issued from inside a pool worker) degrade to
// sequential execution on the issuing worker.

#ifndef AQPP_COMMON_PARALLEL_H_
#define AQPP_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace aqpp {

// Number of threads used by the process-global pool (hardware concurrency,
// clamped to [1, 16]).
size_t DefaultParallelism();

class ThreadPool {
 public:
  // Raw region callback: fn(ctx, job) for job in [0, num_jobs). Kept as a
  // bare function pointer + context so the templated front-ends below incur
  // no std::function allocation per dispatch.
  using RawTask = void (*)(void* ctx, size_t job);

  // Creates a pool with `num_threads` total execution slots: the caller of
  // Run() plus num_threads - 1 persistent background workers.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total execution slots (background workers + the calling thread).
  size_t num_threads() const { return workers_.size() + 1; }

  // Runs task(ctx, job) for every job in [0, num_jobs); jobs are claimed
  // dynamically so irregular job costs balance. Blocks until all jobs are
  // done. Safe to call from multiple threads (regions are serialized) and
  // from inside a pool worker (runs inline).
  void Run(size_t num_jobs, RawTask task, void* ctx);

  // The process-global pool (DefaultParallelism() threads, created once on
  // first use and reused for the lifetime of the process).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::mutex run_mu_;  // serializes concurrent Run() calls

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  RawTask task_ = nullptr;
  void* ctx_ = nullptr;
  size_t num_jobs_ = 0;
  size_t active_workers_ = 0;
  bool shutdown_ = false;
  std::atomic<size_t> next_job_{0};

  std::vector<std::thread> workers_;
};

namespace parallel_internal {

// Adapts any callable to ThreadPool::RawTask without owning or copying it;
// the region is fully synchronous so borrowing the callable is safe.
template <typename Body>
void InvokeJob(void* ctx, size_t job) {
  (*static_cast<Body*>(ctx))(job);
}

}  // namespace parallel_internal

// Runs body(job) for every job in [0, num_jobs) on `pool` (the global pool
// when null). Jobs are claimed dynamically — use this for coarse, irregular
// work items such as per-candidate scoring.
template <typename Body>
void ParallelForEach(size_t num_jobs, Body&& body, ThreadPool* pool = nullptr) {
  if (num_jobs == 0) return;
  using Decayed = std::remove_reference_t<Body>;
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  p.Run(num_jobs, &parallel_internal::InvokeJob<Decayed>,
        const_cast<std::remove_const_t<Decayed>*>(&body));
}

// Runs body(begin, end) over disjoint chunks of [0, n). `body` must be safe
// to call concurrently on disjoint ranges. Falls back to a single inline
// call when n is too small to be worth splitting (< min_chunk per thread).
template <typename Body>
void ParallelFor(size_t n, Body&& body, size_t min_chunk = 1 << 14,
                 ThreadPool* pool = nullptr) {
  if (n == 0) return;
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  size_t chunks = std::min(p.num_threads(), (n + min_chunk - 1) / min_chunk);
  if (chunks <= 1) {
    body(0, n);
    return;
  }
  const size_t chunk = (n + chunks - 1) / chunks;
  auto run_chunk = [&body, n, chunk](size_t c) {
    size_t begin = c * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin < end) body(begin, end);
  };
  ParallelForEach(chunks, run_chunk, &p);
}

}  // namespace aqpp

#endif  // AQPP_COMMON_PARALLEL_H_
