// Minimal data-parallel helpers for scan-heavy operators.

#ifndef AQPP_COMMON_PARALLEL_H_
#define AQPP_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace aqpp {

// Number of worker threads used by ParallelFor (hardware concurrency,
// clamped to [1, 16]).
size_t DefaultParallelism();

// Runs body(begin, end) over disjoint chunks of [0, n) on multiple threads.
// `body` must be safe to call concurrently on disjoint ranges. Falls back to
// a single inline call for small n.
void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body,
                 size_t min_chunk = 1 << 14);

}  // namespace aqpp

#endif  // AQPP_COMMON_PARALLEL_H_
