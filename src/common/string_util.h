// Small string helpers shared across modules (CSV IO, SQL front end,
// benchmark table formatting).

#ifndef AQPP_COMMON_STRING_UTIL_H_
#define AQPP_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace aqpp {

// Splits `s` on `delim`; empty fields are preserved.
std::vector<std::string> SplitString(std::string_view s, char delim);

// Trims ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

// ASCII lower-casing (locale-independent).
std::string ToLowerAscii(std::string_view s);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Human-readable byte count, e.g. "51.2 MB".
std::string FormatBytes(double bytes);

// Human-readable duration, e.g. "4.3 min" / "0.60 sec" / "12 ms".
std::string FormatDuration(double seconds);

}  // namespace aqpp

#endif  // AQPP_COMMON_STRING_UTIL_H_
