#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace aqpp {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

// Serializes emission so concurrent service threads never interleave the
// bytes of two log lines. Each message is fully formatted in its own buffer
// first and leaves as exactly one write.
std::mutex& EmitMutex() {
  static std::mutex mu;
  return mu;
}

void EmitLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Strips leading directories so log lines stay short.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_log_level.load()), level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level_) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    EmitLine(stream_.str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  EmitLine(stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace aqpp
