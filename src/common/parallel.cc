#include "common/parallel.h"

#include <algorithm>

namespace aqpp {

size_t DefaultParallelism() {
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::min<size_t>(hw, 16);
}

void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body,
                 size_t min_chunk) {
  if (n == 0) return;
  size_t workers = DefaultParallelism();
  // Don't spawn threads that would each get less than min_chunk items.
  workers = std::min(workers, (n + min_chunk - 1) / min_chunk);
  if (workers <= 1) {
    body(0, n);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  size_t chunk = (n + workers - 1) / workers;
  for (size_t w = 0; w < workers; ++w) {
    size_t begin = w * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&body, begin, end] { body(begin, end); });
  }
  for (auto& t : threads) t.join();
}

}  // namespace aqpp
