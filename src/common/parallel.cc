#include "common/parallel.h"

#include <algorithm>

namespace aqpp {

namespace {

// Set while a thread is executing jobs of a pool region; nested regions
// issued from such a thread run inline instead of re-entering the pool.
thread_local bool t_inside_pool_region = false;

}  // namespace

size_t DefaultParallelism() {
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::min<size_t>(hw, 16);
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t background = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(background);
  for (size_t i = 0; i < background; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Run(size_t num_jobs, RawTask task, void* ctx) {
  if (num_jobs == 0) return;
  if (t_inside_pool_region || workers_.empty()) {
    // Nested or single-threaded: execute inline, in order.
    for (size_t j = 0; j < num_jobs; ++j) task(ctx, j);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = task;
    ctx_ = ctx;
    num_jobs_ = num_jobs;
    next_job_.store(0, std::memory_order_relaxed);
    active_workers_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller participates in the region.
  t_inside_pool_region = true;
  size_t job;
  while ((job = next_job_.fetch_add(1, std::memory_order_relaxed)) <
         num_jobs) {
    task(ctx, job);
  }
  t_inside_pool_region = false;

  // Wait for the background workers to drain their claimed jobs.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return active_workers_ == 0; });
  task_ = nullptr;
  ctx_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || generation_ != seen_generation;
    });
    if (shutdown_) return;
    seen_generation = generation_;
    RawTask task = task_;
    void* ctx = ctx_;
    const size_t num_jobs = num_jobs_;
    lock.unlock();

    t_inside_pool_region = true;
    size_t job;
    while ((job = next_job_.fetch_add(1, std::memory_order_relaxed)) <
           num_jobs) {
      task(ctx, job);
    }
    t_inside_pool_region = false;

    lock.lock();
    if (--active_workers_ == 0) done_cv_.notify_all();
  }
}

ThreadPool& ThreadPool::Global() {
  // Meyers singleton: workers are joined at process exit (leak-sanitizer
  // clean).
  static ThreadPool pool(DefaultParallelism());
  return pool;
}

}  // namespace aqpp
