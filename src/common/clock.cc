#include "common/clock.h"

#include <thread>

namespace aqpp {

namespace detail {
std::atomic<SimClock*> g_sim_clock{nullptr};
}  // namespace detail

void InstallSimClock(SimClock* clock) {
  detail::g_sim_clock.store(clock, std::memory_order_release);
}

void SleepFor(double seconds) {
  if (seconds <= 0) return;
  if (SimClock* sim = InstalledSimClock()) {
    sim->Advance(seconds);
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace aqpp
