// Minimal logging and assertion macros.
//
// AQPP_CHECK* abort the process on violation and are meant for programming
// errors (invariants), never for recoverable input errors — those go through
// Status/Result.

#ifndef AQPP_COMMON_LOGGING_H_
#define AQPP_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace aqpp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

// Accumulates a message and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

// Like LogMessage but calls std::abort() after emitting.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define AQPP_LOG(level)                                                     \
  ::aqpp::internal::LogMessage(::aqpp::LogLevel::k##level, __FILE__, __LINE__)

#define AQPP_FATAL() ::aqpp::internal::FatalLogMessage(__FILE__, __LINE__)

#define AQPP_CHECK(cond)                                        \
  if (!(cond)) AQPP_FATAL() << "Check failed: " #cond " "

#define AQPP_CHECK_OP(op, a, b)                                          \
  if (!((a)op(b)))                                                       \
  AQPP_FATAL() << "Check failed: " #a " " #op " " #b " (" << (a) << " vs " \
               << (b) << ") "

#define AQPP_CHECK_EQ(a, b) AQPP_CHECK_OP(==, a, b)
#define AQPP_CHECK_NE(a, b) AQPP_CHECK_OP(!=, a, b)
#define AQPP_CHECK_LT(a, b) AQPP_CHECK_OP(<, a, b)
#define AQPP_CHECK_LE(a, b) AQPP_CHECK_OP(<=, a, b)
#define AQPP_CHECK_GT(a, b) AQPP_CHECK_OP(>, a, b)
#define AQPP_CHECK_GE(a, b) AQPP_CHECK_OP(>=, a, b)

// Aborts if `status_expr` is not OK; for call sites where failure is a bug.
#define AQPP_CHECK_OK(status_expr)                        \
  do {                                                    \
    ::aqpp::Status _st = (status_expr);                   \
    if (!_st.ok()) AQPP_FATAL() << _st.ToString() << " "; \
  } while (0)

#ifndef NDEBUG
#define AQPP_DCHECK(cond) AQPP_CHECK(cond)
#define AQPP_DCHECK_EQ(a, b) AQPP_CHECK_EQ(a, b)
#define AQPP_DCHECK_LT(a, b) AQPP_CHECK_LT(a, b)
#define AQPP_DCHECK_LE(a, b) AQPP_CHECK_LE(a, b)
#else
#define AQPP_DCHECK(cond) \
  if (false) AQPP_FATAL()
#define AQPP_DCHECK_EQ(a, b) AQPP_DCHECK((a) == (b))
#define AQPP_DCHECK_LT(a, b) AQPP_DCHECK((a) < (b))
#define AQPP_DCHECK_LE(a, b) AQPP_DCHECK((a) <= (b))
#endif

}  // namespace aqpp

#endif  // AQPP_COMMON_LOGGING_H_
