// Deterministic fault injection: named failpoints threaded through the real
// I/O, service and maintenance seams.
//
// A failpoint is a named hook compiled into production code. In ordinary
// builds (AQPP_ENABLE_FAILPOINTS=OFF, the default) every hook macro expands
// to `((void)0)` — zero code, zero symbols, zero argument evaluation — so
// hot paths pay nothing. In fault builds (-DAQPP_ENABLE_FAILPOINTS=ON) a
// hook consults the process-global fail::Registry: tests activate points by
// name with a *trigger* (when to fire) and an *action* (what to do), and the
// production code experiences the failure exactly where a real one would
// land.
//
// Triggers (all deterministic given the registry seed and the per-point
// evaluation count):
//   kAlways        every evaluation
//   kProbability   seeded Bernoulli(p) per evaluation (per-point RNG derived
//                  from the registry seed and the point name)
//   kEveryNth      evaluations n, 2n, 3n, ...
//   kOneShot       evaluation number n exactly once
//
// Actions:
//   kReturnError    the site returns the configured Status
//   kInjectLatency  SleepFor(latency_seconds) — virtual under a SimClock —
//                   then continue normally
//   kPartialIo      the site performs only `io_fraction` of the requested
//                   I/O and reports the resulting short read/write
//   kAbort          std::abort() (crash-recovery testing; use sparingly)
//
// Latency and abort are executed inside Evaluate(); return-error and
// partial-io must be interpreted by the site, which is what the macros
// below encode.

#ifndef AQPP_COMMON_FAILPOINT_H_
#define AQPP_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace aqpp {
namespace fail {

#ifdef AQPP_FAILPOINTS_ENABLED
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

enum class ActionKind { kReturnError, kInjectLatency, kPartialIo, kAbort };

struct Action {
  ActionKind kind = ActionKind::kReturnError;
  // kReturnError: the status the site returns.
  StatusCode code = StatusCode::kIOError;
  std::string message = "injected fault";
  // kInjectLatency: virtual (SimClock) or real seconds to stall.
  double latency_seconds = 0.0;
  // kPartialIo: fraction of the requested bytes actually transferred.
  double io_fraction = 0.5;
};

struct Trigger {
  enum class Mode { kAlways, kProbability, kEveryNth, kOneShot };
  Mode mode = Mode::kAlways;
  double probability = 1.0;  // kProbability
  uint64_t n = 1;            // kEveryNth period / kOneShot evaluation index

  static Trigger Always() { return {}; }
  static Trigger Probability(double p) {
    Trigger t;
    t.mode = Mode::kProbability;
    t.probability = p;
    return t;
  }
  static Trigger EveryNth(uint64_t n) {
    Trigger t;
    t.mode = Mode::kEveryNth;
    t.n = n == 0 ? 1 : n;
    return t;
  }
  static Trigger OneShot(uint64_t on_evaluation = 1) {
    Trigger t;
    t.mode = Mode::kOneShot;
    t.n = on_evaluation == 0 ? 1 : on_evaluation;
    return t;
  }
};

// What a fired failpoint asks the site to do. Only the kinds a site must
// interpret itself appear here; latency has already been slept and abort
// never returns.
struct Fired {
  ActionKind kind = ActionKind::kReturnError;
  Status error = Status::OK();  // kReturnError
  double io_fraction = 1.0;     // kPartialIo
};

// Per-point observability for tests and the chaos trip log.
struct PointStats {
  uint64_t evaluations = 0;
  uint64_t fires = 0;
};

class Registry {
 public:
  // The process-global registry every AQPP_FAILPOINT macro consults.
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Activates `name`. Re-enabling replaces trigger/action and resets the
  // point's counters and RNG (reseeded from the registry seed + name).
  void Enable(const std::string& name, Trigger trigger, Action action);
  void Disable(const std::string& name);
  void DisableAll();

  // Seeds the per-point RNG derivation. Applies to subsequently enabled
  // points; call before Enable for a fully deterministic scenario.
  void SetSeed(uint64_t seed);

  // The hook body: returns the action when `name` is active and its trigger
  // fires. Latency is slept and abort is executed inside; the returned Fired
  // only ever carries kReturnError or kPartialIo.
  std::optional<Fired> Evaluate(const char* name);

  PointStats stats(const std::string& name) const;
  // Deterministically ordered "name evaluations=<n> fires=<m>" lines for
  // every point enabled since the last DisableAll-with-reset.
  std::string TripLog() const;
  // Active point names, sorted.
  std::vector<std::string> active() const;

 private:
  struct Point {
    Trigger trigger;
    Action action;
    Rng rng{0};
    uint64_t evaluations = 0;
    uint64_t fires = 0;
    bool active = false;  // kept after Disable so TripLog survives
  };

  mutable std::mutex mu_;
  uint64_t seed_ = 0;
  std::unordered_map<std::string, Point> points_;
  // Fast path: hooks skip the mutex entirely while nothing is enabled.
  std::atomic<size_t> active_count_{0};
};

// Free-function hook used by the macros; no-op stub when compiled out so the
// types above stay usable in tests regardless of build flavor.
#ifdef AQPP_FAILPOINTS_ENABLED
inline std::optional<Fired> Evaluate(const char* name) {
  return Registry::Global().Evaluate(name);
}
#else
inline std::optional<Fired> Evaluate(const char*) { return std::nullopt; }
#endif

}  // namespace fail
}  // namespace aqpp

#ifdef AQPP_FAILPOINTS_ENABLED

// Side-effect-only hook: latency/abort actions apply; return-error and
// partial-io are ignored (the site has no error channel).
#define AQPP_FAILPOINT(name) ((void)::aqpp::fail::Registry::Global().Evaluate(name))

// In functions returning Status or Result<T>: returns the injected error
// when the point fires with a return-error action.
#define AQPP_FAILPOINT_RETURN_STATUS(name)                                  \
  do {                                                                      \
    if (auto _aqpp_fired = ::aqpp::fail::Registry::Global().Evaluate(name); \
        _aqpp_fired.has_value() &&                                          \
        _aqpp_fired->kind == ::aqpp::fail::ActionKind::kReturnError)        \
      return _aqpp_fired->error;                                            \
  } while (0)

// Expression form handing the fired action (if any) to site code that needs
// custom handling (partial I/O, connection drops).
#define AQPP_FAILPOINT_EVAL(name) (::aqpp::fail::Registry::Global().Evaluate(name))

#else

#define AQPP_FAILPOINT(name) ((void)0)
#define AQPP_FAILPOINT_RETURN_STATUS(name) ((void)0)
#define AQPP_FAILPOINT_EVAL(name) (::std::optional<::aqpp::fail::Fired>{})

#endif  // AQPP_FAILPOINTS_ENABLED

#endif  // AQPP_COMMON_FAILPOINT_H_
