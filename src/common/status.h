// Lightweight Status / Result error-handling primitives.
//
// The library does not throw exceptions across public API boundaries.
// Fallible operations return `Status` (no payload) or `Result<T>`
// (payload-or-status), mirroring the style used in Arrow and Abseil.

#ifndef AQPP_COMMON_STATUS_H_
#define AQPP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace aqpp {

// Broad error taxonomy. Keep this small: callers mostly branch on ok()/!ok().
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIOError,
  // Service-layer codes: a request withdrawn by its owner, a request whose
  // deadline passed, and backpressure (queue/session limits reached).
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
  // The service stayed saturated past the caller's retry budget (attempts or
  // total deadline); the terminal form of repeated kResourceExhausted.
  kUnavailable,
};

// Returns a short human-readable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

// A success-or-error value. Cheap to copy in the OK case.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// A value of type T or a non-OK Status. Accessing the value of an errored
// Result aborts (programming error); check ok() first.
template <typename T>
class Result {
 public:
  // Implicit conversions from both alternatives keep call sites terse:
  //   Result<int> F() { if (bad) return Status::InvalidArgument("...");
  //                     return 42; }
  Result(T value) : inner_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : inner_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(inner_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(inner_);
  }

  const T& value() const& { return std::get<T>(inner_); }
  T& value() & { return std::get<T>(inner_); }
  T&& value() && { return std::get<T>(std::move(inner_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> inner_;
};

// Propagates a non-OK status out of the current function.
#define AQPP_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::aqpp::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define AQPP_CONCAT_IMPL(a, b) a##b
#define AQPP_CONCAT(a, b) AQPP_CONCAT_IMPL(a, b)

// Evaluates `rexpr` (a Result<T>), propagating errors; otherwise binds the
// value to `lhs`:  AQPP_ASSIGN_OR_RETURN(auto table, catalog.Get("t"));
#define AQPP_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto AQPP_CONCAT(_res_, __LINE__) = (rexpr);                   \
  if (!AQPP_CONCAT(_res_, __LINE__).ok())                        \
    return AQPP_CONCAT(_res_, __LINE__).status();                \
  lhs = std::move(AQPP_CONCAT(_res_, __LINE__)).value()

}  // namespace aqpp

#endif  // AQPP_COMMON_STATUS_H_
