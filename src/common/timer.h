// Wall-clock timing helpers used by benchmarks and cost reporting.

#ifndef AQPP_COMMON_TIMER_H_
#define AQPP_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace aqpp {

// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates elapsed time across multiple Start/Stop windows.
class AccumulatingTimer {
 public:
  void Start() { timer_.Reset(); }
  void Stop() { total_seconds_ += timer_.ElapsedSeconds(); }
  double TotalSeconds() const { return total_seconds_; }
  void Clear() { total_seconds_ = 0; }

 private:
  Timer timer_;
  double total_seconds_ = 0;
};

}  // namespace aqpp

#endif  // AQPP_COMMON_TIMER_H_
