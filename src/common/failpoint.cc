#include "common/failpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/clock.h"
#include "common/string_util.h"

namespace aqpp {
namespace fail {

namespace {

uint64_t HashName(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (unsigned char c : s) {
    h ^= static_cast<uint64_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Mix(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Registry& Registry::Global() {
  static Registry* instance = new Registry();
  return *instance;
}

void Registry::SetSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
}

void Registry::Enable(const std::string& name, Trigger trigger, Action action) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& p = points_[name];
  if (!p.active) active_count_.fetch_add(1, std::memory_order_release);
  p.trigger = trigger;
  p.action = std::move(action);
  p.rng = Rng(Mix(seed_ ^ HashName(name)));
  p.evaluations = 0;
  p.fires = 0;
  p.active = true;
}

void Registry::Disable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end() || !it->second.active) return;
  it->second.active = false;
  active_count_.fetch_sub(1, std::memory_order_release);
}

void Registry::DisableAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, p] : points_) p.active = false;
  active_count_.store(0, std::memory_order_release);
}

std::optional<Fired> Registry::Evaluate(const char* name) {
  if (active_count_.load(std::memory_order_acquire) == 0) return std::nullopt;
  Action action;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end() || !it->second.active) return std::nullopt;
    Point& p = it->second;
    ++p.evaluations;
    bool fire = false;
    switch (p.trigger.mode) {
      case Trigger::Mode::kAlways:
        fire = true;
        break;
      case Trigger::Mode::kProbability:
        fire = p.rng.NextBernoulli(p.trigger.probability);
        break;
      case Trigger::Mode::kEveryNth:
        fire = p.evaluations % p.trigger.n == 0;
        break;
      case Trigger::Mode::kOneShot:
        fire = p.evaluations == p.trigger.n;
        break;
    }
    if (!fire) return std::nullopt;
    ++p.fires;
    action = p.action;
  }
  // Outside the lock: latency may sleep and abort never returns.
  switch (action.kind) {
    case ActionKind::kInjectLatency:
      SleepFor(action.latency_seconds);
      return std::nullopt;
    case ActionKind::kAbort:
      std::fprintf(stderr, "[failpoint] '%s' fired kAbort: %s\n", name,
                   action.message.c_str());
      std::abort();
    case ActionKind::kReturnError: {
      Fired f;
      f.kind = ActionKind::kReturnError;
      f.error = Status(action.code,
                       action.message + " (injected at '" + name + "')");
      return f;
    }
    case ActionKind::kPartialIo: {
      Fired f;
      f.kind = ActionKind::kPartialIo;
      f.io_fraction = std::clamp(action.io_fraction, 0.0, 1.0);
      return f;
    }
  }
  return std::nullopt;
}

PointStats Registry::stats(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) return {};
  return {it->second.evaluations, it->second.fires};
}

std::string Registry::TripLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, p] : points_) names.push_back(name);
  std::sort(names.begin(), names.end());
  std::string out;
  for (const std::string& name : names) {
    const Point& p = points_.at(name);
    out += StrFormat("%s evaluations=%llu fires=%llu\n", name.c_str(),
                     static_cast<unsigned long long>(p.evaluations),
                     static_cast<unsigned long long>(p.fires));
  }
  return out;
}

std::vector<std::string> Registry::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, p] : points_) {
    if (p.active) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace fail
}  // namespace aqpp
