// Monotonic clock and deadline helpers shared by the service layer.
//
// A Deadline is a point on the steady clock (or "infinite"); requests carry
// one through the admission queue and into engine execution, where it is
// checked cooperatively at phase boundaries (see core/cancellation.h).
//
// Every time read goes through SteadyNow(), which normally forwards to
// std::chrono::steady_clock but can be redirected to a SimClock — a manually
// advanced virtual clock — for tests. Under a SimClock, deadline expiry,
// retry backoff, EWMA service times and slow-query thresholds are all driven
// by explicit Advance() calls (or by SleepFor(), which advances the virtual
// clock instead of blocking), so timing-dependent logic is testable in
// microseconds of wall time and produces the same behaviour on every run.

#ifndef AQPP_COMMON_CLOCK_H_
#define AQPP_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <limits>

namespace aqpp {

using SteadyClock = std::chrono::steady_clock;
using SteadyTime = SteadyClock::time_point;

// A virtual clock: time moves only when someone calls Advance(). Thread-safe;
// reads are one relaxed atomic load.
class SimClock {
 public:
  // Starts at an arbitrary fixed epoch (not the real clock), so virtual
  // timestamps are reproducible across runs.
  SimClock() : now_ns_(0) {}

  SteadyTime Now() const {
    return SteadyTime(SteadyClock::duration(
        now_ns_.load(std::memory_order_relaxed)));
  }

  void Advance(double seconds) {
    if (seconds <= 0) return;
    now_ns_.fetch_add(
        static_cast<SteadyClock::rep>(seconds * 1e9),
        std::memory_order_relaxed);
  }

  double elapsed_seconds() const {
    return static_cast<double>(now_ns_.load(std::memory_order_relaxed)) / 1e9;
  }

 private:
  std::atomic<SteadyClock::rep> now_ns_;
};

namespace detail {
// Non-null while a SimClock is installed (tests only; see ScopedSimClock).
extern std::atomic<SimClock*> g_sim_clock;
}  // namespace detail

inline SimClock* InstalledSimClock() {
  return detail::g_sim_clock.load(std::memory_order_acquire);
}

// The one clock read the library uses. Real steady clock unless a SimClock
// is installed.
inline SteadyTime SteadyNow() {
  if (SimClock* sim = InstalledSimClock()) return sim->Now();
  return SteadyClock::now();
}

// Blocks for `seconds` of real time — or, under a SimClock, advances the
// virtual clock by `seconds` and returns immediately. All backoff/latency
// sleeps in the library route through here so tests never wait on the wall.
void SleepFor(double seconds);

// Installs `clock` as the process-wide time source (nullptr = real clock).
// Test-only: installation is not synchronized against concurrent time reads
// beyond the atomic pointer itself, so install before spinning up traffic.
void InstallSimClock(SimClock* clock);

// RAII installer for tests.
class ScopedSimClock {
 public:
  explicit ScopedSimClock(SimClock* clock) { InstallSimClock(clock); }
  ~ScopedSimClock() { InstallSimClock(nullptr); }
  ScopedSimClock(const ScopedSimClock&) = delete;
  ScopedSimClock& operator=(const ScopedSimClock&) = delete;
};

// Seconds between two steady-clock points (b - a).
inline double SecondsBetween(SteadyTime a, SteadyTime b) {
  return std::chrono::duration<double>(b - a).count();
}

class Deadline {
 public:
  // Default-constructed deadlines never expire.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  static Deadline At(SteadyTime t) {
    Deadline d;
    d.finite_ = true;
    d.at_ = t;
    return d;
  }

  // A deadline `seconds` from now. Non-positive values are already expired.
  static Deadline After(double seconds) {
    return At(SteadyNow() + std::chrono::duration_cast<SteadyClock::duration>(
                                std::chrono::duration<double>(seconds)));
  }

  bool infinite() const { return !finite_; }
  bool expired() const { return finite_ && SteadyNow() >= at_; }

  // Seconds until expiry: +inf when infinite, <= 0 when expired.
  double remaining_seconds() const {
    if (!finite_) return std::numeric_limits<double>::infinity();
    return SecondsBetween(SteadyNow(), at_);
  }

  SteadyTime time() const { return at_; }

 private:
  bool finite_ = false;
  SteadyTime at_{};
};

}  // namespace aqpp

#endif  // AQPP_COMMON_CLOCK_H_
