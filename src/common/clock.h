// Monotonic clock and deadline helpers shared by the service layer.
//
// A Deadline is a point on the steady clock (or "infinite"); requests carry
// one through the admission queue and into engine execution, where it is
// checked cooperatively at phase boundaries (see core/cancellation.h).

#ifndef AQPP_COMMON_CLOCK_H_
#define AQPP_COMMON_CLOCK_H_

#include <chrono>
#include <limits>

namespace aqpp {

using SteadyClock = std::chrono::steady_clock;
using SteadyTime = SteadyClock::time_point;

inline SteadyTime SteadyNow() { return SteadyClock::now(); }

// Seconds between two steady-clock points (b - a).
inline double SecondsBetween(SteadyTime a, SteadyTime b) {
  return std::chrono::duration<double>(b - a).count();
}

class Deadline {
 public:
  // Default-constructed deadlines never expire.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  static Deadline At(SteadyTime t) {
    Deadline d;
    d.finite_ = true;
    d.at_ = t;
    return d;
  }

  // A deadline `seconds` from now. Non-positive values are already expired.
  static Deadline After(double seconds) {
    return At(SteadyNow() + std::chrono::duration_cast<SteadyClock::duration>(
                                std::chrono::duration<double>(seconds)));
  }

  bool infinite() const { return !finite_; }
  bool expired() const { return finite_ && SteadyNow() >= at_; }

  // Seconds until expiry: +inf when infinite, <= 0 when expired.
  double remaining_seconds() const {
    if (!finite_) return std::numeric_limits<double>::infinity();
    return SecondsBetween(SteadyNow(), at_);
  }

  SteadyTime time() const { return at_; }

 private:
  bool finite_ = false;
  SteadyTime at_{};
};

}  // namespace aqpp

#endif  // AQPP_COMMON_CLOCK_H_
