// Fast, reproducible pseudo-random number generation.
//
// All randomized components of the library (samplers, generators, bootstrap)
// take an explicit `Rng&` so experiments are reproducible from a single seed.

#ifndef AQPP_COMMON_RANDOM_H_
#define AQPP_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aqpp {

// xoshiro256** with a SplitMix64 seeder. Satisfies the UniformRandomBitGenerator
// concept so it plugs into <random> distributions as well.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  // Raw 64 random bits.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [0, bound) using Lemire's rejection method.
  // Requires bound > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Bernoulli(p).
  bool NextBernoulli(double p) { return NextDouble() < p; }

  // Forks a statistically independent child generator (for parallel use).
  Rng Fork();

 private:
  uint64_t s_[4];
  // Cached second Box-Muller variate.
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// Fisher-Yates shuffle of `v` in place.
template <typename T>
void Shuffle(std::vector<T>& v, Rng& rng) {
  for (size_t i = v.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng.NextBounded(i));
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

// Floyd's algorithm: k distinct indices drawn uniformly from [0, n).
// Returned sorted ascending. Requires k <= n.
std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k, Rng& rng);

}  // namespace aqpp

#endif  // AQPP_COMMON_RANDOM_H_
