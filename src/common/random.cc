#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace aqpp {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Avoid the all-zero state (xoshiro fixed point).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  AQPP_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  AQPP_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  uint64_t draw = span == 0 ? Next() : NextBounded(span);
  return lo + static_cast<int64_t>(draw);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  // Guard against log(0).
  if (u1 <= 0) u1 = 0x1.0p-53;
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

Rng Rng::Fork() { return Rng(Next() ^ 0xa3c59ac2ULL); }

std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k, Rng& rng) {
  AQPP_CHECK_LE(k, n);
  // For dense draws a shuffle-prefix is cheaper than Floyd's hashing.
  if (k * 3 >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    // Partial Fisher-Yates: fix positions [0, k).
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + static_cast<size_t>(rng.NextBounded(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    std::sort(all.begin(), all.end());
    return all;
  }
  std::unordered_set<size_t> chosen;
  chosen.reserve(k * 2);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(rng.NextBounded(j + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<size_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace aqpp
