// ReservoirSynopsis: the legacy uniform-reservoir estimator behind the
// Synopsis interface.
//
// "reservoir" is the bit-preserving refactor of the engine's historical
// sample/estimator coupling: it answers through the very same
// SampleEstimator code paths, so an engine-aligned reservoir synopsis
// (BuildFromSample over the engine's sample) reproduces the legacy
// estimator's answers — including every bootstrap draw — RNG-step-for-step.
//
// "reservoir_closed" shares the sample but swaps interval construction to
// the closed-form skew-adjusted delta method (synopsis/closed_form.h):
// distribution-sensitive like the bootstrap, deterministic and O(n) like
// the CLT.

#ifndef AQPP_SYNOPSIS_RESERVOIR_H_
#define AQPP_SYNOPSIS_RESERVOIR_H_

#include <memory>
#include <string>
#include <vector>

#include "synopsis/synopsis.h"

namespace aqpp {
namespace synopsis {

class ReservoirSynopsis : public Synopsis {
 public:
  ReservoirSynopsis(std::string kind, SynopsisOptions options);

  const char* kind() const override { return kind_.c_str(); }

  Status BuildFromTable(const Table& table) override;
  // Accepts uniform samples (deep copy; the source sample is not mutated).
  Status BuildFromSample(const Sample& sample) override;

  Result<ConfidenceInterval> Estimate(const RangeQuery& query,
                                      const ExecuteControl& control,
                                      Rng& rng) const override;
  Result<ConfidenceInterval> EstimateWithPre(const RangeQuery& query,
                                             const RangePredicate& pre_predicate,
                                             const PreValues& pre,
                                             const ExecuteControl& control,
                                             Rng& rng) const override;
  Result<ConfidenceInterval> EstimateWithPreMasked(
      const RangeQuery& query, const std::vector<uint8_t>& q_mask,
      const std::vector<uint8_t>& pre_mask, const PreValues& pre,
      const ExecuteControl& control, Rng& rng) const override;

  Status Absorb(const Table& batch) override;
  Status Degrade(double keep_fraction, Rng& rng) override;

  Status SerializeTo(std::string* out) const override;
  Status DeserializeFrom(const std::string& bytes) override;

  size_t MemoryUsage() const override;

  const Sample& sample() const { return sample_; }
  size_t rows_seen() const { return rows_seen_; }

 private:
  bool closed_form() const {
    return options_.ci_method == SynopsisOptions::CiMethod::kClosedForm;
  }
  // Widens `ci` by the accumulated Degrade inflation (identity untouched
  // when no Degrade happened, preserving bit-parity with the legacy path).
  ConfidenceInterval Inflate(ConfidenceInterval ci) const;
  // Closed-form replacements for the estimator's per-aggregate paths.
  Result<ConfidenceInterval> ClosedFormMasked(
      const RangeQuery& query, const std::vector<uint8_t>& q_mask,
      const std::vector<uint8_t>* pre_mask, const PreValues& pre) const;

  std::string kind_;
  Sample sample_;
  // Algorithm R continuation counter (population rows represented).
  size_t rows_seen_ = 0;
  // Stream for Absorb's replacement decisions; re-derived deterministically
  // on deserialize (options_.seed mixed with rows_seen_).
  Rng absorb_rng_;
  mutable std::unique_ptr<MeasureCache> measure_cache_;
};

}  // namespace synopsis
}  // namespace aqpp

#endif  // AQPP_SYNOPSIS_RESERVOIR_H_
