#include "synopsis/estimator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "kernels/elementwise.h"
#include "stats/bootstrap.h"
#include "stats/descriptive.h"

namespace aqpp {

Result<const std::vector<double>*> MeasureCache::Get(size_t column) {
  if (column >= rows_->num_columns()) {
    return Status::InvalidArgument("measure column out of range");
  }
  const Column& col = rows_->column(column);
  // kDouble columns are already the double span we need: borrow in place.
  if (col.type() == DataType::kDouble) return &col.DoubleData();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = columns_.find(column);
  if (it == columns_.end()) {
    auto values =
        std::make_unique<std::vector<double>>(col.ToDoubleVector());
    it = columns_.emplace(column, std::move(values)).first;
  }
  return it->second.get();
}

SampleEstimator::SampleEstimator(const Sample* sample,
                                 EstimatorOptions options)
    : sample_(sample),
      options_(options),
      lambda_(NormalCriticalValue(options.confidence_level)) {
  AQPP_CHECK(sample != nullptr);
  AQPP_CHECK_GT(sample->size(), 0u);
}

ConfidenceInterval SampleEstimator::SumCI(
    const std::vector<double>& y_values) const {
  const size_t n = sample_->size();
  AQPP_CHECK_EQ(y_values.size(), n);
  ConfidenceInterval ci;
  ci.level = options_.confidence_level;

  if (sample_->stratified()) {
    // est = sum_h N_h * mean_h(y); Var = sum_h N_h^2 * s_h^2 / n_h.
    std::vector<RunningMoments> per_stratum(sample_->stratum_info.size());
    for (size_t i = 0; i < n; ++i) {
      per_stratum[static_cast<size_t>(sample_->strata[i])].Add(y_values[i]);
    }
    double est = 0, var = 0;
    for (size_t h = 0; h < per_stratum.size(); ++h) {
      const auto& m = per_stratum[h];
      double num_pop = static_cast<double>(sample_->stratum_info[h].population_rows);
      if (m.count() == 0) continue;
      est += num_pop * m.mean();
      var += num_pop * num_pop * m.variance_sample() / m.count();
    }
    ci.estimate = est;
    ci.half_width = lambda_ * std::sqrt(std::max(0.0, var));
    return ci;
  }

  // Non-stratified: per-row expansion contributions z_i = n * w_i * y_i;
  // estimate = mean(z), Var(estimate) = s^2(z) / n. For a uniform sample
  // (w_i = N/n) this reduces verbatim to Example 1's
  // N * mean(A'), lambda * N * sqrt(Var(A') / n).
  RunningMoments z;
  const double dn = static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    z.Add(dn * sample_->weights[i] * y_values[i]);
  }
  ci.estimate = z.mean();
  ci.half_width = lambda_ * std::sqrt(z.variance_sample() / dn);
  return ci;
}

Result<std::vector<uint8_t>> SampleEstimator::Mask(
    const RangePredicate& predicate) const {
  return predicate.EvaluateMask(*sample_->rows);
}

Result<std::vector<double>> SampleEstimator::MeasureValues(
    size_t column) const {
  AQPP_ASSIGN_OR_RETURN(const std::vector<double>* values, MeasureRef(column));
  return *values;
}

Result<const std::vector<double>*> SampleEstimator::MeasureRef(
    size_t column) const {
  if (measure_cache_ != nullptr) {
    return measure_cache_->Get(column);
  }
  if (column >= sample_->rows->num_columns()) {
    return Status::InvalidArgument("measure column out of range");
  }
  const Column& col = sample_->rows->column(column);
  if (col.type() == DataType::kDouble) return &col.DoubleData();
  auto it = local_measures_.find(column);
  if (it == local_measures_.end()) {
    auto values =
        std::make_unique<std::vector<double>>(col.ToDoubleVector());
    it = local_measures_.emplace(column, std::move(values)).first;
  }
  return it->second.get();
}

namespace {

// y_i = measure_i * mask_i as doubles.
std::vector<double> MaskedValues(const std::vector<double>& measure,
                                 const std::vector<uint8_t>& mask) {
  std::vector<double> y(measure.size());
  kernels::MaskedMeasure(measure.data(), mask.data(), measure.size(),
                         y.data());
  return y;
}

}  // namespace

ConfidenceInterval SampleEstimator::SumDifferenceCI(
    const std::vector<double>& measure, const std::vector<uint8_t>& q_mask,
    const std::vector<uint8_t>& pre_mask, double pre_value) const {
  // y_i = A_i * (cond_q - cond_pre): Example 3's A * cond(C = 0) pattern.
  std::vector<double> y(measure.size());
  kernels::DifferenceSeries(measure.data(), q_mask.data(), pre_mask.data(),
                            measure.size(), y.data());
  obs::SpanTimer ci_span(obs::Phase::kCiConstruction, trace_);
  ConfidenceInterval ci = SumCI(y);
  ci_span.Stop();
  ci.estimate += pre_value;  // pre(D) is a known constant
  return ci;
}

ConfidenceInterval AvgDifferenceBootstrapCI(
    const std::vector<double>& s_contrib, const std::vector<double>& c_contrib,
    const PreValues& pre, double confidence_level, size_t resamples,
    Rng& rng) {
  const size_t n = s_contrib.size();
  auto ratio_of = [&](double s, double c) {
    double den = pre.count + c;
    return den != 0 ? (pre.sum + s) / den : 0.0;
  };
  std::vector<double> estimates;
  estimates.reserve(resamples);
  std::vector<uint32_t> idx(n);
  for (size_t r = 0; r < resamples; ++r) {
    for (size_t i = 0; i < n; ++i) {
      idx[i] = static_cast<uint32_t>(rng.NextBounded(n));
    }
    double s = kernels::GatherSum(s_contrib.data(), idx.data(), n);
    double c = kernels::GatherSum(c_contrib.data(), idx.data(), n);
    estimates.push_back(ratio_of(s, c));
  }
  std::iota(idx.begin(), idx.end(), 0u);
  double s_full = kernels::GatherSum(s_contrib.data(), idx.data(), n);
  double c_full = kernels::GatherSum(c_contrib.data(), idx.data(), n);
  std::sort(estimates.begin(), estimates.end());
  double alpha = (1.0 - confidence_level) / 2.0;
  double lo = Quantile(estimates, alpha);
  double hi = Quantile(estimates, 1.0 - alpha);
  ConfidenceInterval ci;
  ci.level = confidence_level;
  ci.estimate = ratio_of(s_full, c_full);
  ci.half_width = (hi - lo) / 2.0;
  return ci;
}

ConfidenceInterval VarDifferenceBootstrapCI(
    const std::vector<double>& s2_contrib, const std::vector<double>& s_contrib,
    const std::vector<double>& c_contrib, const PreValues& pre,
    double confidence_level, size_t resamples, Rng& rng) {
  const size_t n = s_contrib.size();
  auto var_of = [&](double s2, double s, double c) {
    double cnt = pre.count + c;
    if (cnt <= 0) return 0.0;
    double mean = (pre.sum + s) / cnt;
    double ex2 = (pre.sum_sq + s2) / cnt;
    return std::max(0.0, ex2 - mean * mean);
  };
  std::vector<double> estimates;
  estimates.reserve(resamples);
  std::vector<uint32_t> idx(n);
  for (size_t r = 0; r < resamples; ++r) {
    for (size_t i = 0; i < n; ++i) {
      idx[i] = static_cast<uint32_t>(rng.NextBounded(n));
    }
    double s2 = kernels::GatherSum(s2_contrib.data(), idx.data(), n);
    double s = kernels::GatherSum(s_contrib.data(), idx.data(), n);
    double c = kernels::GatherSum(c_contrib.data(), idx.data(), n);
    estimates.push_back(var_of(s2, s, c));
  }
  std::iota(idx.begin(), idx.end(), 0u);
  double s2f = kernels::GatherSum(s2_contrib.data(), idx.data(), n);
  double sf = kernels::GatherSum(s_contrib.data(), idx.data(), n);
  double cf = kernels::GatherSum(c_contrib.data(), idx.data(), n);
  double alpha = (1.0 - confidence_level) / 2.0;
  double lo = Quantile(estimates, alpha);
  double hi = Quantile(estimates, 1.0 - alpha);
  ConfidenceInterval ci;
  ci.level = confidence_level;
  ci.estimate = var_of(s2f, sf, cf);
  ci.half_width = (hi - lo) / 2.0;
  return ci;
}

Result<ConfidenceInterval> SampleEstimator::EstimateDirect(
    const RangeQuery& query, Rng& rng) const {
  if (!query.group_by.empty()) {
    return Status::InvalidArgument(
        "EstimateDirect handles scalar queries only");
  }
  AQPP_ASSIGN_OR_RETURN(auto mask, Mask(query.predicate));
  return EstimateDirectMasked(query, mask, rng);
}

Result<ConfidenceInterval> SampleEstimator::EstimateDirectMasked(
    const RangeQuery& query, const std::vector<uint8_t>& mask,
    Rng& rng) const {
  if (!query.group_by.empty()) {
    return Status::InvalidArgument(
        "EstimateDirect handles scalar queries only");
  }
  const size_t n = sample_->size();
  AQPP_CHECK_EQ(mask.size(), n);

  switch (query.func) {
    case AggregateFunction::kSum: {
      AQPP_ASSIGN_OR_RETURN(const std::vector<double>* measure,
                            MeasureRef(query.agg_column));
      std::vector<double> y = MaskedValues(*measure, mask);
      obs::SpanTimer ci_span(obs::Phase::kCiConstruction, trace_);
      return SumCI(y);
    }
    case AggregateFunction::kCount: {
      std::vector<double> y(n);
      kernels::MaskToDouble(mask.data(), n, y.data());
      obs::SpanTimer ci_span(obs::Phase::kCiConstruction, trace_);
      return SumCI(y);
    }
    case AggregateFunction::kAvg: {
      AQPP_ASSIGN_OR_RETURN(const std::vector<double>* measure_ptr,
                            MeasureRef(query.agg_column));
      const std::vector<double>& measure = *measure_ptr;
      // Ratio estimator R = (sum w a cond) / (sum w cond), linearized CI:
      // Var(R) ≈ Var( sum_i w_i cond_i (a_i - R) ) / (sum w cond)^2.
      double num = 0, den = 0;
      for (size_t i = 0; i < n; ++i) {
        if (!mask[i]) continue;
        num += sample_->weights[i] * measure[i];
        den += sample_->weights[i];
      }
      ConfidenceInterval ci;
      ci.level = options_.confidence_level;
      if (den <= 0) return ci;  // no matching rows observed
      double ratio = num / den;
      std::vector<double> resid(n);
      for (size_t i = 0; i < n; ++i) {
        resid[i] = mask[i] ? (measure[i] - ratio) : 0.0;
      }
      obs::SpanTimer ci_span(obs::Phase::kCiConstruction, trace_);
      ConfidenceInterval resid_ci = SumCI(resid);
      ci_span.Stop();
      ci.estimate = ratio;
      ci.half_width = resid_ci.half_width / den;
      return ci;
    }
    case AggregateFunction::kVar: {
      AQPP_ASSIGN_OR_RETURN(const std::vector<double>* measure_ptr,
                            MeasureRef(query.agg_column));
      const std::vector<double>& measure = *measure_ptr;
      // Plug-in weighted population variance, bootstrap CI.
      auto statistic = [&](const std::vector<size_t>& idx) {
        RunningMoments m;
        for (size_t i : idx) {
          if (mask[i]) m.AddWeighted(measure[i], sample_->weights[i]);
        }
        return m.variance_population();
      };
      BootstrapOptions bopt;
      bopt.num_resamples = options_.bootstrap_resamples;
      bopt.confidence_level = options_.confidence_level;
      obs::SpanTimer ci_span(obs::Phase::kCiConstruction, trace_);
      ConfidenceInterval ci = BootstrapCI(n, statistic, rng, bopt);
      ci_span.Stop();
      // Center on the full-sample plug-in value.
      RunningMoments m;
      for (size_t i = 0; i < n; ++i) {
        if (mask[i]) m.AddWeighted(measure[i], sample_->weights[i]);
      }
      ci.estimate = m.variance_population();
      return ci;
    }
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      return Status::Unimplemented(
          "AQP cannot estimate MIN/MAX from a sample (Section 8)");
  }
  return Status::Internal("unreachable");
}

Result<ConfidenceInterval> SampleEstimator::EstimateWithPre(
    const RangeQuery& query, const RangePredicate& pre_predicate,
    const PreValues& pre, Rng& rng) const {
  if (!query.group_by.empty()) {
    return Status::InvalidArgument(
        "EstimateWithPre handles scalar queries only");
  }
  AQPP_ASSIGN_OR_RETURN(auto q_mask, Mask(query.predicate));
  AQPP_ASSIGN_OR_RETURN(auto pre_mask, Mask(pre_predicate));
  return EstimateWithPreMasked(query, q_mask, pre_mask, pre, rng);
}

Result<ConfidenceInterval> SampleEstimator::EstimateWithPreMasked(
    const RangeQuery& query, const std::vector<uint8_t>& q_mask,
    const std::vector<uint8_t>& pre_mask, const PreValues& pre,
    Rng& rng) const {
  if (!query.group_by.empty()) {
    return Status::InvalidArgument(
        "EstimateWithPre handles scalar queries only");
  }
  const size_t n = sample_->size();
  AQPP_CHECK_EQ(q_mask.size(), n);
  AQPP_CHECK_EQ(pre_mask.size(), n);

  switch (query.func) {
    case AggregateFunction::kSum: {
      AQPP_ASSIGN_OR_RETURN(const std::vector<double>* measure,
                            MeasureRef(query.agg_column));
      return SumDifferenceCI(*measure, q_mask, pre_mask, pre.sum);
    }
    case AggregateFunction::kCount: {
      std::vector<double> ones(n, 1.0);
      return SumDifferenceCI(ones, q_mask, pre_mask, pre.count);
    }
    case AggregateFunction::kAvg: {
      AQPP_ASSIGN_OR_RETURN(const std::vector<double>* measure_ptr,
                            MeasureRef(query.agg_column));
      const std::vector<double>& measure = *measure_ptr;
      std::vector<double> s_contrib(n), c_contrib(n);
      kernels::WeightedDifferenceContribs(
          measure.data(), sample_->weights.data(), q_mask.data(),
          pre_mask.data(), n, s_contrib.data(), c_contrib.data());
      obs::SpanTimer ci_span(obs::Phase::kCiConstruction, trace_);
      return AvgDifferenceBootstrapCI(s_contrib, c_contrib, pre,
                                      options_.confidence_level,
                                      options_.bootstrap_resamples, rng);
    }
    case AggregateFunction::kVar: {
      AQPP_ASSIGN_OR_RETURN(const std::vector<double>* measure_ptr,
                            MeasureRef(query.agg_column));
      const std::vector<double>& measure = *measure_ptr;
      std::vector<double> s2_contrib(n), s_contrib(n), c_contrib(n);
      kernels::WeightedDifferenceContribs2(
          measure.data(), sample_->weights.data(), q_mask.data(),
          pre_mask.data(), n, s2_contrib.data(), s_contrib.data(),
          c_contrib.data());
      obs::SpanTimer ci_span(obs::Phase::kCiConstruction, trace_);
      return VarDifferenceBootstrapCI(s2_contrib, s_contrib, c_contrib, pre,
                                      options_.confidence_level,
                                      options_.bootstrap_resamples, rng);
    }
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      return Status::Unimplemented(
          "AQP++ inherits AQP's aggregate support; MIN/MAX unsupported");
  }
  return Status::Internal("unreachable");
}

}  // namespace aqpp
