// Closed-form, distribution-sensitive confidence intervals.
//
// The percentile bootstrap (stats/bootstrap.h) adapts to skew automatically
// but costs resamples × n work and consumes RNG draws. These constructors
// get the same sensitivity analytically: a CLT interval widened by a
// third-moment (Johnson/Edgeworth) correction term, so heavy-tailed measure
// distributions produce wider intervals than the plain normal approximation
// would — at closed-form cost and with zero randomness.
//
// All three take per-row series in the same shape the bootstrap CI
// constructors in synopsis/estimator.h take, so a caller can swap interval
// methods without recomputing contributions. The widening is additive on
// |mu3|, so a closed-form interval is never tighter than its plain CLT
// counterpart.

#ifndef AQPP_SYNOPSIS_CLOSED_FORM_H_
#define AQPP_SYNOPSIS_CLOSED_FORM_H_

#include <vector>

#include "stats/confidence.h"
#include "synopsis/estimator.h"

namespace aqpp {
namespace synopsis {

// CI for a population sum from expansion contributions z_i (z_i = n w_i y_i;
// estimate = mean(z), Var = s^2(z)/n). Skew-adjusted:
//   half = lambda * s/sqrt(n)  +  (1 + 2 lambda^2) |mu3| / (6 s^2 n)
// where mu3 is the third central moment of z (Johnson 1978's t-correction,
// applied as a symmetric widening).
ConfidenceInterval ClosedFormSumCI(const std::vector<double>& z, double level);

// CI for the ratio (pre.sum + S)/(pre.count + C) where S, C are estimated
// from per-row weighted contributions (s_contrib[i] = w_i A_i d_i,
// c_contrib[i] = w_i d_i — the exact series AvgDifferenceBootstrapCI takes).
// Delta method on the linearized series u_i = (z_s,i - R z_c,i)/den, with
// the same skew widening applied to u. Pass PreValues{} for the direct
// (no-precomputation) AVG.
ConfidenceInterval ClosedFormRatioCI(const std::vector<double>& s_contrib,
                                     const std::vector<double>& c_contrib,
                                     const PreValues& pre, double level);

// CI for VAR = (pre.sum_sq + S2)/T - ((pre.sum + S)/T)^2, T = pre.count + C,
// from the three contribution series VarDifferenceBootstrapCI takes. Delta
// method with gradients (gq, gs, gc) on the linearized combination, plus the
// skew widening.
ConfidenceInterval ClosedFormVarCI(const std::vector<double>& s2_contrib,
                                   const std::vector<double>& s_contrib,
                                   const std::vector<double>& c_contrib,
                                   const PreValues& pre, double level);

}  // namespace synopsis
}  // namespace aqpp

#endif  // AQPP_SYNOPSIS_CLOSED_FORM_H_
