#include "synopsis/closed_form.h"

#include <cmath>

#include "common/logging.h"

namespace aqpp {
namespace synopsis {

namespace {

// Mean, sample variance and third central moment of `v` in one pass
// (two-pass for the central moments; n is small — sample-sized).
struct SeriesMoments {
  double n = 0;
  double mean = 0;
  double var_sample = 0;  // Bessel-corrected
  double mu3 = 0;         // third central moment (population form)
};

SeriesMoments Moments(const std::vector<double>& v) {
  SeriesMoments m;
  m.n = static_cast<double>(v.size());
  if (v.empty()) return m;
  double sum = 0;
  for (double x : v) sum += x;
  m.mean = sum / m.n;
  double m2 = 0, m3 = 0;
  for (double x : v) {
    const double d = x - m.mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m.var_sample = m.n > 1 ? m2 / (m.n - 1) : 0.0;
  m.mu3 = m3 / m.n;
  return m;
}

// half = lambda * s / sqrt(n) + (1 + 2 lambda^2) |mu3| / (6 s^2 n).
// The second term is Johnson's skewness correction to the t-statistic,
// folded in as a symmetric widening: it decays as 1/n (faster than the CLT
// term's 1/sqrt(n)) but dominates the coverage error for heavy-tailed data
// at sample sizes AQP actually runs at.
double SkewAdjustedHalfWidth(const SeriesMoments& m, double lambda) {
  if (m.n <= 1) return 0.0;
  double half = lambda * std::sqrt(m.var_sample / m.n);
  if (m.var_sample > 0) {
    half += (1.0 + 2.0 * lambda * lambda) * std::fabs(m.mu3) /
            (6.0 * m.var_sample * m.n);
  }
  return half;
}

}  // namespace

ConfidenceInterval ClosedFormSumCI(const std::vector<double>& z,
                                   double level) {
  const double lambda = NormalCriticalValue(level);
  SeriesMoments m = Moments(z);
  ConfidenceInterval ci;
  ci.level = level;
  ci.estimate = m.mean;
  ci.half_width = SkewAdjustedHalfWidth(m, lambda);
  return ci;
}

ConfidenceInterval ClosedFormRatioCI(const std::vector<double>& s_contrib,
                                     const std::vector<double>& c_contrib,
                                     const PreValues& pre, double level) {
  AQPP_CHECK_EQ(s_contrib.size(), c_contrib.size());
  const size_t n = s_contrib.size();
  const double dn = static_cast<double>(n);
  const double lambda = NormalCriticalValue(level);
  ConfidenceInterval ci;
  ci.level = level;
  double s_hat = 0, c_hat = 0;
  for (size_t i = 0; i < n; ++i) {
    s_hat += s_contrib[i];
    c_hat += c_contrib[i];
  }
  const double den = pre.count + c_hat;
  if (den <= 0) {
    // Mirror the bootstrap path's no-observation guard: ratio_of returns 0
    // for a zero denominator and the interval collapses.
    ci.estimate = 0.0;
    ci.half_width = 0.0;
    return ci;
  }
  const double ratio = (pre.sum + s_hat) / den;
  // Linearize: R ≈ ratio + (1/den) (dS - ratio dC). Expansion series of the
  // linear combination, with z-scaling so mean(u) estimates the first-order
  // error and Var = s^2(u)/n.
  std::vector<double> u(n);
  for (size_t i = 0; i < n; ++i) {
    u[i] = dn * (s_contrib[i] - ratio * c_contrib[i]) / den;
  }
  SeriesMoments m = Moments(u);
  ci.estimate = ratio;
  ci.half_width = SkewAdjustedHalfWidth(m, lambda);
  return ci;
}

ConfidenceInterval ClosedFormVarCI(const std::vector<double>& s2_contrib,
                                   const std::vector<double>& s_contrib,
                                   const std::vector<double>& c_contrib,
                                   const PreValues& pre, double level) {
  AQPP_CHECK_EQ(s2_contrib.size(), s_contrib.size());
  AQPP_CHECK_EQ(s_contrib.size(), c_contrib.size());
  const size_t n = s_contrib.size();
  const double dn = static_cast<double>(n);
  const double lambda = NormalCriticalValue(level);
  ConfidenceInterval ci;
  ci.level = level;
  double q_hat = 0, s_hat = 0, c_hat = 0;
  for (size_t i = 0; i < n; ++i) {
    q_hat += s2_contrib[i];
    s_hat += s_contrib[i];
    c_hat += c_contrib[i];
  }
  const double total = pre.count + c_hat;
  if (total <= 0) {
    ci.estimate = 0.0;
    ci.half_width = 0.0;
    return ci;
  }
  const double q_tot = pre.sum_sq + q_hat;
  const double s_tot = pre.sum + s_hat;
  const double mean = s_tot / total;
  const double est = std::max(0.0, q_tot / total - mean * mean);
  // Gradients of VAR(Q, S, C) = Q/C' - (S/C')^2 at the totals — the same
  // delta-method fold the shard coordinator's stratified merge uses.
  const double gq = 1.0 / total;
  const double gs = -2.0 * mean / total;
  const double gc = (-q_tot + 2.0 * s_tot * mean) / (total * total);
  std::vector<double> u(n);
  for (size_t i = 0; i < n; ++i) {
    u[i] = dn * (gq * s2_contrib[i] + gs * s_contrib[i] + gc * c_contrib[i]);
  }
  SeriesMoments m = Moments(u);
  ci.estimate = est;
  ci.half_width = SkewAdjustedHalfWidth(m, lambda);
  return ci;
}

}  // namespace synopsis
}  // namespace aqpp
