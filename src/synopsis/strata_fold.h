// The stratified estimation fold shared by StratifiedSynopsis and
// GroupedSynopsis — one implementation of "the shard fold contract"
// (src/shard/partial.cc's kSample merge):
//
//   SUM/COUNT   est = sum_h N_h mean_h(series),
//               Var = sum_h N_h^2 s_h^2(series) / n_h
//   AVG/VAR     delta method on the merged (c, s, q) totals with
//               per-stratum variance/covariance terms weighted N_h^2 / n_h
//
// Every stratum contributes three per-row series evaluated on its sample
// rows: c_i = d_i, s_i = A_i d_i, q_i = A_i^2 d_i, where d_i is the
// (difference-)predicate indicator in {-1, 0, 1} and A_i the measure. The
// fold is closed-form — no RNG — so callers are reproducible across thread
// counts by construction.

#ifndef AQPP_SYNOPSIS_STRATA_FOLD_H_
#define AQPP_SYNOPSIS_STRATA_FOLD_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "expr/query.h"
#include "stats/confidence.h"
#include "synopsis/estimator.h"

namespace aqpp {
namespace synopsis {

// One stratum's population size and per-sample-row series.
struct StratumSeries {
  double population = 0;  // N_h
  std::vector<double> c;  // predicate indicator per row
  std::vector<double> s;  // A * indicator
  std::vector<double> q;  // A^2 * indicator
};

// Folds the strata into a point + CI for `func` (kSum/kCount/kAvg/kVar).
// `pre` carries the precomputed offsets (zeros for the direct case);
// `level` the confidence level. Strata with no sample rows contribute
// nothing; single-row strata contribute their estimate with zero variance.
inline ConfidenceInterval FoldStrata(AggregateFunction func,
                                     const std::vector<StratumSeries>& strata,
                                     const PreValues& pre, double level) {
  const double lambda = NormalCriticalValue(level);
  ConfidenceInterval ci;
  ci.level = level;

  struct Moments {
    double n = 0;
    double mean_c = 0, mean_s = 0, mean_q = 0;
    double var_c = 0, var_s = 0, var_q = 0;
    double cov_cs = 0, cov_cq = 0, cov_sq = 0;
  };
  std::vector<Moments> folds(strata.size());
  for (size_t h = 0; h < strata.size(); ++h) {
    const StratumSeries& st = strata[h];
    Moments& f = folds[h];
    f.n = static_cast<double>(st.c.size());
    if (st.c.empty()) continue;
    double sc = 0, ss = 0, sq = 0;
    for (size_t i = 0; i < st.c.size(); ++i) {
      sc += st.c[i];
      ss += st.s[i];
      sq += st.q[i];
    }
    f.mean_c = sc / f.n;
    f.mean_s = ss / f.n;
    f.mean_q = sq / f.n;
    if (st.c.size() < 2) continue;
    double mcc = 0, mss = 0, mqq = 0, mcs = 0, mcq = 0, msq = 0;
    for (size_t i = 0; i < st.c.size(); ++i) {
      const double dc = st.c[i] - f.mean_c;
      const double ds = st.s[i] - f.mean_s;
      const double dq = st.q[i] - f.mean_q;
      mcc += dc * dc;
      mss += ds * ds;
      mqq += dq * dq;
      mcs += dc * ds;
      mcq += dc * dq;
      msq += ds * dq;
    }
    const double bessel = f.n - 1;  // sample (Bessel-corrected) moments
    f.var_c = mcc / bessel;
    f.var_s = mss / bessel;
    f.var_q = mqq / bessel;
    f.cov_cs = mcs / bessel;
    f.cov_cq = mcq / bessel;
    f.cov_sq = msq / bessel;
  }

  if (func == AggregateFunction::kSum || func == AggregateFunction::kCount) {
    double est = 0, var = 0;
    for (size_t h = 0; h < folds.size(); ++h) {
      const Moments& f = folds[h];
      if (f.n == 0) continue;
      const double num_pop = strata[h].population;
      const double mean =
          func == AggregateFunction::kSum ? f.mean_s : f.mean_c;
      const double v = func == AggregateFunction::kSum ? f.var_s : f.var_c;
      est += num_pop * mean;
      var += num_pop * num_pop * v / f.n;
    }
    ci.estimate = est + (func == AggregateFunction::kSum ? pre.sum : pre.count);
    ci.half_width = lambda * std::sqrt(std::max(0.0, var));
    return ci;
  }

  // AVG / VAR: delta method on the merged totals.
  double chat = pre.count, shat = pre.sum, qhat = pre.sum_sq;
  double vc = 0, vs = 0, vq = 0, ccs = 0, ccq = 0, csq = 0;
  for (size_t h = 0; h < folds.size(); ++h) {
    const Moments& f = folds[h];
    if (f.n == 0) continue;
    const double num_pop = strata[h].population;
    const double w = num_pop * num_pop / f.n;
    chat += num_pop * f.mean_c;
    shat += num_pop * f.mean_s;
    qhat += num_pop * f.mean_q;
    vc += w * f.var_c;
    vs += w * f.var_s;
    vq += w * f.var_q;
    ccs += w * f.cov_cs;
    ccq += w * f.cov_cq;
    csq += w * f.cov_sq;
  }
  if (chat <= 0) {
    // No matching rows observed anywhere: mirror the single-estimator guard.
    ci.estimate = 0.0;
    ci.half_width = 0.0;
    return ci;
  }
  const double ratio = shat / chat;
  double est = 0, var = 0;
  if (func == AggregateFunction::kAvg) {
    est = ratio;
    var = (vs - 2.0 * ratio * ccs + ratio * ratio * vc) / (chat * chat);
  } else {  // kVar
    est = std::max(0.0, qhat / chat - ratio * ratio);
    const double gq = 1.0 / chat;
    const double gs = -2.0 * shat / (chat * chat);
    const double gc = (-qhat + 2.0 * shat * ratio) / (chat * chat);
    var = gq * gq * vq + gs * gs * vs + gc * gc * vc + 2.0 * gc * gs * ccs +
          2.0 * gc * gq * ccq + 2.0 * gs * gq * csq;
  }
  ci.estimate = est;
  ci.half_width = lambda * std::sqrt(std::max(0.0, var));
  return ci;
}

}  // namespace synopsis
}  // namespace aqpp

#endif  // AQPP_SYNOPSIS_STRATA_FOLD_H_
