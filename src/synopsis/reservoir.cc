#include "synopsis/reservoir.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/failpoint.h"
#include "common/logging.h"
#include "kernels/elementwise.h"
#include "sampling/samplers.h"
#include "synopsis/closed_form.h"
#include "synopsis/serialize_util.h"

namespace aqpp {
namespace synopsis {

namespace {
constexpr char kMagic[] = "AQPPSYN1";
}  // namespace

ReservoirSynopsis::ReservoirSynopsis(std::string kind, SynopsisOptions options)
    : Synopsis(std::move(options)),
      kind_(std::move(kind)),
      absorb_rng_(options_.seed) {}

Status ReservoirSynopsis::BuildFromTable(const Table& table) {
  if (table.num_rows() == 0) {
    return Status::FailedPrecondition("cannot build a synopsis of no rows");
  }
  Rng build_rng(options_.seed);
  AQPP_ASSIGN_OR_RETURN(
      sample_, CreateUniformSample(table, options_.sample_rate, build_rng));
  rows_seen_ = sample_.population_size;
  absorb_rng_ = Rng(options_.seed);
  measure_cache_ = std::make_unique<MeasureCache>(sample_.rows.get());
  built_ = true;
  engine_aligned_ = false;
  ci_inflation_ = 1.0;
  return Status::OK();
}

Status ReservoirSynopsis::BuildFromSample(const Sample& sample) {
  if (sample.method != SamplingMethod::kUniform) {
    return Status::Unimplemented(
        "reservoir synopsis adopts uniform samples only");
  }
  if (sample.size() == 0) {
    return Status::FailedPrecondition("cannot adopt an empty sample");
  }
  // Deep copy in row order: the adopted rows are a row-for-row image of the
  // engine's sample, which is what keeps engine-computed masks valid
  // (engine_aligned) and the estimates bit-identical to the legacy path.
  std::vector<size_t> all(sample.size());
  std::iota(all.begin(), all.end(), 0u);
  Sample copy;
  AQPP_ASSIGN_OR_RETURN(copy.rows, TakeRows(*sample.rows, all));
  copy.weights = sample.weights;
  copy.strata = sample.strata;
  copy.stratum_info = sample.stratum_info;
  copy.population_size = sample.population_size;
  copy.sampling_fraction = sample.sampling_fraction;
  copy.method = sample.method;
  sample_ = std::move(copy);
  rows_seen_ = sample_.population_size;
  absorb_rng_ = Rng(options_.seed);
  measure_cache_ = std::make_unique<MeasureCache>(sample_.rows.get());
  built_ = true;
  engine_aligned_ = true;
  ci_inflation_ = 1.0;
  return Status::OK();
}

ConfidenceInterval ReservoirSynopsis::Inflate(ConfidenceInterval ci) const {
  // Skipped entirely at 1.0 so the un-degraded reservoir path stays
  // bit-identical to the legacy estimator (no spurious rounding).
  if (ci_inflation_ != 1.0) ci.half_width *= ci_inflation_;
  return ci;
}

Result<ConfidenceInterval> ReservoirSynopsis::Estimate(
    const RangeQuery& query, const ExecuteControl& control, Rng& rng) const {
  if (!built_) return Status::FailedPrecondition("synopsis not built");
  if (!query.group_by.empty()) {
    return Status::InvalidArgument("synopsis estimates are scalar");
  }
  SampleEstimator est(&sample_,
                      {options_.confidence_level, options_.bootstrap_resamples});
  est.set_measure_cache(measure_cache_.get());
  est.set_trace(control.trace);
  const std::vector<uint8_t>* mask = nullptr;
  std::vector<uint8_t> local_mask;
  if (control.query_mask != nullptr && engine_aligned_ &&
      control.query_mask->size() == sample_.size()) {
    mask = control.query_mask;
  } else {
    AQPP_ASSIGN_OR_RETURN(local_mask, est.Mask(query.predicate));
    mask = &local_mask;
  }
  if (closed_form()) {
    AQPP_ASSIGN_OR_RETURN(auto ci,
                          ClosedFormMasked(query, *mask, nullptr, PreValues{}));
    return Inflate(ci);
  }
  AQPP_ASSIGN_OR_RETURN(auto ci, est.EstimateDirectMasked(query, *mask, rng));
  return Inflate(ci);
}

Result<ConfidenceInterval> ReservoirSynopsis::EstimateWithPre(
    const RangeQuery& query, const RangePredicate& pre_predicate,
    const PreValues& pre, const ExecuteControl& control, Rng& rng) const {
  if (!built_) return Status::FailedPrecondition("synopsis not built");
  AQPP_ASSIGN_OR_RETURN(auto q_mask,
                        query.predicate.EvaluateMask(*sample_.rows));
  AQPP_ASSIGN_OR_RETURN(auto pre_mask, pre_predicate.EvaluateMask(*sample_.rows));
  return EstimateWithPreMasked(query, q_mask, pre_mask, pre, control, rng);
}

Result<ConfidenceInterval> ReservoirSynopsis::EstimateWithPreMasked(
    const RangeQuery& query, const std::vector<uint8_t>& q_mask,
    const std::vector<uint8_t>& pre_mask, const PreValues& pre,
    const ExecuteControl& control, Rng& rng) const {
  if (!built_) return Status::FailedPrecondition("synopsis not built");
  if (!query.group_by.empty()) {
    return Status::InvalidArgument("synopsis estimates are scalar");
  }
  if (q_mask.size() != sample_.size() || pre_mask.size() != sample_.size()) {
    return Status::InvalidArgument("mask length does not match synopsis rows");
  }
  if (closed_form()) {
    AQPP_ASSIGN_OR_RETURN(auto ci,
                          ClosedFormMasked(query, q_mask, &pre_mask, pre));
    return Inflate(ci);
  }
  SampleEstimator est(&sample_,
                      {options_.confidence_level, options_.bootstrap_resamples});
  est.set_measure_cache(measure_cache_.get());
  est.set_trace(control.trace);
  AQPP_ASSIGN_OR_RETURN(auto ci,
                        est.EstimateWithPreMasked(query, q_mask, pre_mask,
                                                  pre, rng));
  return Inflate(ci);
}

Result<ConfidenceInterval> ReservoirSynopsis::ClosedFormMasked(
    const RangeQuery& query, const std::vector<uint8_t>& q_mask,
    const std::vector<uint8_t>* pre_mask, const PreValues& pre) const {
  const size_t n = sample_.size();
  const double dn = static_cast<double>(n);
  // d_i = cond_q - cond_pre in {-1, 0, 1}; the direct case is pre = phi
  // (all-zero pre mask), collapsing d to the plain query mask.
  auto diff = [&](size_t i) {
    double d = q_mask[i] ? 1.0 : 0.0;
    if (pre_mask != nullptr && (*pre_mask)[i]) d -= 1.0;
    return d;
  };
  SampleEstimator est(&sample_,
                      {options_.confidence_level, options_.bootstrap_resamples});
  est.set_measure_cache(measure_cache_.get());

  switch (query.func) {
    case AggregateFunction::kSum:
    case AggregateFunction::kCount: {
      std::vector<double> measure;
      if (query.func == AggregateFunction::kSum) {
        AQPP_ASSIGN_OR_RETURN(measure, est.MeasureValues(query.agg_column));
      }
      std::vector<double> z(n);
      for (size_t i = 0; i < n; ++i) {
        const double a =
            query.func == AggregateFunction::kSum ? measure[i] : 1.0;
        z[i] = dn * sample_.weights[i] * a * diff(i);
      }
      ConfidenceInterval ci =
          ClosedFormSumCI(z, options_.confidence_level);
      ci.estimate +=
          query.func == AggregateFunction::kSum ? pre.sum : pre.count;
      return ci;
    }
    case AggregateFunction::kAvg: {
      AQPP_ASSIGN_OR_RETURN(auto measure, est.MeasureValues(query.agg_column));
      std::vector<double> s_contrib(n), c_contrib(n);
      for (size_t i = 0; i < n; ++i) {
        const double wd = sample_.weights[i] * diff(i);
        s_contrib[i] = wd * measure[i];
        c_contrib[i] = wd;
      }
      return ClosedFormRatioCI(s_contrib, c_contrib, pre,
                               options_.confidence_level);
    }
    case AggregateFunction::kVar: {
      AQPP_ASSIGN_OR_RETURN(auto measure, est.MeasureValues(query.agg_column));
      std::vector<double> s2_contrib(n), s_contrib(n), c_contrib(n);
      for (size_t i = 0; i < n; ++i) {
        const double wd = sample_.weights[i] * diff(i);
        s2_contrib[i] = wd * measure[i] * measure[i];
        s_contrib[i] = wd * measure[i];
        c_contrib[i] = wd;
      }
      return ClosedFormVarCI(s2_contrib, s_contrib, c_contrib, pre,
                             options_.confidence_level);
    }
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      return Status::Unimplemented(
          "AQP cannot estimate MIN/MAX from a sample (Section 8)");
  }
  return Status::Internal("unreachable");
}

Status ReservoirSynopsis::Absorb(const Table& batch) {
  if (!built_) return Status::FailedPrecondition("synopsis not built");
  AQPP_RETURN_NOT_OK(CheckSameSchema(sample_.rows->schema(), batch.schema()));
  // Validate the whole batch before touching any state, and only then arm
  // the failpoint: a torn absorb (chaos lane) observes either the old
  // synopsis or the new one, never a half-overwritten reservoir.
  AQPP_RETURN_NOT_OK(ValidateBatchDictionaries(*sample_.rows, batch));
  AQPP_FAILPOINT_RETURN_STATUS("synopsis/absorb");
  const size_t n = sample_.size();
  Table& rows = *sample_.rows;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    ++rows_seen_;
    // Algorithm R continuation: the new row replaces a uniformly random
    // slot with probability n / rows_seen.
    size_t j = static_cast<size_t>(absorb_rng_.NextBounded(rows_seen_));
    if (j >= n) continue;
    for (size_t c = 0; c < rows.num_columns(); ++c) {
      Column& dst = rows.mutable_column(c);
      const Column& src = batch.column(c);
      if (dst.type() == DataType::kDouble) {
        dst.MutableDoubleData()[j] = src.GetDouble(r);
      } else if (dst.type() == DataType::kString) {
        AQPP_ASSIGN_OR_RETURN(int64_t code,
                              dst.LookupDictionary(src.GetString(r)));
        dst.MutableInt64Data()[j] = code;
      } else {
        dst.MutableInt64Data()[j] = src.GetInt64(r);
      }
    }
  }
  sample_.population_size = rows_seen_;
  const double w = static_cast<double>(rows_seen_) / static_cast<double>(n);
  std::fill(sample_.weights.begin(), sample_.weights.end(), w);
  sample_.sampling_fraction =
      static_cast<double>(n) / static_cast<double>(rows_seen_);
  // Overwrites invalidate cached measure materializations and any
  // engine-computed masks.
  measure_cache_ = std::make_unique<MeasureCache>(sample_.rows.get());
  engine_aligned_ = false;
  return Status::OK();
}

Status ReservoirSynopsis::Degrade(double keep_fraction, Rng& rng) {
  if (!built_) return Status::FailedPrecondition("synopsis not built");
  if (!(keep_fraction > 0.0) || keep_fraction > 1.0) {
    return Status::InvalidArgument("keep_fraction must be in (0, 1]");
  }
  AQPP_ASSIGN_OR_RETURN(sample_, Subsample(sample_, keep_fraction, rng));
  // Conservative widening: the retained rows carry 1/keep times less
  // information, so every subsequent interval is inflated by at least that
  // factor — the "never tighter after Degrade" contract.
  ci_inflation_ *= 1.0 / keep_fraction;
  rows_seen_ = sample_.population_size;
  measure_cache_ = std::make_unique<MeasureCache>(sample_.rows.get());
  engine_aligned_ = false;
  return Status::OK();
}

Status ReservoirSynopsis::SerializeTo(std::string* out) const {
  if (!built_) return Status::FailedPrecondition("synopsis not built");
  out->clear();
  out->append(kMagic);
  PutString(out, kind_);
  PutF64(out, options_.confidence_level);
  PutU64(out, options_.bootstrap_resamples);
  PutF64(out, options_.sample_rate);
  PutU64(out, static_cast<uint64_t>(options_.ci_method));
  PutU64(out, options_.seed);
  PutF64(out, ci_inflation_);
  PutU64(out, rows_seen_);
  PutSample(out, sample_);
  return Status::OK();
}

Status ReservoirSynopsis::DeserializeFrom(const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) - 1 ||
      bytes.compare(0, sizeof(kMagic) - 1, kMagic) != 0) {
    return Status::InvalidArgument("bad synopsis magic");
  }
  std::string payload = bytes.substr(sizeof(kMagic) - 1);
  ByteReader r(payload);
  std::string kind;
  if (!r.GetString(&kind)) return Status::InvalidArgument("truncated kind");
  if (kind != kind_) {
    return Status::InvalidArgument("serialized kind '" + kind +
                                   "' does not match this synopsis ('" +
                                   kind_ + "')");
  }
  uint64_t resamples = 0, ci_method = 0, seed = 0, rows_seen = 0;
  double level = 0, rate = 0, inflation = 0;
  if (!r.GetF64(&level) || !r.GetU64(&resamples) || !r.GetF64(&rate) ||
      !r.GetU64(&ci_method) || ci_method > 1 || !r.GetU64(&seed) ||
      !r.GetF64(&inflation) || !r.GetU64(&rows_seen)) {
    return Status::InvalidArgument("truncated synopsis header");
  }
  AQPP_ASSIGN_OR_RETURN(Sample sample, GetSample(&r));
  if (!r.Done()) return Status::InvalidArgument("trailing synopsis bytes");
  if (sample.size() == 0) {
    return Status::InvalidArgument("serialized synopsis has no rows");
  }
  options_.confidence_level = level;
  options_.bootstrap_resamples = static_cast<size_t>(resamples);
  options_.sample_rate = rate;
  options_.ci_method = static_cast<SynopsisOptions::CiMethod>(ci_method);
  options_.seed = seed;
  ci_inflation_ = inflation;
  rows_seen_ = static_cast<size_t>(rows_seen);
  sample_ = std::move(sample);
  // The absorb stream is not serialized; re-derive it deterministically so
  // restored instances absorb reproducibly (statistical equivalence, not
  // draw-for-draw continuation).
  absorb_rng_ = Rng(options_.seed ^ (0x9e3779b97f4a7c15ULL * rows_seen_));
  measure_cache_ = std::make_unique<MeasureCache>(sample_.rows.get());
  built_ = true;
  engine_aligned_ = false;
  return Status::OK();
}

size_t ReservoirSynopsis::MemoryUsage() const {
  return built_ ? sample_.MemoryUsage() : 0;
}

}  // namespace synopsis
}  // namespace aqpp
