// Sample-based estimators: the AQP path (Equation 3, Example 1) and the
// AQP++ difference path (Equation 4, Example 3).
//
// Both are built on one primitive: given per-row values y_i on the sample,
// sum_i w_i * y_i estimates the population sum of y, with a CLT confidence
// interval from the per-row expansion contributions. For AQP the row value
// is A_i * cond_q(i); for AQP++ it is A_i * (cond_q(i) - cond_pre(i)) and
// the precomputed pre(D) is added back as a constant — which is exactly why
// a highly correlated pre shrinks the interval (Section 4.2's
// back-of-the-envelope analysis).

#ifndef AQPP_SYNOPSIS_ESTIMATOR_H_
#define AQPP_SYNOPSIS_ESTIMATOR_H_

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "expr/query.h"
#include "obs/trace.h"
#include "sampling/sample.h"
#include "stats/confidence.h"

namespace aqpp {

struct EstimatorOptions {
  double confidence_level = 0.95;
  // Resamples used for bootstrap CIs (AVG/VAR paths).
  size_t bootstrap_resamples = 120;
};

// Precomputed aggregate values of one `pre` box, read from the cube planes.
struct PreValues {
  double sum = 0.0;       // SUM(A) over the box
  double count = 0.0;     // COUNT(*) over the box
  double sum_sq = 0.0;    // SUM(A^2) over the box
};

// Materialized double views of a table's measure columns, built once and
// shared by every estimate over the same sample (the engine-level measure
// cache). Thread-safe.
class MeasureCache {
 public:
  // `rows` must outlive the cache.
  explicit MeasureCache(const Table* rows) : rows_(rows) {}

  // The double-materialized values of `column`; built on first use.
  // The returned pointer stays valid for the cache's lifetime.
  Result<const std::vector<double>*> Get(size_t column);

 private:
  const Table* rows_;
  std::mutex mu_;
  std::unordered_map<size_t, std::unique_ptr<std::vector<double>>> columns_;
};

// ---- Shared difference-CI kernels ------------------------------------------
//
// These are used verbatim by both SampleEstimator::EstimateWithPre and the
// batched identification scorer, so the two paths produce bit-identical
// intervals for the same per-row contributions and RNG state.

// AVG = (pre.sum + ŝ) / (pre.count + ĉ) with numerator/denominator estimated
// by difference; percentile-bootstrap CI over the paired per-row
// contributions s_contrib[i] = w_i * A_i * diff_i, c_contrib[i] = w_i *
// diff_i (the paper's Section 4.2.2 procedure).
ConfidenceInterval AvgDifferenceBootstrapCI(
    const std::vector<double>& s_contrib, const std::vector<double>& c_contrib,
    const PreValues& pre, double confidence_level, size_t resamples, Rng& rng);

// VAR = E[A^2] - E[A]^2 reconstructed from three difference-estimated sums
// (SUM(A^2), SUM(A), COUNT); percentile-bootstrap CI.
ConfidenceInterval VarDifferenceBootstrapCI(
    const std::vector<double>& s2_contrib, const std::vector<double>& s_contrib,
    const std::vector<double>& c_contrib, const PreValues& pre,
    double confidence_level, size_t resamples, Rng& rng);

class SampleEstimator {
 public:
  // `sample` must outlive the estimator.
  SampleEstimator(const Sample* sample, EstimatorOptions options = {});

  const Sample& sample() const { return *sample_; }
  const EstimatorOptions& options() const { return options_; }

  // Borrows an external measure cache (e.g. the engine's); when set,
  // repeated estimates over the same sample stop re-materializing the
  // measure column. The cache must be built over this estimator's sample
  // rows and must outlive the estimator.
  void set_measure_cache(MeasureCache* cache) { measure_cache_ = cache; }

  // Attaches a per-query trace; the final CI-producing computation of each
  // estimate records one kCiConstruction span (the matching global phase
  // histogram is observed regardless).
  void set_trace(obs::QueryTrace* trace) { trace_ = trace; }

  // ---- Generic primitive --------------------------------------------------

  // CI for the population sum of y, where y_values[i] is y evaluated on
  // sample row i. Handles stratified samples per stratum.
  ConfidenceInterval SumCI(const std::vector<double>& y_values) const;

  // ---- AQP (direct) path ---------------------------------------------------

  // Estimates `query` (scalar, no group-by) directly from the sample.
  // SUM/COUNT: closed-form CLT interval. AVG: linearized ratio estimator.
  // VAR: plug-in estimate with bootstrap CI. MIN/MAX: Unimplemented (the
  // paper notes AQP cannot handle them; see Section 8).
  Result<ConfidenceInterval> EstimateDirect(const RangeQuery& query,
                                            Rng& rng) const;

  // Same, with the query's row mask already computed (mask reuse across the
  // identification → estimation pipeline).
  Result<ConfidenceInterval> EstimateDirectMasked(
      const RangeQuery& query, const std::vector<uint8_t>& mask,
      Rng& rng) const;

  // ---- AQP++ (difference) path ---------------------------------------------

  // Estimates `query` as pre(D) + (q̂(S) - p̂re(S)). `pre_predicate` is the
  // sample-side predicate of the precomputed box; `pre` carries its exact
  // precomputed values. Supports SUM/COUNT/AVG/VAR.
  Result<ConfidenceInterval> EstimateWithPre(const RangeQuery& query,
                                             const RangePredicate& pre_predicate,
                                             const PreValues& pre,
                                             Rng& rng) const;

  // Same, with both row masks already computed (no predicate re-evaluation).
  Result<ConfidenceInterval> EstimateWithPreMasked(
      const RangeQuery& query, const std::vector<uint8_t>& q_mask,
      const std::vector<uint8_t>& pre_mask, const PreValues& pre,
      Rng& rng) const;

  // ---- Row-mask helpers (exposed for identification & tests) --------------

  // 0/1 mask of sample rows matching `predicate`.
  Result<std::vector<uint8_t>> Mask(const RangePredicate& predicate) const;

  // Aggregation-attribute values of all sample rows.
  Result<std::vector<double>> MeasureValues(size_t column) const;

 private:
  // Borrowed (cached) or lazily materialized measure column.
  Result<const std::vector<double>*> MeasureRef(size_t column) const;

  // Shared implementation of the SUM/COUNT closed-form difference CI.
  ConfidenceInterval SumDifferenceCI(const std::vector<double>& measure,
                                     const std::vector<uint8_t>& q_mask,
                                     const std::vector<uint8_t>& pre_mask,
                                     double pre_value) const;

  const Sample* sample_;
  EstimatorOptions options_;
  double lambda_;
  MeasureCache* measure_cache_ = nullptr;
  obs::QueryTrace* trace_ = nullptr;
  // Fallback materialization when no external cache is attached.
  mutable std::unordered_map<size_t, std::unique_ptr<std::vector<double>>>
      local_measures_;
};

}  // namespace aqpp

#endif  // AQPP_SYNOPSIS_ESTIMATOR_H_
