#include "synopsis/grouped.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/failpoint.h"
#include "common/logging.h"
#include "synopsis/serialize_util.h"
#include "synopsis/strata_fold.h"

namespace aqpp {
namespace synopsis {

namespace {

constexpr char kMagic[] = "AQPPSYN1";

size_t ReservoirCapacity(double rate, size_t population) {
  return std::max<size_t>(
      1, static_cast<size_t>(std::ceil(rate * static_cast<double>(population))));
}

}  // namespace

GroupedSynopsis::GroupedSynopsis(SynopsisOptions options)
    : Synopsis(std::move(options)), absorb_rng_(options_.seed) {}

Status GroupedSynopsis::BuildFromTable(const Table& table) {
  if (table.num_rows() == 0) {
    return Status::FailedPrecondition("cannot build a synopsis of no rows");
  }
  if (options_.key_columns.empty()) {
    return Status::InvalidArgument(
        "grouped synopsis requires key_columns (the bubble key is "
        "key_columns[0])");
  }
  const size_t key_col = key_column();
  if (key_col >= table.num_columns() ||
      options_.measure_column >= table.num_columns()) {
    return Status::InvalidArgument("key or measure column out of range");
  }
  if (table.column(key_col).type() == DataType::kDouble) {
    return Status::InvalidArgument("bubble key column must be ordinal");
  }
  if (table.column(options_.measure_column).type() == DataType::kString) {
    return Status::InvalidArgument("measure column must be numeric");
  }

  // Pass 1: exact per-group moments plus each group's row list.
  const Column& keys = table.column(key_col);
  const Column& measure = table.column(options_.measure_column);
  std::unordered_map<int64_t, size_t> index;
  std::vector<Group> groups;
  std::vector<std::vector<size_t>> group_rows;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const int64_t key = keys.GetInt64(r);
    auto [it, inserted] = index.emplace(key, groups.size());
    if (inserted) {
      groups.push_back(Group{key, 0, 0.0, 0.0, 0, {}});
      group_rows.emplace_back();
    }
    Group& g = groups[it->second];
    const double a = measure.GetDouble(r);
    ++g.population;
    g.sum += a;
    g.sum_sq += a * a;
    group_rows[it->second].push_back(r);
  }

  // Deterministic bubble order (and thus serialization bytes): sort by key,
  // then draw each group's reservoir in that order from one seeded stream.
  std::vector<size_t> order(groups.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return groups[a].key < groups[b].key;
  });

  Rng build_rng(options_.seed);
  std::vector<Group> sorted;
  sorted.reserve(groups.size());
  std::vector<size_t> take;
  for (size_t i : order) {
    Group g = std::move(groups[i]);
    g.capacity = ReservoirCapacity(options_.sample_rate, g.population);
    const std::vector<size_t>& rows_of_g = group_rows[i];
    std::vector<size_t> picks = SampleWithoutReplacement(
        rows_of_g.size(), std::min(g.capacity, rows_of_g.size()), build_rng);
    g.slots.clear();
    for (size_t p : picks) {
      g.slots.push_back(take.size());
      take.push_back(rows_of_g[p]);
    }
    sorted.push_back(std::move(g));
  }
  AQPP_ASSIGN_OR_RETURN(rows_, TakeRows(table, take));
  groups_ = std::move(sorted);
  key_index_.clear();
  for (size_t i = 0; i < groups_.size(); ++i) {
    key_index_.emplace(groups_[i].key, i);
  }
  absorb_rng_ = Rng(options_.seed);
  built_ = true;
  engine_aligned_ = false;
  ci_inflation_ = 1.0;
  return Status::OK();
}

GroupedSynopsis::SplitPredicate GroupedSynopsis::Split(
    const RangePredicate& predicate) const {
  SplitPredicate out;
  out.key_lo = std::numeric_limits<int64_t>::min();
  out.key_hi = std::numeric_limits<int64_t>::max();
  for (const RangeCondition& cond : predicate.conditions()) {
    if (cond.column == key_column()) {
      out.key_lo = std::max(out.key_lo, cond.lo);
      out.key_hi = std::min(out.key_hi, cond.hi);
    } else {
      out.residual.Add(cond);
    }
  }
  return out;
}

bool GroupedSynopsis::ExactlyAnswerable(const RangeQuery& query) const {
  if (query.func == AggregateFunction::kCount) return true;
  if (query.agg_column != options_.measure_column) return false;
  return query.func == AggregateFunction::kSum ||
         query.func == AggregateFunction::kAvg ||
         query.func == AggregateFunction::kVar;
}

Result<ConfidenceInterval> GroupedSynopsis::Estimate(
    const RangeQuery& query, const ExecuteControl& control, Rng& rng) const {
  (void)control;
  (void)rng;  // exact or closed-form: consumes no draws
  if (!built_) return Status::FailedPrecondition("synopsis not built");
  if (!query.group_by.empty()) {
    return Status::InvalidArgument("synopsis estimates are scalar");
  }
  if (query.func == AggregateFunction::kMin ||
      query.func == AggregateFunction::kMax) {
    return Status::Unimplemented(
        "AQP cannot estimate MIN/MAX from a sample (Section 8)");
  }
  const SplitPredicate split = Split(query.predicate);

  // Selected bubbles: the key range is exact (every row of a bubble shares
  // the key, so group-level filtering loses nothing).
  std::vector<const Group*> selected;
  for (const Group& g : groups_) {
    if (g.key >= split.key_lo && g.key <= split.key_hi) selected.push_back(&g);
  }

  ConfidenceInterval ci;
  ci.level = options_.confidence_level;

  if (split.residual.empty() && ExactlyAnswerable(query)) {
    // Key-only predicate over the configured measure: fold the exact
    // moments. Zero-width interval — no sampling was involved.
    double n = 0, s = 0, q = 0;
    for (const Group* g : selected) {
      n += static_cast<double>(g->population);
      s += g->sum;
      q += g->sum_sq;
    }
    switch (query.func) {
      case AggregateFunction::kSum:
        ci.estimate = s;
        break;
      case AggregateFunction::kCount:
        ci.estimate = n;
        break;
      case AggregateFunction::kAvg:
        ci.estimate = n > 0 ? s / n : 0.0;
        break;
      case AggregateFunction::kVar:
        ci.estimate =
            n > 0 ? std::max(0.0, q / n - (s / n) * (s / n)) : 0.0;
        break;
      default:
        return Status::Internal("unreachable");
    }
    ci.half_width = 0.0;
    return ci;
  }

  // Residual predicate (or a foreign measure): estimate per bubble from the
  // reservoirs — each selected bubble is a stratum of known population.
  AQPP_ASSIGN_OR_RETURN(auto mask, split.residual.EvaluateMask(*rows_));
  const bool needs_measure = query.func != AggregateFunction::kCount;
  std::vector<double> measure;
  if (needs_measure) {
    if (query.agg_column >= rows_->num_columns()) {
      return Status::InvalidArgument("measure column out of range");
    }
    measure = rows_->column(query.agg_column).ToDoubleVector();
  }
  std::vector<StratumSeries> strata;
  strata.reserve(selected.size());
  for (const Group* g : selected) {
    StratumSeries st;
    st.population = static_cast<double>(g->population);
    st.c.reserve(g->slots.size());
    st.s.reserve(g->slots.size());
    st.q.reserve(g->slots.size());
    for (size_t slot : g->slots) {
      const double d = mask[slot] ? 1.0 : 0.0;
      const double a = needs_measure ? measure[slot] : 0.0;
      st.c.push_back(d);
      st.s.push_back(a * d);
      st.q.push_back(a * a * d);
    }
    strata.push_back(std::move(st));
  }
  ci = FoldStrata(query.func, strata, PreValues{}, options_.confidence_level);
  ci.half_width *= ci_inflation_;
  return ci;
}

Status GroupedSynopsis::AppendBatchRow(const Table& batch, size_t r,
                                       Group* group) {
  Table::RowBuilder builder = rows_->AddRow();
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    const Column& src = batch.column(c);
    switch (src.type()) {
      case DataType::kDouble:
        builder.Double(src.GetDouble(r));
        break;
      case DataType::kString:
        builder.String(src.GetString(r));
        break;
      case DataType::kInt64:
        builder.Int64(src.GetInt64(r));
        break;
    }
  }
  builder.Done();
  group->slots.push_back(rows_->num_rows() - 1);
  return Status::OK();
}

Status GroupedSynopsis::Absorb(const Table& batch) {
  if (!built_) return Status::FailedPrecondition("synopsis not built");
  AQPP_RETURN_NOT_OK(CheckSameSchema(rows_->schema(), batch.schema()));
  AQPP_RETURN_NOT_OK(ValidateBatchDictionaries(*rows_, batch));
  AQPP_FAILPOINT_RETURN_STATUS("synopsis/absorb");
  const size_t key_col = key_column();
  const Column& keys = batch.column(key_col);
  const Column& measure = batch.column(options_.measure_column);
  // New bubbles are sized off their mass in this batch (their population so
  // far); capacity never shrinks, so later absorbs only grow them.
  std::unordered_map<int64_t, size_t> batch_counts;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    int64_t key;
    if (keys.type() == DataType::kString) {
      AQPP_ASSIGN_OR_RETURN(
          key, rows_->column(key_col).LookupDictionary(keys.GetString(r)));
    } else {
      key = keys.GetInt64(r);
    }
    if (key_index_.count(key) == 0) ++batch_counts[key];
  }
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    int64_t key;
    if (keys.type() == DataType::kString) {
      AQPP_ASSIGN_OR_RETURN(
          key, rows_->column(key_col).LookupDictionary(keys.GetString(r)));
    } else {
      key = keys.GetInt64(r);
    }
    auto it = key_index_.find(key);
    if (it == key_index_.end()) {
      Group g;
      g.key = key;
      g.capacity =
          ReservoirCapacity(options_.sample_rate, batch_counts.at(key));
      key_index_.emplace(key, groups_.size());
      groups_.push_back(std::move(g));
      it = key_index_.find(key);
    }
    Group& g = groups_[it->second];
    const double a = measure.GetDouble(r);
    ++g.population;
    g.sum += a;
    g.sum_sq += a * a;
    if (g.slots.size() < g.capacity) {
      // Reservoir fill phase: keep everything until the bubble is at
      // capacity.
      AQPP_RETURN_NOT_OK(AppendBatchRow(batch, r, &g));
    } else {
      // Algorithm R continuation at capacity.
      const size_t j = static_cast<size_t>(
          absorb_rng_.NextBounded(static_cast<uint64_t>(g.population)));
      if (j < g.capacity) {
        const size_t slot = g.slots[j];
        for (size_t c = 0; c < rows_->num_columns(); ++c) {
          Column& dst = rows_->mutable_column(c);
          const Column& src = batch.column(c);
          if (dst.type() == DataType::kDouble) {
            dst.MutableDoubleData()[slot] = src.GetDouble(r);
          } else if (dst.type() == DataType::kString) {
            AQPP_ASSIGN_OR_RETURN(int64_t code,
                                  dst.LookupDictionary(src.GetString(r)));
            dst.MutableInt64Data()[slot] = code;
          } else {
            dst.MutableInt64Data()[slot] = src.GetInt64(r);
          }
        }
      }
    }
  }
  engine_aligned_ = false;
  return Status::OK();
}

Status GroupedSynopsis::Degrade(double keep_fraction, Rng& rng) {
  if (!built_) return Status::FailedPrecondition("synopsis not built");
  if (!(keep_fraction > 0.0) || keep_fraction > 1.0) {
    return Status::InvalidArgument("keep_fraction must be in (0, 1]");
  }
  // Thin every bubble's reservoir; the exact moments are untouched (they
  // cost O(1) per bubble), so key-only answers stay exact after degrade.
  std::vector<size_t> take;
  for (Group& g : groups_) {
    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(
               keep_fraction * static_cast<double>(g.slots.size()))));
    std::vector<size_t> picks =
        SampleWithoutReplacement(g.slots.size(), keep, rng);
    std::vector<size_t> new_slots;
    new_slots.reserve(keep);
    for (size_t p : picks) {
      new_slots.push_back(take.size());
      take.push_back(g.slots[p]);
    }
    g.slots = std::move(new_slots);
    g.capacity = g.slots.size();
  }
  AQPP_ASSIGN_OR_RETURN(rows_, TakeRows(*rows_, take));
  ci_inflation_ *= 1.0 / keep_fraction;
  engine_aligned_ = false;
  return Status::OK();
}

Status GroupedSynopsis::SerializeTo(std::string* out) const {
  if (!built_) return Status::FailedPrecondition("synopsis not built");
  out->clear();
  out->append(kMagic);
  PutString(out, "grouped");
  PutF64(out, options_.confidence_level);
  PutF64(out, options_.sample_rate);
  PutU64(out, options_.seed);
  PutU64(out, key_column());
  PutU64(out, options_.measure_column);
  PutF64(out, ci_inflation_);
  PutTable(out, *rows_);
  PutU64(out, groups_.size());
  for (const Group& g : groups_) {
    PutI64(out, g.key);
    PutU64(out, g.population);
    PutF64(out, g.sum);
    PutF64(out, g.sum_sq);
    PutU64(out, g.capacity);
    PutU64(out, g.slots.size());
    for (size_t s : g.slots) PutU64(out, s);
  }
  return Status::OK();
}

Status GroupedSynopsis::DeserializeFrom(const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) - 1 ||
      bytes.compare(0, sizeof(kMagic) - 1, kMagic) != 0) {
    return Status::InvalidArgument("bad synopsis magic");
  }
  std::string payload = bytes.substr(sizeof(kMagic) - 1);
  ByteReader r(payload);
  std::string kind;
  if (!r.GetString(&kind)) return Status::InvalidArgument("truncated kind");
  if (kind != "grouped") {
    return Status::InvalidArgument("serialized kind '" + kind +
                                   "' does not match this synopsis "
                                   "('grouped')");
  }
  double level = 0, rate = 0, inflation = 0;
  uint64_t seed = 0, key_col = 0, measure_col = 0;
  if (!r.GetF64(&level) || !r.GetF64(&rate) || !r.GetU64(&seed) ||
      !r.GetU64(&key_col) || !r.GetU64(&measure_col) ||
      !r.GetF64(&inflation)) {
    return Status::InvalidArgument("truncated synopsis header");
  }
  AQPP_ASSIGN_OR_RETURN(std::shared_ptr<Table> rows, GetTable(&r));
  uint64_t num_groups = 0;
  if (!r.GetU64(&num_groups) || num_groups > (1ull << 32)) {
    return Status::InvalidArgument("bad group count");
  }
  std::vector<Group> groups;
  groups.reserve(static_cast<size_t>(num_groups));
  for (uint64_t i = 0; i < num_groups; ++i) {
    Group g;
    uint64_t population = 0, capacity = 0, num_slots = 0;
    if (!r.GetI64(&g.key) || !r.GetU64(&population) || !r.GetF64(&g.sum) ||
        !r.GetF64(&g.sum_sq) || !r.GetU64(&capacity) ||
        !r.GetU64(&num_slots) || num_slots > rows->num_rows()) {
      return Status::InvalidArgument("truncated group");
    }
    g.population = static_cast<size_t>(population);
    g.capacity = static_cast<size_t>(capacity);
    g.slots.resize(static_cast<size_t>(num_slots));
    for (auto& s : g.slots) {
      uint64_t v = 0;
      if (!r.GetU64(&v) || v >= rows->num_rows()) {
        return Status::InvalidArgument("group slot out of range");
      }
      s = static_cast<size_t>(v);
    }
    groups.push_back(std::move(g));
  }
  if (!r.Done()) return Status::InvalidArgument("trailing synopsis bytes");
  if (key_col >= rows->num_columns() || measure_col >= rows->num_columns()) {
    return Status::InvalidArgument("serialized column out of range");
  }
  options_.confidence_level = level;
  options_.sample_rate = rate;
  options_.seed = seed;
  options_.key_columns = {static_cast<size_t>(key_col)};
  options_.measure_column = static_cast<size_t>(measure_col);
  ci_inflation_ = inflation;
  rows_ = std::move(rows);
  groups_ = std::move(groups);
  key_index_.clear();
  size_t population = 0;
  for (size_t i = 0; i < groups_.size(); ++i) {
    key_index_.emplace(groups_[i].key, i);
    population += groups_[i].population;
  }
  absorb_rng_ = Rng(options_.seed ^ (0x9e3779b97f4a7c15ULL * population));
  built_ = true;
  engine_aligned_ = false;
  return Status::OK();
}

size_t GroupedSynopsis::MemoryUsage() const {
  if (!built_) return 0;
  size_t bytes = rows_->MemoryUsage();
  for (const Group& g : groups_) {
    bytes += sizeof(Group) + g.slots.size() * sizeof(size_t);
  }
  return bytes;
}

}  // namespace synopsis
}  // namespace aqpp
