// Little-endian binary encoding helpers shared by the Synopsis
// implementations' Serialize/Deserialize pairs.
//
// Every writer is a pure append onto a std::string; every reader consumes a
// cursor and fails closed (no partial values, no over-reads), so a
// truncated or hostile byte string surfaces as InvalidArgument instead of
// undefined behavior. Doubles round-trip bit-exactly (memcpy of the IEEE
// image), which is what makes serialize -> deserialize -> serialize
// byte-identical.

#ifndef AQPP_SYNOPSIS_SERIALIZE_UTIL_H_
#define AQPP_SYNOPSIS_SERIALIZE_UTIL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "sampling/sample.h"
#include "storage/table.h"

namespace aqpp {
namespace synopsis {

inline void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 8);
}

inline void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

inline void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

inline void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

// Read cursor over a serialized byte string.
struct ByteReader {
  const char* p;
  const char* end;

  explicit ByteReader(const std::string& bytes)
      : p(bytes.data()), end(bytes.data() + bytes.size()) {}

  bool GetU64(uint64_t* v) {
    if (end - p < 8) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
    }
    p += 8;
    *v = out;
    return true;
  }

  bool GetI64(int64_t* v) {
    uint64_t u = 0;
    if (!GetU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool GetF64(double* v) {
    uint64_t bits = 0;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool GetString(std::string* s) {
    uint64_t n = 0;
    if (!GetU64(&n)) return false;
    if (static_cast<uint64_t>(end - p) < n) return false;
    s->assign(p, static_cast<size_t>(n));
    p += n;
    return true;
  }

  bool Done() const { return p == end; }
};

// Table encoding: schema (names + types), then per-column payload (string
// columns carry their dictionary ahead of the codes).
void PutTable(std::string* out, const Table& table);
Result<std::shared_ptr<Table>> GetTable(ByteReader* r);

// Sample encoding: rows table + weights + strata + stratum_info + scalars.
void PutSample(std::string* out, const Sample& sample);
Result<Sample> GetSample(ByteReader* r);

}  // namespace synopsis
}  // namespace aqpp

#endif  // AQPP_SYNOPSIS_SERIALIZE_UTIL_H_
