// GroupedSynopsis: tuple-bubble-style grouped summary over one hot key
// column.
//
// Per distinct key value ("bubble"), the synopsis keeps the exact per-group
// moments of the measure column — (N_g, sum, sum_sq) — plus a small uniform
// reservoir of the group's rows. Queries whose predicate only constrains the
// key column and aggregate the configured measure (or COUNT) are answered
// exactly, with a zero-width interval: the hot group-by/group-filter
// workload the synopsis is built for never pays a sampling error. Queries
// with residual predicates (other columns) fall back to per-group
// estimation — each bubble acts as a stratum over its reservoir, folded with
// the same stratified math as StratifiedSynopsis (strata_fold.h), so
// accuracy degrades gracefully rather than abruptly.
//
// Absorb is fully incremental: exact moments update exactly, reservoirs
// continue Algorithm R, and unlike the other synopses *new* key values are
// admitted (a new bubble is grown), because the exact part makes that sound.

#ifndef AQPP_SYNOPSIS_GROUPED_H_
#define AQPP_SYNOPSIS_GROUPED_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "synopsis/synopsis.h"

namespace aqpp {
namespace synopsis {

class GroupedSynopsis : public Synopsis {
 public:
  explicit GroupedSynopsis(SynopsisOptions options);

  const char* kind() const override { return "grouped"; }

  Status BuildFromTable(const Table& table) override;

  Result<ConfidenceInterval> Estimate(const RangeQuery& query,
                                      const ExecuteControl& control,
                                      Rng& rng) const override;

  Status Absorb(const Table& batch) override;
  Status Degrade(double keep_fraction, Rng& rng) override;

  Status SerializeTo(std::string* out) const override;
  Status DeserializeFrom(const std::string& bytes) override;

  size_t MemoryUsage() const override;

  size_t num_groups() const { return groups_.size(); }

 private:
  struct Group {
    int64_t key = 0;        // ordinal code of the key column
    size_t population = 0;  // N_g: exact row count of the bubble
    double sum = 0;         // exact SUM(measure) over the bubble
    double sum_sq = 0;      // exact SUM(measure^2) over the bubble
    size_t capacity = 0;    // reservoir capacity
    std::vector<size_t> slots;  // row indexes into rows_
  };

  // Splits `predicate` into the key-column range (intersected across key
  // conditions) and the residual predicate over other columns.
  struct SplitPredicate {
    int64_t key_lo;
    int64_t key_hi;
    RangePredicate residual;
  };
  SplitPredicate Split(const RangePredicate& predicate) const;

  // True when (func, agg_column) is answerable from the exact moments.
  bool ExactlyAnswerable(const RangeQuery& query) const;

  Status AppendBatchRow(const Table& batch, size_t r, Group* group);

  size_t key_column() const { return options_.key_columns[0]; }

  std::shared_ptr<Table> rows_;
  std::vector<Group> groups_;  // sorted by key (deterministic serialization)
  std::unordered_map<int64_t, size_t> key_index_;
  Rng absorb_rng_;
};

}  // namespace synopsis
}  // namespace aqpp

#endif  // AQPP_SYNOPSIS_GROUPED_H_
