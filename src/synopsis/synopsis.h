// The pluggable Synopsis interface: one seam between "what summary of the
// data do we keep" and "how does the engine use it".
//
// AQP++'s accuracy rests on the sample-side estimator that corrects the
// precomputed aggregate (Equation 4). Historically that estimator was one
// hard-wired choice — uniform reservoir + bootstrap CIs — baked into the
// engine. A Synopsis abstracts it: Build summarizes a data source, Estimate
// answers a canonical scalar query with a point + confidence interval,
// Absorb keeps the summary fresh under appends, and Serialize/Deserialize
// plug into the warm-handoff seam so prepared state can move between
// processes. Engines select a synopsis per template (EngineOptions::synopsis
// / MultiEngineOptions), the service exposes it over SET SYNOPSIS, and the
// shard PARTIAL wire carries the kind so coordinator and workers agree.
//
// Registered kinds (see docs/synopses.md for selection guidance):
//   "reservoir"        the legacy uniform reservoir + bootstrap CIs,
//                      refactored behind the interface bit-preserving: when
//                      it adopts an engine's sample, every estimate
//                      reproduces the legacy estimator's draws
//                      RNG-step-for-step.
//   "reservoir_closed" same sample, but AVG/VAR intervals come from the
//                      closed-form skew-adjusted delta method
//                      (distribution-sensitive; arXiv:2008.03891 spirit)
//                      instead of the percentile bootstrap.
//   "stratified"       per-stratum synopsis over the stratified sampler;
//                      SUM/COUNT fold exactly like the shard tier's
//                      stratified merge, AVG/VAR by the same delta-method
//                      moment fold (shard fold contract).
//   "grouped"          tuple-bubble-style grouped synopsis (arXiv:2212.10150
//                      spirit): exact per-group moments on a hot key column
//                      plus a per-group row subsample. Queries that only
//                      constrain the key are answered exactly (zero-width
//                      CI); residual predicates are estimated per group.
//
// Statistical contract, enforced by tests/synopsis_test.cc and the
// parameterized coverage battery in tests/coverage_test.cc:
//   * Estimate is a pure function of (built state, canonical query, seed);
//   * Degrade never tightens an interval (conservative inflation);
//   * SerializeTo is deterministic and DeserializeFrom reproduces it byte
//     for byte;
//   * Absorb is statistically equivalent to a rebuild over base + batch and
//     never commits partial state under failpoints ("synopsis/absorb").

#ifndef AQPP_SYNOPSIS_SYNOPSIS_H_
#define AQPP_SYNOPSIS_SYNOPSIS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/execute_control.h"
#include "expr/query.h"
#include "sampling/sample.h"
#include "stats/confidence.h"
#include "storage/column_source.h"
#include "storage/table.h"
#include "synopsis/estimator.h"

namespace aqpp {
namespace synopsis {

struct SynopsisOptions {
  double confidence_level = 0.95;
  // Resamples for bootstrap CIs (reservoir AVG/VAR paths).
  size_t bootstrap_resamples = 120;
  // Build-time sampling budget as a fraction of the population.
  double sample_rate = 0.01;
  // Columns the synopsis keys on: the strata of "stratified", the bubble key
  // of "grouped" (first entry). Engines pass the template's condition
  // columns. Ignored by the reservoir kinds.
  std::vector<size_t> key_columns;
  // Measure column "grouped" keeps exact per-group moments for (the
  // template's aggregation attribute).
  size_t measure_column = 0;
  // AVG/VAR interval construction for the reservoir kinds: percentile
  // bootstrap (the legacy estimator's method) or the closed-form
  // skew-adjusted delta method. "reservoir_closed" is sugar for
  // kind=reservoir + kClosedForm.
  enum class CiMethod { kBootstrap, kClosedForm };
  CiMethod ci_method = CiMethod::kBootstrap;
  // Seed for build-time sampling and Absorb's reservoir continuation.
  uint64_t seed = 42;
};

class Synopsis {
 public:
  virtual ~Synopsis() = default;

  // Registered kind string ("reservoir", "stratified", ...).
  virtual const char* kind() const = 0;
  const SynopsisOptions& options() const { return options_; }

  // ---- Build ---------------------------------------------------------------

  // Summarizes `source` (one materializing pass by default; implementations
  // may override with a streaming build).
  virtual Status Build(ColumnSource& source);

  // Summarizes an in-memory table. The primary build path.
  virtual Status BuildFromTable(const Table& table) = 0;

  // Adopts an engine's already-drawn sample instead of re-sampling.
  // Unimplemented unless the synopsis is sample-backed and the sample's
  // method is compatible; the reservoir kinds accept uniform samples (deep
  // copy — the engine's sample is never mutated) and this is what makes the
  // "reservoir" kind reproduce the legacy estimator bit-for-bit.
  virtual Status BuildFromSample(const Sample& sample);

  // True once Build/BuildFromTable/BuildFromSample/DeserializeFrom
  // succeeded.
  bool built() const { return built_; }

  // True while the synopsis's rows are a row-for-row copy of the engine
  // sample it adopted (BuildFromSample), so engine-computed sample-row masks
  // are valid against it. Cleared by Absorb/Degrade/DeserializeFrom.
  bool engine_aligned() const { return engine_aligned_; }

  // ---- Estimation ----------------------------------------------------------

  // Point + CI for a canonical scalar query — a pure function of (built
  // state, query, rng state). The Rng-threading overload is what engines
  // call, so a synopsis estimate consumes the caller's stream exactly like
  // the legacy estimator did (bit-identity with the pre-refactor engine).
  virtual Result<ConfidenceInterval> Estimate(const RangeQuery& query,
                                              const ExecuteControl& control,
                                              Rng& rng) const = 0;

  // Convenience: runs on a private Rng seeded by control.seed (0 if unset).
  Result<ConfidenceInterval> Estimate(const RangeQuery& query,
                                      const ExecuteControl& control) const;

  // AQP++ difference path: pre(D) + (q̂(S) - p̂re(S)). Default Unimplemented —
  // the engine falls back to the direct estimate (used_pre = false).
  virtual Result<ConfidenceInterval> EstimateWithPre(
      const RangeQuery& query, const RangePredicate& pre_predicate,
      const PreValues& pre, const ExecuteControl& control, Rng& rng) const;

  // Mask-reusing difference variant for engine-aligned synopses: the masks
  // are over the engine's sample rows (identifier mask reuse). Only valid
  // when engine_aligned().
  virtual Result<ConfidenceInterval> EstimateWithPreMasked(
      const RangeQuery& query, const std::vector<uint8_t>& q_mask,
      const std::vector<uint8_t>& pre_mask, const PreValues& pre,
      const ExecuteControl& control, Rng& rng) const;

  // ---- Maintenance ---------------------------------------------------------

  // Ingests an appended batch (same schema as the base data). Implementations
  // validate the whole batch before mutating anything (stage-validate-commit)
  // and share the "synopsis/absorb" failpoint, so a torn absorb can never
  // leave partial state behind.
  virtual Status Absorb(const Table& batch) = 0;

  // Thins the retained rows to `keep_fraction` (memory pressure relief),
  // inflating every subsequent interval conservatively. Contract: for any
  // fixed query, the CI after Degrade is never tighter than before.
  virtual Status Degrade(double keep_fraction, Rng& rng) = 0;

  // ---- Persistence (warm-handoff seam) -------------------------------------

  // Deterministic byte encoding of the built state: serializing, restoring
  // with DeserializeFrom, and serializing again yields identical bytes.
  virtual Status SerializeTo(std::string* out) const = 0;
  virtual Status DeserializeFrom(const std::string& bytes) = 0;

  virtual size_t MemoryUsage() const = 0;

  // Multiplicative half-width inflation accumulated by Degrade calls.
  double ci_inflation() const { return ci_inflation_; }

 protected:
  explicit Synopsis(SynopsisOptions options) : options_(std::move(options)) {}

  SynopsisOptions options_;
  bool built_ = false;
  bool engine_aligned_ = false;
  double ci_inflation_ = 1.0;
};

// ---- Registry ---------------------------------------------------------------

using SynopsisFactory =
    std::function<std::unique_ptr<Synopsis>(const SynopsisOptions&)>;

// Creates a registered synopsis (built-ins: "reservoir", "reservoir_closed",
// "stratified", "grouped"). NotFound for unknown kinds.
Result<std::unique_ptr<Synopsis>> CreateSynopsis(const std::string& kind,
                                                 const SynopsisOptions& opts);

// Registers an external kind (tests / experiments). Replaces on collision.
void RegisterSynopsis(const std::string& kind, SynopsisFactory factory);

// All registered kind names, sorted (deterministic for parameterized tests).
std::vector<std::string> RegisteredSynopses();

bool IsSynopsisRegistered(const std::string& kind);

// ---- Maintenance adapter ----------------------------------------------------

// Observer-carrying wrapper matching CubeMaintainer / ReservoirMaintainer:
// the service layer registers cache invalidation as the update observer, so
// a synopsis absorb can never leave stale cached answers servable.
class SynopsisMaintainer {
 public:
  // `s` is borrowed and must outlive the maintainer.
  explicit SynopsisMaintainer(Synopsis* s) : synopsis_(s) {}

  Status Absorb(const Table& batch);

  void set_update_observer(std::function<void()> observer) {
    observer_ = std::move(observer);
  }

  const Synopsis& synopsis() const { return *synopsis_; }

 private:
  Synopsis* synopsis_;
  std::function<void()> observer_;
};

// ---- Shared implementation helpers ------------------------------------------

// Column-for-column name/type equality (absorbed batches must match the
// summarized schema exactly).
Status CheckSameSchema(const Schema& expected, const Schema& actual);

// Verifies every string value in `batch` already exists in the corresponding
// dictionary of `rows` — the stage-validate-commit precondition shared by all
// Absorb implementations (new categories would invalidate the alphabetical
// ordinal coding; callers must re-build instead).
Status ValidateBatchDictionaries(const Table& rows, const Table& batch);

}  // namespace synopsis
}  // namespace aqpp

#endif  // AQPP_SYNOPSIS_SYNOPSIS_H_
