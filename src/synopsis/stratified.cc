#include "synopsis/stratified.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/failpoint.h"
#include "common/logging.h"
#include "sampling/samplers.h"
#include "synopsis/serialize_util.h"
#include "synopsis/strata_fold.h"

namespace aqpp {
namespace synopsis {

namespace {
constexpr char kMagic[] = "AQPPSYN1";
}  // namespace

StratifiedSynopsis::StratifiedSynopsis(SynopsisOptions options)
    : Synopsis(std::move(options)), absorb_rng_(options_.seed) {}

void StratifiedSynopsis::RebuildStratumIndex() {
  key_to_stratum_.clear();
  stratum_slots_.assign(sample_.stratum_info.size(), {});
  for (size_t i = 0; i < sample_.size(); ++i) {
    stratum_slots_[static_cast<size_t>(sample_.strata[i])].push_back(i);
  }
  if (options_.key_columns.empty()) return;
  const Table& rows = *sample_.rows;
  for (size_t i = 0; i < sample_.size(); ++i) {
    GroupKey key;
    key.values.reserve(options_.key_columns.size());
    for (size_t c : options_.key_columns) {
      key.values.push_back(rows.column(c).GetInt64(i));
    }
    key_to_stratum_.emplace(std::move(key), sample_.strata[i]);
  }
}

Status StratifiedSynopsis::BuildFromTable(const Table& table) {
  if (table.num_rows() == 0) {
    return Status::FailedPrecondition("cannot build a synopsis of no rows");
  }
  if (options_.key_columns.empty()) {
    return Status::InvalidArgument(
        "stratified synopsis requires key_columns (the stratification "
        "attributes)");
  }
  for (size_t c : options_.key_columns) {
    if (c >= table.num_columns()) {
      return Status::InvalidArgument("key column out of range");
    }
    if (table.column(c).type() == DataType::kDouble) {
      return Status::InvalidArgument("key columns must be ordinal");
    }
  }
  Rng build_rng(options_.seed);
  AQPP_ASSIGN_OR_RETURN(
      sample_, CreateStratifiedSample(table, options_.key_columns,
                                      options_.sample_rate, build_rng));
  absorb_rng_ = Rng(options_.seed);
  RebuildStratumIndex();
  built_ = true;
  engine_aligned_ = false;
  ci_inflation_ = 1.0;
  return Status::OK();
}

Status StratifiedSynopsis::BuildFromSample(const Sample& sample) {
  if (sample.method != SamplingMethod::kStratified) {
    return Status::Unimplemented(
        "stratified synopsis adopts stratified samples only");
  }
  if (sample.size() == 0) {
    return Status::FailedPrecondition("cannot adopt an empty sample");
  }
  std::vector<size_t> all(sample.size());
  std::iota(all.begin(), all.end(), 0u);
  Sample copy;
  AQPP_ASSIGN_OR_RETURN(copy.rows, TakeRows(*sample.rows, all));
  copy.weights = sample.weights;
  copy.strata = sample.strata;
  copy.stratum_info = sample.stratum_info;
  copy.population_size = sample.population_size;
  copy.sampling_fraction = sample.sampling_fraction;
  copy.method = sample.method;
  sample_ = std::move(copy);
  absorb_rng_ = Rng(options_.seed);
  RebuildStratumIndex();
  built_ = true;
  engine_aligned_ = true;
  ci_inflation_ = 1.0;
  return Status::OK();
}

Result<ConfidenceInterval> StratifiedSynopsis::Estimate(
    const RangeQuery& query, const ExecuteControl& control, Rng& rng) const {
  (void)rng;  // fully closed-form: consumes no draws
  if (!built_) return Status::FailedPrecondition("synopsis not built");
  if (!query.group_by.empty()) {
    return Status::InvalidArgument("synopsis estimates are scalar");
  }
  const std::vector<uint8_t>* mask = nullptr;
  std::vector<uint8_t> local_mask;
  if (control.query_mask != nullptr && engine_aligned_ &&
      control.query_mask->size() == sample_.size()) {
    mask = control.query_mask;
  } else {
    AQPP_ASSIGN_OR_RETURN(local_mask,
                          query.predicate.EvaluateMask(*sample_.rows));
    mask = &local_mask;
  }
  return EstimateSeries(query, *mask, nullptr, PreValues{});
}

Result<ConfidenceInterval> StratifiedSynopsis::EstimateWithPre(
    const RangeQuery& query, const RangePredicate& pre_predicate,
    const PreValues& pre, const ExecuteControl& control, Rng& rng) const {
  if (!built_) return Status::FailedPrecondition("synopsis not built");
  AQPP_ASSIGN_OR_RETURN(auto q_mask,
                        query.predicate.EvaluateMask(*sample_.rows));
  AQPP_ASSIGN_OR_RETURN(auto pre_mask,
                        pre_predicate.EvaluateMask(*sample_.rows));
  return EstimateWithPreMasked(query, q_mask, pre_mask, pre, control, rng);
}

Result<ConfidenceInterval> StratifiedSynopsis::EstimateWithPreMasked(
    const RangeQuery& query, const std::vector<uint8_t>& q_mask,
    const std::vector<uint8_t>& pre_mask, const PreValues& pre,
    const ExecuteControl& control, Rng& rng) const {
  (void)control;
  (void)rng;
  if (!built_) return Status::FailedPrecondition("synopsis not built");
  if (!query.group_by.empty()) {
    return Status::InvalidArgument("synopsis estimates are scalar");
  }
  if (q_mask.size() != sample_.size() || pre_mask.size() != sample_.size()) {
    return Status::InvalidArgument("mask length does not match synopsis rows");
  }
  return EstimateSeries(query, q_mask, &pre_mask, pre);
}

Result<ConfidenceInterval> StratifiedSynopsis::EstimateSeries(
    const RangeQuery& query, const std::vector<uint8_t>& q_mask,
    const std::vector<uint8_t>* pre_mask, const PreValues& pre) const {
  const Table& rows = *sample_.rows;
  const bool needs_measure = query.func != AggregateFunction::kCount;
  std::vector<double> measure;
  if (needs_measure) {
    if (query.agg_column >= rows.num_columns()) {
      return Status::InvalidArgument("measure column out of range");
    }
    if (query.func == AggregateFunction::kMin ||
        query.func == AggregateFunction::kMax) {
      return Status::Unimplemented(
          "AQP cannot estimate MIN/MAX from a sample (Section 8)");
    }
    measure = rows.column(query.agg_column).ToDoubleVector();
  }

  std::vector<StratumSeries> strata(stratum_slots_.size());
  for (size_t h = 0; h < stratum_slots_.size(); ++h) {
    const auto& slots = stratum_slots_[h];
    StratumSeries& st = strata[h];
    st.population =
        static_cast<double>(sample_.stratum_info[h].population_rows);
    st.c.reserve(slots.size());
    st.s.reserve(slots.size());
    st.q.reserve(slots.size());
    for (size_t i : slots) {
      double d = q_mask[i] ? 1.0 : 0.0;
      if (pre_mask != nullptr && (*pre_mask)[i]) d -= 1.0;
      const double a = needs_measure ? measure[i] : 0.0;
      st.c.push_back(d);
      st.s.push_back(a * d);
      st.q.push_back(a * a * d);
    }
  }
  ConfidenceInterval ci =
      FoldStrata(query.func, strata, pre, options_.confidence_level);
  ci.half_width *= ci_inflation_;
  return ci;
}

Status StratifiedSynopsis::Absorb(const Table& batch) {
  if (!built_) return Status::FailedPrecondition("synopsis not built");
  AQPP_RETURN_NOT_OK(CheckSameSchema(sample_.rows->schema(), batch.schema()));
  if (options_.key_columns.empty()) {
    return Status::FailedPrecondition(
        "stratified absorb requires key_columns");
  }
  AQPP_RETURN_NOT_OK(ValidateBatchDictionaries(*sample_.rows, batch));
  // Stage: resolve every batch row's stratum before mutating anything, so
  // an unknown key can never leave a half-absorbed batch behind.
  std::vector<int32_t> row_stratum(batch.num_rows());
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    GroupKey key;
    key.values.reserve(options_.key_columns.size());
    for (size_t c : options_.key_columns) {
      const Column& col = batch.column(c);
      if (col.type() == DataType::kString) {
        AQPP_ASSIGN_OR_RETURN(
            int64_t code,
            sample_.rows->column(c).LookupDictionary(col.GetString(r)));
        key.values.push_back(code);
      } else {
        key.values.push_back(col.GetInt64(r));
      }
    }
    auto it = key_to_stratum_.find(key);
    if (it == key_to_stratum_.end()) {
      return Status::InvalidArgument(
          "appended row belongs to a stratum never seen at build time; "
          "re-build the synopsis to admit new strata");
    }
    row_stratum[r] = it->second;
  }
  AQPP_FAILPOINT_RETURN_STATUS("synopsis/absorb");
  // Commit: Algorithm R per stratum, capacity n_h fixed at build time.
  Table& rows = *sample_.rows;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    const size_t h = static_cast<size_t>(row_stratum[r]);
    StratumInfo& info = sample_.stratum_info[h];
    ++info.population_rows;
    const size_t n_h = stratum_slots_[h].size();
    if (n_h == 0) continue;
    const size_t j =
        static_cast<size_t>(absorb_rng_.NextBounded(info.population_rows));
    if (j >= n_h) continue;
    const size_t slot = stratum_slots_[h][j];
    for (size_t c = 0; c < rows.num_columns(); ++c) {
      Column& dst = rows.mutable_column(c);
      const Column& src = batch.column(c);
      if (dst.type() == DataType::kDouble) {
        dst.MutableDoubleData()[slot] = src.GetDouble(r);
      } else if (dst.type() == DataType::kString) {
        AQPP_ASSIGN_OR_RETURN(int64_t code,
                              dst.LookupDictionary(src.GetString(r)));
        dst.MutableInt64Data()[slot] = code;
      } else {
        dst.MutableInt64Data()[slot] = src.GetInt64(r);
      }
    }
  }
  size_t population = 0;
  for (const StratumInfo& info : sample_.stratum_info) {
    population += info.population_rows;
  }
  sample_.population_size = population;
  sample_.sampling_fraction =
      population > 0
          ? static_cast<double>(sample_.size()) / static_cast<double>(population)
          : 0.0;
  for (size_t i = 0; i < sample_.size(); ++i) {
    const StratumInfo& info =
        sample_.stratum_info[static_cast<size_t>(sample_.strata[i])];
    sample_.weights[i] = static_cast<double>(info.population_rows) /
                         static_cast<double>(info.sample_rows);
  }
  engine_aligned_ = false;
  return Status::OK();
}

Status StratifiedSynopsis::Degrade(double keep_fraction, Rng& rng) {
  if (!built_) return Status::FailedPrecondition("synopsis not built");
  if (!(keep_fraction > 0.0) || keep_fraction > 1.0) {
    return Status::InvalidArgument("keep_fraction must be in (0, 1]");
  }
  AQPP_ASSIGN_OR_RETURN(sample_, Subsample(sample_, keep_fraction, rng));
  ci_inflation_ *= 1.0 / keep_fraction;
  RebuildStratumIndex();
  engine_aligned_ = false;
  return Status::OK();
}

Status StratifiedSynopsis::SerializeTo(std::string* out) const {
  if (!built_) return Status::FailedPrecondition("synopsis not built");
  out->clear();
  out->append(kMagic);
  PutString(out, "stratified");
  PutF64(out, options_.confidence_level);
  PutF64(out, options_.sample_rate);
  PutU64(out, options_.seed);
  PutU64(out, options_.key_columns.size());
  for (size_t c : options_.key_columns) PutU64(out, c);
  PutF64(out, ci_inflation_);
  PutSample(out, sample_);
  return Status::OK();
}

Status StratifiedSynopsis::DeserializeFrom(const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) - 1 ||
      bytes.compare(0, sizeof(kMagic) - 1, kMagic) != 0) {
    return Status::InvalidArgument("bad synopsis magic");
  }
  std::string payload = bytes.substr(sizeof(kMagic) - 1);
  ByteReader r(payload);
  std::string kind;
  if (!r.GetString(&kind)) return Status::InvalidArgument("truncated kind");
  if (kind != "stratified") {
    return Status::InvalidArgument("serialized kind '" + kind +
                                   "' does not match this synopsis "
                                   "('stratified')");
  }
  double level = 0, rate = 0, inflation = 0;
  uint64_t seed = 0, num_keys = 0;
  if (!r.GetF64(&level) || !r.GetF64(&rate) || !r.GetU64(&seed) ||
      !r.GetU64(&num_keys) || num_keys > (1u << 16)) {
    return Status::InvalidArgument("truncated synopsis header");
  }
  std::vector<size_t> key_columns(static_cast<size_t>(num_keys));
  for (auto& c : key_columns) {
    uint64_t v = 0;
    if (!r.GetU64(&v)) return Status::InvalidArgument("truncated key columns");
    c = static_cast<size_t>(v);
  }
  if (!r.GetF64(&inflation)) {
    return Status::InvalidArgument("truncated synopsis header");
  }
  AQPP_ASSIGN_OR_RETURN(Sample sample, GetSample(&r));
  if (!r.Done()) return Status::InvalidArgument("trailing synopsis bytes");
  if (sample.size() == 0 || sample.method != SamplingMethod::kStratified) {
    return Status::InvalidArgument("serialized sample is not stratified");
  }
  for (size_t c : key_columns) {
    if (c >= sample.rows->num_columns()) {
      return Status::InvalidArgument("serialized key column out of range");
    }
  }
  options_.confidence_level = level;
  options_.sample_rate = rate;
  options_.seed = seed;
  options_.key_columns = std::move(key_columns);
  ci_inflation_ = inflation;
  sample_ = std::move(sample);
  absorb_rng_ =
      Rng(options_.seed ^ (0x9e3779b97f4a7c15ULL * sample_.population_size));
  RebuildStratumIndex();
  built_ = true;
  engine_aligned_ = false;
  return Status::OK();
}

size_t StratifiedSynopsis::MemoryUsage() const {
  if (!built_) return 0;
  size_t bytes = sample_.MemoryUsage();
  bytes += key_to_stratum_.size() *
           (sizeof(GroupKey) + sizeof(int32_t) +
            options_.key_columns.size() * sizeof(int64_t));
  for (const auto& slots : stratum_slots_) {
    bytes += slots.size() * sizeof(size_t);
  }
  return bytes;
}

}  // namespace synopsis
}  // namespace aqpp
