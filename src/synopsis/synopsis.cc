#include "synopsis/synopsis.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/failpoint.h"
#include "common/logging.h"
#include "synopsis/grouped.h"
#include "synopsis/reservoir.h"
#include "synopsis/serialize_util.h"
#include "synopsis/stratified.h"

namespace aqpp {
namespace synopsis {

// ---- Interface defaults -----------------------------------------------------

Status Synopsis::Build(ColumnSource& source) {
  // Default: one materializing pass over the source, then the table build.
  // Streaming implementations override this; the materialization is bounded
  // by the source size, which is fine for the in-memory paths that use it.
  if (source.num_rows() == 0) {
    return Status::FailedPrecondition("empty source");
  }
  Table table(source.schema());
  table.Reserve(static_cast<size_t>(source.num_rows()));
  const size_t num_cols = source.schema().num_columns();
  for (size_t c = 0; c < num_cols; ++c) {
    Column& dst = table.mutable_column(c);
    if (dst.type() == DataType::kString) {
      dst.SetDictionary(source.dictionary(c));
    }
    for (size_t e = 0; e < source.num_extents(); ++e) {
      AQPP_ASSIGN_OR_RETURN(auto pinned, source.Pin(e, c));
      if (pinned.type == DataType::kDouble) {
        auto& dbls = dst.MutableDoubleData();
        dbls.insert(dbls.end(), pinned.dbls, pinned.dbls + pinned.rows);
      } else {
        auto& ints = dst.MutableInt64Data();
        ints.insert(ints.end(), pinned.ints, pinned.ints + pinned.rows);
      }
    }
    source.ReleaseBefore(source.num_extents());
  }
  table.SetRowCountFromColumns();
  return BuildFromTable(table);
}

Status Synopsis::BuildFromSample(const Sample& sample) {
  (void)sample;
  return Status::Unimplemented(std::string(kind()) +
                               " synopsis cannot adopt an external sample");
}

Result<ConfidenceInterval> Synopsis::Estimate(
    const RangeQuery& query, const ExecuteControl& control) const {
  Rng rng(control.seed.value_or(0));
  return Estimate(query, control, rng);
}

Result<ConfidenceInterval> Synopsis::EstimateWithPre(
    const RangeQuery& query, const RangePredicate& pre_predicate,
    const PreValues& pre, const ExecuteControl& control, Rng& rng) const {
  (void)query;
  (void)pre_predicate;
  (void)pre;
  (void)control;
  (void)rng;
  return Status::Unimplemented(std::string(kind()) +
                               " synopsis has no difference path");
}

Result<ConfidenceInterval> Synopsis::EstimateWithPreMasked(
    const RangeQuery& query, const std::vector<uint8_t>& q_mask,
    const std::vector<uint8_t>& pre_mask, const PreValues& pre,
    const ExecuteControl& control, Rng& rng) const {
  (void)query;
  (void)q_mask;
  (void)pre_mask;
  (void)pre;
  (void)control;
  (void)rng;
  return Status::Unimplemented(std::string(kind()) +
                               " synopsis has no mask-reusing difference path");
}

// ---- Registry ---------------------------------------------------------------

namespace {

std::mutex& RegistryMutex() {
  static std::mutex mu;
  return mu;
}

// Ordered map: RegisteredSynopses() enumeration is deterministic, which the
// parameterized coverage battery relies on. Built-ins are registered
// explicitly here (not via static initializers, which a static-lib link can
// strip).
std::map<std::string, SynopsisFactory>& Registry() {
  static std::map<std::string, SynopsisFactory>* registry = [] {
    auto* m = new std::map<std::string, SynopsisFactory>();
    (*m)["reservoir"] = [](const SynopsisOptions& opts) {
      SynopsisOptions o = opts;
      o.ci_method = SynopsisOptions::CiMethod::kBootstrap;
      return std::make_unique<ReservoirSynopsis>("reservoir", o);
    };
    (*m)["reservoir_closed"] = [](const SynopsisOptions& opts) {
      SynopsisOptions o = opts;
      o.ci_method = SynopsisOptions::CiMethod::kClosedForm;
      return std::make_unique<ReservoirSynopsis>("reservoir_closed", o);
    };
    (*m)["stratified"] = [](const SynopsisOptions& opts) {
      return std::make_unique<StratifiedSynopsis>(opts);
    };
    (*m)["grouped"] = [](const SynopsisOptions& opts) {
      return std::make_unique<GroupedSynopsis>(opts);
    };
    return m;
  }();
  return *registry;
}

}  // namespace

Result<std::unique_ptr<Synopsis>> CreateSynopsis(const std::string& kind,
                                                 const SynopsisOptions& opts) {
  if (opts.confidence_level <= 0 || opts.confidence_level >= 1) {
    return Status::InvalidArgument("confidence_level must be in (0, 1)");
  }
  if (opts.sample_rate <= 0 || opts.sample_rate > 1) {
    return Status::InvalidArgument("sample_rate must be in (0, 1]");
  }
  SynopsisFactory factory;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    auto it = Registry().find(kind);
    if (it == Registry().end()) {
      return Status::NotFound("unknown synopsis kind '" + kind + "'");
    }
    factory = it->second;
  }
  return factory(opts);
}

void RegisterSynopsis(const std::string& kind, SynopsisFactory factory) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Registry()[kind] = std::move(factory);
}

std::vector<std::string> RegisteredSynopses() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<std::string> kinds;
  kinds.reserve(Registry().size());
  for (const auto& [kind, factory] : Registry()) kinds.push_back(kind);
  return kinds;
}

bool IsSynopsisRegistered(const std::string& kind) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  return Registry().count(kind) > 0;
}

// ---- Maintenance adapter ----------------------------------------------------

Status SynopsisMaintainer::Absorb(const Table& batch) {
  AQPP_RETURN_NOT_OK(synopsis_->Absorb(batch));
  if (observer_) observer_();
  return Status::OK();
}

// ---- Shared implementation helpers ------------------------------------------

Status CheckSameSchema(const Schema& expected, const Schema& actual) {
  if (expected.num_columns() != actual.num_columns()) {
    return Status::InvalidArgument("batch schema arity mismatch");
  }
  for (size_t c = 0; c < expected.num_columns(); ++c) {
    if (expected.column(c).name != actual.column(c).name ||
        expected.column(c).type != actual.column(c).type) {
      return Status::InvalidArgument("batch schema mismatch at column '" +
                                     expected.column(c).name + "'");
    }
  }
  return Status::OK();
}

Status ValidateBatchDictionaries(const Table& rows, const Table& batch) {
  for (size_t c = 0; c < rows.num_columns(); ++c) {
    if (rows.column(c).type() != DataType::kString) continue;
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      if (!rows.column(c)
               .LookupDictionary(batch.column(c).GetString(r))
               .ok()) {
        return Status::InvalidArgument(
            "appended value '" + batch.column(c).GetString(r) +
            "' is not in the synopsis dictionary of column '" +
            rows.schema().column(c).name +
            "'; new categories require a rebuild");
      }
    }
  }
  return Status::OK();
}

// ---- Shared serialization helpers -------------------------------------------

void PutTable(std::string* out, const Table& table) {
  const Schema& schema = table.schema();
  PutU64(out, schema.num_columns());
  PutU64(out, table.num_rows());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    PutString(out, schema.column(c).name);
    PutU64(out, static_cast<uint64_t>(schema.column(c).type));
  }
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const Column& col = table.column(c);
    if (col.type() == DataType::kString) {
      PutU64(out, col.dictionary().size());
      for (const std::string& v : col.dictionary()) PutString(out, v);
    }
    if (col.type() == DataType::kDouble) {
      for (size_t r = 0; r < table.num_rows(); ++r) {
        PutF64(out, col.DoubleData()[r]);
      }
    } else {
      for (size_t r = 0; r < table.num_rows(); ++r) {
        PutI64(out, col.Int64Data()[r]);
      }
    }
  }
}

Result<std::shared_ptr<Table>> GetTable(ByteReader* r) {
  uint64_t num_cols = 0, num_rows = 0;
  if (!r->GetU64(&num_cols) || !r->GetU64(&num_rows)) {
    return Status::InvalidArgument("truncated table header");
  }
  // Fail-closed caps against hostile byte strings.
  if (num_cols == 0 || num_cols > (1u << 16) || num_rows > (1ull << 40)) {
    return Status::InvalidArgument("implausible table dimensions");
  }
  std::vector<ColumnSchema> specs;
  for (uint64_t c = 0; c < num_cols; ++c) {
    ColumnSchema spec;
    uint64_t type = 0;
    if (!r->GetString(&spec.name) || !r->GetU64(&type) || type > 2) {
      return Status::InvalidArgument("truncated table schema");
    }
    spec.type = static_cast<DataType>(type);
    specs.push_back(std::move(spec));
  }
  auto table = std::make_shared<Table>(Schema(specs));
  for (uint64_t c = 0; c < num_cols; ++c) {
    Column& col = table->mutable_column(static_cast<size_t>(c));
    if (col.type() == DataType::kString) {
      uint64_t dict_size = 0;
      if (!r->GetU64(&dict_size) || dict_size > (1ull << 32)) {
        return Status::InvalidArgument("truncated dictionary");
      }
      std::vector<std::string> dict;
      dict.reserve(static_cast<size_t>(dict_size));
      for (uint64_t i = 0; i < dict_size; ++i) {
        std::string v;
        if (!r->GetString(&v)) {
          return Status::InvalidArgument("truncated dictionary entry");
        }
        dict.push_back(std::move(v));
      }
      col.SetDictionary(std::move(dict));
    }
    if (col.type() == DataType::kDouble) {
      auto& dbls = col.MutableDoubleData();
      dbls.resize(static_cast<size_t>(num_rows));
      for (auto& v : dbls) {
        if (!r->GetF64(&v)) {
          return Status::InvalidArgument("truncated double column");
        }
      }
    } else {
      auto& ints = col.MutableInt64Data();
      ints.resize(static_cast<size_t>(num_rows));
      for (auto& v : ints) {
        if (!r->GetI64(&v)) {
          return Status::InvalidArgument("truncated int column");
        }
      }
      if (col.type() == DataType::kString) {
        for (int64_t v : ints) {
          if (v < 0 ||
              static_cast<size_t>(v) >= col.dictionary().size()) {
            return Status::InvalidArgument("string code out of dictionary");
          }
        }
      }
    }
  }
  table->SetRowCountFromColumns();
  return table;
}

void PutSample(std::string* out, const Sample& sample) {
  PutTable(out, *sample.rows);
  PutU64(out, sample.weights.size());
  for (double w : sample.weights) PutF64(out, w);
  PutU64(out, sample.strata.size());
  for (int32_t s : sample.strata) PutI64(out, s);
  PutU64(out, sample.stratum_info.size());
  for (const StratumInfo& info : sample.stratum_info) {
    PutU64(out, info.population_rows);
    PutU64(out, info.sample_rows);
  }
  PutU64(out, sample.population_size);
  PutF64(out, sample.sampling_fraction);
  PutU64(out, static_cast<uint64_t>(sample.method));
}

Result<Sample> GetSample(ByteReader* r) {
  Sample sample;
  AQPP_ASSIGN_OR_RETURN(sample.rows, GetTable(r));
  uint64_t n = 0;
  if (!r->GetU64(&n) || n != sample.rows->num_rows()) {
    return Status::InvalidArgument("weight count mismatch");
  }
  sample.weights.resize(static_cast<size_t>(n));
  for (auto& w : sample.weights) {
    if (!r->GetF64(&w)) return Status::InvalidArgument("truncated weights");
  }
  uint64_t num_strata = 0;
  if (!r->GetU64(&num_strata) ||
      (num_strata != 0 && num_strata != sample.rows->num_rows())) {
    return Status::InvalidArgument("strata count mismatch");
  }
  sample.strata.resize(static_cast<size_t>(num_strata));
  for (auto& s : sample.strata) {
    int64_t v = 0;
    if (!r->GetI64(&v) || v < 0 || v > (1 << 30)) {
      return Status::InvalidArgument("bad stratum id");
    }
    s = static_cast<int32_t>(v);
  }
  uint64_t num_info = 0;
  if (!r->GetU64(&num_info) || num_info > (1u << 24)) {
    return Status::InvalidArgument("bad stratum info count");
  }
  sample.stratum_info.resize(static_cast<size_t>(num_info));
  for (auto& info : sample.stratum_info) {
    uint64_t pop = 0, sam = 0;
    if (!r->GetU64(&pop) || !r->GetU64(&sam) || sam > pop) {
      return Status::InvalidArgument("bad stratum info");
    }
    info.population_rows = static_cast<size_t>(pop);
    info.sample_rows = static_cast<size_t>(sam);
  }
  for (int32_t s : sample.strata) {
    if (static_cast<size_t>(s) >= sample.stratum_info.size()) {
      return Status::InvalidArgument("stratum id out of range");
    }
  }
  uint64_t pop = 0, method = 0;
  if (!r->GetU64(&pop) || !r->GetF64(&sample.sampling_fraction) ||
      !r->GetU64(&method) || method > 4) {
    return Status::InvalidArgument("truncated sample scalars");
  }
  sample.population_size = static_cast<size_t>(pop);
  sample.method = static_cast<SamplingMethod>(method);
  return sample;
}

}  // namespace synopsis
}  // namespace aqpp
