// StratifiedSynopsis: per-stratum summaries over the stratified sampler.
//
// Strata are the distinct key-column value combinations (BlinkDB-style
// allocation, sampling/samplers.h). Estimation folds per-stratum moments
// exactly like the shard tier's stratified merge ("the shard fold
// contract", src/shard/partial.cc):
//   SUM/COUNT   est = sum_h N_h mean_h,  Var = sum_h N_h^2 s_h^2 / n_h
//   AVG/VAR     delta method on the merged (c, s, q) moment totals with
//               per-stratum variance/covariance terms weighted N_h^2 / n_h
// so a per-stratum synopsis over one table and a scatter-gather merge over
// shards of the same table agree on the estimator math. Estimation is fully
// closed-form: it consumes no RNG draws, making estimates trivially
// reproducible across thread counts.
//
// Absorb continues Vitter's Algorithm R independently per stratum (each
// stratum is its own reservoir with capacity n_h); batch rows whose key was
// never seen at build time are rejected before any mutation.

#ifndef AQPP_SYNOPSIS_STRATIFIED_H_
#define AQPP_SYNOPSIS_STRATIFIED_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "synopsis/synopsis.h"

namespace aqpp {
namespace synopsis {

class StratifiedSynopsis : public Synopsis {
 public:
  explicit StratifiedSynopsis(SynopsisOptions options);

  const char* kind() const override { return "stratified"; }

  Status BuildFromTable(const Table& table) override;
  // Accepts stratified samples (deep copy).
  Status BuildFromSample(const Sample& sample) override;

  Result<ConfidenceInterval> Estimate(const RangeQuery& query,
                                      const ExecuteControl& control,
                                      Rng& rng) const override;
  Result<ConfidenceInterval> EstimateWithPre(const RangeQuery& query,
                                             const RangePredicate& pre_predicate,
                                             const PreValues& pre,
                                             const ExecuteControl& control,
                                             Rng& rng) const override;
  Result<ConfidenceInterval> EstimateWithPreMasked(
      const RangeQuery& query, const std::vector<uint8_t>& q_mask,
      const std::vector<uint8_t>& pre_mask, const PreValues& pre,
      const ExecuteControl& control, Rng& rng) const override;

  Status Absorb(const Table& batch) override;
  Status Degrade(double keep_fraction, Rng& rng) override;

  Status SerializeTo(std::string* out) const override;
  Status DeserializeFrom(const std::string& bytes) override;

  size_t MemoryUsage() const override;

  const Sample& sample() const { return sample_; }

 private:
  // Shared estimation fold. `pre_mask` null means the direct (pre = phi)
  // case; `pre` then carries zeros.
  Result<ConfidenceInterval> EstimateSeries(
      const RangeQuery& query, const std::vector<uint8_t>& q_mask,
      const std::vector<uint8_t>* pre_mask, const PreValues& pre) const;

  // Rebuilds key->stratum and per-stratum row-slot indexes from the sample
  // (after build, adopt, degrade, deserialize).
  void RebuildStratumIndex();

  Sample sample_;
  Rng absorb_rng_;
  // GroupKey over options_.key_columns -> stratum id (empty when the sample
  // was adopted without key columns configured; Absorb then refuses).
  std::unordered_map<GroupKey, int32_t, GroupKeyHash> key_to_stratum_;
  // Per stratum: indexes of its rows in sample_.rows (row order).
  std::vector<std::vector<size_t>> stratum_slots_;
};

}  // namespace synopsis
}  // namespace aqpp

#endif  // AQPP_SYNOPSIS_STRATIFIED_H_
