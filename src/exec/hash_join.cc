#include "exec/hash_join.h"

#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"

namespace aqpp {

Result<std::shared_ptr<Table>> HashJoinFk(const Table& fact, size_t fk_column,
                                          const Table& dimension,
                                          size_t pk_column,
                                          const HashJoinOptions& options) {
  if (fk_column >= fact.num_columns()) {
    return Status::InvalidArgument("fk column out of range");
  }
  if (pk_column >= dimension.num_columns()) {
    return Status::InvalidArgument("pk column out of range");
  }
  const Column& fk = fact.column(fk_column);
  const Column& pk = dimension.column(pk_column);
  if (fk.type() == DataType::kDouble || pk.type() == DataType::kDouble) {
    return Status::InvalidArgument("join keys must be ordinal");
  }

  // Build phase: PK -> dimension row, with a uniqueness check.
  std::unordered_map<int64_t, size_t> index;
  index.reserve(dimension.num_rows() * 2);
  for (size_t r = 0; r < dimension.num_rows(); ++r) {
    auto [it, inserted] = index.emplace(pk.GetInt64(r), r);
    if (!inserted) {
      return Status::InvalidArgument(StrFormat(
          "pk column '%s' has duplicate value %lld; not a key",
          dimension.schema().column(pk_column).name.c_str(),
          static_cast<long long>(pk.GetInt64(r))));
    }
  }

  // Output schema: fact columns then prefixed non-PK dimension columns.
  std::vector<ColumnSchema> out_columns = fact.schema().columns();
  std::vector<size_t> dim_source;  // dimension column indices in output order
  for (size_t c = 0; c < dimension.num_columns(); ++c) {
    if (c == pk_column) continue;
    ColumnSchema cs = dimension.schema().column(c);
    cs.name = options.dimension_prefix + cs.name;
    // Collision check against fact columns.
    for (const auto& existing : fact.schema().columns()) {
      if (existing.name == cs.name) {
        return Status::InvalidArgument(
            "joined column name collision: '" + cs.name +
            "'; set options.dimension_prefix");
      }
    }
    out_columns.push_back(std::move(cs));
    dim_source.push_back(c);
  }

  // Probe phase: match each fact row.
  std::vector<size_t> fact_rows;
  std::vector<size_t> dim_rows;
  fact_rows.reserve(fact.num_rows());
  dim_rows.reserve(fact.num_rows());
  for (size_t r = 0; r < fact.num_rows(); ++r) {
    auto it = index.find(fk.GetInt64(r));
    if (it == index.end()) {
      if (options.require_match) {
        return Status::FailedPrecondition(StrFormat(
            "dangling foreign key %lld at fact row %zu",
            static_cast<long long>(fk.GetInt64(r)), r));
      }
      continue;
    }
    fact_rows.push_back(r);
    dim_rows.push_back(it->second);
  }

  // Materialize column-wise.
  auto out = std::make_shared<Table>(Schema(std::move(out_columns)));
  for (size_t c = 0; c < fact.num_columns(); ++c) {
    const Column& src = fact.column(c);
    Column& dst = out->mutable_column(c);
    if (src.type() == DataType::kDouble) {
      auto& data = dst.MutableDoubleData();
      data.reserve(fact_rows.size());
      for (size_t r : fact_rows) data.push_back(src.DoubleData()[r]);
    } else {
      auto& data = dst.MutableInt64Data();
      data.reserve(fact_rows.size());
      for (size_t r : fact_rows) data.push_back(src.Int64Data()[r]);
      if (src.type() == DataType::kString) {
        dst.SetDictionary(src.dictionary());
      }
    }
  }
  for (size_t j = 0; j < dim_source.size(); ++j) {
    const Column& src = dimension.column(dim_source[j]);
    Column& dst = out->mutable_column(fact.num_columns() + j);
    if (src.type() == DataType::kDouble) {
      auto& data = dst.MutableDoubleData();
      data.reserve(dim_rows.size());
      for (size_t r : dim_rows) data.push_back(src.DoubleData()[r]);
    } else {
      auto& data = dst.MutableInt64Data();
      data.reserve(dim_rows.size());
      for (size_t r : dim_rows) data.push_back(src.Int64Data()[r]);
      if (src.type() == DataType::kString) {
        dst.SetDictionary(src.dictionary());
      }
    }
  }
  out->SetRowCountFromColumns();
  return out;
}

}  // namespace aqpp
