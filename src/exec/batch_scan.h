// Shared-scan batch execution: N scalar queries against one table answered
// in a single pass.
//
// ExactExecutor::Execute streams the whole table once per query; a batch of
// N concurrent queries on the same table therefore pays N memory passes over
// identical bytes. BatchScanExecutor fuses them: one walk of the fixed
// chunk/shard grid (or the extent grid for ColumnSource-backed tables)
// evaluates every member's predicate and feeds every member's accumulator
// lanes per chunk, so the data travels the memory hierarchy once per batch.
//
// Semantics per member are EXACTLY ExactExecutor::Execute /
// ExecuteQueryOnSource: same validation, same empty-predicate and empty
// selection rules, and bit-identical numeric results at any thread count and
// batch composition (see kernels/multi_scan.h for the argument). Member
// failures are isolated — one invalid query or one IO error never poisons
// sibling results.
//
// ExecutorOptions::fuse_batches = false degrades both entry points to a
// sequential per-member loop over the solo paths: the ablation baseline the
// batch bench and equivalence tests compare against.

#ifndef AQPP_EXEC_BATCH_SCAN_H_
#define AQPP_EXEC_BATCH_SCAN_H_

#include <vector>

#include "exec/executor.h"
#include "kernels/source_scan.h"
#include "storage/column_source.h"

namespace aqpp {

class BatchScanExecutor {
 public:
  explicit BatchScanExecutor(const Table* table, ExecutorOptions options = {})
      : table_(table), options_(options), solo_(table, options), stats_(table) {}

  // Evaluates every scalar query in `queries` (index-aligned results) with
  // one fused pass over the table. Each element is exactly what
  // ExactExecutor::Execute would return for that query alone.
  std::vector<Result<double>> ExecuteBatch(
      const std::vector<RangeQuery>& queries) const;

  const ExecutorOptions& options() const { return options_; }

 private:
  const Table* table_;
  ExecutorOptions options_;
  // Solo executor for the ablation path (it keeps its own stats cache).
  ExactExecutor solo_;
  // Lazily built per-column min/max for bind-time full-range elision;
  // thread-safe, shared across batches against the same table.
  mutable kernels::ColumnStatsCache stats_;
};

// ColumnSource twin: evaluates every query with one fused pass over the
// extent grid (zone maps classified once per extent per batch, each needed
// column pinned once per extent for the whole batch). Each element is
// exactly what ExecuteQueryOnSource would return for that query alone.
// `fuse` = false is the per-query ablation baseline.
std::vector<Result<double>> ExecuteQueriesOnSource(
    ColumnSource& source, const std::vector<RangeQuery>& queries,
    const kernels::SourceScanOptions& opts = kernels::SourceScanOptions(),
    bool fuse = true);

}  // namespace aqpp

#endif  // AQPP_EXEC_BATCH_SCAN_H_
